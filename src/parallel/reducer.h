// Parallel reductions and prefix sums over index ranges.
//
// Prefix sums back the sparse->packed conversions in VertexSubset and the
// two-pass CSR mutation (offset adjustment). The implementations fall back
// to a serial pass for small inputs.
#ifndef SRC_PARALLEL_REDUCER_H_
#define SRC_PARALLEL_REDUCER_H_

#include <cstddef>
#include <mutex>
#include <numeric>
#include <vector>

#include "src/parallel/parallel_for.h"

namespace graphbolt {

// Sum of body(i) over [begin, end).
template <typename T, typename Body>
T ParallelReduceSum(size_t begin, size_t end, const Body& body, T init = T{}) {
  std::mutex merge_mutex;
  T total = init;
  ParallelForChunks(begin, end, [&](size_t lo, size_t hi) {
    T local{};
    for (size_t i = lo; i < hi; ++i) {
      local += body(i);
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    total += local;
  });
  return total;
}

// Exclusive prefix sum of `values`; returns the grand total. values[i]
// becomes the sum of the original values[0..i).
template <typename T>
T ExclusivePrefixSum(std::vector<T>& values) {
  T running{};
  for (auto& value : values) {
    const T next = running + value;
    value = running;
    running = next;
  }
  return running;
}

// Parallel exclusive prefix sum of `values` in place; returns the grand
// total. Two-pass blocked scan: per-block totals in parallel, a serial scan
// over the (few) block totals, then a parallel fix-up pass. Small inputs
// fall back to the serial ExclusivePrefixSum. This backs the offset pass of
// SlackCsr compaction, where V is large enough for the blocks to matter.
template <typename T>
T ParallelPrefixSum(std::vector<T>& values, size_t grain = 4096) {
  const size_t n = values.size();
  if (n < 2 * grain) {
    return ExclusivePrefixSum(values);
  }
  const size_t num_blocks = (n + grain - 1) / grain;
  std::vector<T> block_totals(num_blocks);
  ParallelFor(0, num_blocks, [&](size_t b) {
    const size_t lo = b * grain;
    const size_t hi = lo + grain < n ? lo + grain : n;
    T local{};
    for (size_t i = lo; i < hi; ++i) {
      local += values[i];
    }
    block_totals[b] = local;
  }, /*grain=*/1);
  const T total = ExclusivePrefixSum(block_totals);
  ParallelFor(0, num_blocks, [&](size_t b) {
    const size_t lo = b * grain;
    const size_t hi = lo + grain < n ? lo + grain : n;
    T running = block_totals[b];
    for (size_t i = lo; i < hi; ++i) {
      const T next = running + values[i];
      values[i] = running;
      running = next;
    }
  }, /*grain=*/1);
  return total;
}

// Maximum of body(i) over [begin, end); returns `init` for empty ranges.
template <typename T, typename Body>
T ParallelReduceMax(size_t begin, size_t end, const Body& body, T init) {
  std::mutex merge_mutex;
  T best = init;
  ParallelForChunks(begin, end, [&](size_t lo, size_t hi) {
    T local = init;
    for (size_t i = lo; i < hi; ++i) {
      const T candidate = body(i);
      if (local < candidate) {
        local = candidate;
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    if (best < local) {
      best = local;
    }
  });
  return best;
}

}  // namespace graphbolt

#endif  // SRC_PARALLEL_REDUCER_H_
