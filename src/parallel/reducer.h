// Parallel reductions and prefix sums over index ranges, on the
// work-stealing TaskArena.
//
// Reductions use *eager* binary splitting with a fixed merge tree: the
// range is always split at its midpoint, the upper half is forked, and the
// two partials merge in (left, right) order. The split points — and hence
// the merge tree — depend only on (begin, end, grain), never on which
// thread executed what, so floating-point reductions are bitwise
// deterministic under stealing (the old mutex-merge accumulated in arrival
// order). Prefix sums use the two-pass blocked scan, which is likewise
// schedule-independent.
#ifndef SRC_PARALLEL_REDUCER_H_
#define SRC_PARALLEL_REDUCER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/parallel/parallel_for.h"
#include "src/parallel/task_arena.h"

namespace graphbolt {

namespace parallel_internal {

template <typename T, typename ChunkFn, typename MergeFn>
T ReduceSplit(size_t lo, size_t hi, size_t grain, const ChunkFn& chunk_fn,
              const MergeFn& merge) {
  if (hi - lo <= grain) {
    return chunk_fn(lo, hi);
  }
  const size_t mid = lo + (hi - lo) / 2;
  T right{};
  TaskGroup group;
  group.Run([&] { right = ReduceSplit<T>(mid, hi, grain, chunk_fn, merge); });
  T left = ReduceSplit<T>(lo, mid, grain, chunk_fn, merge);
  group.Wait();
  return merge(std::move(left), std::move(right));
}

}  // namespace parallel_internal

// General chunked reduction: chunk_fn(lo, hi) -> T over leaf ranges,
// merge(T, T) -> T up a midpoint-split tree. Deterministic for a fixed
// (begin, end, grain) regardless of scheduling. Returns T{} on an empty
// range.
template <typename T, typename ChunkFn, typename MergeFn>
T ParallelReduce(size_t begin, size_t end, const ChunkFn& chunk_fn,
                 const MergeFn& merge, size_t grain = kDefaultGrain) {
  if (begin >= end) {
    return T{};
  }
  grain = grain == 0 ? 1 : grain;
  TaskArena& arena = TaskArena::Instance();
  if (end - begin <= grain || arena.num_threads() == 1) {
    arena.CountInlineRun();
    return chunk_fn(begin, end);
  }
  return parallel_internal::ReduceSplit<T>(begin, end, grain, chunk_fn, merge);
}

// Sum of body(i) over [begin, end).
template <typename T, typename Body>
T ParallelReduceSum(size_t begin, size_t end, const Body& body, T init = T{}) {
  T total = ParallelReduce<T>(
      begin, end,
      [&body](size_t lo, size_t hi) {
        T local{};
        for (size_t i = lo; i < hi; ++i) {
          local += body(i);
        }
        return local;
      },
      [](T a, T b) { return a + b; });
  return init + total;
}

// Maximum of body(i) over [begin, end); returns `init` for empty ranges.
template <typename T, typename Body>
T ParallelReduceMax(size_t begin, size_t end, const Body& body, T init) {
  if (begin >= end) {
    return init;  // ParallelReduce would return T{}, dropping init
  }
  return ParallelReduce<T>(
      begin, end,
      [&body, &init](size_t lo, size_t hi) {
        T local = init;
        for (size_t i = lo; i < hi; ++i) {
          T candidate = body(i);
          if (local < candidate) {
            local = std::move(candidate);
          }
        }
        return local;
      },
      [](T a, T b) { return a < b ? b : a; },
      /*grain=*/kDefaultGrain);
}

// Exclusive prefix sum of `values`; returns the grand total. values[i]
// becomes the sum of the original values[0..i).
template <typename T>
T ExclusivePrefixSum(std::vector<T>& values) {
  T running{};
  for (auto& value : values) {
    const T next = running + value;
    value = running;
    running = next;
  }
  return running;
}

// Parallel exclusive prefix sum of `values` in place; returns the grand
// total. Two-pass blocked scan: per-block totals in parallel, a serial scan
// over the (few) block totals, then a parallel fix-up pass. Small inputs
// fall back to the serial ExclusivePrefixSum. This backs the offset pass of
// SlackCsr compaction (both the synchronous path and the shadow-arena
// offsets of a background compaction), where V is large enough for the
// blocks to matter.
template <typename T>
T ParallelPrefixSum(std::vector<T>& values, size_t grain = 4096) {
  const size_t n = values.size();
  if (n < 2 * grain) {
    return ExclusivePrefixSum(values);
  }
  const size_t num_blocks = (n + grain - 1) / grain;
  std::vector<T> block_totals(num_blocks);
  ParallelFor(0, num_blocks, [&](size_t b) {
    const size_t lo = b * grain;
    const size_t hi = lo + grain < n ? lo + grain : n;
    T local{};
    for (size_t i = lo; i < hi; ++i) {
      local += values[i];
    }
    block_totals[b] = local;
  }, /*grain=*/1);
  const T total = ExclusivePrefixSum(block_totals);
  ParallelFor(0, num_blocks, [&](size_t b) {
    const size_t lo = b * grain;
    const size_t hi = lo + grain < n ? lo + grain : n;
    T running = block_totals[b];
    for (size_t i = lo; i < hi; ++i) {
      const T next = running + values[i];
      values[i] = running;
      running = next;
    }
  }, /*grain=*/1);
  return total;
}

}  // namespace graphbolt

#endif  // SRC_PARALLEL_REDUCER_H_
