// Compatibility shim over the work-stealing TaskArena (task_arena.h).
//
// The original runtime was a single-job blocked-range ThreadPool; the
// arena replaced it. This class keeps the public surface —
// Instance()/SetNumThreads()/num_threads()/ParallelForChunked — so the
// Table 6 core-count sweep and historical call sites migrate without API
// churn, while every call is forwarded to the arena.
//
// SetNumThreads semantics (fixing the old rebuild race): the arena is
// resized in place behind a root-region guard, so a reference obtained
// from Instance() on another thread is never invalidated mid-swap, and a
// call from inside a parallel region GB_DCHECK-fails in debug builds (and
// is ignored with a warning in release) instead of deadlocking.
#ifndef SRC_PARALLEL_THREAD_POOL_H_
#define SRC_PARALLEL_THREAD_POOL_H_

#include <cstddef>
#include <functional>

#include "src/parallel/task_arena.h"

namespace graphbolt {

class ThreadPool {
 public:
  // The process-wide pool view. Always the same object; safe to cache.
  static ThreadPool& Instance();

  // Resizes the process-wide arena to `num_threads` participants. Must not
  // be called from inside a parallel region (asserted in debug builds).
  static void SetNumThreads(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return TaskArena::Instance().num_threads(); }

  // Legacy chunked loop taking a boxed body. New code should call the
  // template ParallelForChunks (parallel_for.h), which dispatches the body
  // statically; this overload exists only for callers that already hold a
  // std::function.
  void ParallelForChunked(size_t begin, size_t end, size_t grain,
                          const std::function<void(size_t, size_t)>& body);

 private:
  ThreadPool() = default;
};

}  // namespace graphbolt

#endif  // SRC_PARALLEL_THREAD_POOL_H_
