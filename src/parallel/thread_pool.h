// A small static thread pool with a fork-join `ParallelFor` primitive.
//
// The BSP engines in this repository are barrier-heavy: each iteration is a
// sequence of parallel loops over vertices or edges with a join in between.
// A persistent pool with blocked range partitioning matches that pattern and
// keeps per-loop overhead low; work items within a loop are further split
// into chunks claimed via an atomic cursor so skewed per-vertex work (power-
// law degrees) load-balances.
//
// The pool size is process-wide and settable (Table 6 reproduces the paper's
// core-count sweep by varying it). With one thread, loops run inline on the
// caller, which keeps single-core benchmarking honest.
#ifndef SRC_PARALLEL_THREAD_POOL_H_
#define SRC_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace graphbolt {

class ThreadPool {
 public:
  // The process-wide pool. Created on first use with hardware concurrency.
  static ThreadPool& Instance();

  // Rebuilds the process-wide pool with `num_threads` workers. Joins the old
  // workers first; must not be called from inside a parallel region.
  static void SetNumThreads(size_t num_threads);

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }

  // Runs body(begin..end) across the pool and the calling thread; returns
  // when every index has been processed. `body` receives a half-open chunk
  // [chunk_begin, chunk_end). Nested calls execute inline (serially).
  void ParallelForChunked(size_t begin, size_t end, size_t grain,
                          const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop();

  struct Job {
    const std::function<void(size_t, size_t)>* body = nullptr;
    size_t end = 0;
    size_t grain = 1;
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> remaining_workers{0};
  };

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Job* current_job_ = nullptr;
  uint64_t job_epoch_ = 0;
  bool shutting_down_ = false;
  static thread_local bool in_parallel_region_;
};

}  // namespace graphbolt

#endif  // SRC_PARALLEL_THREAD_POOL_H_
