// Fork-join loop primitives on the work-stealing TaskArena.
//
// Template-dispatched end to end: the body is instantiated into the range
// tasks directly — no std::function boxing, no per-chunk virtual call (the
// old runtime paid one type-erased call per chunk; see
// bench_micro_primitives BM_ParallelFor*).
//
// Scheduling is lazy binary splitting (Tzannes et al.): the executing
// thread forks the upper half of its remaining range only when its deque
// is empty — i.e. thieves have taken everything it previously forked, or
// it has forked nothing yet. An uncontended loop therefore runs as a
// near-serial sweep with O(log(n/grain)) forks, while skewed chunk costs
// (hub vertices, ragged frontiers) keep splitting adaptively down to
// `grain` so idle workers always find work to steal. Nested calls fork
// into the calling worker's own deque — real nested parallelism, not the
// old inline serialization.
#ifndef SRC_PARALLEL_PARALLEL_FOR_H_
#define SRC_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstddef>

#include "src/parallel/task_arena.h"

namespace graphbolt {

inline constexpr size_t kDefaultGrain = 1024;

namespace parallel_internal {

// Executes body(lo, hi) over [lo, hi) in grain-sized chunks, forking the
// upper half whenever the owner's deque runs dry. Re-entered by thieves
// for the halves they steal.
template <typename Body>
void RunSplit(const Body& body, size_t lo, size_t hi, size_t grain,
              TaskGroup& group, TaskArena& arena) {
  while (lo < hi) {
    while (hi - lo > grain && arena.ShouldSplit()) {
      const size_t mid = lo + (hi - lo) / 2;
      group.Run([&body, &group, &arena, mid, hi, grain] {
        RunSplit(body, mid, hi, grain, group, arena);
      });
      hi = mid;
    }
    const size_t chunk_end = std::min(hi, lo + grain);
    body(lo, chunk_end);
    lo = chunk_end;
  }
}

}  // namespace parallel_internal

// Applies body(lo, hi) to disjoint chunks covering [begin, end). Chunks
// are at most `grain` long; their boundaries depend on stealing, so the
// body must not assume any particular partition (each index is covered
// exactly once).
template <typename Body>
void ParallelForChunks(size_t begin, size_t end, const Body& body,
                       size_t grain = kDefaultGrain) {
  if (begin >= end) {
    return;
  }
  grain = std::max<size_t>(1, grain);
  TaskArena& arena = TaskArena::Instance();
  if (end - begin <= grain || arena.num_threads() == 1) {
    arena.CountInlineRun();
    body(begin, end);
    return;
  }
  TaskGroup group;
  parallel_internal::RunSplit(body, begin, end, grain, group, arena);
  group.Wait();
}

// Applies body(i) for every i in [begin, end).
template <typename Body>
void ParallelFor(size_t begin, size_t end, const Body& body,
                 size_t grain = kDefaultGrain) {
  ParallelForChunks(
      begin, end,
      [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          body(i);
        }
      },
      grain);
}

}  // namespace graphbolt

#endif  // SRC_PARALLEL_PARALLEL_FOR_H_
