// Fork-join loop helpers layered on ThreadPool.
#ifndef SRC_PARALLEL_PARALLEL_FOR_H_
#define SRC_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "src/parallel/thread_pool.h"

namespace graphbolt {

inline constexpr size_t kDefaultGrain = 1024;

// Applies body(i) for every i in [begin, end) across the process pool.
template <typename Body>
void ParallelFor(size_t begin, size_t end, const Body& body,
                 size_t grain = kDefaultGrain) {
  const std::function<void(size_t, size_t)> chunk = [&body](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      body(i);
    }
  };
  ThreadPool::Instance().ParallelForChunked(begin, end, grain, chunk);
}

// Applies body(lo, hi) to disjoint chunks covering [begin, end).
template <typename Body>
void ParallelForChunks(size_t begin, size_t end, const Body& body,
                       size_t grain = kDefaultGrain) {
  const std::function<void(size_t, size_t)> chunk = body;
  ThreadPool::Instance().ParallelForChunked(begin, end, grain, chunk);
}

}  // namespace graphbolt

#endif  // SRC_PARALLEL_PARALLEL_FOR_H_
