#include "src/parallel/task_arena.h"

#include <algorithm>

namespace graphbolt {


namespace {

// Persistent workers may not occupy the whole slot table: external threads
// (main, StreamDriver worker, test producers) need room to attach.
constexpr size_t kMaxWorkers = TaskArena::kMaxSlots - 16;

}  // namespace

TaskArena& TaskArena::Instance() {
  static TaskArena arena;
  return arena;
}

TaskArena::TaskArena() {
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  ResizeLocked(std::min(hw, kMaxWorkers));
}

TaskArena::~TaskArena() { StopWorkersLocked(); }

void TaskArena::SetNumThreads(size_t num_threads) {
  num_threads = std::min(std::max<size_t>(1, num_threads), kMaxWorkers);
  if (InParallelRegion()) {
    // The old ThreadPool deadlocked here (the rebuild joined workers that
    // were waiting on the very loop the caller was inside). Surface the
    // contract violation instead.
    GB_DCHECK(false) << "SetNumThreads called from inside a parallel region";
    GB_LOG(kWarning) << "SetNumThreads(" << num_threads
                     << ") ignored: called from inside a parallel region";
    return;
  }
  TaskArena& arena = Instance();
  // Exclusive side of the root-region guard: waits for every in-flight
  // region to finish and blocks new ones, so no thread can be executing
  // (or forking into) a deque while the worker set is swapped. Instance()
  // references stay valid throughout — the arena is resized, not replaced.
  std::unique_lock<std::shared_mutex> lock(arena.resize_mu_);
  if (arena.num_threads() == num_threads) {
    return;
  }
  arena.StopWorkersLocked();
  arena.ResizeLocked(num_threads);
}

void TaskArena::ResizeLocked(size_t num_threads) {
  num_threads_.store(num_threads, std::memory_order_release);
  const size_t spawn = num_threads - 1;
  workers_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    arena_internal::WorkerSlot* slot = ClaimSlot();
    GB_CHECK(slot != nullptr) << "arena slot table exhausted while spawning workers";
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

void TaskArena::StopWorkersLocked() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  shutdown_.store(false, std::memory_order_release);
}

void TaskArena::WorkerLoop(arena_internal::WorkerSlot* slot) {
  tls_slot_ = slot;
  steal_seed_ = static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1u);
  for (;;) {
    arena_internal::Task* task = PopLocal(slot);
    for (int round = 0; task == nullptr && round < 4; ++round) {
      task = PopPriority();  // drain the lane before random steals
      if (task == nullptr) {
        task = TrySteal(slot);
      }
      if (task == nullptr && queued_.load(std::memory_order_acquire) > 0) {
        std::this_thread::yield();  // work exists; a sweep just raced
        round = -1;
      }
    }
    if (task != nullptr) {
      ExecuteTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (shutdown_.load(std::memory_order_acquire)) {
      break;
    }
    sleepers_.fetch_add(1, std::memory_order_release);
    sleep_cv_.wait(lock, [this] {
      return shutdown_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_release);
    if (shutdown_.load(std::memory_order_acquire)) {
      break;
    }
  }
  // Regions drain before a resize, so the deque hands back empty.
  GB_DCHECK(slot->deque.Empty()) << "worker retired with queued tasks";
  tls_slot_ = nullptr;
  ReleaseSlot(slot);
}

arena_internal::WorkerSlot* TaskArena::ClaimSlot() {
  for (size_t i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    if (slots_[i].active.compare_exchange_strong(expected, true,
                                                 std::memory_order_acquire)) {
      return &slots_[i];
    }
  }
  return nullptr;
}

void TaskArena::ReleaseSlot(arena_internal::WorkerSlot* slot) {
  GB_DCHECK(slot->deque.Empty()) << "slot released with queued tasks";
  slot->active.store(false, std::memory_order_release);
}

arena_internal::Task* TaskArena::TrySteal(arena_internal::WorkerSlot* self) {
  uint32_t seed = steal_seed_;
  seed = seed * 1664525u + 1013904223u;  // LCG: cheap per-sweep start rotation
  steal_seed_ = seed;
  const size_t start = seed % kMaxSlots;
  for (size_t i = 0; i < kMaxSlots; ++i) {
    arena_internal::WorkerSlot* victim = &slots_[(start + i) % kMaxSlots];
    if (victim == self) {
      continue;
    }
    arena_internal::Task* task = victim->deque.Steal();
    if (task != nullptr) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      self->steals.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

ArenaCounters TaskArena::counters() const {
  ArenaCounters totals;
  totals.inline_runs = inline_runs_.load(std::memory_order_relaxed);
  totals.tasks_priority = priority_pushes_.load(std::memory_order_relaxed);
  for (const arena_internal::WorkerSlot& slot : slots_) {
    totals.tasks_forked += slot.forks.load(std::memory_order_relaxed);
    totals.tasks_stolen += slot.steals.load(std::memory_order_relaxed);
  }
  return totals;
}

}  // namespace graphbolt
