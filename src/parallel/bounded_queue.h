// A bounded multi-producer/multi-consumer blocking queue.
//
// This is the handoff primitive between StreamDriver's producers and its
// worker thread: the fixed capacity is what turns a fast producer into
// backpressure (Push blocks while the consumer is behind) instead of
// unbounded memory growth. Close() makes shutdown race-free: pushes fail
// immediately, pops drain whatever is already buffered and then return
// empty, and every blocked thread wakes.
//
// Mutex + condition variables rather than a lock-free ring: the payloads
// here are whole mutation batches (thousands of edges), so handoff cost is
// irrelevant next to the work each item represents.
#ifndef SRC_PARALLEL_BOUNDED_QUEUE_H_
#define SRC_PARALLEL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/fault/fault_injector.h"

namespace graphbolt {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. Returns false (item untouched) if the
  // queue is or becomes closed before space frees up.
  bool Push(T&& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false (item untouched) when full or closed.
  // An armed FaultSite::kQueueFull makes it report full spuriously — only
  // the non-blocking path, so the kBlock overflow policy stays lossless.
  bool TryPush(T&& item) {
    if (GB_FAULT_POINT(injector_, FaultSite::kQueueFull)) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Push that never blocks and never fails while open: when the queue is
  // full, the *oldest* buffered item is evicted into *evicted to make room
  // (the kShedOldest overflow policy — fresh data beats stale data under
  // overload). Returns false only when closed (item untouched); *evicted
  // is engaged iff an eviction happened.
  bool PushEvictOldest(T&& item, std::optional<T>* evicted) {
    evicted->reset();
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return false;
    }
    if (items_.size() >= capacity_) {
      evicted->emplace(std::move(items_.front()));
      items_.pop_front();
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available; empty only when closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return PopFrontLocked();
  }

  // Waits up to `timeout` for an item; empty on timeout or closed-and-
  // drained (disambiguate with closed()).
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, timeout, [&] { return closed_ || !items_.empty(); });
    return PopFrontLocked();
  }

  // After Close(), pushes fail and pops drain the remaining items. Wakes
  // every blocked producer and consumer. Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // Reopens a closed queue, discarding anything still buffered — the
  // crash-recovery restart path (StreamDriver::Recover drains survivors
  // with Pop() first, then Resets before starting a fresh worker).
  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    items_.clear();
    closed_ = false;
  }

  // Test-only fault hook (no-op unless compiled with
  // GRAPHBOLT_FAULT_INJECTION=1). Not synchronized: arm before producers
  // start.
  void ArmFaultInjector(FaultInjector* injector) { injector_ = injector; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool Empty() const { return size() == 0; }

  size_t capacity() const { return capacity_; }

 private:
  std::optional<T> PopFrontLocked() {
    if (items_.empty()) {
      return std::nullopt;
    }
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  const size_t capacity_;
  FaultInjector* injector_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace graphbolt

#endif  // SRC_PARALLEL_BOUNDED_QUEUE_H_
