// Atomic read-modify-write helpers for types the standard library does not
// cover directly (floating-point add/multiply, generic min/max via CAS).
//
// All operations use relaxed ordering: the engines synchronize between BSP
// iterations with barriers (thread-pool joins), so per-cell operations only
// need atomicity, not ordering.
#ifndef SRC_PARALLEL_ATOMICS_H_
#define SRC_PARALLEL_ATOMICS_H_

#include <atomic>
#include <type_traits>

namespace graphbolt {

// Atomically `*target += delta` for any arithmetic type. Uses native
// fetch_add for integers and a CAS loop for floating point.
template <typename T>
void AtomicAdd(T* target, T delta) {
  static_assert(std::is_arithmetic_v<T>);
  auto* cell = reinterpret_cast<std::atomic<T>*>(target);
  if constexpr (std::is_integral_v<T>) {
    cell->fetch_add(delta, std::memory_order_relaxed);
  } else {
    T observed = cell->load(std::memory_order_relaxed);
    while (!cell->compare_exchange_weak(observed, observed + delta,
                                        std::memory_order_relaxed)) {
    }
  }
}

// Atomic relaxed load of a cell the helpers above mutate concurrently. A
// plain read racing an atomic CAS on the same location is a data race even
// when a torn value would be self-healing — pair every concurrent reader
// with this.
template <typename T>
T AtomicLoad(const T* target) {
  static_assert(std::is_arithmetic_v<T>);
  return reinterpret_cast<const std::atomic<T>*>(target)->load(std::memory_order_relaxed);
}

// Atomically `*target *= factor` (CAS loop). Belief Propagation's product
// aggregation uses this together with AtomicDivide for retraction.
template <typename T>
void AtomicMultiply(T* target, T factor) {
  static_assert(std::is_floating_point_v<T>);
  auto* cell = reinterpret_cast<std::atomic<T>*>(target);
  T observed = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(observed, observed * factor,
                                      std::memory_order_relaxed)) {
  }
}

// Atomically `*target /= divisor` (CAS loop).
template <typename T>
void AtomicDivide(T* target, T divisor) {
  static_assert(std::is_floating_point_v<T>);
  auto* cell = reinterpret_cast<std::atomic<T>*>(target);
  T observed = cell->load(std::memory_order_relaxed);
  while (!cell->compare_exchange_weak(observed, observed / divisor,
                                      std::memory_order_relaxed)) {
  }
}

// Atomically `*target = min(*target, candidate)`. Returns true if the
// candidate became the new minimum (used to claim frontier insertion).
template <typename T>
bool AtomicMin(T* target, T candidate) {
  auto* cell = reinterpret_cast<std::atomic<T>*>(target);
  T observed = cell->load(std::memory_order_relaxed);
  while (candidate < observed) {
    if (cell->compare_exchange_weak(observed, candidate,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

// Atomically `*target = max(*target, candidate)`. Returns true on update.
template <typename T>
bool AtomicMax(T* target, T candidate) {
  auto* cell = reinterpret_cast<std::atomic<T>*>(target);
  T observed = cell->load(std::memory_order_relaxed);
  while (observed < candidate) {
    if (cell->compare_exchange_weak(observed, candidate,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

// Single compare-and-swap; returns true if `*target` was `expected` and is
// now `desired`.
template <typename T>
bool AtomicCas(T* target, T expected, T desired) {
  auto* cell = reinterpret_cast<std::atomic<T>*>(target);
  return cell->compare_exchange_strong(expected, desired,
                                       std::memory_order_relaxed);
}

}  // namespace graphbolt

#endif  // SRC_PARALLEL_ATOMICS_H_
