#include "src/parallel/thread_pool.h"

#include "src/parallel/parallel_for.h"

namespace graphbolt {

ThreadPool& ThreadPool::Instance() {
  static ThreadPool shim;
  TaskArena::Instance();  // materialize the arena eagerly, like the old pool
  return shim;
}

void ThreadPool::SetNumThreads(size_t num_threads) {
  TaskArena::SetNumThreads(num_threads);
}

void ThreadPool::ParallelForChunked(size_t begin, size_t end, size_t grain,
                                    const std::function<void(size_t, size_t)>& body) {
  ParallelForChunks(begin, end, body, grain);
}

}  // namespace graphbolt
