#include "src/parallel/thread_pool.h"

#include <algorithm>
#include <memory>

namespace graphbolt {

thread_local bool ThreadPool::in_parallel_region_ = false;

namespace {

std::unique_ptr<ThreadPool>& PoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& PoolMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

ThreadPool& ThreadPool::Instance() {
  std::lock_guard<std::mutex> lock(PoolMutex());
  auto& slot = PoolSlot();
  if (!slot) {
    const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
    slot = std::make_unique<ThreadPool>(hw);
  }
  return *slot;
}

void ThreadPool::SetNumThreads(size_t num_threads) {
  std::lock_guard<std::mutex> lock(PoolMutex());
  PoolSlot() = std::make_unique<ThreadPool>(std::max<size_t>(1, num_threads));
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t extra = num_threads > 0 ? num_threads - 1 : 0;
  workers_.reserve(extra);
  for (size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::ParallelForChunked(size_t begin, size_t end, size_t grain,
                                    const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) {
    return;
  }
  grain = std::max<size_t>(1, grain);
  // Inline execution when small, nested, or single-threaded.
  if (in_parallel_region_ || workers_.empty() || end - begin <= grain) {
    body(begin, end);
    return;
  }

  Job job;
  job.body = &body;
  job.end = end;
  job.grain = grain;
  job.cursor.store(begin, std::memory_order_relaxed);
  job.remaining_workers.store(workers_.size(), std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_job_ = &job;
    ++job_epoch_;
  }
  work_ready_.notify_all();

  // The calling thread participates too.
  in_parallel_region_ = true;
  size_t chunk_begin;
  while ((chunk_begin = job.cursor.fetch_add(grain, std::memory_order_relaxed)) < end) {
    body(chunk_begin, std::min(end, chunk_begin + grain));
  }
  in_parallel_region_ = false;

  // Wait until every worker has drained the job (not merely observed it), so
  // `body` can be destroyed safely.
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [&job] {
    return job.remaining_workers.load(std::memory_order_acquire) == 0;
  });
  current_job_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  in_parallel_region_ = true;  // Workers never spawn nested parallelism.
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this, seen_epoch] {
        return shutting_down_ || (current_job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutting_down_) {
        return;
      }
      job = current_job_;
      seen_epoch = job_epoch_;
    }
    const size_t grain = job->grain;
    const size_t end = job->end;
    size_t chunk_begin;
    while ((chunk_begin = job->cursor.fetch_add(grain, std::memory_order_relaxed)) < end) {
      (*job->body)(chunk_begin, std::min(end, chunk_begin + grain));
    }
    if (job->remaining_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last worker out signals the caller.
      std::lock_guard<std::mutex> lock(mutex_);
      work_done_.notify_all();
    } else {
      work_done_.notify_all();
    }
  }
}

}  // namespace graphbolt
