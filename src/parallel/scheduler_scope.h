// RAII attribution of TaskArena scheduler activity to an EngineStats.
//
// The arena's counters are process-wide and monotone; engines wrap each
// InitialCompute/ApplyMutations body in a SchedulerCounterScope so stats()
// reports the forks/steals/inline-runs of exactly that call. The scope
// *assigns* (it does not accumulate), matching the stats.h lifecycle where
// every field describes the most recent call — and making re-entrant cases
// (ApplyMutations falling back to InitialCompute) report the outermost
// call's totals instead of double counting.
#ifndef SRC_PARALLEL_SCHEDULER_SCOPE_H_
#define SRC_PARALLEL_SCHEDULER_SCOPE_H_

#include "src/engine/stats.h"
#include "src/parallel/task_arena.h"

namespace graphbolt {

class SchedulerCounterScope {
 public:
  explicit SchedulerCounterScope(EngineStats* stats)
      : stats_(stats), before_(TaskArena::Instance().counters()) {}

  ~SchedulerCounterScope() {
    const ArenaCounters after = TaskArena::Instance().counters();
    stats_->tasks_forked = after.tasks_forked - before_.tasks_forked;
    stats_->tasks_stolen = after.tasks_stolen - before_.tasks_stolen;
    stats_->inline_runs = after.inline_runs - before_.inline_runs;
    stats_->tasks_priority = after.tasks_priority - before_.tasks_priority;
  }

  SchedulerCounterScope(const SchedulerCounterScope&) = delete;
  SchedulerCounterScope& operator=(const SchedulerCounterScope&) = delete;

 private:
  EngineStats* stats_;
  ArenaCounters before_;
};

}  // namespace graphbolt

#endif  // SRC_PARALLEL_SCHEDULER_SCOPE_H_
