// Work-stealing task arena: the parallel runtime under every loop in the
// repository.
//
// The previous runtime (a single-job ThreadPool, kept as a shim in
// thread_pool.h) ran one blocked-range loop at a time and executed nested
// parallel calls inline, which load-balances poorly on the two workloads
// this codebase actually has: skewed per-vertex splice work (hub vertices
// in a power-law graph) and ragged frontier maps whose chunk costs differ
// by orders of magnitude. The arena replaces it with the classic
// work-stealing design:
//
//   - One WorkerSlot per participating thread, each owning a Chase-Lev
//     deque (owner pushes/pops the bottom without locks; idle threads
//     steal from the top with a CAS). The implementation follows Le et
//     al., "Correct and Efficient Work-Stealing for Weakly Ordered Memory
//     Models" (PPoPP'13), with seq_cst on the top/bottom accesses that
//     paper fences (strictly stronger, and expressed as atomics so TSan
//     models the synchronization).
//   - TaskGroup: the fork-join primitive. Run() forks a closure into the
//     calling thread's deque; Wait() helps (pop own deque, then steal)
//     until every forked task has finished. Nesting is real: a worker
//     inside a parallel region forks into its own deque, so inner loops
//     of a skewed outer loop become stealable work instead of serial
//     tail latency.
//   - ParallelFor/ParallelForChunks (parallel_for.h) use lazy binary
//     splitting on top of TaskGroup: a range forks its upper half only
//     when the owner's deque is empty (i.e. thieves have taken
//     everything, or nothing was ever pushed), so an uncontended loop
//     degenerates to a near-serial sweep with O(log(n/grain)) forks while
//     a contended or skewed loop keeps splitting down to `grain`.
//   - Sleep/wake: idle workers block on a condition variable keyed on the
//     exact count of queued tasks; group waiters additionally wake on
//     their group's completion. Fork-side notifies are lock-free unless a
//     sleeper is registered.
//
// The arena is a process-wide singleton that is resized in place
// (SetNumThreads joins the old workers and spawns new ones) rather than
// replaced, so references handed out by Instance() are never invalidated —
// that was the rebuild race in the old ThreadPool. Resizing from inside a
// parallel region is a programming error: it GB_DCHECK-fails in debug
// builds and is ignored with a warning in release builds (the old pool
// deadlocked).
//
// With num_threads() == 1 every primitive runs inline on the caller, which
// keeps single-core benchmarking honest (this matches the old pool).
#ifndef SRC_PARALLEL_TASK_ARENA_H_
#define SRC_PARALLEL_TASK_ARENA_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/logging.h"

namespace graphbolt {

class TaskGroup;

// Cumulative scheduler counters since process start (monotone; snapshot
// before/after a region and subtract to attribute work to it). These feed
// the scheduler block of EngineStats.
struct ArenaCounters {
  uint64_t tasks_forked = 0;    // closures pushed into a deque
  uint64_t tasks_stolen = 0;    // deque pops that crossed threads
  uint64_t inline_runs = 0;     // loops/forks executed serially on the caller
  uint64_t tasks_priority = 0;  // closures pushed into the priority lane
};

namespace arena_internal {

// A forked unit of work. Concrete tasks embed their closure (ClosureTask
// below); `run` both executes and destroys the task, then signals its
// group — no std::function, no shared ownership.
struct Task {
  void (*run)(Task*) = nullptr;
};

// Chase-Lev work-stealing deque of Task*. Owner-only Push/Pop at the
// bottom, thief Steal at the top. Buffers grow geometrically; retired
// buffers are kept until destruction so a thief holding a stale buffer
// pointer never reads freed memory.
class WorkStealingDeque {
 public:
  WorkStealingDeque() : buffer_(new Buffer(kInitialCapacity)) {}

  ~WorkStealingDeque() {
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    while (buf != nullptr) {
      Buffer* prev = buf->retired_prev;
      delete buf;
      buf = prev;
    }
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  bool Empty() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

  // Owner only.
  void Push(Task* task) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    const int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<int64_t>(buf->capacity)) {
      buf = Grow(buf, t, b);
    }
    buf->Put(b, task);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  // Owner only. Returns nullptr when empty (or when a thief won the race
  // for the last entry).
  Task* Pop() {
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Task* task = buf->Get(b);
    if (t == b) {
      // Last entry: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;  // a thief got it
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }

  // Any thread. Returns nullptr when empty or the race was lost.
  Task* Steal() {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) {
      return nullptr;
    }
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    Task* task = buf->Get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost to the owner's Pop or another thief
    }
    return task;
  }

 private:
  static constexpr size_t kInitialCapacity = 256;  // power of two

  struct Buffer {
    explicit Buffer(size_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<Task*>[cap]) {}
    ~Buffer() { delete[] cells; }

    // Cell handoff is release/acquire so the task's fields (written before
    // Push) are visible to the thread that ends up executing it.
    void Put(int64_t i, Task* task) {
      cells[static_cast<size_t>(i) & mask].store(task, std::memory_order_release);
    }
    Task* Get(int64_t i) const {
      return cells[static_cast<size_t>(i) & mask].load(std::memory_order_acquire);
    }

    const size_t capacity;
    const size_t mask;
    std::atomic<Task*>* const cells;
    Buffer* retired_prev = nullptr;  // chain of outgrown buffers
  };

  // Owner only: double the buffer, copying live entries. The old buffer is
  // chained, not freed — a concurrent thief may still read it (its stale
  // entries are protected by the top CAS).
  Buffer* Grow(Buffer* old, int64_t t, int64_t b) {
    Buffer* bigger = new Buffer(old->capacity * 2);
    for (int64_t i = t; i < b; ++i) {
      bigger->Put(i, old->Get(i));
    }
    bigger->retired_prev = old;
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<int64_t> top_{0};
  std::atomic<int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
};

// One per participating thread: persistent workers hold one for their
// lifetime; external threads (the main thread, the StreamDriver worker,
// test producers) claim one for the duration of a root parallel region.
struct alignas(64) WorkerSlot {
  WorkStealingDeque deque;
  std::atomic<bool> active{false};
  std::atomic<uint64_t> forks{0};
  std::atomic<uint64_t> steals{0};
};

}  // namespace arena_internal

class TaskArena {
 public:
  // Fixed slot table: up to kNumWorkerSlots persistent workers plus
  // concurrently attached external threads. Attachment beyond the table
  // falls back to inline execution (correct, just serial).
  static constexpr size_t kMaxSlots = 64;

  // The process-wide arena. Created on first use with hardware
  // concurrency. The returned reference is valid for the process lifetime:
  // SetNumThreads resizes this object in place, never replaces it.
  static TaskArena& Instance();

  // Resizes the arena to `num_threads` total participants (num_threads - 1
  // persistent workers; the thread that opens a root region is the last).
  // Waits for in-flight root regions to drain, and blocks new ones while
  // the worker set is swapped. Calling from inside a parallel region is a
  // programming error: GB_DCHECK in debug, warn-and-ignore in release
  // (the old ThreadPool deadlocked here).
  static void SetNumThreads(size_t num_threads);

  // True while the calling thread is inside a task or owns a root region.
  static bool InParallelRegion() { return RegionDepth() > 0; }

  size_t num_threads() const { return num_threads_.load(std::memory_order_acquire); }

  ArenaCounters counters() const;

  void CountInlineRun() { inline_runs_.fetch_add(1, std::memory_order_relaxed); }

  // True when forking would be useful for the calling thread right now:
  // it is attached, the arena is parallel, and its deque has been drained
  // (by thieves or by itself). The lazy-binary-splitting trigger.
  bool ShouldSplit() const {
    const arena_internal::WorkerSlot* slot = TlsSlot();
    return slot != nullptr && slot->deque.Empty() && num_threads() > 1;
  }

 private:
  friend class TaskGroup;

  // Single point of access to the calling thread's slot / region state (the
  // thread_locals below): keeps every read by-value so call sites can't
  // accidentally cache a reference across an attach/detach.
  static arena_internal::WorkerSlot* TlsSlot() { return tls_slot_; }
  static void SetTlsSlot(arena_internal::WorkerSlot* slot) { tls_slot_ = slot; }
  static int RegionDepth() { return region_depth_; }
  static void AdjustRegionDepth(int delta) { region_depth_ += delta; }

  TaskArena();
  ~TaskArena();

  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;

  void ResizeLocked(size_t num_threads);
  void StopWorkersLocked();
  void WorkerLoop(arena_internal::WorkerSlot* slot);

  // Claims a free slot for the calling thread (nullptr when the table is
  // full). Pairs with ReleaseSlot.
  arena_internal::WorkerSlot* ClaimSlot();
  void ReleaseSlot(arena_internal::WorkerSlot* slot);

  // Executes a task with the region depth maintained.
  static void ExecuteTask(arena_internal::Task* task) {
    AdjustRegionDepth(1);
    task->run(task);
    AdjustRegionDepth(-1);
  }

  // Pops one task from the calling thread's own deque; nullptr if empty.
  arena_internal::Task* PopLocal(arena_internal::WorkerSlot* slot) {
    arena_internal::Task* task = slot->deque.Pop();
    if (task != nullptr) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
    }
    return task;
  }

  // One randomized sweep over every slot; nullptr when nothing was
  // stealable. The caller decides how often to retry before sleeping.
  arena_internal::Task* TrySteal(arena_internal::WorkerSlot* self);

  // Push + bookkeeping + wakeup, from TaskGroup::Run.
  void OnPush(arena_internal::WorkerSlot* slot, arena_internal::Task* task) {
    slot->deque.Push(task);
    slot->forks.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_release);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
      sleep_cv_.notify_one();
    }
  }

  // ----- Priority lane -------------------------------------------------------
  // A single shared max-heap next to the per-thread deques, for work whose
  // execution order matters (async delta propagation drains high-impact
  // deltas first). Deliberately not a deque: priority tasks are few and
  // coarse (one per chunk of vertices), so one mutex is cheaper than a
  // concurrent heap — and the BSP deques stay untouched. Workers and group
  // waiters drain the lane after their own deque but *before* stealing, so
  // a queued high-priority chunk preempts random steals.
  void OnPushPriority(double priority, arena_internal::Task* task) {
    {
      std::lock_guard<std::mutex> lock(priority_mu_);
      priority_lane_.push_back({priority, task});
      std::push_heap(priority_lane_.begin(), priority_lane_.end(), PriorityBefore);
    }
    priority_pushes_.fetch_add(1, std::memory_order_relaxed);
    queued_.fetch_add(1, std::memory_order_release);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
      sleep_cv_.notify_one();
    }
  }

  // Pops the highest-priority queued task; nullptr when the lane is empty.
  arena_internal::Task* PopPriority() {
    std::lock_guard<std::mutex> lock(priority_mu_);
    if (priority_lane_.empty()) {
      return nullptr;
    }
    std::pop_heap(priority_lane_.begin(), priority_lane_.end(), PriorityBefore);
    arena_internal::Task* task = priority_lane_.back().task;
    priority_lane_.pop_back();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }

  // Blocks the calling group-waiter until new work is queued or the group
  // completes. `pending` is the group's pending counter.
  void WaitForGroupOrWork(const std::atomic<size_t>& pending) {
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_release);
    sleep_cv_.wait(lock, [&] {
      return queued_.load(std::memory_order_acquire) > 0 ||
             pending.load(std::memory_order_acquire) == 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_release);
  }

  // Wakes every sleeper (group completion can satisfy any waiter's
  // predicate, so notify_one is not enough).
  void NotifyCompletion() {
    if (sleepers_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(sleep_mu_);
      sleep_cv_.notify_all();
    }
  }

  // Root-region guard: shared side taken by every root TaskGroup, unique
  // side by SetNumThreads. This is what makes the resize race-free: the
  // worker set cannot be swapped while any thread is inside a region.
  std::shared_mutex resize_mu_;

  std::atomic<size_t> num_threads_{1};
  std::vector<std::thread> workers_;
  arena_internal::WorkerSlot slots_[kMaxSlots];

  // Exact count of queued (pushed, not yet taken) tasks across all deques;
  // the sleep predicate.
  std::atomic<int64_t> queued_{0};
  std::atomic<size_t> sleepers_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  std::atomic<uint64_t> inline_runs_{0};

  // Priority lane state. `queued_` counts lane entries too, so the sleep
  // predicate and the steal-retry loops see them without new plumbing.
  struct PriorityEntry {
    double priority;
    arena_internal::Task* task;
  };
  static bool PriorityBefore(const PriorityEntry& a, const PriorityEntry& b) {
    return a.priority < b.priority;  // max-heap on priority
  }
  std::mutex priority_mu_;
  std::vector<PriorityEntry> priority_lane_;
  std::atomic<uint64_t> priority_pushes_{0};

  // constinit + inline: the constant initializer is visible in every TU, so
  // the compiler emits direct TLS accesses instead of routing other-TU reads
  // through a lazy-init TLS wrapper function. That wrapper is what GCC's
  // -fsanitize=null instruments into bogus "load of null pointer" reports
  // (compiler-generated, so no_sanitize attributes cannot reach it).
  static constinit inline thread_local arena_internal::WorkerSlot* tls_slot_ = nullptr;
  static constinit inline thread_local uint32_t steal_seed_ = 0;
  static constinit inline thread_local int region_depth_ = 0;
};

// Fork-join task group. Create one, Run() any number of closures (from the
// creating thread or from inside tasks of the same region — lazy binary
// splitting forks from whichever thread is executing the range), then
// Wait(). The destructor waits too, so early returns cannot leak tasks.
//
// A TaskGroup constructed outside any region opens a *root region*: it
// attaches the thread to an arena slot and holds the resize guard until
// destruction. Nested groups reuse the enclosing attachment and are cheap
// (two thread-local reads).
class TaskGroup {
 public:
  TaskGroup() : arena_(TaskArena::Instance()) {
    if (TaskArena::TlsSlot() == nullptr && arena_.num_threads() > 1) {
      // Root region: block resizes, claim a slot, mark the region.
      region_lock_ = std::shared_lock<std::shared_mutex>(arena_.resize_mu_);
      slot_ = arena_.ClaimSlot();
      if (slot_ != nullptr) {
        TaskArena::SetTlsSlot(slot_);
      } else {
        region_lock_.unlock();  // table full: run inline, don't block resize
      }
      TaskArena::AdjustRegionDepth(1);
      owns_region_ = true;
    }
  }

  ~TaskGroup() {
    Wait();
    if (owns_region_) {
      if (slot_ != nullptr) {
        DrainOwnDeque();
        TaskArena::SetTlsSlot(nullptr);
        arena_.ReleaseSlot(slot_);
      }
      TaskArena::AdjustRegionDepth(-1);
    }
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Forks `fn` to run asynchronously within this group. Falls back to
  // executing inline when the arena is serial or the calling thread has no
  // slot. `fn` must stay callable until Wait() returns (the usual pattern:
  // capture locals of a frame that outlives the group).
  template <typename Fn>
  void Run(Fn&& fn) {
    arena_internal::WorkerSlot* slot = TaskArena::TlsSlot();
    if (slot == nullptr || arena_.num_threads() == 1) {
      arena_.CountInlineRun();
      TaskArena::AdjustRegionDepth(1);
      fn();
      TaskArena::AdjustRegionDepth(-1);
      return;
    }
    using Closure = ClosureTask<std::decay_t<Fn>>;
    pending_.fetch_add(1, std::memory_order_relaxed);
    arena_.OnPush(slot, new Closure(std::forward<Fn>(fn), this));
  }

  // Forks `fn` into the arena's shared priority lane: among queued priority
  // tasks, higher `priority` runs first (deque work and steals are
  // interleaved as usual — the lane orders the lane, it does not starve the
  // deques). Same lifetime contract as Run().
  template <typename Fn>
  void RunPriority(double priority, Fn&& fn) {
    arena_internal::WorkerSlot* slot = TaskArena::TlsSlot();
    if (slot == nullptr || arena_.num_threads() == 1) {
      arena_.CountInlineRun();
      TaskArena::AdjustRegionDepth(1);
      fn();
      TaskArena::AdjustRegionDepth(-1);
      return;
    }
    using Closure = ClosureTask<std::decay_t<Fn>>;
    pending_.fetch_add(1, std::memory_order_relaxed);
    arena_.OnPushPriority(priority, new Closure(std::forward<Fn>(fn), this));
  }

  // Helps execute work (own deque first, then stealing) until every task
  // forked into this group has completed.
  void Wait() {
    if (pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    arena_internal::WorkerSlot* slot = TaskArena::TlsSlot();
    while (pending_.load(std::memory_order_acquire) > 0) {
      arena_internal::Task* task =
          slot != nullptr ? arena_.PopLocal(slot) : nullptr;
      if (task == nullptr) {
        task = arena_.PopPriority();
      }
      if (task == nullptr && slot != nullptr) {
        task = arena_.TrySteal(slot);
      }
      if (task != nullptr) {
        TaskArena::ExecuteTask(task);
        continue;
      }
      // Nothing runnable here: the group's remaining tasks are executing
      // on other threads. Spin briefly for fast joins, then block until
      // new work appears or the group completes.
      for (int spin = 0; spin < 64; ++spin) {
        if (pending_.load(std::memory_order_acquire) == 0) {
          return;
        }
        if (queued_hint() > 0) {
          break;
        }
        std::this_thread::yield();
      }
      if (pending_.load(std::memory_order_acquire) > 0 && queued_hint() == 0) {
        arena_.WaitForGroupOrWork(pending_);
      }
    }
  }

 private:
  friend class TaskArena;

  template <typename Fn>
  struct ClosureTask : arena_internal::Task {
    ClosureTask(Fn f, TaskGroup* g) : fn(std::move(f)), group(g) {
      run = &ClosureTask::Invoke;
    }
    static void Invoke(arena_internal::Task* base) {
      auto* self = static_cast<ClosureTask*>(base);
      TaskGroup* group = self->group;
      self->fn();
      delete self;  // destroy before signaling: the waiter may unwind the
                    // stack the closure captured from
      group->OnTaskFinished();
    }
    Fn fn;
    TaskGroup* group;
  };

  void OnTaskFinished() {
    // The decrement releases the waiter: once pending_ hits zero, Wait()
    // returns and the group (and its stack frame) may be gone. Copy the
    // arena reference out of `this` first.
    TaskArena& arena = arena_;
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      arena.NotifyCompletion();
    }
  }

  int64_t queued_hint() const {
    return arena_.queued_.load(std::memory_order_acquire);
  }

  // Executes leftover tasks in the thread's own deque before the slot is
  // released. Leftovers belong to *other* groups (this group's tasks are
  // all done once Wait returned): a stolen task executed here may have
  // forked children that nobody popped yet. Running them is both correct
  // and required — a released slot must hand back an empty deque.
  void DrainOwnDeque() {
    arena_internal::Task* task;
    while ((task = arena_.PopLocal(slot_)) != nullptr) {
      TaskArena::ExecuteTask(task);
    }
  }

  TaskArena& arena_;
  std::atomic<size_t> pending_{0};
  std::shared_lock<std::shared_mutex> region_lock_;
  arena_internal::WorkerSlot* slot_ = nullptr;
  bool owns_region_ = false;
};

}  // namespace graphbolt

#endif  // SRC_PARALLEL_TASK_ARENA_H_
