// Mutation-stream construction following the paper's methodology (§5.1):
// load an initial fraction of the edges, then stream the remaining edges as
// additions mixed with deletions sampled from the loaded graph. Batches can
// target high- or low-out-degree vertices to reproduce the Hi/Lo workloads
// of Table 8.
#ifndef SRC_STREAM_UPDATE_STREAM_H_
#define SRC_STREAM_UPDATE_STREAM_H_

#include <cstdint>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"
#include "src/util/random.h"

namespace graphbolt {

// Result of splitting a full dataset into the initially loaded graph and the
// edges held back for streaming.
struct StreamSplit {
  EdgeList initial;
  std::vector<Edge> held_back;  // future additions, shuffled
};

// Shuffles `full` and keeps `initial_fraction` of edges as the starting
// snapshot; the rest become the addition stream. The vertex set is shared so
// streamed additions never introduce ids beyond the initial graph's range.
StreamSplit SplitForStreaming(const EdgeList& full, double initial_fraction, uint64_t seed);

// Targeting anchors the mutation *destination* — the vertex whose value the
// mutation directly impacts (§5.3B: "mutations impact vertices with high
// outgoing degree (so that changes affect more vertices)"): a high
// out-degree anchor fans its changed value out widely, a low one keeps the
// impact local.
enum class MutationTargeting {
  kUniform,     // endpoints follow the dataset's natural distribution
  kHighDegree,  // Hi workload: anchors drawn from high out-degree vertices
  kLowDegree,   // Lo workload: anchors drawn from low out-degree vertices
};

struct BatchOptions {
  size_t size = 100;
  // Fraction of mutations that are additions; the rest delete existing edges.
  double add_fraction = 0.5;
  MutationTargeting targeting = MutationTargeting::kUniform;
};

// Produces successive mutation batches. Additions come from the held-back
// stream (uniform targeting) or are synthesized against the requested degree
// class; deletions sample edges present in the current graph.
class UpdateStream {
 public:
  UpdateStream(std::vector<Edge> held_back_additions, uint64_t seed);

  // Builds the next batch against the current graph state. The batch is not
  // applied; callers pass it to MutableGraph::ApplyBatch / the engines.
  MutationBatch NextBatch(const MutableGraph& graph, const BatchOptions& options);

  size_t remaining_additions() const { return held_back_.size() - next_addition_; }

 private:
  // Uniformly samples an existing edge of `graph`; returns false if empty.
  bool SampleExistingEdge(const MutableGraph& graph, Edge* edge);

  // Samples an anchor vertex from the requested out-degree class.
  VertexId SampleAnchor(const MutableGraph& graph, MutationTargeting targeting);

  std::vector<Edge> held_back_;
  size_t next_addition_ = 0;
  Rng rng_;
};

}  // namespace graphbolt

#endif  // SRC_STREAM_UPDATE_STREAM_H_
