#include "src/stream/update_stream.h"

#include <algorithm>

#include "src/util/logging.h"

namespace graphbolt {

StreamSplit SplitForStreaming(const EdgeList& full, double initial_fraction, uint64_t seed) {
  GB_CHECK(initial_fraction > 0.0 && initial_fraction <= 1.0)
      << "initial_fraction must be in (0, 1]";
  StreamSplit split;
  std::vector<Edge> edges = full.edges();
  Rng rng(seed);
  // Fisher-Yates shuffle with our deterministic generator.
  for (size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.NextBounded(i)]);
  }
  const size_t keep = std::max<size_t>(1, static_cast<size_t>(
                                              static_cast<double>(edges.size()) * initial_fraction));
  split.initial.set_num_vertices(full.num_vertices());
  split.initial.edges().assign(edges.begin(), edges.begin() + std::min(keep, edges.size()));
  split.held_back.assign(edges.begin() + std::min(keep, edges.size()), edges.end());
  return split;
}

UpdateStream::UpdateStream(std::vector<Edge> held_back_additions, uint64_t seed)
    : held_back_(std::move(held_back_additions)), rng_(seed) {}

bool UpdateStream::SampleExistingEdge(const MutableGraph& graph, Edge* edge) {
  const EdgeIndex num_edges = graph.num_edges();
  if (num_edges == 0) {
    return false;
  }
  const EdgeIndex pick = rng_.NextBounded(num_edges);
  // Locate the source vertex owning rank `pick` via binary search on the
  // cumulative out-degree array (slack segments are not contiguous across
  // vertices, so arena offsets no longer double as edge ranks).
  const auto& prefix = graph.out().DegreePrefix();
  auto it = std::upper_bound(prefix.begin(), prefix.end(), pick);
  const VertexId src = static_cast<VertexId>((it - prefix.begin()) - 1);
  const EdgeIndex slot = pick - prefix[src];
  edge->src = src;
  edge->dst = graph.out().Neighbors(src)[slot];
  edge->weight = graph.out().Weights(src)[slot];
  return true;
}

VertexId UpdateStream::SampleAnchor(const MutableGraph& graph, MutationTargeting targeting) {
  const VertexId n = graph.num_vertices();
  if (targeting == MutationTargeting::kUniform) {
    return static_cast<VertexId>(rng_.NextBounded(n));
  }
  // Rejection-sample a vertex from the requested out-degree class. The
  // thresholds (4x / 0.5x the average) cleanly separate hubs from the tail
  // on skewed graphs.
  const double avg = static_cast<double>(graph.num_edges()) / std::max<VertexId>(1, n);
  const size_t hi_threshold = static_cast<size_t>(avg * 4.0) + 1;
  const size_t lo_threshold = static_cast<size_t>(avg * 0.5);
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const auto v = static_cast<VertexId>(rng_.NextBounded(n));
    const size_t degree = graph.OutDegree(v);
    if (targeting == MutationTargeting::kHighDegree && degree >= hi_threshold) {
      return v;
    }
    if (targeting == MutationTargeting::kLowDegree && degree <= lo_threshold) {
      return v;
    }
  }
  return static_cast<VertexId>(rng_.NextBounded(n));  // fallback: uniform
}

MutationBatch UpdateStream::NextBatch(const MutableGraph& graph, const BatchOptions& options) {
  MutationBatch batch;
  batch.reserve(options.size);
  const VertexId n = graph.num_vertices();
  GB_CHECK(n >= 2) << "graph too small to mutate";

  for (size_t i = 0; i < options.size; ++i) {
    const bool is_add = rng_.NextDouble() < options.add_fraction;
    if (is_add) {
      if (options.targeting == MutationTargeting::kUniform && next_addition_ < held_back_.size()) {
        const Edge& e = held_back_[next_addition_++];
        batch.push_back(EdgeMutation::Add(e.src, e.dst, e.weight));
        continue;
      }
      // Synthesize an addition impacting an anchor in the requested
      // out-degree class: the anchor is the destination, whose changed
      // value then fans out over its out-edges.
      const VertexId dst = SampleAnchor(graph, options.targeting);
      VertexId src = static_cast<VertexId>(rng_.NextBounded(n));
      for (int attempt = 0; attempt < 64 && (src == dst || graph.HasEdge(src, dst)); ++attempt) {
        src = static_cast<VertexId>(rng_.NextBounded(n));
      }
      if (src == dst) {
        continue;
      }
      batch.push_back(EdgeMutation::Add(src, dst, kDefaultWeight));
    } else {
      Edge victim;
      if (options.targeting == MutationTargeting::kUniform) {
        if (!SampleExistingEdge(graph, &victim)) {
          continue;
        }
      } else {
        // Delete an in-edge of an anchor in the requested degree class.
        const VertexId dst = SampleAnchor(graph, options.targeting);
        const auto in_nbrs = graph.InNeighbors(dst);
        if (in_nbrs.empty()) {
          if (!SampleExistingEdge(graph, &victim)) {
            continue;
          }
        } else {
          victim.src = in_nbrs[rng_.NextBounded(in_nbrs.size())];
          victim.dst = dst;
        }
      }
      batch.push_back(EdgeMutation::Delete(victim.src, victim.dst));
    }
  }
  return batch;
}

}  // namespace graphbolt
