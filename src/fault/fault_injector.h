// Deterministic, site-based fault injection for the streaming pipeline.
//
// A FaultInjector is a registry of named injection sites (worker kill,
// artificial queue-full, WAL serialization failure, checkpoint write
// failure, torn checkpoint). Production code marks each site with
// GB_FAULT_POINT(injector, site); tests arm sites either one-shot ("fire on
// the nth hit") or probabilistically from a seeded per-site RNG, so an
// entire fault matrix replays identically from a single seed.
//
// Zero cost when disabled: unless the translation unit is compiled with
// GRAPHBOLT_FAULT_INJECTION=1 (the test targets set it; the library,
// benches, and examples do not), GB_FAULT_POINT expands to the literal
// `false` and the injector is never consulted — the acceptance criterion
// for bench_driver_throughput parity.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <mutex>

namespace graphbolt {

enum class FaultSite : int {
  kWorkerKill = 0,    // StreamDriver worker thread dies between batches
  kQueueFull,         // BoundedQueue::TryPush reports an artificial full
  kWalAppend,         // WAL record serialization fails (retried with backoff)
  kCheckpointWrite,   // checkpoint serialization fails before commit
  kTornCheckpoint,    // a committed checkpoint file is torn (truncated)
  kQuarantineAppend,  // dead-letter WAL append fails (batch counted dropped)
  kStageStall,        // the worker's apply stage hangs until recovery
                      // cancels it (exercises the stall watchdog)
  kNumSites,
};

inline const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kWorkerKill:
      return "worker-kill";
    case FaultSite::kQueueFull:
      return "queue-full";
    case FaultSite::kWalAppend:
      return "wal-append";
    case FaultSite::kCheckpointWrite:
      return "checkpoint-write";
    case FaultSite::kTornCheckpoint:
      return "torn-checkpoint";
    case FaultSite::kQuarantineAppend:
      return "quarantine-append";
    case FaultSite::kStageStall:
      return "stage-stall";
    default:
      return "unknown";
  }
}

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) {
    for (size_t i = 0; i < sites_.size(); ++i) {
      // splitmix64 per-site stream: the whole matrix replays from `seed`.
      sites_[i].rng_state = Mix(seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    }
  }

  // One-shot: fire for `burst` consecutive hits starting at the nth future
  // hit of `site` (nth is 1-based). Replaces any previous one-shot arm.
  void ArmOnce(FaultSite site, uint64_t nth_hit, uint64_t burst = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    Site& s = At(site);
    s.armed_at = s.hits + nth_hit;
    s.burst = burst;
  }

  // Probabilistic: every future hit of `site` fires with `probability`,
  // drawn from the site's deterministic seeded stream.
  void ArmRandom(FaultSite site, double probability) {
    std::lock_guard<std::mutex> lock(mu_);
    At(site).probability = probability;
  }

  void Disarm(FaultSite site) {
    std::lock_guard<std::mutex> lock(mu_);
    Site& s = At(site);
    s.armed_at = 0;
    s.burst = 0;
    s.probability = 0.0;
  }

  // Records a hit at `site` and decides whether the fault fires. Called by
  // GB_FAULT_POINT; thread-safe.
  bool ShouldFail(FaultSite site) {
    std::lock_guard<std::mutex> lock(mu_);
    Site& s = At(site);
    ++s.hits;
    bool fire = s.armed_at != 0 && s.hits >= s.armed_at && s.hits < s.armed_at + s.burst;
    if (!fire && s.probability > 0.0) {
      s.rng_state = Mix(s.rng_state);
      fire = static_cast<double>(s.rng_state >> 11) * 0x1.0p-53 < s.probability;
    }
    if (fire) {
      ++s.fired;
    }
    return fire;
  }

  uint64_t hits(FaultSite site) const {
    std::lock_guard<std::mutex> lock(mu_);
    return At(site).hits;
  }

  uint64_t fired(FaultSite site) const {
    std::lock_guard<std::mutex> lock(mu_);
    return At(site).fired;
  }

 private:
  struct Site {
    uint64_t hits = 0;
    uint64_t fired = 0;
    uint64_t armed_at = 0;  // 0 = no one-shot armed
    uint64_t burst = 0;
    double probability = 0.0;
    uint64_t rng_state = 0;
  };

  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Site& At(FaultSite site) { return sites_[static_cast<size_t>(site)]; }
  const Site& At(FaultSite site) const { return sites_[static_cast<size_t>(site)]; }

  mutable std::mutex mu_;
  std::array<Site, static_cast<size_t>(FaultSite::kNumSites)> sites_;
};

}  // namespace graphbolt

// The injection hook. Compiled to the literal `false` (injector untouched,
// no branch, no atomic) unless the target opts in with
// -DGRAPHBOLT_FAULT_INJECTION=1.
#if defined(GRAPHBOLT_FAULT_INJECTION) && GRAPHBOLT_FAULT_INJECTION
#define GB_FAULT_POINT(injector, site) \
  ((injector) != nullptr && (injector)->ShouldFail(site))
#else
#define GB_FAULT_POINT(injector, site) false
#endif

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
