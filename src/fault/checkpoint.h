// Checkpoint/recovery for streaming engines.
//
// A Checkpointer owns a checkpoint directory holding three kinds of files:
//
//   checkpoint-<seq>.ckpt   full engine state as of applied batch <seq>,
//                           written to a .tmp sibling and renamed into
//                           place, so a crash mid-write never corrupts a
//                           committed checkpoint (rename-on-commit);
//   journal.wal             write-ahead log of applied batches (appended by
//                           the driver immediately before each apply — see
//                           wal.h for the ordering invariant);
//   shed.wal                batches parked by the kShedToWal overflow
//                           policy or by flushes against a crashed worker,
//                           replayed at the next query barrier or recovery.
//
// Checkpoint format v2 (offsets fixed by the golden-layout tests):
//
//   @0   u64 magic "GBCKPT01"
//   @8   u32 version = 2
//   @12  u64 seq
//   @20  u64 num_vertices
//   @28  u64 num_edges
//   @36  u32 masked crc32c over bytes [0, 36)          (header section)
//   @40  num_edges * Edge (raw)
//        u32 masked crc32c over the edge bytes          (graph section)
//        u64 engine payload length
//        engine payload (SaveStateTo)
//        u32 masked crc32c over the engine payload      (engine section)
//   tail u64 footer "GBCKEND1"
//
// v1 files (version = 1, no CRCs, no engine length prefix) still load:
// the reader validates whatever integrity the format carries — envelope
// only for v1, the full checksum chain for v2 — before touching live
// state. A v2 file with any failing section is rejected exactly like a
// torn one, and RestoreLatest falls back down the keep-N chain; corruption
// is never silently replayed.
//
// Durability policy on write failure: retry with exponential backoff
// (RetryPolicy) for transient faults; ENOSPC is fatal-fast — a full disk
// does not get better inside a backoff window, so the write is abandoned
// immediately with an actionable error and a counter (the previous
// checkpoint plus the WAL still covers the state). A WAL append that
// exhausts its budget makes the driver force an immediate checkpoint,
// which supersedes the lost record.
//
// All file I/O flows through a StorageEnv (storage_env.h) so tests can
// make the disk misbehave deterministically.
#ifndef SRC_FAULT_CHECKPOINT_H_
#define SRC_FAULT_CHECKPOINT_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/streaming_engine.h"
#include "src/engine/stats.h"
#include "src/fault/fault_injector.h"
#include "src/fault/storage_env.h"
#include "src/fault/wal.h"
#include "src/graph/edge_list.h"
#include "src/graph/mutable_graph.h"
#include "src/util/crc32c.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

// Retry-with-backoff policy for the durable write paths. The backoff is
// capped at max_backoff_seconds and jittered (see util/timer.h), so a
// deep retry chain can neither wedge the worker unboundedly nor
// synchronize concurrent retriers.
struct RetryPolicy {
  int max_attempts = 3;
  double initial_backoff_seconds = 1e-4;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.25;
};

// On-disk checkpoint format constants, public so format tests can corrupt
// files at known offsets.
inline constexpr uint64_t kCheckpointMagic = 0x313054504B434247ULL;   // "GBCKPT01"
inline constexpr uint64_t kCheckpointFooter = 0x31444E454B434247ULL;  // "GBCKEND1"
inline constexpr uint32_t kCheckpointVersion = 2;
inline constexpr uint32_t kCheckpointVersionV1 = 1;  // still readable

// Engine-agnostic verdict on a checkpoint file's raw bytes. Shared by the
// runtime loader, the background scrub, and offline fsck, so "what fsck
// flags" and "what the runtime rejects" are one predicate by construction.
struct CheckpointInspection {
  bool valid = false;
  uint32_t version = 0;
  uint64_t seq = 0;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  size_t edges_offset = 0;   // offset of the raw Edge payload
  size_t engine_offset = 0;  // offset of the engine payload
  size_t engine_bytes = 0;
  std::string error;         // first failed check, for logs
};

inline CheckpointInspection InspectCheckpointBytes(const std::string& bytes) {
  CheckpointInspection out;
  constexpr size_t kFixedHeaderBytes =
      sizeof(kCheckpointMagic) + sizeof(kCheckpointVersion) + 3 * sizeof(uint64_t);
  constexpr size_t kFooterBytes = sizeof(kCheckpointFooter);
  auto fail = [&out](std::string why) {
    out.error = std::move(why);
    return out;
  };
  if (bytes.size() < kFixedHeaderBytes + kFooterBytes) {
    return fail("truncated (" + std::to_string(bytes.size()) + " bytes)");
  }
  uint64_t magic = 0;
  uint32_t version = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  std::memcpy(&out.seq, bytes.data() + 12, sizeof(out.seq));
  std::memcpy(&out.num_vertices, bytes.data() + 20, sizeof(out.num_vertices));
  std::memcpy(&out.num_edges, bytes.data() + 28, sizeof(out.num_edges));
  out.version = version;
  if (magic != kCheckpointMagic) {
    return fail("bad magic");
  }
  if (version != kCheckpointVersion && version != kCheckpointVersionV1) {
    return fail("format version " + std::to_string(version) + " unsupported");
  }
  uint64_t footer = 0;
  std::memcpy(&footer, bytes.data() + bytes.size() - kFooterBytes, kFooterBytes);
  if (footer != kCheckpointFooter) {
    return fail("bad footer (torn write)");
  }
  const size_t edge_bytes =
      static_cast<size_t>(out.num_edges) * sizeof(Edge);
  if (version == kCheckpointVersionV1) {
    out.edges_offset = kFixedHeaderBytes;
    if (bytes.size() < kFixedHeaderBytes + edge_bytes + kFooterBytes) {
      return fail("short edge payload");
    }
    out.engine_offset = out.edges_offset + edge_bytes;
    out.engine_bytes = bytes.size() - kFooterBytes - out.engine_offset;
    out.valid = true;
    return out;
  }
  // v2: verify the checksum chain section by section.
  if (bytes.size() < kFixedHeaderBytes + sizeof(uint32_t) + kFooterBytes) {
    return fail("truncated before header checksum");
  }
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + kFixedHeaderBytes, sizeof(stored));
  if (MaskCrc(Crc32c(bytes.data(), kFixedHeaderBytes)) != stored) {
    return fail("header checksum mismatch");
  }
  out.edges_offset = kFixedHeaderBytes + sizeof(uint32_t);
  size_t cursor = out.edges_offset;
  if (bytes.size() - cursor < edge_bytes + sizeof(uint32_t) + sizeof(uint64_t)) {
    return fail("short edge payload");
  }
  std::memcpy(&stored, bytes.data() + cursor + edge_bytes, sizeof(stored));
  if (MaskCrc(Crc32c(bytes.data() + cursor, edge_bytes)) != stored) {
    return fail("graph section checksum mismatch");
  }
  cursor += edge_bytes + sizeof(uint32_t);
  uint64_t engine_len = 0;
  std::memcpy(&engine_len, bytes.data() + cursor, sizeof(engine_len));
  cursor += sizeof(engine_len);
  if (bytes.size() - cursor < engine_len ||
      bytes.size() - cursor - engine_len != sizeof(uint32_t) + kFooterBytes) {
    return fail("engine payload length inconsistent with file size");
  }
  std::memcpy(&stored, bytes.data() + cursor + engine_len, sizeof(stored));
  if (MaskCrc(Crc32c(bytes.data() + cursor, engine_len)) != stored) {
    return fail("engine section checksum mismatch");
  }
  out.engine_offset = cursor;
  out.engine_bytes = engine_len;
  out.valid = true;
  return out;
}

// Result of one Scrub() pass over a directory's durability artifacts.
struct ScrubResult {
  uint64_t artifacts_checked = 0;
  uint64_t corruptions = 0;   // artifacts the runtime would reject
  uint64_t quarantined = 0;   // demoted (.quarantined) or healed in place
};

template <typename Engine>
class Checkpointer {
 public:
  struct Options {
    std::string directory;
    // Write a checkpoint every N applied batches (0 = only explicit
    // CheckpointNow / post-recovery checkpoints).
    uint64_t cadence_batches = 16;
    // Checkpoint files retained; older ones are pruned after each commit.
    // Keeping >1 is what makes torn-newest fallback possible.
    int keep = 2;
    RetryPolicy retry = {};
    // Storage seam; null means the real filesystem.
    StorageEnv* env = nullptr;
  };

  Checkpointer(Engine* engine, MutableGraph* graph, Options options,
               FaultInjector* injector = nullptr)
      : engine_(engine), graph_(graph), options_(std::move(options)), injector_(injector) {
    GB_CHECK(!options_.directory.empty()) << "Checkpointer needs a directory";
    GB_CHECK(options_.keep >= 1) << "Checkpointer must keep at least one checkpoint";
    env_ = options_.env ? options_.env : StorageEnv::Default();
    env_->CreateDirectories(options_.directory);
    wal_.Open(options_.directory + "/journal.wal", env_);
    shed_.Open(options_.directory + "/shed.wal", env_);
  }

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  const std::string& directory() const { return options_.directory; }
  const Options& options() const { return options_; }
  StorageEnv* env() const { return env_; }

  // ----- Write-ahead log (caller serializes, i.e. the driver's engine_mu_) --

  // Journals one applied batch, retrying with backoff on transient failure.
  // ENOSPC aborts immediately (see file header). Returns false once the
  // retry budget is exhausted or the fatal-fast path fired (caller should
  // force a checkpoint to supersede the missing record).
  bool AppendWal(uint64_t seq, const MutationBatch& batch) {
    Backoff backoff(options_.retry.initial_backoff_seconds, options_.retry.backoff_multiplier,
                    options_.retry.max_backoff_seconds);
    for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
      if (attempt > 0) {
        backoff.Sleep();
        Count(&Stats::wal_retries);
      }
      const bool injected = GB_FAULT_POINT(injector_, FaultSite::kWalAppend);
      if (!injected && wal_.Append(seq, batch)) {
        Count(&Stats::wal_appends);
        return true;
      }
      if (!injected && wal_.last_status().enospc()) {
        Count(&Stats::enospc_aborts);
        GB_LOG(kError) << "WAL " << wal_.path() << ": append for batch " << seq
                       << " hit ENOSPC — aborting without retries (a full disk "
                       << "is not transient). Free space or point "
                       << "--checkpoint-dir at a larger volume; the driver "
                       << "will force a checkpoint to cover the lost record.";
        return false;
      }
    }
    GB_LOG(kWarning) << "WAL append for batch " << seq << " failed after "
                     << options_.retry.max_attempts << " attempts";
    return false;
  }

  // Replays journal records with seq > after_seq through
  // fn(seq, MutationBatch&&). max_records bounds the replay (tests use it
  // to simulate a crash mid-recovery). When the scan stops at a torn or
  // corrupt record, the file is healed — truncated back to the last valid
  // record — so post-recovery appends extend a verifiable lineage instead
  // of landing unreachable behind garbage.
  template <typename Fn>
  size_t ReplayWal(uint64_t after_seq, Fn&& fn,
                   size_t max_records = static_cast<size_t>(-1)) {
    WalScanInfo info;
    const size_t delivered =
        wal_.Replay(after_seq, std::forward<Fn>(fn), max_records, &info);
    if (!info.clean() && max_records == static_cast<size_t>(-1)) {
      Count(&Stats::wal_corrupt_records);
      wal_.Heal();
    }
    return delivered;
  }

  // ----- Shed log (self-synchronized; producers append, barriers drain) ----

  // Parks a batch that could not be queued. Shed batches lose their place
  // in the stream order — they re-enter at the next barrier or recovery —
  // which is the documented semantic of the kShedToWal policy.
  bool AppendShed(const MutationBatch& batch) {
    std::lock_guard<std::mutex> lock(shed_mu_);
    if (!shed_.Append(++shed_seq_, batch)) {
      return false;
    }
    Count(&Stats::shed_appends);
    return true;
  }

  // Feeds every parked batch through fn(MutationBatch&&) and truncates the
  // shed log. The caller must hold the engine lock if fn applies batches;
  // shed_mu_ keeps concurrent producers' AppendShed calls out of the drain.
  template <typename Fn>
  size_t DrainShed(Fn&& fn) {
    std::lock_guard<std::mutex> lock(shed_mu_);
    const size_t drained =
        shed_.Replay(0, [&](uint64_t /*seq*/, MutationBatch&& batch) { fn(std::move(batch)); });
    shed_.Reset();
    shed_seq_ = 0;
    return drained;
  }

  // ----- Checkpoints --------------------------------------------------------

  // Cadence gate: writes a checkpoint when `seq` lands on the configured
  // cadence or when forced (lost WAL record). Returns false only when a
  // write was attempted and failed.
  bool MaybeCheckpoint(uint64_t seq, bool force = false) {
    const bool due =
        force || (options_.cadence_batches > 0 && seq % options_.cadence_batches == 0);
    if (!due) {
      return true;
    }
    return WriteCheckpoint(seq);
  }

  // Snapshots graph + engine state as of applied batch `seq`, with
  // rename-on-commit, retry-with-backoff (ENOSPC fatal-fast), retention
  // pruning, and WAL compaction (records at or before the oldest retained
  // checkpoint are dropped).
  bool WriteCheckpoint(uint64_t seq) {
    static_assert(CheckpointableEngine<Engine>,
                  "checkpointing requires Engine::SaveStateTo/LoadStateFrom");
    Timer timer;
    const std::string final_path = PathFor(seq);
    const std::string tmp_path = final_path + ".tmp";
    bool written = false;
    Backoff backoff(options_.retry.initial_backoff_seconds, options_.retry.backoff_multiplier,
                    options_.retry.max_backoff_seconds);
    for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
      if (attempt > 0) {
        backoff.Sleep();
        Count(&Stats::checkpoint_retries);
      }
      StorageStatus status;
      if (WriteCheckpointFile(tmp_path, seq, &status)) {
        written = true;
        break;
      }
      if (status.enospc()) {
        Count(&Stats::enospc_aborts);
        GB_LOG(kError) << "checkpoint " << final_path << ": write hit ENOSPC — "
                       << "abandoning without retries (a full disk is not "
                       << "transient). Free space or point --checkpoint-dir at "
                       << "a larger volume; the previous checkpoint plus the "
                       << "WAL still cover the state.";
        break;
      }
    }
    if (!written || !env_->Rename(tmp_path, final_path).ok()) {
      env_->Remove(tmp_path);
      Count(&Stats::checkpoint_failures);
      GB_LOG(kWarning) << "checkpoint " << final_path << " abandoned";
      return false;
    }
    if (GB_FAULT_POINT(injector_, FaultSite::kTornCheckpoint)) {
      // Simulate a torn committed file (e.g. power loss before the data
      // reached the platter): truncate to a third of its size. Recovery
      // must detect this and fall back to the previous checkpoint.
      const int64_t size = env_->FileSize(final_path);
      if (size > 0) {
        env_->Truncate(final_path, static_cast<uint64_t>(size) / 3);
      }
      GB_LOG(kWarning) << "FaultInjector: tore checkpoint " << final_path;
    }
    Prune();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.checkpoints_written;
      stats_.checkpoint_seconds += timer.Seconds();
      last_checkpoint_seq_ = seq;
    }
    return true;
  }

  // Seq of the most recent successfully committed checkpoint (0 if none
  // this run). Drivers use it to compact per-lane WAL lineages in step
  // with the global journal.
  uint64_t last_checkpoint_seq() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return last_checkpoint_seq_;
  }

  // Seq of the *oldest* checkpoint still on disk (0 if none). Records at
  // or below this seq can never be needed by a restore — every fallback
  // in the keep-N chain starts at least here — so lane WALs may drop
  // through it.
  uint64_t OldestRetainedCheckpointSeq() const {
    std::vector<std::pair<uint64_t, std::string>> files = ListCheckpoints();
    return files.empty() ? 0 : files.front().first;
  }

  // Restores the newest valid checkpoint into *graph_ and *engine_. Invalid
  // files (torn, truncated, wrong magic/version, failed checksum) are
  // skipped with a warning — validation happens on the raw bytes before
  // live state is touched. Returns false when no valid checkpoint exists.
  bool RestoreLatest(uint64_t* seq_out) {
    static_assert(CheckpointableEngine<Engine>,
                  "checkpointing requires Engine::SaveStateTo/LoadStateFrom");
    std::vector<std::pair<uint64_t, std::string>> files = ListCheckpoints();
    for (auto it = files.rbegin(); it != files.rend(); ++it) {
      if (LoadCheckpointFile(it->second, seq_out)) {
        return true;
      }
      GB_LOG(kWarning) << "checkpoint " << it->second
                       << " invalid (torn/corrupt/mismatched); falling back";
    }
    GB_LOG(kWarning) << "no valid checkpoint in " << options_.directory;
    return false;
  }

  // Verifies every artifact this checkpointer owns (checkpoint chain,
  // journal, shed log) the same way the runtime would, demoting corrupt
  // checkpoints to `.quarantined` siblings and healing torn/corrupt WAL
  // tails. The caller holds the journal serialization (the driver runs
  // this off quiescent ticks); shed appends are excluded via shed_mu_.
  ScrubResult Scrub() {
    ScrubResult result;
    for (const auto& [seq, path] : ListCheckpoints()) {
      ++result.artifacts_checked;
      std::string bytes;
      CheckpointInspection inspection;
      if (env_->ReadFile(path, &bytes).ok()) {
        inspection = InspectCheckpointBytes(bytes);
      } else {
        inspection.error = "unreadable";
      }
      if (!inspection.valid) {
        ++result.corruptions;
        GB_LOG(kWarning) << "scrub: checkpoint " << path << " corrupt ("
                         << inspection.error << "); quarantining";
        if (env_->Rename(path, path + ".quarantined").ok()) {
          ++result.quarantined;
        }
      }
    }
    {
      ++result.artifacts_checked;
      WalScanInfo info = wal_.Verify();
      if (!info.clean()) {
        ++result.corruptions;
        if (wal_.Heal()) {
          ++result.quarantined;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(shed_mu_);
      ++result.artifacts_checked;
      WalScanInfo info = shed_.Verify();
      if (!info.clean()) {
        ++result.corruptions;
        if (shed_.Heal()) {
          ++result.quarantined;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.scrub_passes;
      stats_.scrub_corruptions += result.corruptions;
    }
    return result;
  }

  // Adds this checkpointer's durability counters into a driver stats
  // snapshot (EngineStats carries them so they surface uniformly).
  void MergeStats(EngineStats* s) const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s->checkpoints_written += stats_.checkpoints_written;
    s->checkpoint_retries += stats_.checkpoint_retries;
    s->checkpoint_failures += stats_.checkpoint_failures;
    s->checkpoint_seconds += stats_.checkpoint_seconds;
    s->wal_appends += stats_.wal_appends;
    s->wal_retries += stats_.wal_retries;
    s->enospc_aborts += stats_.enospc_aborts;
    s->wal_corruptions_detected += stats_.wal_corrupt_records;
    s->scrub_passes += stats_.scrub_passes;
    s->scrub_corruptions += stats_.scrub_corruptions;
  }

 private:
  struct Stats {
    uint64_t checkpoints_written = 0;
    uint64_t checkpoint_retries = 0;
    uint64_t checkpoint_failures = 0;
    double checkpoint_seconds = 0.0;
    uint64_t wal_appends = 0;
    uint64_t wal_retries = 0;
    uint64_t shed_appends = 0;
    uint64_t enospc_aborts = 0;
    uint64_t wal_corrupt_records = 0;
    uint64_t scrub_passes = 0;
    uint64_t scrub_corruptions = 0;
  };

  void Count(uint64_t Stats::* field) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++(stats_.*field);
  }

  std::string PathFor(uint64_t seq) const {
    char name[64];
    std::snprintf(name, sizeof(name), "checkpoint-%020llu.ckpt",
                  static_cast<unsigned long long>(seq));
    return options_.directory + "/" + name;
  }

  // (seq, path) for every committed checkpoint file, sorted ascending.
  std::vector<std::pair<uint64_t, std::string>> ListCheckpoints() const {
    std::vector<std::pair<uint64_t, std::string>> files;
    for (const std::string& name : env_->ListDirectory(options_.directory)) {
      unsigned long long seq = 0;
      if (std::sscanf(name.c_str(), "checkpoint-%llu.ckpt", &seq) == 1 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".ckpt") {
        files.emplace_back(seq, options_.directory + "/" + name);
      }
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  bool WriteCheckpointFile(const std::string& path, uint64_t seq,
                           StorageStatus* status) {
    *status = StorageStatus::Ok();
    if (GB_FAULT_POINT(injector_, FaultSite::kCheckpointWrite)) {
      return false;  // injected serialization failure; caller retries
    }
    // Stage the whole file, checksum each section, and hand it to the env
    // as one write: a crash tears the .tmp sibling, never a committed file.
    std::string bytes;
    AppendRaw(&bytes, kCheckpointMagic);
    AppendRaw(&bytes, kCheckpointVersion);
    AppendRaw(&bytes, seq);
    const EdgeList snapshot = graph_->ToEdgeList();
    AppendRaw(&bytes, static_cast<uint64_t>(snapshot.num_vertices()));
    AppendRaw(&bytes, static_cast<uint64_t>(snapshot.num_edges()));
    AppendRaw(&bytes, MaskCrc(Crc32c(bytes.data(), bytes.size())));
    const size_t edges_begin = bytes.size();
    if (!snapshot.edges().empty()) {
      bytes.append(reinterpret_cast<const char*>(snapshot.edges().data()),
                   snapshot.edges().size() * sizeof(Edge));
    }
    AppendRaw(&bytes, MaskCrc(Crc32c(bytes.data() + edges_begin,
                                     bytes.size() - edges_begin)));
    std::ostringstream engine_stage;
    if (!engine_->SaveStateTo(engine_stage)) {
      return false;
    }
    const std::string engine_payload = std::move(engine_stage).str();
    AppendRaw(&bytes, static_cast<uint64_t>(engine_payload.size()));
    bytes.append(engine_payload);
    AppendRaw(&bytes, MaskCrc(Crc32c(engine_payload.data(), engine_payload.size())));
    AppendRaw(&bytes, kCheckpointFooter);

    auto file = env_->NewWritableFile(path, /*truncate=*/true);
    if (!file) {
      *status = StorageStatus::Eio();
      return false;
    }
    *status = file->Write(bytes.data(), bytes.size());
    if (status->ok()) {
      *status = file->Flush();
    }
    file->Close();
    return status->ok();
  }

  bool LoadCheckpointFile(const std::string& path, uint64_t* seq_out) {
    // Slurp and validate — envelope for v1, the full checksum chain for v2 —
    // before touching live state.
    std::string bytes;
    if (!env_->ReadFile(path, &bytes).ok()) {
      return false;
    }
    const CheckpointInspection inspection = InspectCheckpointBytes(bytes);
    if (!inspection.valid) {
      GB_LOG(kWarning) << "checkpoint " << path << ": " << inspection.error;
      return false;
    }
    std::vector<Edge> edges(inspection.num_edges);
    const size_t edge_bytes =
        static_cast<size_t>(inspection.num_edges) * sizeof(Edge);
    if (edge_bytes > 0) {
      std::memcpy(edges.data(), bytes.data() + inspection.edges_offset, edge_bytes);
    }
    EdgeList snapshot(static_cast<VertexId>(inspection.num_vertices),
                      std::move(edges));
    // Envelope is intact: rebuild the graph, then the engine state. The
    // edge list was exported sorted (CSR keeps neighbor lists sorted), so
    // the rebuilt CSR iterates identically — the bitwise-recovery premise.
    *graph_ = MutableGraph(snapshot);
    std::istringstream stream(
        bytes.substr(inspection.engine_offset, inspection.engine_bytes));
    if (!engine_->LoadStateFrom(stream)) {
      GB_LOG(kWarning) << "checkpoint " << path << ": engine payload rejected";
      return false;
    }
    *seq_out = inspection.seq;
    return true;
  }

  // Removes checkpoints beyond the retention window, then compacts the WAL
  // up to the oldest retained checkpoint (records <= that seq can never be
  // needed again; records after it are kept so every retained checkpoint
  // still has its full tail).
  void Prune() {
    std::vector<std::pair<uint64_t, std::string>> files = ListCheckpoints();
    if (files.size() <= static_cast<size_t>(options_.keep)) {
      return;
    }
    const size_t drop = files.size() - static_cast<size_t>(options_.keep);
    for (size_t i = 0; i < drop; ++i) {
      env_->Remove(files[i].second);
    }
    wal_.DropThrough(files[drop].first);
  }

  template <typename V>
  static void AppendRaw(std::string* out, const V& value) {
    out->append(reinterpret_cast<const char*>(&value), sizeof(V));
  }

  Engine* engine_;
  MutableGraph* graph_;
  const Options options_;
  FaultInjector* injector_;
  StorageEnv* env_ = nullptr;
  WriteAheadLog wal_;

  std::mutex shed_mu_;
  WriteAheadLog shed_;
  uint64_t shed_seq_ = 0;

  mutable std::mutex stats_mu_;
  Stats stats_;
  uint64_t last_checkpoint_seq_ = 0;
};

}  // namespace graphbolt

#endif  // SRC_FAULT_CHECKPOINT_H_
