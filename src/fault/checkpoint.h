// Checkpoint/recovery for streaming engines.
//
// A Checkpointer owns a checkpoint directory holding three kinds of files:
//
//   checkpoint-<seq>.ckpt   full engine state as of applied batch <seq>,
//                           written to a .tmp sibling and renamed into
//                           place, so a crash mid-write never corrupts a
//                           committed checkpoint (rename-on-commit);
//   journal.wal             write-ahead log of applied batches (appended by
//                           the driver immediately before each apply — see
//                           wal.h for the ordering invariant);
//   shed.wal                batches parked by the kShedToWal overflow
//                           policy or by flushes against a crashed worker,
//                           replayed at the next query barrier or recovery.
//
// A checkpoint file is self-validating: fixed magic + version header, the
// graph snapshot (edge list), the engine payload (SaveStateTo), and a
// footer magic. RestoreLatest validates magic/version/footer on the raw
// bytes *before* touching live state, so a torn or truncated file is
// skipped with a warning and recovery falls back to the next-newest
// checkpoint — never UB, never a half-clobbered engine.
//
// Durability policy on write failure: retry with exponential backoff
// (RetryPolicy); a checkpoint that still fails is abandoned (the previous
// checkpoint plus the WAL still covers the state), while a WAL append that
// still fails makes the driver force an immediate checkpoint, which
// supersedes the lost record.
#ifndef SRC_FAULT_CHECKPOINT_H_
#define SRC_FAULT_CHECKPOINT_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/streaming_engine.h"
#include "src/engine/stats.h"
#include "src/fault/fault_injector.h"
#include "src/fault/wal.h"
#include "src/graph/edge_list.h"
#include "src/graph/mutable_graph.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

// Retry-with-backoff policy for the durable write paths. The backoff is
// capped at max_backoff_seconds and jittered (see util/timer.h), so a
// deep retry chain can neither wedge the worker unboundedly nor
// synchronize concurrent retriers.
struct RetryPolicy {
  int max_attempts = 3;
  double initial_backoff_seconds = 1e-4;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.25;
};

// On-disk checkpoint format constants, public so format tests can corrupt
// files at known offsets.
inline constexpr uint64_t kCheckpointMagic = 0x313054504B434247ULL;   // "GBCKPT01"
inline constexpr uint64_t kCheckpointFooter = 0x31444E454B434247ULL;  // "GBCKEND1"
inline constexpr uint32_t kCheckpointVersion = 1;

template <typename Engine>
class Checkpointer {
 public:
  struct Options {
    std::string directory;
    // Write a checkpoint every N applied batches (0 = only explicit
    // CheckpointNow / post-recovery checkpoints).
    uint64_t cadence_batches = 16;
    // Checkpoint files retained; older ones are pruned after each commit.
    // Keeping >1 is what makes torn-newest fallback possible.
    int keep = 2;
    RetryPolicy retry = {};
  };

  Checkpointer(Engine* engine, MutableGraph* graph, Options options,
               FaultInjector* injector = nullptr)
      : engine_(engine), graph_(graph), options_(std::move(options)), injector_(injector) {
    GB_CHECK(!options_.directory.empty()) << "Checkpointer needs a directory";
    GB_CHECK(options_.keep >= 1) << "Checkpointer must keep at least one checkpoint";
    std::error_code ec;
    std::filesystem::create_directories(options_.directory, ec);
    wal_.Open(options_.directory + "/journal.wal");
    shed_.Open(options_.directory + "/shed.wal");
  }

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  const std::string& directory() const { return options_.directory; }
  const Options& options() const { return options_; }

  // ----- Write-ahead log (caller serializes, i.e. the driver's engine_mu_) --

  // Journals one applied batch, retrying with backoff on failure. Returns
  // false once the retry budget is exhausted (caller should force a
  // checkpoint to supersede the missing record).
  bool AppendWal(uint64_t seq, const MutationBatch& batch) {
    Backoff backoff(options_.retry.initial_backoff_seconds, options_.retry.backoff_multiplier,
                    options_.retry.max_backoff_seconds);
    for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
      if (attempt > 0) {
        backoff.Sleep();
        Count(&Stats::wal_retries);
      }
      const bool injected = GB_FAULT_POINT(injector_, FaultSite::kWalAppend);
      if (!injected && wal_.Append(seq, batch)) {
        Count(&Stats::wal_appends);
        return true;
      }
    }
    GB_LOG(kWarning) << "WAL append for batch " << seq << " failed after "
                     << options_.retry.max_attempts << " attempts";
    return false;
  }

  // Replays journal records with seq > after_seq through
  // fn(seq, MutationBatch&&). max_records bounds the replay (tests use it
  // to simulate a crash mid-recovery).
  template <typename Fn>
  size_t ReplayWal(uint64_t after_seq, Fn&& fn,
                   size_t max_records = static_cast<size_t>(-1)) const {
    return wal_.Replay(after_seq, std::forward<Fn>(fn), max_records);
  }

  // ----- Shed log (self-synchronized; producers append, barriers drain) ----

  // Parks a batch that could not be queued. Shed batches lose their place
  // in the stream order — they re-enter at the next barrier or recovery —
  // which is the documented semantic of the kShedToWal policy.
  bool AppendShed(const MutationBatch& batch) {
    std::lock_guard<std::mutex> lock(shed_mu_);
    if (!shed_.Append(++shed_seq_, batch)) {
      return false;
    }
    Count(&Stats::shed_appends);
    return true;
  }

  // Feeds every parked batch through fn(MutationBatch&&) and truncates the
  // shed log. The caller must hold the engine lock if fn applies batches;
  // shed_mu_ keeps concurrent producers' AppendShed calls out of the drain.
  template <typename Fn>
  size_t DrainShed(Fn&& fn) {
    std::lock_guard<std::mutex> lock(shed_mu_);
    const size_t drained =
        shed_.Replay(0, [&](uint64_t /*seq*/, MutationBatch&& batch) { fn(std::move(batch)); });
    shed_.Reset();
    shed_seq_ = 0;
    return drained;
  }

  // ----- Checkpoints --------------------------------------------------------

  // Cadence gate: writes a checkpoint when `seq` lands on the configured
  // cadence or when forced (lost WAL record). Returns false only when a
  // write was attempted and failed.
  bool MaybeCheckpoint(uint64_t seq, bool force = false) {
    const bool due =
        force || (options_.cadence_batches > 0 && seq % options_.cadence_batches == 0);
    if (!due) {
      return true;
    }
    return WriteCheckpoint(seq);
  }

  // Snapshots graph + engine state as of applied batch `seq`, with
  // rename-on-commit, retry-with-backoff, retention pruning, and WAL
  // compaction (records at or before the oldest retained checkpoint are
  // dropped).
  bool WriteCheckpoint(uint64_t seq) {
    static_assert(CheckpointableEngine<Engine>,
                  "checkpointing requires Engine::SaveStateTo/LoadStateFrom");
    Timer timer;
    const std::string final_path = PathFor(seq);
    const std::string tmp_path = final_path + ".tmp";
    bool written = false;
    Backoff backoff(options_.retry.initial_backoff_seconds, options_.retry.backoff_multiplier,
                    options_.retry.max_backoff_seconds);
    for (int attempt = 0; attempt < options_.retry.max_attempts; ++attempt) {
      if (attempt > 0) {
        backoff.Sleep();
        Count(&Stats::checkpoint_retries);
      }
      if (WriteCheckpointFile(tmp_path, seq)) {
        written = true;
        break;
      }
    }
    if (!written || std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      Count(&Stats::checkpoint_failures);
      GB_LOG(kWarning) << "checkpoint " << final_path << " abandoned after "
                       << options_.retry.max_attempts << " attempts";
      return false;
    }
    if (GB_FAULT_POINT(injector_, FaultSite::kTornCheckpoint)) {
      // Simulate a torn committed file (e.g. power loss before the data
      // reached the platter): truncate to a third of its size. Recovery
      // must detect this and fall back to the previous checkpoint.
      std::error_code ec;
      const auto size = std::filesystem::file_size(final_path, ec);
      if (!ec) {
        std::filesystem::resize_file(final_path, size / 3, ec);
      }
      GB_LOG(kWarning) << "FaultInjector: tore checkpoint " << final_path;
    }
    Prune();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.checkpoints_written;
      stats_.checkpoint_seconds += timer.Seconds();
    }
    return true;
  }

  // Restores the newest valid checkpoint into *graph_ and *engine_. Invalid
  // files (torn, truncated, wrong magic/version) are skipped with a warning
  // — validation happens on the raw bytes before live state is touched.
  // Returns false when no valid checkpoint exists.
  bool RestoreLatest(uint64_t* seq_out) {
    static_assert(CheckpointableEngine<Engine>,
                  "checkpointing requires Engine::SaveStateTo/LoadStateFrom");
    std::vector<std::pair<uint64_t, std::string>> files = ListCheckpoints();
    for (auto it = files.rbegin(); it != files.rend(); ++it) {
      if (LoadCheckpointFile(it->second, seq_out)) {
        return true;
      }
      GB_LOG(kWarning) << "checkpoint " << it->second
                       << " invalid (torn/corrupt/mismatched); falling back";
    }
    GB_LOG(kWarning) << "no valid checkpoint in " << options_.directory;
    return false;
  }

  // Adds this checkpointer's durability counters into a driver stats
  // snapshot (EngineStats carries them so they surface uniformly).
  void MergeStats(EngineStats* s) const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s->checkpoints_written += stats_.checkpoints_written;
    s->checkpoint_retries += stats_.checkpoint_retries;
    s->checkpoint_failures += stats_.checkpoint_failures;
    s->checkpoint_seconds += stats_.checkpoint_seconds;
    s->wal_appends += stats_.wal_appends;
    s->wal_retries += stats_.wal_retries;
  }

 private:
  struct Stats {
    uint64_t checkpoints_written = 0;
    uint64_t checkpoint_retries = 0;
    uint64_t checkpoint_failures = 0;
    double checkpoint_seconds = 0.0;
    uint64_t wal_appends = 0;
    uint64_t wal_retries = 0;
    uint64_t shed_appends = 0;
  };

  void Count(uint64_t Stats::* field) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++(stats_.*field);
  }

  std::string PathFor(uint64_t seq) const {
    char name[64];
    std::snprintf(name, sizeof(name), "checkpoint-%020llu.ckpt",
                  static_cast<unsigned long long>(seq));
    return options_.directory + "/" + name;
  }

  // (seq, path) for every committed checkpoint file, sorted ascending.
  std::vector<std::pair<uint64_t, std::string>> ListCheckpoints() const {
    std::vector<std::pair<uint64_t, std::string>> files;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(options_.directory, ec)) {
      const std::string name = entry.path().filename().string();
      unsigned long long seq = 0;
      if (std::sscanf(name.c_str(), "checkpoint-%llu.ckpt", &seq) == 1 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".ckpt") {
        files.emplace_back(seq, entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  bool WriteCheckpointFile(const std::string& path, uint64_t seq) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    if (GB_FAULT_POINT(injector_, FaultSite::kCheckpointWrite)) {
      return false;  // injected serialization failure; caller retries
    }
    WriteRaw(out, kCheckpointMagic);
    WriteRaw(out, kCheckpointVersion);
    WriteRaw(out, seq);
    const EdgeList snapshot = graph_->ToEdgeList();
    WriteRaw(out, static_cast<uint64_t>(snapshot.num_vertices()));
    WriteRaw(out, static_cast<uint64_t>(snapshot.num_edges()));
    if (!snapshot.edges().empty()) {
      out.write(reinterpret_cast<const char*>(snapshot.edges().data()),
                static_cast<std::streamsize>(snapshot.edges().size() * sizeof(Edge)));
    }
    if (!engine_->SaveStateTo(out)) {
      return false;
    }
    WriteRaw(out, kCheckpointFooter);
    out.flush();
    return static_cast<bool>(out);
  }

  bool LoadCheckpointFile(const std::string& path, uint64_t* seq_out) {
    // Slurp and validate the envelope before touching live state.
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return false;
    }
    std::ostringstream slurp;
    slurp << in.rdbuf();
    std::string bytes = std::move(slurp).str();
    constexpr size_t kHeaderBytes = sizeof(kCheckpointMagic) + sizeof(kCheckpointVersion) +
                                    3 * sizeof(uint64_t);
    constexpr size_t kFooterBytes = sizeof(kCheckpointFooter);
    if (bytes.size() < kHeaderBytes + kFooterBytes) {
      GB_LOG(kWarning) << "checkpoint " << path << ": truncated ("
                       << bytes.size() << " bytes)";
      return false;
    }
    uint64_t footer = 0;
    std::memcpy(&footer, bytes.data() + bytes.size() - kFooterBytes, kFooterBytes);
    std::istringstream stream(std::move(bytes));
    uint64_t magic = 0;
    uint32_t version = 0;
    uint64_t seq = 0;
    uint64_t num_vertices = 0;
    uint64_t num_edges = 0;
    ReadRaw(stream, &magic);
    ReadRaw(stream, &version);
    ReadRaw(stream, &seq);
    ReadRaw(stream, &num_vertices);
    ReadRaw(stream, &num_edges);
    if (magic != kCheckpointMagic) {
      GB_LOG(kWarning) << "checkpoint " << path << ": bad magic";
      return false;
    }
    if (version != kCheckpointVersion) {
      GB_LOG(kWarning) << "checkpoint " << path << ": format version " << version
                       << " != supported " << kCheckpointVersion;
      return false;
    }
    if (footer != kCheckpointFooter) {
      GB_LOG(kWarning) << "checkpoint " << path << ": bad footer (torn write)";
      return false;
    }
    std::vector<Edge> edges(num_edges);
    if (num_edges > 0 &&
        !stream.read(reinterpret_cast<char*>(edges.data()),
                     static_cast<std::streamsize>(num_edges * sizeof(Edge)))) {
      GB_LOG(kWarning) << "checkpoint " << path << ": short edge payload";
      return false;
    }
    EdgeList snapshot(static_cast<VertexId>(num_vertices), std::move(edges));
    // Envelope is intact: rebuild the graph, then the engine state. The
    // edge list was exported sorted (CSR keeps neighbor lists sorted), so
    // the rebuilt CSR iterates identically — the bitwise-recovery premise.
    *graph_ = MutableGraph(snapshot);
    if (!engine_->LoadStateFrom(stream)) {
      GB_LOG(kWarning) << "checkpoint " << path << ": engine payload rejected";
      return false;
    }
    *seq_out = seq;
    return true;
  }

  // Removes checkpoints beyond the retention window, then compacts the WAL
  // up to the oldest retained checkpoint (records <= that seq can never be
  // needed again; records after it are kept so every retained checkpoint
  // still has its full tail).
  void Prune() {
    std::vector<std::pair<uint64_t, std::string>> files = ListCheckpoints();
    if (files.size() <= static_cast<size_t>(options_.keep)) {
      return;
    }
    const size_t drop = files.size() - static_cast<size_t>(options_.keep);
    for (size_t i = 0; i < drop; ++i) {
      std::error_code ec;
      std::filesystem::remove(files[i].second, ec);
    }
    wal_.DropThrough(files[drop].first);
  }

  template <typename V>
  static void WriteRaw(std::ostream& out, const V& value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(V));
  }

  template <typename V>
  static void ReadRaw(std::istream& in, V* value) {
    in.read(reinterpret_cast<char*>(value), sizeof(V));
  }

  Engine* engine_;
  MutableGraph* graph_;
  const Options options_;
  FaultInjector* injector_;
  WriteAheadLog wal_;

  std::mutex shed_mu_;
  WriteAheadLog shed_;
  uint64_t shed_seq_ = 0;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace graphbolt

#endif  // SRC_FAULT_CHECKPOINT_H_
