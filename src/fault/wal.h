// A write-ahead log of applied mutation batches.
//
// The driver appends each batch under the engine mutex immediately before
// applying it, so the log's record order is the apply order by
// construction; a checkpoint taken after batch k therefore supersedes
// exactly the log prefix 1..k, and recovery is "restore checkpoint, replay
// the records with seq > k".
//
// Record layout v2 (little-endian, host byte order — the log is a crash
// artifact consumed by the same build, not an interchange format):
//
//   u32 magic "GBW2" | u64 seq | u64 count | u32 masked crc32c
//                    | count * EdgeMutation (raw)
//
// The CRC covers seq, count, and the payload, and is stored masked
// (src/util/crc32c.h) so a log full of zeros is not self-consistent. v1
// records ("GBWA", no CRC) are still replayed — pre-v2 lineages restore —
// but everything written now carries the checksum.
//
// Replay distinguishes a *torn tail* (short final record: the write in
// flight when the process died; expected, tolerated) from *corruption*
// (bad magic or CRC mismatch with bytes still after it: the disk lied).
// Both stop replay at the last intact record boundary; neither ever
// delivers a record whose checksum does not verify. Heal() truncates the
// file back to that boundary so the lineage can keep appending cleanly.
//
// All I/O flows through a StorageEnv so tests can inject disk faults; the
// default env is the real filesystem.
#ifndef SRC_FAULT_WAL_H_
#define SRC_FAULT_WAL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/storage_env.h"
#include "src/graph/mutation.h"
#include "src/util/crc32c.h"
#include "src/util/logging.h"

namespace graphbolt {

// Outcome of scanning a log file. valid_bytes is the offset just past the
// last record that verified — the truncation point for repair.
struct WalScanInfo {
  uint64_t valid_bytes = 0;
  uint64_t file_bytes = 0;
  size_t records_total = 0;   // records that verified (any seq)
  bool torn_tail = false;     // short final record — a crash artifact
  bool corrupt = false;       // bad magic / CRC mismatch — the disk lied
  bool clean() const { return !torn_tail && !corrupt; }
};

class WriteAheadLog {
 public:
  static constexpr uint32_t kRecordMagic = 0x41574247u;    // "GBWA" (v1)
  static constexpr uint32_t kRecordMagicV2 = 0x32574247u;  // "GBW2"

  WriteAheadLog() = default;
  explicit WriteAheadLog(std::string path) { Open(std::move(path)); }

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Binds the log to a file. Existing records are preserved (the append
  // stream opens in append mode on first use). A null env means the real
  // filesystem.
  void Open(std::string path, StorageEnv* env = nullptr) {
    out_.reset();
    path_ = std::move(path);
    env_ = env ? env : StorageEnv::Default();
  }

  const std::string& path() const { return path_; }
  StorageEnv* env() const { return env_ ? env_ : StorageEnv::Default(); }

  // Status of the most recent append's failing operation (ok when the last
  // append succeeded). Lets callers classify ENOSPC as fatal-fast instead
  // of retrying a full disk.
  const StorageStatus& last_status() const { return last_status_; }

  // Appends one record and flushes it to the OS. The record is staged and
  // handed to the file as a single Write so a mid-write crash tears at most
  // one record. Returns false when the file cannot be opened or the write
  // fails (nothing usable was made durable; the torn tail, if any, is
  // ignored by Replay).
  bool Append(uint64_t seq, const MutationBatch& batch) {
    if (!EnsureOpen()) {
      last_status_ = StorageStatus::Eio();
      return false;
    }
    const uint64_t count = batch.size();
    std::string record;
    record.reserve(kRecordHeaderBytes + count * sizeof(EdgeMutation));
    AppendRaw(&record, kRecordMagicV2);
    AppendRaw(&record, seq);
    AppendRaw(&record, count);
    uint32_t crc = Crc32c(&seq, sizeof(seq));
    crc = Crc32cExtend(crc, &count, sizeof(count));
    if (count > 0) {
      crc = Crc32cExtend(crc, batch.data(), count * sizeof(EdgeMutation));
    }
    AppendRaw(&record, MaskCrc(crc));
    if (count > 0) {
      record.append(reinterpret_cast<const char*>(batch.data()),
                    count * sizeof(EdgeMutation));
    }
    StorageStatus status = out_->Write(record.data(), record.size());
    if (status.ok()) {
      status = out_->Flush();
    }
    if (!status.ok()) {
      last_status_ = status;
      // Poisoned file: drop it so the next append retries from open().
      out_.reset();
      return false;
    }
    last_status_ = StorageStatus::Ok(record.size());
    return true;
  }

  // Streams every intact record with seq > after_seq through
  // fn(seq, MutationBatch&&), in file order, stopping early after
  // max_records invocations. Returns the number of records delivered.
  // A record that fails its checksum is never delivered; it (and
  // everything after it) is dropped with a warning, and `info` (optional)
  // reports where the valid prefix ends.
  template <typename Fn>
  size_t Replay(uint64_t after_seq, Fn&& fn,
                size_t max_records = static_cast<size_t>(-1),
                WalScanInfo* info = nullptr) const {
    std::string buf;
    if (!env()->ReadFile(path_, &buf).ok()) {
      if (info) *info = WalScanInfo{};
      return 0;  // no log yet — an empty tail, not an error
    }
    return ParseBuffer(buf, path_, after_seq, std::forward<Fn>(fn),
                       max_records, info);
  }

  // Scans the whole file verifying checksums without delivering batches.
  WalScanInfo Verify() const {
    WalScanInfo info;
    Replay(~uint64_t{0}, [](uint64_t, MutationBatch&&) {},
           static_cast<size_t>(-1), &info);
    return info;
  }

  // Truncates the file back to the last intact record boundary. Returns
  // true when a torn/corrupt suffix was actually cut off. Callers hold the
  // same serialization they hold for Append.
  bool Heal() {
    WalScanInfo info = Verify();
    if (info.clean() || info.valid_bytes >= info.file_bytes) {
      return false;
    }
    out_.reset();  // reopen after the truncate, not across it
    if (!env()->Truncate(path_, info.valid_bytes).ok()) {
      return false;
    }
    GB_LOG(kWarning) << "WAL " << path_ << ": healed — truncated "
                     << (info.file_bytes - info.valid_bytes)
                     << " unverifiable tail bytes at offset "
                     << info.valid_bytes;
    return true;
  }

  // Truncates the log to empty.
  void Reset() {
    out_.reset();
    auto file = env()->NewWritableFile(path_, /*truncate=*/true);
    if (file) file->Close();
  }

  // Atomically drops every record with seq <= cutoff_seq (they precede a
  // retained checkpoint) by rewriting the survivors to a temp file and
  // renaming it into place. Survivors are rewritten as v2 records, so one
  // compaction upgrades a v1 lineage. Returns false and leaves the log
  // unchanged on IO failure.
  bool DropThrough(uint64_t cutoff_seq) {
    const std::string tmp = path_ + ".tmp";
    {
      auto out = env()->NewWritableFile(tmp, /*truncate=*/true);
      if (!out) {
        return false;
      }
      bool write_ok = true;
      Replay(cutoff_seq, [&](uint64_t seq, MutationBatch&& batch) {
        std::string record;
        const uint64_t count = batch.size();
        AppendRaw(&record, kRecordMagicV2);
        AppendRaw(&record, seq);
        AppendRaw(&record, count);
        uint32_t crc = Crc32c(&seq, sizeof(seq));
        crc = Crc32cExtend(crc, &count, sizeof(count));
        if (count > 0) {
          crc = Crc32cExtend(crc, batch.data(), count * sizeof(EdgeMutation));
        }
        AppendRaw(&record, MaskCrc(crc));
        if (count > 0) {
          record.append(reinterpret_cast<const char*>(batch.data()),
                        count * sizeof(EdgeMutation));
        }
        if (!out->Write(record.data(), record.size()).ok()) {
          write_ok = false;
        }
      });
      if (!out->Flush().ok() || !write_ok) {
        out->Close();
        env()->Remove(tmp);
        return false;
      }
      out->Close();
    }
    out_.reset();
    return env()->Rename(tmp, path_).ok();
  }

 private:
  // Sanity bound for the record header: a count beyond this is corruption,
  // not a batch (the driver's gutter flushes long before 2^32 mutations).
  static constexpr uint64_t kMaxRecordMutations = uint64_t{1} << 32;
  static constexpr size_t kV1HeaderBytes =
      sizeof(uint32_t) + 2 * sizeof(uint64_t);
  static constexpr size_t kRecordHeaderBytes =
      kV1HeaderBytes + sizeof(uint32_t);

  template <typename Fn>
  static size_t ParseBuffer(const std::string& buf, const std::string& path,
                            uint64_t after_seq, Fn&& fn, size_t max_records,
                            WalScanInfo* info) {
    WalScanInfo local;
    local.file_bytes = buf.size();
    size_t delivered = 0;
    size_t offset = 0;
    while (delivered < max_records) {
      if (offset == buf.size()) {
        break;  // clean EOF
      }
      if (buf.size() - offset < sizeof(uint32_t)) {
        local.torn_tail = true;
        break;
      }
      uint32_t magic = 0;
      std::memcpy(&magic, buf.data() + offset, sizeof(magic));
      const bool v2 = magic == kRecordMagicV2;
      if (!v2 && magic != kRecordMagic) {
        local.corrupt = true;
        GB_LOG(kWarning) << "WAL " << path << ": bad record magic at offset "
                         << offset << " after " << local.records_total
                         << " intact records; stopping replay";
        break;
      }
      const size_t header_bytes = v2 ? kRecordHeaderBytes : kV1HeaderBytes;
      if (buf.size() - offset < header_bytes) {
        local.torn_tail = true;
        break;
      }
      uint64_t seq = 0;
      uint64_t count = 0;
      uint32_t stored_crc = 0;
      std::memcpy(&seq, buf.data() + offset + sizeof(uint32_t), sizeof(seq));
      std::memcpy(&count, buf.data() + offset + sizeof(uint32_t) + sizeof(seq),
                  sizeof(count));
      if (v2) {
        std::memcpy(&stored_crc, buf.data() + offset + kV1HeaderBytes,
                    sizeof(stored_crc));
      }
      if (count > kMaxRecordMutations) {
        local.corrupt = true;
        GB_LOG(kWarning) << "WAL " << path << ": implausible record count "
                         << count << " at offset " << offset
                         << "; stopping replay";
        break;
      }
      const size_t payload_bytes =
          static_cast<size_t>(count) * sizeof(EdgeMutation);
      if (buf.size() - offset - header_bytes < payload_bytes) {
        local.torn_tail = true;
        GB_LOG(kWarning) << "WAL " << path << ": torn payload at seq " << seq
                         << "; stopping replay";
        break;
      }
      const char* payload = buf.data() + offset + header_bytes;
      if (v2) {
        uint32_t crc = Crc32c(&seq, sizeof(seq));
        crc = Crc32cExtend(crc, &count, sizeof(count));
        crc = Crc32cExtend(crc, payload, payload_bytes);
        if (MaskCrc(crc) != stored_crc) {
          local.corrupt = true;
          GB_LOG(kWarning) << "WAL " << path << ": checksum mismatch at seq "
                           << seq << " (offset " << offset
                           << "); truncating replay at last valid record";
          break;
        }
      }
      offset += header_bytes + payload_bytes;
      local.valid_bytes = offset;
      ++local.records_total;
      if (seq > after_seq) {
        MutationBatch batch(count);
        if (count > 0) {
          std::memcpy(batch.data(), payload, payload_bytes);
        }
        fn(seq, std::move(batch));
        ++delivered;
      }
    }
    if (info) {
      *info = local;
    }
    return delivered;
  }

  bool EnsureOpen() {
    if (out_) {
      return true;
    }
    GB_CHECK(!path_.empty()) << "WriteAheadLog used before Open()";
    out_ = env()->NewWritableFile(path_, /*truncate=*/false);
    return out_ != nullptr;
  }

  template <typename V>
  static void AppendRaw(std::string* out, const V& value) {
    out->append(reinterpret_cast<const char*>(&value), sizeof(V));
  }

  std::string path_;
  StorageEnv* env_ = nullptr;
  std::unique_ptr<WritableFile> out_;
  StorageStatus last_status_ = StorageStatus::Ok();
};

// Scans a WAL file that nothing holds open (fsck over lane/quarantine/shed
// lineages). Missing file → zeroed info with clean()==true.
inline WalScanInfo VerifyWalFile(const std::string& path,
                                 StorageEnv* env = nullptr) {
  WriteAheadLog log;
  log.Open(path, env);
  return log.Verify();
}

}  // namespace graphbolt

#endif  // SRC_FAULT_WAL_H_
