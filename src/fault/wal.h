// A write-ahead log of applied mutation batches.
//
// The driver appends each batch under the engine mutex immediately before
// applying it, so the log's record order is the apply order by
// construction; a checkpoint taken after batch k therefore supersedes
// exactly the log prefix 1..k, and recovery is "restore checkpoint, replay
// the records with seq > k".
//
// Record layout (little-endian, host byte order — the log is a crash
// artifact consumed by the same build, not an interchange format):
//
//   u32 magic "GBWA" | u64 seq | u64 count | count * EdgeMutation (raw)
//
// Replay tolerates a torn tail: a partial or corrupt final record (the
// write that was in flight when the process died) terminates replay with a
// warning instead of failing it.
#ifndef SRC_FAULT_WAL_H_
#define SRC_FAULT_WAL_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/mutation.h"
#include "src/util/logging.h"

namespace graphbolt {

class WriteAheadLog {
 public:
  static constexpr uint32_t kRecordMagic = 0x41574247u;  // "GBWA"

  WriteAheadLog() = default;
  explicit WriteAheadLog(std::string path) { Open(std::move(path)); }

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Binds the log to a file. Existing records are preserved (the append
  // stream opens in append mode on first use).
  void Open(std::string path) {
    out_.close();
    out_.clear();
    path_ = std::move(path);
  }

  const std::string& path() const { return path_; }

  // Appends one record and flushes it to the OS. Returns false when the
  // file cannot be opened or the write fails (nothing usable was made
  // durable; the torn tail, if any, is ignored by Replay).
  bool Append(uint64_t seq, const MutationBatch& batch) {
    if (!EnsureOpen()) {
      return false;
    }
    const uint64_t count = batch.size();
    WriteRaw(out_, kRecordMagic);
    WriteRaw(out_, seq);
    WriteRaw(out_, count);
    if (count > 0) {
      out_.write(reinterpret_cast<const char*>(batch.data()),
                 static_cast<std::streamsize>(count * sizeof(EdgeMutation)));
    }
    out_.flush();
    if (!out_) {
      // Poisoned stream: drop it so the next append retries from open().
      out_.close();
      out_.clear();
      return false;
    }
    return true;
  }

  // Streams every intact record with seq > after_seq through
  // fn(seq, MutationBatch&&), in file order, stopping early after
  // max_records invocations. Returns the number of records delivered.
  template <typename Fn>
  size_t Replay(uint64_t after_seq, Fn&& fn, size_t max_records = static_cast<size_t>(-1)) const {
    std::ifstream in(path_, std::ios::binary);
    if (!in) {
      return 0;  // no log yet — an empty tail, not an error
    }
    size_t delivered = 0;
    while (delivered < max_records) {
      uint32_t magic = 0;
      uint64_t seq = 0;
      uint64_t count = 0;
      if (!ReadRaw(in, &magic)) {
        break;  // clean EOF or torn header
      }
      if (magic != kRecordMagic || !ReadRaw(in, &seq) || !ReadRaw(in, &count) ||
          count > kMaxRecordMutations) {
        GB_LOG(kWarning) << "WAL " << path_ << ": torn/corrupt record after "
                         << delivered << " replayed records; stopping replay";
        break;
      }
      MutationBatch batch(count);
      if (count > 0 &&
          !in.read(reinterpret_cast<char*>(batch.data()),
                   static_cast<std::streamsize>(count * sizeof(EdgeMutation)))) {
        GB_LOG(kWarning) << "WAL " << path_ << ": torn payload at seq " << seq
                         << "; stopping replay";
        break;
      }
      if (seq > after_seq) {
        fn(seq, std::move(batch));
        ++delivered;
      }
    }
    return delivered;
  }

  // Truncates the log to empty.
  void Reset() {
    out_.close();
    out_.clear();
    std::ofstream(path_, std::ios::binary | std::ios::trunc);
  }

  // Atomically drops every record with seq <= cutoff_seq (they precede a
  // retained checkpoint) by rewriting the survivors to a temp file and
  // renaming it into place. Returns false and leaves the log unchanged on
  // IO failure.
  bool DropThrough(uint64_t cutoff_seq) {
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        return false;
      }
      Replay(cutoff_seq, [&](uint64_t seq, MutationBatch&& batch) {
        WriteRaw(out, kRecordMagic);
        WriteRaw(out, seq);
        WriteRaw(out, static_cast<uint64_t>(batch.size()));
        if (!batch.empty()) {
          out.write(reinterpret_cast<const char*>(batch.data()),
                    static_cast<std::streamsize>(batch.size() * sizeof(EdgeMutation)));
        }
      });
      out.flush();
      if (!out) {
        return false;
      }
    }
    out_.close();
    out_.clear();
    return std::rename(tmp.c_str(), path_.c_str()) == 0;
  }

 private:
  // Sanity bound for the record header: a count beyond this is corruption,
  // not a batch (the driver's gutter flushes long before 2^32 mutations).
  static constexpr uint64_t kMaxRecordMutations = uint64_t{1} << 32;

  bool EnsureOpen() {
    if (out_.is_open()) {
      return true;
    }
    GB_CHECK(!path_.empty()) << "WriteAheadLog used before Open()";
    out_.open(path_, std::ios::binary | std::ios::app);
    return static_cast<bool>(out_);
  }

  template <typename V>
  static void WriteRaw(std::ostream& out, const V& value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(V));
  }

  template <typename V>
  static bool ReadRaw(std::istream& in, V* value) {
    return static_cast<bool>(in.read(reinterpret_cast<char*>(value), sizeof(V)));
  }

  std::string path_;
  std::ofstream out_;
};

}  // namespace graphbolt

#endif  // SRC_FAULT_WAL_H_
