#pragma once

// StorageEnv — the seam between the durability layer and the filesystem.
//
// Every byte the durability layer persists (WAL records, checkpoint files,
// the quarantine and shed logs) flows through a StorageEnv so that tests can
// substitute a FaultyEnv and make the disk misbehave deterministically:
// EIO, ENOSPC, short writes, read-side bit flips — and, for the
// out-of-process crash harness, SIGKILL raised from *inside* a write or a
// rename, which is how a real power-cut tears a record in half.
//
// The contract is deliberately tiny (append-or-truncate writable files,
// whole-file reads, rename/remove/truncate): it is exactly what the
// durability layer needs and nothing more, which keeps the fault matrix
// enumerable. The default env is the real filesystem; every constructor in
// the durability layer defaults to it, so production call sites never name
// an env.
//
// Thread safety: distinct WritableFiles may be used from distinct threads;
// a single WritableFile is externally serialized (the WAL holds its own
// mutex). FaultyEnv's fault arms/counters are internally locked.

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "src/util/logging.h"

namespace graphbolt {

// Outcome of a storage operation. ENOSPC is distinguished from generic I/O
// failure because callers classify it differently: a full disk is not a
// transient fault, and retry-with-backoff against it only burns the budget
// (see Checkpointer::AppendWal).
struct StorageStatus {
  enum class Code : uint8_t { kOk = 0, kEio = 1, kEnospc = 2 };

  Code code = Code::kOk;
  // Bytes actually persisted by a Write; < requested on a short write.
  uint64_t bytes_written = 0;

  bool ok() const { return code == Code::kOk; }
  bool enospc() const { return code == Code::kEnospc; }

  const char* name() const {
    switch (code) {
      case Code::kOk: return "ok";
      case Code::kEio: return "EIO";
      case Code::kEnospc: return "ENOSPC";
    }
    return "?";
  }

  static StorageStatus Ok(uint64_t n = 0) { return {Code::kOk, n}; }
  static StorageStatus Eio(uint64_t n = 0) { return {Code::kEio, n}; }
  static StorageStatus Enospc(uint64_t n = 0) { return {Code::kEnospc, n}; }
};

// A sequentially writable file. Close() is idempotent; the destructor
// closes. Write() reports short writes via bytes_written rather than
// pretending atomicity the filesystem never promised.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual StorageStatus Write(const void* data, size_t n) = 0;
  virtual StorageStatus Flush() = 0;
  virtual void Close() = 0;
};

class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  // Opens `path` for writing: append mode when `truncate` is false (the WAL
  // lineage), truncated when true (checkpoint temp files, WAL reset).
  // Returns nullptr on open failure.
  virtual std::unique_ptr<WritableFile> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  // Slurps the whole file into `*out`. Returns kEio if absent/unreadable.
  // Durability artifacts are bounded (WALs are pruned at checkpoint
  // boundaries), so whole-file reads keep the CRC scan trivially correct —
  // there is no partially-validated window.
  virtual StorageStatus ReadFile(const std::string& path, std::string* out) = 0;

  virtual StorageStatus Rename(const std::string& from,
                               const std::string& to) = 0;
  virtual StorageStatus Remove(const std::string& path) = 0;
  virtual StorageStatus Truncate(const std::string& path, uint64_t size) = 0;

  // Size in bytes, or -1 when absent.
  virtual int64_t FileSize(const std::string& path) = 0;

  virtual bool CreateDirectories(const std::string& path) = 0;

  // Directory entries (file names, not paths), unsorted. Empty when absent.
  virtual std::vector<std::string> ListDirectory(const std::string& path) = 0;

  // The real filesystem. Never deleted; safe to use during static teardown.
  static StorageEnv* Default();
};

namespace storage_detail {

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(const std::string& path, bool truncate)
      : out_(path, truncate ? (std::ios::binary | std::ios::trunc)
                            : (std::ios::binary | std::ios::app)) {}

  StorageStatus Write(const void* data, size_t n) override {
    if (!out_.good()) return StorageStatus::Eio();
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    if (!out_.good()) return StorageStatus::Eio();
    return StorageStatus::Ok(n);
  }

  StorageStatus Flush() override {
    out_.flush();
    return out_.good() ? StorageStatus::Ok() : StorageStatus::Eio();
  }

  void Close() override {
    if (out_.is_open()) out_.close();
  }

  bool opened() const { return out_.is_open(); }

 private:
  std::ofstream out_;
};

class PosixEnv final : public StorageEnv {
 public:
  std::unique_ptr<WritableFile> NewWritableFile(const std::string& path,
                                                bool truncate) override {
    auto file = std::make_unique<PosixWritableFile>(path, truncate);
    if (!file->opened()) return nullptr;
    return file;
  }

  StorageStatus ReadFile(const std::string& path, std::string* out) override {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return StorageStatus::Eio();
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) return StorageStatus::Eio();
    *out = std::move(buf).str();
    return StorageStatus::Ok(out->size());
  }

  StorageStatus Rename(const std::string& from,
                       const std::string& to) override {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    return ec ? StorageStatus::Eio() : StorageStatus::Ok();
  }

  StorageStatus Remove(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return ec ? StorageStatus::Eio() : StorageStatus::Ok();
  }

  StorageStatus Truncate(const std::string& path, uint64_t size) override {
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    return ec ? StorageStatus::Eio() : StorageStatus::Ok();
  }

  int64_t FileSize(const std::string& path) override {
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    return ec ? -1 : static_cast<int64_t>(size);
  }

  bool CreateDirectories(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    return !ec;
  }

  std::vector<std::string> ListDirectory(const std::string& path) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (auto it = std::filesystem::directory_iterator(path, ec);
         !ec && it != std::filesystem::directory_iterator(); ++it) {
      names.push_back(it->path().filename().string());
    }
    return names;
  }
};

}  // namespace storage_detail

inline StorageEnv* StorageEnv::Default() {
  // Leaked on purpose: durability objects with static storage duration may
  // still write during teardown.
  static StorageEnv* env = new storage_detail::PosixEnv();
  return env;
}

// ---------------------------------------------------------------------------
// FaultyEnv — deterministic misbehaving storage for tests.
//
// Wraps a base env (the real filesystem by default) and injects faults at
// byte granularity. All arms are one-shot-per-trigger and counted, so a test
// can assert a fault actually fired. Write numbering is global across all
// files opened through this env (1-based, in open/write order), which is
// what lets the crash harness say "die on the 17th durable write of the run"
// and land inside whatever artifact that happens to be — WAL append,
// checkpoint body, lane lineage.
// ---------------------------------------------------------------------------
class FaultyEnv final : public StorageEnv {
 public:
  explicit FaultyEnv(StorageEnv* base = nullptr, uint64_t seed = 0)
      : base_(base ? base : StorageEnv::Default()), seed_(seed) {}

  // --- fault arms (all optional, all deterministic) ---

  // The nth (1-based, counted globally) Write returns `status` having
  // persisted only `persist_fraction` of its payload.
  void FailWriteAt(uint64_t nth, StorageStatus::Code code,
                   double persist_fraction = 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_write_at_ = nth;
    fail_write_code_ = code;
    fail_write_fraction_ = persist_fraction;
  }

  // Every Write from the nth on returns `code` (a disk that stays full).
  void FailWritesFrom(uint64_t nth, StorageStatus::Code code) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_writes_from_ = nth;
    fail_write_code_ = code;
  }

  // The nth Write persists only the first half of its payload, then the
  // process dies by SIGKILL — a torn tail the way a power cut makes one.
  void KillAtWrite(uint64_t nth) {
    std::lock_guard<std::mutex> lock(mu_);
    kill_at_write_ = nth;
  }

  // The nth Rename kills the process: before executing it when `nth` is
  // odd (temp file orphaned, commit never happened), after when even (the
  // commit landed but the process never learned).
  void KillAtRename(uint64_t nth) {
    std::lock_guard<std::mutex> lock(mu_);
    kill_at_rename_ = nth;
  }

  // ReadFile on a path containing `path_substring` gets `xor_mask` XORed
  // into the byte at `offset` (mod file size) — a read-side bit flip.
  void CorruptReadAt(std::string path_substring, uint64_t offset,
                     uint8_t xor_mask) {
    std::lock_guard<std::mutex> lock(mu_);
    corrupt_read_substr_ = std::move(path_substring);
    corrupt_read_offset_ = offset;
    corrupt_read_mask_ = xor_mask;
  }

  // ReadFile on a matching path fails outright.
  void FailReadsMatching(std::string path_substring) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_read_substr_ = std::move(path_substring);
  }

  void ClearFaults() {
    std::lock_guard<std::mutex> lock(mu_);
    fail_write_at_ = 0;
    fail_writes_from_ = 0;
    kill_at_write_ = 0;
    kill_at_rename_ = 0;
    corrupt_read_substr_.clear();
    fail_read_substr_.clear();
  }

  // --- observability ---
  uint64_t writes_seen() const { return writes_seen_.load(); }
  uint64_t renames_seen() const { return renames_seen_.load(); }
  uint64_t faults_fired() const { return faults_fired_.load(); }
  uint64_t seed() const { return seed_; }

  // --- test helper: flip a byte *on disk* (bypasses the env) ---
  static bool FlipByteOnDisk(const std::string& path, uint64_t offset,
                             uint8_t xor_mask) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!f.is_open()) return false;
    f.seekg(0, std::ios::end);
    const auto size = static_cast<uint64_t>(f.tellg());
    if (size == 0) return false;
    offset %= size;
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(static_cast<uint8_t>(byte) ^ xor_mask);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
    f.flush();
    return f.good();
  }

  // --- StorageEnv ---
  std::unique_ptr<WritableFile> NewWritableFile(const std::string& path,
                                                bool truncate) override;

  StorageStatus ReadFile(const std::string& path, std::string* out) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!fail_read_substr_.empty() &&
          path.find(fail_read_substr_) != std::string::npos) {
        faults_fired_.fetch_add(1);
        return StorageStatus::Eio();
      }
    }
    StorageStatus status = base_->ReadFile(path, out);
    if (!status.ok()) return status;
    std::lock_guard<std::mutex> lock(mu_);
    if (!corrupt_read_substr_.empty() && !out->empty() &&
        path.find(corrupt_read_substr_) != std::string::npos) {
      const uint64_t at = corrupt_read_offset_ % out->size();
      (*out)[at] = static_cast<char>(static_cast<uint8_t>((*out)[at]) ^
                                     corrupt_read_mask_);
      faults_fired_.fetch_add(1);
    }
    return status;
  }

  StorageStatus Rename(const std::string& from,
                       const std::string& to) override {
    const uint64_t n = renames_seen_.fetch_add(1) + 1;
    uint64_t kill_at = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      kill_at = kill_at_rename_;
    }
    if (kill_at != 0 && n == kill_at) {
      if (n % 2 == 0) base_->Rename(from, to);
      std::raise(SIGKILL);
    }
    return base_->Rename(from, to);
  }

  StorageStatus Remove(const std::string& path) override {
    return base_->Remove(path);
  }
  StorageStatus Truncate(const std::string& path, uint64_t size) override {
    return base_->Truncate(path, size);
  }
  int64_t FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  bool CreateDirectories(const std::string& path) override {
    return base_->CreateDirectories(path);
  }
  std::vector<std::string> ListDirectory(const std::string& path) override {
    return base_->ListDirectory(path);
  }

 private:
  friend class FaultyWritableFile;

  // Called by FaultyWritableFile before each underlying write. Returns the
  // action to take for this (globally numbered) write.
  struct WriteDecision {
    bool fail = false;
    StorageStatus::Code code = StorageStatus::Code::kEio;
    double persist_fraction = 0.0;
    bool kill = false;
  };

  WriteDecision DecideWrite() {
    const uint64_t n = writes_seen_.fetch_add(1) + 1;
    std::lock_guard<std::mutex> lock(mu_);
    WriteDecision decision;
    if (kill_at_write_ != 0 && n == kill_at_write_) {
      decision.kill = true;
      faults_fired_.fetch_add(1);
      return decision;
    }
    if (fail_write_at_ != 0 && n == fail_write_at_) {
      decision.fail = true;
      decision.code = fail_write_code_;
      decision.persist_fraction = fail_write_fraction_;
      faults_fired_.fetch_add(1);
      return decision;
    }
    if (fail_writes_from_ != 0 && n >= fail_writes_from_) {
      decision.fail = true;
      decision.code = fail_write_code_;
      decision.persist_fraction = 0.0;
      faults_fired_.fetch_add(1);
    }
    return decision;
  }

  StorageEnv* const base_;
  const uint64_t seed_;

  mutable std::mutex mu_;
  uint64_t fail_write_at_ = 0;
  uint64_t fail_writes_from_ = 0;
  StorageStatus::Code fail_write_code_ = StorageStatus::Code::kEio;
  double fail_write_fraction_ = 0.0;
  uint64_t kill_at_write_ = 0;
  uint64_t kill_at_rename_ = 0;
  std::string corrupt_read_substr_;
  uint64_t corrupt_read_offset_ = 0;
  uint8_t corrupt_read_mask_ = 0;
  std::string fail_read_substr_;

  std::atomic<uint64_t> writes_seen_{0};
  std::atomic<uint64_t> renames_seen_{0};
  std::atomic<uint64_t> faults_fired_{0};
};

class FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(FaultyEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  StorageStatus Write(const void* data, size_t n) override {
    FaultyEnv::WriteDecision decision = env_->DecideWrite();
    if (decision.kill) {
      // Persist half the payload first so the on-disk tail is genuinely
      // torn mid-record, then die without unwinding — as SIGKILL does.
      base_->Write(data, n / 2);
      base_->Flush();
      std::raise(SIGKILL);
    }
    if (decision.fail) {
      const auto keep = static_cast<size_t>(
          static_cast<double>(n) * decision.persist_fraction);
      uint64_t persisted = 0;
      if (keep > 0) {
        StorageStatus partial = base_->Write(data, keep);
        base_->Flush();
        persisted = partial.bytes_written;
      }
      StorageStatus status;
      status.code = decision.code;
      status.bytes_written = persisted;
      return status;
    }
    return base_->Write(data, n);
  }

  StorageStatus Flush() override { return base_->Flush(); }
  void Close() override { base_->Close(); }

 private:
  FaultyEnv* const env_;
  std::unique_ptr<WritableFile> base_;
};

inline std::unique_ptr<WritableFile> FaultyEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  auto base = base_->NewWritableFile(path, truncate);
  if (!base) return nullptr;
  return std::make_unique<FaultyWritableFile>(this, std::move(base));
}

}  // namespace graphbolt
