// Offline integrity check over a durability directory.
//
// Fsck walks every artifact a checkpoint directory can hold — the committed
// checkpoint chain, the global journal, the shed log, the quarantine
// dead-letter log, and the per-lane shard lineages — and verifies each one
// with the *same* predicates the runtime uses (InspectCheckpointBytes for
// checkpoints, the WAL checksum scan for logs). An artifact fsck flags is
// exactly an artifact RestoreLatest or Replay would reject; an artifact
// fsck passes will load. That shared-predicate property is what makes the
// tool trustworthy, and it is why the checks live in src/fault/ rather
// than in the CLI.
//
// Repair is deliberately conservative — it only ever narrows state the
// runtime would already refuse to read:
//   * a torn/corrupt WAL is truncated back to its last checksummed record;
//   * a corrupt checkpoint is demoted to a `.quarantined` sibling so the
//     restore chain skips it without a parse attempt;
//   * orphaned `.tmp` siblings (a crash between write and rename) are
//     removed.
// Nothing readable is ever modified.
#ifndef SRC_FAULT_FSCK_H_
#define SRC_FAULT_FSCK_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/checkpoint.h"
#include "src/fault/storage_env.h"
#include "src/fault/wal.h"
#include "src/util/logging.h"

namespace graphbolt {

struct FsckIssue {
  enum class Kind : uint8_t {
    kCorruptCheckpoint,  // repair: demote to .quarantined
    kCorruptWal,         // repair: truncate to last valid record
    kOrphanTmp,          // repair: remove
  };
  Kind kind;
  std::string path;
  std::string detail;
  // For kCorruptWal: the truncation point repair would use.
  uint64_t valid_bytes = 0;
};

struct FsckReport {
  uint64_t checkpoints_checked = 0;
  uint64_t checkpoints_valid = 0;
  uint64_t wals_checked = 0;
  uint64_t wal_records_valid = 0;
  std::vector<FsckIssue> issues;

  bool clean() const { return issues.empty(); }
};

inline bool FsckIsWalName(const std::string& name) {
  return name.size() > 4 && name.substr(name.size() - 4) == ".wal";
}

// Verifies every artifact under `dir`. Missing directory → clean report
// (nothing to restore is not corruption).
inline FsckReport FsckDirectory(const std::string& dir,
                                StorageEnv* env = nullptr) {
  if (!env) env = StorageEnv::Default();
  FsckReport report;
  for (const std::string& name : env->ListDirectory(dir)) {
    const std::string path = dir + "/" + name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      report.issues.push_back({FsckIssue::Kind::kOrphanTmp, path,
                               "orphaned temp file (crash before commit)", 0});
      continue;
    }
    if (name.size() > 5 && name.substr(name.size() - 5) == ".ckpt") {
      ++report.checkpoints_checked;
      std::string bytes;
      CheckpointInspection inspection;
      if (env->ReadFile(path, &bytes).ok()) {
        inspection = InspectCheckpointBytes(bytes);
      } else {
        inspection.error = "unreadable";
      }
      if (inspection.valid) {
        ++report.checkpoints_valid;
      } else {
        report.issues.push_back({FsckIssue::Kind::kCorruptCheckpoint, path,
                                 inspection.error, 0});
      }
      continue;
    }
    if (FsckIsWalName(name)) {
      ++report.wals_checked;
      const WalScanInfo info = VerifyWalFile(path, env);
      report.wal_records_valid += info.records_total;
      if (!info.clean()) {
        report.issues.push_back(
            {FsckIssue::Kind::kCorruptWal, path,
             info.corrupt ? "checksum/framing corruption mid-lineage"
                          : "torn tail (record cut short)",
             info.valid_bytes});
      }
      continue;
    }
  }
  return report;
}

// Applies the conservative repairs for a report's issues. Returns the
// number of issues actually repaired.
inline size_t FsckRepair(const FsckReport& report, StorageEnv* env = nullptr) {
  if (!env) env = StorageEnv::Default();
  size_t repaired = 0;
  for (const FsckIssue& issue : report.issues) {
    switch (issue.kind) {
      case FsckIssue::Kind::kCorruptCheckpoint:
        if (env->Rename(issue.path, issue.path + ".quarantined").ok()) {
          GB_LOG(kInfo) << "fsck: quarantined " << issue.path;
          ++repaired;
        }
        break;
      case FsckIssue::Kind::kCorruptWal:
        if (env->Truncate(issue.path, issue.valid_bytes).ok()) {
          GB_LOG(kInfo) << "fsck: truncated " << issue.path << " to "
                        << issue.valid_bytes << " bytes";
          ++repaired;
        }
        break;
      case FsckIssue::Kind::kOrphanTmp:
        if (env->Remove(issue.path).ok()) {
          GB_LOG(kInfo) << "fsck: removed " << issue.path;
          ++repaired;
        }
        break;
    }
  }
  return repaired;
}

}  // namespace graphbolt

#endif  // SRC_FAULT_FSCK_H_
