// Execution statistics reported by every engine. The Figure 6 / Table 7
// benches compare `edges_processed` between GraphBolt and GB-Reset; the
// timing tables read `seconds`.
//
// Lifecycle contract (identical across all four engines): every
// InitialCompute/ApplyMutations call starts by calling Clear(), so stats()
// always describes the *most recent* call only — the fields never
// accumulate across calls. ApplyMutations times the structural mutation
// first, then clears, then assigns `mutation_seconds`, so the mutation
// timing of the current batch is never lost to its own Clear().
//
// StreamDriver (src/driver/stream_driver.h) reports through the same
// struct but with the opposite lifecycle: its stats are *cumulative* over
// the driver's lifetime (engine fields summed across applied batches,
// driver fields counted since construction). Bare engines leave the driver
// block zero.
#ifndef SRC_ENGINE_STATS_H_
#define SRC_ENGINE_STATS_H_

#include <cstdint>

namespace graphbolt {

struct EngineStats {
  // Edge computations (contribution evaluations) in the most recent
  // compute/refine call.
  uint64_t edges_processed = 0;
  // Iterations executed (refined levels + continuation iterations).
  uint32_t iterations = 0;
  // Wall-clock seconds of the most recent compute/refine call, excluding
  // graph-structure mutation time (reported separately, as in the paper).
  double seconds = 0.0;
  // Wall-clock seconds spent applying the structural mutation.
  double mutation_seconds = 0.0;

  // ----- Scheduler counters (TaskArena deltas over the most recent call;
  // cumulative across batches under StreamDriver, like everything above) ---
  // Closures pushed into a work-stealing deque during the call.
  uint64_t tasks_forked = 0;
  // Deque pops that crossed threads (load imbalance actually corrected).
  uint64_t tasks_stolen = 0;
  // Loops/forks that ran serially on the caller (range at or below grain,
  // or a serial arena).
  uint64_t inline_runs = 0;
  // Closures pushed into the arena's priority lane (async delta rounds).
  uint64_t tasks_priority = 0;

  // ----- Driver-level counters (populated by StreamDriver only) -----------
  // Batches handed to the engine's ApplyMutations by the worker.
  uint64_t batches_applied = 0;
  // Individual mutations accepted by Ingest/IngestBatch.
  uint64_t mutations_enqueued = 0;
  // Mutations removed by gutter coalescing (superseded by a later mutation
  // of the same (src, dst) pair within one flush, matching the last-wins
  // semantics of MutableGraph::NormalizeBatch).
  uint64_t mutations_coalesced = 0;
  // Mutations discarded without reaching the engine: ingested after Stop(),
  // or shed by the kDropNewest overflow policy.
  uint64_t mutations_dropped = 0;
  // Producer wall-clock seconds spent blocked on bounded-queue
  // backpressure (summed across producers).
  double queue_wait_seconds = 0.0;
  // Seconds from a batch leaving the gutter to its application completing
  // (summed across batches; divide by batches_applied for the mean).
  double flush_latency_seconds = 0.0;

  // ----- Durability counters (populated when a Checkpointer is attached) ---
  // Checkpoints committed (cadence, forced, explicit, and post-recovery).
  uint64_t checkpoints_written = 0;
  // Checkpoint write attempts beyond the first (retry-with-backoff).
  uint64_t checkpoint_retries = 0;
  // Checkpoints abandoned after the retry budget was exhausted.
  uint64_t checkpoint_failures = 0;
  // Wall-clock seconds spent writing checkpoints.
  double checkpoint_seconds = 0.0;
  // Write-ahead-log records committed / append attempts beyond the first.
  uint64_t wal_appends = 0;
  uint64_t wal_retries = 0;
  // Mutations parked in the shed log by the kShedToWal overflow policy (or
  // by flushes against a crashed worker), and the batches re-applied from
  // it at a query barrier or recovery.
  uint64_t mutations_shed_to_wal = 0;
  uint64_t shed_batches_replayed = 0;
  // Successful Recover() calls, and the WAL/shed batches they re-applied.
  uint64_t recoveries = 0;
  uint64_t batches_replayed = 0;
  // Durable writes abandoned fatal-fast because the disk reported ENOSPC
  // (retrying a full disk only burns the backoff budget).
  uint64_t enospc_aborts = 0;
  // WAL scans (replay or scrub) that hit a torn/corrupt record and
  // truncated the lineage back to its last checksummed boundary.
  uint64_t wal_corruptions_detected = 0;
  // Background scrub passes over the durability artifacts, and the
  // corrupt artifacts they found (quarantined checkpoints, healed WALs).
  uint64_t scrub_passes = 0;
  uint64_t scrub_corruptions = 0;
  // Batches recovered through the sharded driver's lane-parallel lineage
  // replay (vs. batches_replayed, which also counts the serial global-WAL
  // path).
  uint64_t lane_batches_replayed = 0;

  // ----- Background-compaction counters (populated by StreamDriver when the
  // engine exposes its MutableGraph; mirrors SlackCsr::CompactionStats
  // summed over both adjacency views) ---------------------------------------
  // MaintenanceStep invocations that found compaction work to do.
  uint64_t maintenance_steps = 0;
  // Shadow-arena rewrites completed and flipped in (the overlap metric:
  // compaction work that never ran inside an ApplyBatch).
  uint64_t background_compactions = 0;
  // Edges copied into shadow arenas by maintenance steps.
  uint64_t background_compaction_edges = 0;
  // kBackground-mode batches that still compacted synchronously because
  // slack hit the kForcedSyncSlack backstop (0 when maintenance keeps up).
  uint64_t forced_sync_compactions = 0;
  // The adaptive per-tick compaction budget currently in force (edges); the
  // configured maintenance_budget_edges until idle-window measurements
  // accumulate, then derived from observed idle time and per-edge cost.
  uint64_t maintenance_budget_edges = 0;

  // ----- Sentinel counters (populated by StreamDriver when admission
  // control / quarantine / watchdog are configured) --------------------------
  // Batches refused by admission control and parked in the dead-letter WAL,
  // and the individual mutations they carried.
  uint64_t batches_quarantined = 0;
  uint64_t mutations_quarantined = 0;
  // ReplayQuarantine outcomes: batches re-admitted into the stream vs.
  // discarded by the operator's fix-up (or re-quarantined as still-poison).
  uint64_t quarantine_replayed = 0;
  uint64_t quarantine_discarded = 0;
  // Batches evicted from the pending queue by the kShedOldest policy.
  uint64_t shed_oldest_evictions = 0;
  // Times the admission governor switched the driver into degraded mode,
  // and queries answered from the last consistent snapshot while degraded.
  uint64_t degraded_entries = 0;
  uint64_t degraded_queries = 0;
  // Pipeline-stage stalls the watchdog declared, and the automatic
  // Recover() runs it drove to completion.
  uint64_t stalls_detected = 0;
  uint64_t watchdog_recoveries = 0;
  // The governor's current apply-latency estimate (EWMA seconds); 0 until
  // the first batch applies.
  double apply_ewma_seconds = 0.0;

  // ----- Async-mode counters (populated by the drivers when the Maiter
  // async tier is engaged under kDegrade; see INTERNALS §14) ----------------
  // Times an eligible engine was flipped from BSP into async mode.
  uint64_t async_entries = 0;
  // Bounded priority-ordered delta-propagation rounds executed.
  uint64_t async_steps = 0;
  // Mutation batches applied barrier-free while in async mode.
  uint64_t async_applies = 0;
  // Reconciling barriers that restored bitwise-deterministic BSP state.
  uint64_t async_reconciles = 0;
  // The engine's convergence residual after the most recent async step or
  // apply (0 when converged or not in async mode).
  double async_residual = 0.0;
  // Degraded queries served from continuously-updating async values
  // (subset of degraded_queries; the rest served frozen BSP snapshots).
  uint64_t async_fresh_queries = 0;

  // ----- Shard/session counters (populated by ShardedDriver only) ----------
  // Ingestion lanes the driver runs (DriverConfig::shards).
  uint64_t shard_lanes = 0;
  // Batches journaled to a shard WAL and staged into a shard partition by
  // lane workers (before promotion into the global engine).
  uint64_t shard_batches_staged = 0;
  // Per-shard WAL lineage records (distinct from the global wal_appends the
  // checkpointer writes under the engine mutex).
  uint64_t shard_wal_appends = 0;
  // Mutations whose endpoints are owned by different shards (routed to the
  // source's owner; see src/shard/sharded_driver.h).
  uint64_t cross_shard_mutations = 0;
  // Session handles handed out by OpenSession.
  uint64_t sessions_opened = 0;
  // Admissions refused by per-tenant quotas (token bucket or lifetime cap).
  uint64_t mutations_quota_rejected = 0;
  uint64_t batches_quota_rejected = 0;

  // ----- Fast-path counters (populated when the single-update fast path is
  // enabled; see src/driver/fast_path.h) ------------------------------------
  // Mutations classified safe and applied in place, bypassing the gutter.
  uint64_t fastpath_safe_applied = 0;
  // Mutations classified unsafe and escalated into the gutter as a
  // refinement micro-batch.
  uint64_t fastpath_unsafe_escalated = 0;
  // Fast-path epoch increments (one per safe apply); PrepQuery observes the
  // epoch to keep served snapshots prefix-consistent with safe applies.
  uint64_t fastpath_epoch_flips = 0;

  // ----- Adaptive apply (mirrored from MutableGraph by the drivers) --------
  // Batches whose normalized impact crossed the rebuild threshold and were
  // applied by a full arena rebuild instead of per-vertex splicing.
  uint64_t adaptive_rebuilds = 0;

  void Clear() { *this = EngineStats{}; }
};

}  // namespace graphbolt

#endif  // SRC_ENGINE_STATS_H_
