// Execution statistics reported by every engine. The Figure 6 / Table 7
// benches compare `edges_processed` between GraphBolt and GB-Reset; the
// timing tables read `seconds`.
#ifndef SRC_ENGINE_STATS_H_
#define SRC_ENGINE_STATS_H_

#include <cstdint>

namespace graphbolt {

struct EngineStats {
  // Edge computations (contribution evaluations) in the most recent
  // compute/refine call.
  uint64_t edges_processed = 0;
  // Iterations executed (refined levels + continuation iterations).
  uint32_t iterations = 0;
  // Wall-clock seconds of the most recent compute/refine call, excluding
  // graph-structure mutation time (reported separately, as in the paper).
  double seconds = 0.0;
  // Wall-clock seconds spent applying the structural mutation.
  double mutation_seconds = 0.0;

  void Clear() { *this = EngineStats{}; }
};

}  // namespace graphbolt

#endif  // SRC_ENGINE_STATS_H_
