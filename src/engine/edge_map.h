// Ligra's graph-parallel primitives: edgeMap and vertexMap (§4.2 of the
// paper: "GraphBolt builds over the graph parallel interface to provide
// edgeMap and vertexMap functions").
//
// These are the building blocks the refinement functions of Algorithm 2/3
// (repropagate, retract, propagate) are written against:
//
//   VertexSubset out = EdgeMap(graph, frontier, f);
//
// applies `f(u, v, weight)` to every out-edge of the frontier and returns
// the subset of destinations for which `f` returned true — choosing between
// a sparse push (iterate frontier out-edges) and a dense pull (iterate all
// vertices' in-edges, short-circuiting on membership) by comparing the
// frontier's outgoing-edge count against a threshold, exactly Ligra's
// direction optimization.
#ifndef SRC_ENGINE_EDGE_MAP_H_
#define SRC_ENGINE_EDGE_MAP_H_

#include <cstdint>

#include "src/engine/vertex_subset.h"
#include "src/graph/mutable_graph.h"
#include "src/parallel/parallel_for.h"
#include "src/parallel/reducer.h"

namespace graphbolt {

struct EdgeMapOptions {
  // Switch to the dense direction when the frontier's outgoing edges exceed
  // |E| / denseness_denominator (Ligra uses |E|/20).
  uint64_t denseness_denominator = 20;
  // Force one direction (for testing and for algorithms that require push
  // or pull semantics).
  bool force_sparse = false;
  bool force_dense = false;
  // The caller will consume the result through its dense view only (the
  // next step is a pull / force_dense edgeMap): fuse FrontierBuilder's Take
  // into the map by returning a dense-only subset — the O(universe) sparse
  // pack is skipped and materializes lazily if members() is ever read.
  bool dense_result = false;
  // Let the direction chooser pick the result form too: a map that ran in
  // the dense direction returns a dense-only subset (its frontier was
  // edge-heavy, so the next step tends to stay dense — and the chooser now
  // sums degrees off the dense view directly, so an auto chain keeps the
  // fusion instead of un-materializing it). A sparse-direction map still
  // returns the packed form its consumers index into. Explicit
  // dense_result / force_* override the pick.
  bool auto_result = true;
};

// Sparse push: applies f to every out-edge of the frontier. `f` must be
// safe to call concurrently; destinations where any call returns true form
// the result (deduplicated).
template <typename EdgeFunc>
VertexSubset EdgeMapSparse(const MutableGraph& graph, const VertexSubset& frontier, EdgeFunc f,
                           bool dense_result = false) {
  FrontierBuilder next(graph.num_vertices());
  ParallelForChunks(0, frontier.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const VertexId u = frontier.members()[i];
      const auto nbrs = graph.OutNeighbors(u);
      const auto wts = graph.OutWeights(u);
      for (size_t e = 0; e < nbrs.size(); ++e) {
        if (f(u, nbrs[e], wts[e])) {
          next.Claim(nbrs[e]);
        }
      }
    }
  }, /*grain=*/64);
  return dense_result ? next.TakeDense() : next.Take();
}

// Dense pull: for every vertex, applies f over in-edges whose source is in
// the frontier. Each destination is owned by one task, so `f` calls for a
// given destination are serialized (no atomics needed on the destination).
template <typename EdgeFunc>
VertexSubset EdgeMapDense(const MutableGraph& graph, const VertexSubset& frontier, EdgeFunc f,
                          bool dense_result = false) {
  const AtomicBitset& members = frontier.Dense();
  FrontierBuilder next(graph.num_vertices());
  ParallelForChunks(0, graph.num_vertices(), [&](size_t lo, size_t hi) {
    for (size_t vi = lo; vi < hi; ++vi) {
      const VertexId v = static_cast<VertexId>(vi);
      const auto nbrs = graph.InNeighbors(v);
      const auto wts = graph.InWeights(v);
      for (size_t e = 0; e < nbrs.size(); ++e) {
        if (members.Test(nbrs[e]) && f(nbrs[e], v, wts[e])) {
          next.Claim(v);
        }
      }
    }
  }, /*grain=*/128);
  return dense_result ? next.TakeDense() : next.Take();
}

// Direction-optimized edgeMap.
template <typename EdgeFunc>
VertexSubset EdgeMap(const MutableGraph& graph, const VertexSubset& frontier, EdgeFunc f,
                     const EdgeMapOptions& options = {}) {
  if (options.force_sparse) {
    return EdgeMapSparse(graph, frontier, f, options.dense_result);
  }
  if (options.force_dense) {
    return EdgeMapDense(graph, frontier, f, options.dense_result);
  }
  // Frontier out-degree sum for the direction choice, in parallel — on
  // dense frontiers the serial sum was itself a full O(V) pass before any
  // edge work started. ParallelReduceSum falls back to one serial chunk
  // below its grain, so sparse frontiers pay no fork-join overhead. A
  // dense-only frontier (a fused upstream map) is summed off its bitset so
  // the choice itself never forces the O(universe) sparse pack.
  uint64_t frontier_edges = 0;
  if (frontier.dense_only()) {
    const AtomicBitset& bits = frontier.Dense();
    frontier_edges = ParallelReduceSum<uint64_t>(
        0, static_cast<size_t>(graph.num_vertices()), [&](size_t v) {
          const VertexId id = static_cast<VertexId>(v);
          return bits.Test(id) ? static_cast<uint64_t>(graph.OutDegree(id)) : uint64_t{0};
        });
  } else {
    const auto& members = frontier.members();
    frontier_edges = ParallelReduceSum<uint64_t>(
        0, members.size(),
        [&](size_t i) { return static_cast<uint64_t>(graph.OutDegree(members[i])); });
  }
  if (frontier_edges > graph.num_edges() / options.denseness_denominator) {
    return EdgeMapDense(graph, frontier, f, options.dense_result || options.auto_result);
  }
  return EdgeMapSparse(graph, frontier, f, options.dense_result);
}

// Applies f to every member of the subset; members where f returns true
// form the result.
template <typename VertexFunc>
VertexSubset VertexMap(const VertexSubset& subset, VertexFunc f) {
  FrontierBuilder kept(subset.universe());
  ParallelForChunks(0, subset.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const VertexId v = subset.members()[i];
      if (f(v)) {
        kept.Claim(v);
      }
    }
  }, /*grain=*/256);
  return kept.Take();
}

// Side-effect-only vertexMap.
template <typename VertexFunc>
void VertexForEach(const VertexSubset& subset, VertexFunc f) {
  ParallelForChunks(0, subset.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      f(subset.members()[i]);
    }
  }, /*grain=*/256);
}

}  // namespace graphbolt

#endif  // SRC_ENGINE_EDGE_MAP_H_
