// Ligra-style vertex subsets (frontiers).
//
// A VertexSubset is the set of vertices active in a processing step. It is
// held in sparse form (packed id vector) with an optional dense membership
// bitset built on demand; engines choose representation by |subset| like
// Ligra's direction optimization.
#ifndef SRC_ENGINE_VERTEX_SUBSET_H_
#define SRC_ENGINE_VERTEX_SUBSET_H_

#include <algorithm>
#include <vector>

#include "src/graph/types.h"
#include "src/util/bitset.h"

namespace graphbolt {

class VertexSubset {
 public:
  VertexSubset() = default;

  explicit VertexSubset(VertexId universe) : universe_(universe) {}

  // A subset containing every vertex in [0, universe).
  static VertexSubset All(VertexId universe) {
    VertexSubset s(universe);
    s.members_.resize(universe);
    for (VertexId v = 0; v < universe; ++v) {
      s.members_[v] = v;
    }
    return s;
  }

  VertexId universe() const { return universe_; }
  size_t size() const { return members_.size(); }
  bool Empty() const { return members_.empty(); }

  const std::vector<VertexId>& members() const { return members_; }

  void Add(VertexId v) { members_.push_back(v); }

  // Sorts and removes duplicate members.
  void Normalize() {
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
  }

  // Builds (or rebuilds) the dense membership bitset.
  const AtomicBitset& Dense() const {
    if (dense_.size() != universe_) {
      dense_.Resize(universe_);
    } else {
      dense_.ClearAll();
    }
    for (const VertexId v : members_) {
      dense_.Set(v);
    }
    return dense_;
  }

 private:
  VertexId universe_ = 0;
  std::vector<VertexId> members_;
  mutable AtomicBitset dense_;
};

// Concurrent frontier builder: threads claim membership through an atomic
// bitset and append to thread-chunk-local vectors merged at the end.
class FrontierBuilder {
 public:
  explicit FrontierBuilder(VertexId universe) : universe_(universe), claimed_(universe) {}

  // Returns true if this call claimed v (first insertion wins).
  bool Claim(VertexId v) { return claimed_.Set(v); }

  bool Contains(VertexId v) const { return claimed_.Test(v); }

  // Collects all claimed vertices into a subset. O(universe) scan; fine for
  // the scales this repository targets.
  VertexSubset Take() const {
    VertexSubset subset(universe_);
    for (VertexId v = 0; v < universe_; ++v) {
      if (claimed_.Test(v)) {
        subset.Add(v);
      }
    }
    return subset;
  }

 private:
  VertexId universe_;
  AtomicBitset claimed_;
};

}  // namespace graphbolt

#endif  // SRC_ENGINE_VERTEX_SUBSET_H_
