// Ligra-style vertex subsets (frontiers).
//
// A VertexSubset is the set of vertices active in a processing step. It is
// held in sparse form (packed id vector) with an optional dense membership
// bitset built on demand; engines choose representation by |subset| like
// Ligra's direction optimization.
#ifndef SRC_ENGINE_VERTEX_SUBSET_H_
#define SRC_ENGINE_VERTEX_SUBSET_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/graph/types.h"
#include "src/parallel/parallel_for.h"
#include "src/parallel/reducer.h"
#include "src/util/bitset.h"

namespace graphbolt {

class VertexSubset {
 public:
  VertexSubset() = default;

  explicit VertexSubset(VertexId universe) : universe_(universe) {}

  // A subset containing every vertex in [0, universe).
  static VertexSubset All(VertexId universe) {
    VertexSubset s(universe);
    s.members_.resize(universe);
    for (VertexId v = 0; v < universe; ++v) {
      s.members_[v] = v;
    }
    return s;
  }

  // Wraps an already-sorted, duplicate-free member vector without the
  // per-element Add calls (FrontierBuilder::Take's bulk path).
  static VertexSubset FromSorted(VertexId universe, std::vector<VertexId> members) {
    VertexSubset s(universe);
    s.members_ = std::move(members);
    return s;
  }

  // A subset defined by its dense bitset alone (FrontierBuilder::TakeDense).
  // `bits` must be sized to the universe and hold exactly `count` set bits.
  // The sparse member list is materialized lazily on first members() access,
  // so a consumer that only reads Dense() — a pull-direction edgeMap chain —
  // never pays the O(universe) pack at all.
  static VertexSubset FromDense(VertexId universe, const AtomicBitset& bits, size_t count) {
    VertexSubset s(universe);
    s.dense_ = bits;
    s.dense_applied_ = 0;
    s.dense_count_ = count;
    s.sparse_valid_ = false;
    return s;
  }

  VertexId universe() const { return universe_; }
  size_t size() const { return sparse_valid_ ? members_.size() : dense_count_; }
  bool Empty() const { return size() == 0; }

  // True while the subset is held in dense-only form (FromDense /
  // TakeDense / TakeAuto's dense pick): Dense() is free, members() would
  // pay the O(universe) pack. Consumers with an index-free walk branch on
  // this to sweep the bitset instead; both walks ascend, so a
  // single-threaded consumer visits the same vertices in the same order
  // either way.
  bool dense_only() const { return !sparse_valid_; }

  const std::vector<VertexId>& members() const {
    MaterializeSparse();
    return members_;
  }

  void Add(VertexId v) {
    MaterializeSparse();
    members_.push_back(v);
  }

  // Sorts and removes duplicate members. Dedup preserves the member *set*,
  // so a fully-built dense view stays valid; a partially-built one is
  // cleared by members (O(|subset|), not O(universe)) since index-based
  // incremental bookkeeping does not survive the reorder. A dense-only
  // subset is canonical already (a bitset cannot hold duplicates).
  void Normalize() {
    if (!sparse_valid_) {
      return;
    }
    const bool dense_complete = dense_applied_ == members_.size() && dense_applied_ > 0;
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
    if (dense_complete) {
      dense_applied_ = members_.size();
    } else if (dense_applied_ > 0) {
      for (const VertexId v : members_) {
        dense_.Clear(v);
      }
      dense_applied_ = 0;
    }
  }

  // Dense membership bitset, memoized: a second call on an unchanged subset
  // is O(1), and members added since the last call are applied
  // incrementally rather than rebuilding from scratch. On a dense-only
  // subset the bitset is the authoritative view and returns immediately.
  const AtomicBitset& Dense() const {
    if (!sparse_valid_) {
      return dense_;
    }
    if (dense_.size() != universe_) {
      dense_.Resize(universe_);
      dense_applied_ = 0;
    }
    for (size_t i = dense_applied_; i < members_.size(); ++i) {
      dense_.Set(members_[i]);
    }
    dense_applied_ = members_.size();
    return dense_;
  }

  // Installs an externally-built bitset as the valid dense view. `bits`
  // must be sized to the universe and hold exactly the member set —
  // FrontierBuilder::Take hands over its claim bitset this way so EdgeMap's
  // dense direction never rebuilds what the builder already has.
  void AdoptDense(AtomicBitset bits) {
    dense_ = std::move(bits);
    dense_applied_ = members_.size();
  }

 private:
  // Packs the dense bitset into the sparse member vector (sorted by
  // construction). The slow path of a dense-only subset; a no-op otherwise.
  void MaterializeSparse() const {
    if (sparse_valid_) {
      return;
    }
    members_.clear();
    members_.reserve(dense_count_);
    for (VertexId v = 0; v < universe_; ++v) {
      if (dense_.Test(v)) {
        members_.push_back(v);
      }
    }
    dense_applied_ = members_.size();
    sparse_valid_ = true;
  }

  VertexId universe_ = 0;
  mutable std::vector<VertexId> members_;
  mutable AtomicBitset dense_;
  mutable size_t dense_applied_ = 0;  // members_[0..dense_applied_) are set in dense_
  // False while the subset is dense-only: members_ is empty, dense_ is
  // authoritative, and dense_count_ carries |subset|.
  mutable bool sparse_valid_ = true;
  size_t dense_count_ = 0;
};

// Process-wide free list of claim bitsets for FrontierBuilder. EdgeMap /
// VertexMap construct one builder per step, and a refinement iteration runs
// many steps over the same universe — without pooling each step pays an
// O(V/8)-byte allocation plus first-touch page faults. Acquire() hands back
// a cleared bitset (resized only when the universe changed); Release()
// clears and parks it. The mutex is uncontended in practice: builders are
// created and destroyed on the calling thread of a step, not inside the
// parallel region.
class FrontierBitsetPool {
 public:
  static FrontierBitsetPool& Instance() {
    static FrontierBitsetPool pool;
    return pool;
  }

  AtomicBitset Acquire(VertexId universe) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        AtomicBitset bits = std::move(free_.back());
        free_.pop_back();
        ++reuses_;
        if (bits.size() != static_cast<size_t>(universe)) {
          bits.Resize(universe);
        }
        return bits;  // cleared on Release, so ready to claim into
      }
      ++allocations_;
    }
    return AtomicBitset(universe);
  }

  void Release(AtomicBitset&& bits) {
    bits.ClearAll();
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < kMaxPooled) {
      free_.push_back(std::move(bits));
    }
  }

  // Builders served from the free list vs. fresh allocations (cumulative).
  uint64_t reuses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reuses_;
  }
  uint64_t allocations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return allocations_;
  }

 private:
  // Nested EdgeMaps are rare (one per live step); a short list bounds the
  // idle footprint while covering fork-join step pipelines.
  static constexpr size_t kMaxPooled = 8;

  mutable std::mutex mu_;
  std::vector<AtomicBitset> free_;
  uint64_t reuses_ = 0;
  uint64_t allocations_ = 0;
};

// Concurrent frontier builder: threads claim membership through an atomic
// bitset and append to thread-chunk-local vectors merged at the end. The
// claim bitset is pooled (FrontierBitsetPool): acquired on construction,
// cleared and returned on destruction.
class FrontierBuilder {
 public:
  explicit FrontierBuilder(VertexId universe)
      : universe_(universe), claimed_(FrontierBitsetPool::Instance().Acquire(universe)) {}

  ~FrontierBuilder() { FrontierBitsetPool::Instance().Release(std::move(claimed_)); }

  FrontierBuilder(const FrontierBuilder&) = delete;
  FrontierBuilder& operator=(const FrontierBuilder&) = delete;

  // Returns true if this call claimed v (first insertion wins).
  bool Claim(VertexId v) { return claimed_.Set(v); }

  bool Contains(VertexId v) const { return claimed_.Test(v); }

  // Collects all claimed vertices into a subset. The O(universe) scan runs
  // as a blocked two-pass pack (per-block claim counts, prefix sum, then a
  // parallel fill — the same shape as ParallelPrefixSum) so a large
  // universe is swept by the whole arena; block order keeps the member
  // vector sorted either way. The claim bitset is copied into the subset as
  // its ready-made dense view (an O(universe/64) word copy, noise next to
  // the scan), so EdgeMap's dense direction never rebuilds it — and the
  // builder stays usable for further claims.
  VertexSubset Take() const {
    constexpr size_t kBlock = 4096;
    const size_t n = universe_;
    if (n < 2 * kBlock) {
      VertexSubset subset(universe_);
      for (VertexId v = 0; v < universe_; ++v) {
        if (claimed_.Test(v)) {
          subset.Add(v);
        }
      }
      subset.AdoptDense(claimed_);
      return subset;
    }
    const size_t blocks = (n + kBlock - 1) / kBlock;
    std::vector<size_t> offsets(blocks);
    ParallelFor(0, blocks, [&](size_t b) {
      const size_t lo = b * kBlock;
      const size_t hi = lo + kBlock < n ? lo + kBlock : n;
      size_t count = 0;
      for (size_t v = lo; v < hi; ++v) {
        count += claimed_.Test(static_cast<VertexId>(v)) ? 1 : 0;
      }
      offsets[b] = count;
    }, /*grain=*/1);
    const size_t total = ExclusivePrefixSum(offsets);
    std::vector<VertexId> members(total);
    ParallelFor(0, blocks, [&](size_t b) {
      const size_t lo = b * kBlock;
      const size_t hi = lo + kBlock < n ? lo + kBlock : n;
      size_t out = offsets[b];
      for (size_t v = lo; v < hi; ++v) {
        if (claimed_.Test(static_cast<VertexId>(v))) {
          members[out++] = static_cast<VertexId>(v);
        }
      }
    }, /*grain=*/1);
    VertexSubset subset = VertexSubset::FromSorted(universe_, std::move(members));
    subset.AdoptDense(claimed_);
    return subset;
  }

  // Dense-only Take: copies the claim bitset as the subset's authoritative
  // view (an O(universe/64) word copy plus popcount) and skips the
  // O(universe) per-bit sparse pack entirely. For consumers that read the
  // result only through Dense() — the next step of a pull-direction edgeMap
  // chain (EdgeMapOptions::dense_result); members() still works on the
  // result, materializing lazily.
  VertexSubset TakeDense() const {
    return VertexSubset::FromDense(universe_, claimed_, claimed_.Count());
  }

  // Auto-picks the result representation from the frontier's density — the
  // vertex-axis analogue of Ligra's push/pull chooser, applied at the
  // producer instead of every call site. A dense frontier (at least
  // universe / kDenseResultDenominator members) comes back dense-only: its
  // consumers sweep the whole universe anyway (a pull step, a bit-test
  // walk), so the O(universe) sparse pack is pure overhead. A sparse
  // frontier packs as before — a bit-test sweep would dwarf its
  // O(|frontier|) member walk.
  VertexSubset TakeAuto() const {
    const size_t count = claimed_.Count();
    if (count * kDenseResultDenominator >= static_cast<size_t>(universe_)) {
      return VertexSubset::FromDense(universe_, claimed_, count);
    }
    return Take();
  }

 private:
  // Mirrors EdgeMapOptions::denseness_denominator (Ligra's |E|/20) on the
  // vertex axis: past 1/20th of the universe, sweeping bits beats packing.
  static constexpr size_t kDenseResultDenominator = 20;

  VertexId universe_;
  AtomicBitset claimed_;
};

}  // namespace graphbolt

#endif  // SRC_ENGINE_VERTEX_SUBSET_H_
