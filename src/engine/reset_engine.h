// The GB-Reset baseline (§5.1): incremental *during* processing — change
// propagation with selective scheduling, like Ligra's PageRankDelta — but a
// full restart whenever the graph mutates.
//
// A running aggregation array is maintained across iterations: when a
// vertex's value changes, only its out-edges are reprocessed, retracting the
// old contribution and aggregating the new one (or applying a combined
// delta for decomposable aggregations). Non-decomposable aggregations
// (min/max) cannot retract, so the engine re-evaluates impacted vertices by
// pulling their full in-neighborhood instead.
#ifndef SRC_ENGINE_RESET_ENGINE_H_
#define SRC_ENGINE_RESET_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <istream>
#include <mutex>
#include <ostream>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/algorithm.h"
#include "src/engine/stats.h"
#include "src/engine/vertex_subset.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"
#include "src/parallel/parallel_for.h"
#include "src/parallel/scheduler_scope.h"
#include "src/util/timer.h"

namespace graphbolt {

// Detects the optional fast path for decomposable aggregations: a combined
// delta contribution applied with a single Aggregate call (propagateDelta in
// Algorithm 3 of the paper).
// The delta takes both the old and the new context of the contributor: a
// structural mutation can change a vertex's out-degree, which changes its
// contribution even when its value is unchanged (Algorithm 3, line 8 uses
// old_degree and new_degree).
template <typename A>
concept HasDeltaContribution =
    requires(const A algo, VertexId u, const typename A::Value& old_value,
             const typename A::Value& new_value, Weight w, const VertexContext& ctx) {
      {
        algo.DeltaContribution(u, old_value, new_value, w, ctx, ctx)
      } -> std::same_as<typename A::Contribution>;
    };

template <GraphAlgorithm Algo>
class ResetEngine {
 public:
  using Value = typename Algo::Value;
  using Aggregate = typename Algo::Aggregate;

  struct Options {
    uint32_t max_iterations = 10;
    bool run_to_convergence = false;
    // Ligra-style direction optimization: when the frontier's outgoing-edge
    // count exceeds this fraction of |E|, the iteration switches from
    // sparse push (retract+aggregate per active edge) to a dense pull that
    // rebuilds every aggregation from scratch. Set >= 1 to disable.
    double dense_threshold = 0.5;
  };

  ResetEngine(MutableGraph* graph, Algo algo, Options options = {})
      : graph_(graph), algo_(std::move(algo)), options_(options) {}

  // Runs the computation from initial values with selective scheduling.
  // Canonical entry point of the StreamingEngine API.
  void InitialCompute() {
    Timer timer;
    SchedulerCounterScope scheduler(&stats_);
    stats_.Clear();
    contexts_ = ComputeVertexContexts(*graph_);
    const VertexId n = graph_->num_vertices();
    values_.assign(n, Value{});
    aggregates_.assign(n, algo_.IdentityAggregate());
    ParallelFor(0, n, [&](size_t v) {
      values_[v] = algo_.InitialValue(static_cast<VertexId>(v), contexts_[v]);
    });

    // Iteration 1 is a full pass: every vertex contributes its initial value.
    std::vector<std::pair<VertexId, Value>> frontier = FullFirstIteration();
    ++stats_.iterations;

    while (stats_.iterations < options_.max_iterations) {
      if (options_.run_to_convergence && frontier.empty()) {
        break;
      }
      frontier = DeltaIteration(frontier);
      ++stats_.iterations;
    }
    stats_.seconds = timer.Seconds();
  }

  // Stats lifecycle (identical across engines, see stats.h): mutation timed
  // first, recompute clears, then mutation_seconds assigned.
  AppliedMutations ApplyMutations(const MutationBatch& batch) {
    SchedulerCounterScope scheduler(&stats_);
    Timer timer;
    AppliedMutations applied = graph_->ApplyBatch(batch);
    const double mutation_seconds = timer.Seconds();
    InitialCompute();
    stats_.mutation_seconds = mutation_seconds;
    return applied;
  }

  // The graph this engine computes over; StreamDriver uses it to run
  // background-compaction maintenance between batches.
  MutableGraph* mutable_graph() { return graph_; }

  // Streams the computed state for checkpointing (CheckpointableEngine,
  // src/core/streaming_engine.h). Values only: contexts are recomputed from
  // the restored graph, and the aggregation array is rebuilt by the full
  // restart every ApplyMutations performs.
  bool SaveStateTo(std::ostream& out) const {
    static_assert(std::is_trivially_copyable_v<Value>);
    const uint64_t magic = kStateMagic;
    const uint64_t n = values_.size();
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(values_.data()),
              static_cast<std::streamsize>(n * sizeof(Value)));
    return static_cast<bool>(out);
  }

  bool LoadStateFrom(std::istream& in) {
    uint64_t magic = 0;
    uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || magic != kStateMagic || n != graph_->num_vertices()) {
      return false;
    }
    values_.resize(n);
    if (!in.read(reinterpret_cast<char*>(values_.data()),
                 static_cast<std::streamsize>(n * sizeof(Value)))) {
      return false;
    }
    contexts_ = ComputeVertexContexts(*graph_);
    return true;
  }

  const std::vector<Value>& values() const { return values_; }
  const EngineStats& stats() const { return stats_; }
  const Algo& algorithm() const { return algo_; }

 private:
  static constexpr bool kPullBased = Algo::kKind == AggregationKind::kNonDecomposable;
  static constexpr uint64_t kStateMagic = 0x4742525353543031ULL;  // "GBRSST01"

  // Aggregates every vertex's initial contribution (pull over the CSC; no
  // atomics contended since each vertex owns its cell), computes iteration-1
  // values, and returns the changed set with pre-change values.
  std::vector<std::pair<VertexId, Value>> FullFirstIteration() {
    const VertexId n = graph_->num_vertices();
    std::atomic<uint64_t> edges{0};
    ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
      uint64_t local_edges = 0;
      for (size_t vi = lo; vi < hi; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        const auto in_nbrs = graph_->InNeighbors(v);
        const auto in_wts = graph_->InWeights(v);
        for (size_t i = 0; i < in_nbrs.size(); ++i) {
          const VertexId u = in_nbrs[i];
          algo_.AggregateAtomic(&aggregates_[vi],
                                algo_.ContributionOf(u, values_[u], in_wts[i], contexts_[u]));
        }
        local_edges += in_nbrs.size();
      }
      edges.fetch_add(local_edges, std::memory_order_relaxed);
    });
    stats_.edges_processed += edges.load();

    std::vector<std::pair<VertexId, Value>> changed;
    std::mutex merge;
    ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
      std::vector<std::pair<VertexId, Value>> local;
      for (size_t vi = lo; vi < hi; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        const Value next = algo_.VertexCompute(v, aggregates_[vi], contexts_[vi]);
        if (algo_.ValuesDiffer(values_[vi], next)) {
          local.emplace_back(v, values_[vi]);
          values_[vi] = next;
        }
      }
      std::lock_guard<std::mutex> lock(merge);
      changed.insert(changed.end(), local.begin(), local.end());
    });
    return changed;
  }

  // One selective iteration driven by the changed set of the previous one.
  // Frontier entries carry the value whose contribution currently sits in
  // the aggregation array, so it can be retracted exactly.
  std::vector<std::pair<VertexId, Value>> DeltaIteration(
      const std::vector<std::pair<VertexId, Value>>& frontier) {
    const VertexId n = graph_->num_vertices();

    if constexpr (!kPullBased) {
      // Direction optimization: a huge frontier is cheaper to process as a
      // dense pull over every vertex than as per-edge retract+aggregate
      // pairs.
      uint64_t frontier_out_edges = 0;
      for (const auto& [u, old_value] : frontier) {
        frontier_out_edges += graph_->OutDegree(u);
      }
      if (static_cast<double>(frontier_out_edges) >
          options_.dense_threshold * static_cast<double>(graph_->num_edges())) {
        return DenseResetIteration();
      }
    }

    FrontierBuilder touched(n);
    std::atomic<uint64_t> edges{0};

    if constexpr (kPullBased) {
      // Mark out-neighbors of changed vertices; re-evaluate them by pulling.
      ParallelForChunks(0, frontier.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          for (const VertexId w : graph_->OutNeighbors(frontier[i].first)) {
            touched.Claim(w);
          }
        }
      }, /*grain=*/64);
    } else {
      ParallelForChunks(0, frontier.size(), [&](size_t lo, size_t hi) {
        uint64_t local_edges = 0;
        for (size_t i = lo; i < hi; ++i) {
          const auto& [u, old_value] = frontier[i];
          const auto out_nbrs = graph_->OutNeighbors(u);
          const auto out_wts = graph_->OutWeights(u);
          for (size_t e = 0; e < out_nbrs.size(); ++e) {
            const VertexId w = out_nbrs[e];
            if constexpr (HasDeltaContribution<Algo>) {
              algo_.AggregateAtomic(&aggregates_[w],
                                    algo_.DeltaContribution(u, old_value, values_[u], out_wts[e],
                                                            contexts_[u], contexts_[u]));
            } else {
              algo_.RetractAtomic(&aggregates_[w],
                                  algo_.ContributionOf(u, old_value, out_wts[e], contexts_[u]));
              algo_.AggregateAtomic(&aggregates_[w],
                                    algo_.ContributionOf(u, values_[u], out_wts[e], contexts_[u]));
            }
            touched.Claim(w);
          }
          local_edges += out_nbrs.size();
        }
        edges.fetch_add(local_edges, std::memory_order_relaxed);
      }, /*grain=*/64);
    }

    // TakeAuto: dense recompute sets stay in bitset form and are swept
    // below without the O(universe) sparse pack; both walks ascend, so a
    // single-threaded iteration commits identically either way.
    VertexSubset to_recompute = touched.TakeAuto();
    const auto repull_one = [&](VertexId v, uint64_t* local_edges) {
      Aggregate agg = algo_.IdentityAggregate();
      const auto in_nbrs = graph_->InNeighbors(v);
      const auto in_wts = graph_->InWeights(v);
      for (size_t e = 0; e < in_nbrs.size(); ++e) {
        const VertexId u = in_nbrs[e];
        algo_.AggregateAtomic(&agg,
                              algo_.ContributionOf(u, values_[u], in_wts[e], contexts_[u]));
      }
      *local_edges += in_nbrs.size();
      aggregates_[v] = agg;
    };
    if constexpr (kPullBased) {
      // Re-evaluate the aggregation of each touched vertex from scratch.
      if (to_recompute.dense_only()) {
        const AtomicBitset& bits = to_recompute.Dense();
        ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
          uint64_t local_edges = 0;
          for (size_t vi = lo; vi < hi; ++vi) {
            const VertexId v = static_cast<VertexId>(vi);
            if (bits.Test(v)) {
              repull_one(v, &local_edges);
            }
          }
          edges.fetch_add(local_edges, std::memory_order_relaxed);
        }, /*grain=*/512);
      } else {
        ParallelForChunks(0, to_recompute.size(), [&](size_t lo, size_t hi) {
          uint64_t local_edges = 0;
          for (size_t i = lo; i < hi; ++i) {
            repull_one(to_recompute.members()[i], &local_edges);
          }
          edges.fetch_add(local_edges, std::memory_order_relaxed);
        }, /*grain=*/64);
      }
    }
    stats_.edges_processed += edges.load();

    std::vector<std::pair<VertexId, Value>> changed;
    std::mutex merge;
    const auto commit_one = [&](VertexId v, std::vector<std::pair<VertexId, Value>>* local) {
      const Value next = algo_.VertexCompute(v, aggregates_[v], contexts_[v]);
      if (algo_.ValuesDiffer(values_[v], next)) {
        local->emplace_back(v, values_[v]);
        values_[v] = next;
      }
    };
    if (to_recompute.dense_only()) {
      const AtomicBitset& bits = to_recompute.Dense();
      ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
        std::vector<std::pair<VertexId, Value>> local;
        for (size_t vi = lo; vi < hi; ++vi) {
          const VertexId v = static_cast<VertexId>(vi);
          if (bits.Test(v)) {
            commit_one(v, &local);
          }
        }
        std::lock_guard<std::mutex> lock(merge);
        changed.insert(changed.end(), local.begin(), local.end());
      }, /*grain=*/512);
    } else {
      ParallelForChunks(0, to_recompute.size(), [&](size_t lo, size_t hi) {
        std::vector<std::pair<VertexId, Value>> local;
        for (size_t i = lo; i < hi; ++i) {
          commit_one(to_recompute.members()[i], &local);
        }
        std::lock_guard<std::mutex> lock(merge);
        changed.insert(changed.end(), local.begin(), local.end());
      }, /*grain=*/256);
    }
    return changed;
  }

  // Dense pull: rebuilds every vertex's aggregation from its in-neighbors
  // and returns the changed set. Leaves `aggregates_` consistent with the
  // current values, so subsequent sparse iterations can keep retracting.
  std::vector<std::pair<VertexId, Value>> DenseResetIteration() {
    const VertexId n = graph_->num_vertices();
    std::atomic<uint64_t> edges{0};
    std::vector<std::pair<VertexId, Value>> changed;
    std::mutex merge;
    std::vector<Aggregate> fresh(n, algo_.IdentityAggregate());
    ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
      uint64_t local_edges = 0;
      for (size_t vi = lo; vi < hi; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        const auto in_nbrs = graph_->InNeighbors(v);
        const auto in_wts = graph_->InWeights(v);
        for (size_t i = 0; i < in_nbrs.size(); ++i) {
          const VertexId u = in_nbrs[i];
          algo_.AggregateAtomic(&fresh[vi],
                                algo_.ContributionOf(u, values_[u], in_wts[i], contexts_[u]));
        }
        local_edges += in_nbrs.size();
      }
      edges.fetch_add(local_edges, std::memory_order_relaxed);
    });
    stats_.edges_processed += edges.load();
    aggregates_.swap(fresh);
    ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
      std::vector<std::pair<VertexId, Value>> local;
      for (size_t vi = lo; vi < hi; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        const Value next = algo_.VertexCompute(v, aggregates_[vi], contexts_[vi]);
        if (algo_.ValuesDiffer(values_[vi], next)) {
          local.emplace_back(v, values_[vi]);
          values_[vi] = next;
        }
      }
      std::lock_guard<std::mutex> lock(merge);
      changed.insert(changed.end(), local.begin(), local.end());
    });
    return changed;
  }

  MutableGraph* graph_;
  Algo algo_;
  Options options_;
  std::vector<VertexContext> contexts_;
  std::vector<Value> values_;
  std::vector<Aggregate> aggregates_;
  EngineStats stats_;
};

}  // namespace graphbolt

#endif  // SRC_ENGINE_RESET_ENGINE_H_
