// The Ligra baseline (§5.1): synchronous processing that restarts the whole
// computation from initial values whenever the graph mutates.
//
// Each iteration is a dense pull: every vertex rebuilds its aggregation from
// its full in-neighborhood (CSC) and applies the vertex function. This is
// the behaviour Table 5's "Ligra" rows measure — no selective scheduling,
// no incremental reuse.
#ifndef SRC_ENGINE_LIGRA_ENGINE_H_
#define SRC_ENGINE_LIGRA_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <istream>
#include <ostream>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/algorithm.h"
#include "src/engine/stats.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"
#include "src/parallel/parallel_for.h"
#include "src/parallel/scheduler_scope.h"
#include "src/util/timer.h"

namespace graphbolt {

template <GraphAlgorithm Algo>
class LigraEngine {
 public:
  using Value = typename Algo::Value;

  struct Options {
    uint32_t max_iterations = 10;
    // When true, stop at the first iteration in which no value changes
    // (subject to max_iterations as a cap).
    bool run_to_convergence = false;
  };

  LigraEngine(MutableGraph* graph, Algo algo, Options options = {})
      : graph_(graph), algo_(std::move(algo)), options_(options) {}

  // Runs the full synchronous computation from initial values. Canonical
  // entry point of the StreamingEngine API (src/core/streaming_engine.h).
  void InitialCompute() {
    Timer timer;
    SchedulerCounterScope scheduler(&stats_);
    stats_.Clear();
    contexts_ = ComputeVertexContexts(*graph_);
    const VertexId n = graph_->num_vertices();
    values_.resize(n);
    ParallelFor(0, n, [&](size_t v) {
      values_[v] = algo_.InitialValue(static_cast<VertexId>(v), contexts_[v]);
    });
    std::vector<Value> next(n);
    for (uint32_t iter = 0; iter < options_.max_iterations; ++iter) {
      const bool changed = DenseIteration(&next);
      values_.swap(next);
      ++stats_.iterations;
      if (options_.run_to_convergence && !changed) {
        break;
      }
    }
    stats_.seconds = timer.Seconds();
  }

  // Applies the batch to the graph and recomputes from scratch.
  // Stats lifecycle (identical across engines, see stats.h): the mutation
  // is timed first, the recompute clears stats, then mutation_seconds is
  // assigned — stats() describes exactly this call.
  AppliedMutations ApplyMutations(const MutationBatch& batch) {
    SchedulerCounterScope scheduler(&stats_);
    Timer timer;
    AppliedMutations applied = graph_->ApplyBatch(batch);
    const double mutation_seconds = timer.Seconds();
    InitialCompute();
    stats_.mutation_seconds = mutation_seconds;
    return applied;
  }

  // The graph this engine computes over; StreamDriver uses it to run
  // background-compaction maintenance between batches.
  MutableGraph* mutable_graph() { return graph_; }

  // Streams the computed state for checkpointing (CheckpointableEngine,
  // src/core/streaming_engine.h). Only values are persisted: contexts are
  // recomputed from the (separately restored) graph, and ApplyMutations
  // recomputes everything else from scratch anyway.
  bool SaveStateTo(std::ostream& out) const {
    static_assert(std::is_trivially_copyable_v<Value>);
    const uint64_t magic = kStateMagic;
    const uint64_t n = values_.size();
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(values_.data()),
              static_cast<std::streamsize>(n * sizeof(Value)));
    return static_cast<bool>(out);
  }

  bool LoadStateFrom(std::istream& in) {
    uint64_t magic = 0;
    uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || magic != kStateMagic || n != graph_->num_vertices()) {
      return false;
    }
    values_.resize(n);
    if (!in.read(reinterpret_cast<char*>(values_.data()),
                 static_cast<std::streamsize>(n * sizeof(Value)))) {
      return false;
    }
    contexts_ = ComputeVertexContexts(*graph_);
    return true;
  }

  const std::vector<Value>& values() const { return values_; }
  const EngineStats& stats() const { return stats_; }
  const Algo& algorithm() const { return algo_; }

 private:
  static constexpr uint64_t kStateMagic = 0x47424C4753543031ULL;  // "GBLGST01"

  // One synchronous iteration over every vertex; returns whether any value
  // changed. Pull-based: no atomics needed since each vertex owns its cell.
  bool DenseIteration(std::vector<Value>* next) {
    const VertexId n = graph_->num_vertices();
    std::atomic<uint64_t> edges{0};
    std::atomic<bool> changed{false};
    ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
      uint64_t local_edges = 0;
      bool local_changed = false;
      for (size_t vi = lo; vi < hi; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        auto agg = algo_.IdentityAggregate();
        const auto in_nbrs = graph_->InNeighbors(v);
        const auto in_wts = graph_->InWeights(v);
        for (size_t i = 0; i < in_nbrs.size(); ++i) {
          const VertexId u = in_nbrs[i];
          algo_.AggregateAtomic(
              &agg, algo_.ContributionOf(u, values_[u], in_wts[i], contexts_[u]));
        }
        local_edges += in_nbrs.size();
        (*next)[vi] = algo_.VertexCompute(v, agg, contexts_[vi]);
        local_changed |= algo_.ValuesDiffer(values_[vi], (*next)[vi]);
      }
      edges.fetch_add(local_edges, std::memory_order_relaxed);
      if (local_changed) {
        changed.store(true, std::memory_order_relaxed);
      }
    });
    stats_.edges_processed += edges.load();
    return changed.load();
  }

  MutableGraph* graph_;
  Algo algo_;
  Options options_;
  std::vector<VertexContext> contexts_;
  std::vector<Value> values_;
  EngineStats stats_;
};

}  // namespace graphbolt

#endif  // SRC_ENGINE_LIGRA_ENGINE_H_
