// Slack-CSR adjacency: the mutable counterpart of Csr (which remains the
// reference rebuild-on-apply implementation, see csr.h).
//
// Each vertex owns a contiguous segment of a shared arena, sorted by target
// id so HasEdge's binary search and Triangle Counting's linear-merge
// intersection keep working unchanged. Segments carry capacity slack
// (power-of-two sized on relocation, RisGraph-style), so ApplyEdits is a
// parallel per-touched-vertex in-place splice — O(affected edges) instead
// of the O(V+E) rebuild Csr::ApplyEdits performs. A vertex that outgrows
// its capacity relocates to the arena tail; the hole it leaves becomes
// slack. When global slack exceeds kCompactionThreshold of the arena, a
// synchronous (background-free) compaction pass rewrites the arena as a
// tight CSR using ParallelPrefixSum over the degrees.
//
// Compaction modes: under CompactionMode::kSync (the default) that pass
// runs inside ApplyEdits, so the batch that crosses the threshold pays the
// whole O(V + E) rewrite. Under kBackground the rewrite is built
// incrementally into a *shadow arena* by MaintenanceStep(budget) calls
// issued from quiescent windows (StreamDriver runs them between batches,
// under the engine mutex, so maintenance never races reads or splices).
// Each step copies up to `budget` edges of clean segments; ApplyEdits marks
// every vertex it touches dirty, invalidating its shadow copy. When the
// sweep completes, the epoch flips: dirty segments are re-copied to the
// shadow tail and the shadow arrays are swapped in wholesale. ApplyBatch
// therefore never compacts synchronously — unless slack outruns
// maintenance past kForcedSyncSlack, the correctness backstop.
//
// Neighbors()/Weights() still return contiguous std::spans, which is what
// keeps edge_map.h, the four engines, and the dependency stores untouched
// at the call-site level.
#ifndef SRC_GRAPH_SLACK_CSR_H_
#define SRC_GRAPH_SLACK_CSR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/graph/types.h"

namespace graphbolt {

class SlackCsr {
 public:
  // When the arena reclaims slack: inside ApplyEdits (kSync), or across
  // MaintenanceStep calls from quiescent windows (kBackground).
  enum class CompactionMode { kSync, kBackground };

  // Cumulative compaction accounting since construction (monotone, unlike
  // the per-call ApplyStats).
  struct CompactionStats {
    uint64_t sync_compactions = 0;        // full passes inside ApplyEdits
    uint64_t forced_sync_compactions = 0; // kBackground slack hit kForcedSyncSlack
    uint64_t background_compactions = 0;  // completed shadow flips
    uint64_t background_edges_copied = 0; // edges moved by maintenance steps
    uint64_t maintenance_steps = 0;       // MaintenanceStep calls that did work
  };
  // Per-touched-vertex edit list: targets to remove and (target, weight)
  // pairs to insert, both sorted by target. An add of a target that is also
  // being deleted re-inserts it (the weight-update lowering); an add of an
  // existing, undeleted target replaces its weight in place.
  struct VertexEdits {
    VertexId vertex = 0;
    std::vector<VertexId> deletes;
    std::vector<std::pair<VertexId, Weight>> adds;
  };

  // Work accounting of the most recent ApplyEdits call. The perf smoke test
  // asserts on these (deterministic, unlike wall-clock): edges_spliced must
  // scale with the batch, never with |E|.
  struct ApplyStats {
    size_t touched_vertices = 0;
    size_t edges_spliced = 0;   // entries moved by splices (untouched prefixes are free)
    size_t relocations = 0;     // segments moved to the arena tail
    size_t compactions = 0;     // whether this apply triggered compaction
    size_t compaction_edges = 0;  // edges moved by that compaction
    size_t rebuilds = 0;        // arena adopted wholesale (adaptive rebuild)
  };

  SlackCsr() = default;

  // Builds from an edge list with tight capacities (slack accrues only
  // where mutations land); `reverse` builds the CSC view.
  static SlackCsr FromEdges(VertexId num_vertices, std::span<const Edge> edges,
                            bool reverse = false);

  VertexId num_vertices() const { return static_cast<VertexId>(segments_.size()); }
  EdgeIndex num_edges() const { return live_edges_; }

  size_t Degree(VertexId v) const { return segments_[v].degree; }

  // Neighbor targets of v, sorted ascending, contiguous.
  std::span<const VertexId> Neighbors(VertexId v) const {
    const Segment& s = segments_[v];
    return {targets_.data() + s.offset, s.degree};
  }

  std::span<const Weight> Weights(VertexId v) const {
    const Segment& s = segments_[v];
    return {weights_.data() + s.offset, s.degree};
  }

  // True if edge (v, target) exists. O(log Degree(v)).
  bool HasEdge(VertexId v, VertexId target) const;

  // Weight of edge (v, target); kDefaultWeight if absent.
  Weight EdgeWeight(VertexId v, VertexId target) const;

  // Splices the per-touched-vertex edits into the arena in parallel:
  // O(Σ affected-vertex degrees), independent of V and E. Vertices listed
  // must be in range and listed at most once.
  void ApplyEdits(const std::vector<VertexEdits>& edits);

  // Grows the vertex set to `new_count` isolated (zero-capacity) vertices.
  void GrowVertices(VertexId new_count);

  // Rewrites the arena as a tight CSR (capacity == degree, zero slack).
  // Synchronous; also called automatically when slack passes the threshold
  // in kSync mode. Abandons any in-progress shadow compaction.
  void Compact();

  // Replaces the adjacency content with `rebuilt` (a freshly built tight
  // arena), keeping this view's compaction mode and cumulative compaction
  // counters. Any in-progress shadow compaction is abandoned (the rebuilt
  // arena has zero slack, so there is nothing left to reclaim). This is the
  // adaptive-rebuild path of MutableGraph::ApplyBatch: when a batch's
  // normalized impact rivals |E|, a linear-merge rebuild beats per-vertex
  // splicing (see BENCH_mutation_throughput.json). A rebuilt apply reports
  // zero edges_spliced in last_apply_stats() — the work was a rebuild, not
  // a splice — with `rebuilds` counting the adoption.
  void AdoptRebuilt(SlackCsr&& rebuilt);

  // Selects the compaction policy. Switching away from kBackground
  // abandons any in-progress shadow compaction (nothing was published yet,
  // so this is always safe).
  void SetCompactionMode(CompactionMode mode);
  CompactionMode compaction_mode() const { return compaction_mode_; }

  // One increment of background compaction: starts a shadow rewrite when
  // slack is over threshold, copies up to `max_edges` edges of clean
  // segments into it, and flips the epoch once the sweep completes. Must be
  // called from a quiescent window (no concurrent reads or ApplyEdits —
  // StreamDriver holds the engine mutex). Returns true while a shadow
  // rewrite remains in progress after the call. No-op in kSync mode.
  bool MaintenanceStep(size_t max_edges);

  bool compaction_in_progress() const { return shadow_.active; }

  const CompactionStats& compaction_stats() const { return compaction_stats_; }

  // Cumulative out-degree array (size V+1, prefix[v] = Σ_{u<v} degree(u)),
  // the replacement for Csr::offsets() in uniform-random edge sampling.
  // Rebuilt lazily after mutations — O(V) amortized over a batch of
  // samples. Not safe to call concurrently with mutation.
  const std::vector<EdgeIndex>& DegreePrefix() const;

  // Arena cells allocated vs. live edges; slack = used - live.
  EdgeIndex arena_used() const { return arena_used_; }
  double SlackFraction() const {
    return arena_used_ == 0
               ? 0.0
               : static_cast<double>(arena_used_ - live_edges_) / static_cast<double>(arena_used_);
  }

  const ApplyStats& last_apply_stats() const { return last_apply_; }

  // Validation: segments in bounds and non-overlapping, degrees within
  // capacity, targets in range and strictly sorted, edge count consistent.
  bool CheckInvariants() const;

  // Slack above this fraction of the arena triggers compaction (~30%).
  static constexpr double kCompactionThreshold = 0.30;
  // In kBackground mode, slack past this fraction forces a synchronous
  // compaction anyway — the backstop when mutation outruns maintenance.
  static constexpr double kForcedSyncSlack = 0.60;
  // Arenas smaller than this never compact (the rebuild would cost more
  // than the slack is worth).
  static constexpr EdgeIndex kMinCompactionArena = 1024;

 private:
  struct Segment {
    EdgeIndex offset = 0;
    uint32_t degree = 0;
    uint32_t capacity = 0;
  };

  // In-progress shadow rewrite (kBackground). `offsets` fixes each clean
  // vertex's tight slot from the degrees at start-of-epoch; segments edited
  // after their copy (or before it) are flagged dirty and re-copied to the
  // shadow tail at the flip, so the published arena is always current.
  struct ShadowState {
    bool active = false;
    std::vector<EdgeIndex> offsets;  // size V at start (grown with vertices)
    std::vector<uint8_t> dirty;      // parallel to offsets
    std::vector<VertexId> targets;
    std::vector<Weight> weights;
    VertexId copied_up_to = 0;  // clean-copy sweep cursor
    EdgeIndex total = 0;        // Σ degrees at start of epoch
  };

  void StartShadowCompaction();
  // Copies up to `max_edges` edges of clean segments; returns edges copied.
  size_t CopyShadowChunk(size_t max_edges);
  // Re-copies dirty segments to the shadow tail and publishes the shadow
  // arrays as the arena (the epoch flip).
  void FinishShadowCompaction();

  // Power-of-two capacity for a relocated segment of `degree` edges.
  static uint32_t RelocationCapacity(uint32_t degree);

  std::vector<Segment> segments_;   // size V
  std::vector<VertexId> targets_;   // shared arena, sorted per segment
  std::vector<Weight> weights_;     // parallel to targets_
  EdgeIndex arena_used_ = 0;        // allocation high-water mark in the arena
  EdgeIndex live_edges_ = 0;        // Σ degrees

  ApplyStats last_apply_;

  CompactionMode compaction_mode_ = CompactionMode::kSync;
  ShadowState shadow_;
  CompactionStats compaction_stats_;

  mutable std::vector<EdgeIndex> degree_prefix_;  // lazy, size V+1 when valid
  mutable bool prefix_valid_ = false;
};

}  // namespace graphbolt

#endif  // SRC_GRAPH_SLACK_CSR_H_
