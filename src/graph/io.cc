#include "src/graph/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/util/logging.h"

namespace graphbolt {

namespace {
constexpr uint64_t kBinaryMagic = 0x47424f4c54453031ULL;  // "GBOLTE01"
}

EdgeList LoadEdgeListText(const std::string& path, bool* ok) {
  EdgeList list;
  std::ifstream in(path);
  if (!in) {
    GB_LOG(kError) << "cannot open " << path;
    if (ok != nullptr) {
      *ok = false;
    }
    return list;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      continue;
    }
    std::istringstream fields(line);
    uint64_t src = 0;
    uint64_t dst = 0;
    double weight = kDefaultWeight;
    if (!(fields >> src >> dst)) {
      continue;  // malformed line: skip
    }
    fields >> weight;  // optional
    list.Add(static_cast<VertexId>(src), static_cast<VertexId>(dst),
             static_cast<Weight>(weight));
  }
  if (ok != nullptr) {
    *ok = true;
  }
  return list;
}

bool SaveEdgeListText(const EdgeList& list, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    GB_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  out << "# graphbolt edge list: " << list.num_vertices() << " vertices, "
      << list.num_edges() << " edges\n";
  for (const Edge& e : list.edges()) {
    out << e.src << " " << e.dst << " " << e.weight << "\n";
  }
  return static_cast<bool>(out);
}

bool SaveEdgeListBinary(const EdgeList& list, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    GB_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  const uint64_t magic = kBinaryMagic;
  const uint64_t num_vertices = list.num_vertices();
  const uint64_t num_edges = list.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&num_vertices), sizeof(num_vertices));
  out.write(reinterpret_cast<const char*>(&num_edges), sizeof(num_edges));
  out.write(reinterpret_cast<const char*>(list.edges().data()),
            static_cast<std::streamsize>(num_edges * sizeof(Edge)));
  return static_cast<bool>(out);
}

EdgeList LoadEdgeListBinary(const std::string& path, bool* ok) {
  EdgeList list;
  std::ifstream in(path, std::ios::binary);
  if (ok != nullptr) {
    *ok = false;
  }
  if (!in) {
    GB_LOG(kError) << "cannot open " << path;
    return list;
  }
  uint64_t magic = 0;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&num_vertices), sizeof(num_vertices));
  in.read(reinterpret_cast<char*>(&num_edges), sizeof(num_edges));
  if (!in || magic != kBinaryMagic) {
    GB_LOG(kError) << path << " is not a graphbolt binary edge list";
    return list;
  }
  list.set_num_vertices(static_cast<VertexId>(num_vertices));
  list.edges().resize(num_edges);
  in.read(reinterpret_cast<char*>(list.edges().data()),
          static_cast<std::streamsize>(num_edges * sizeof(Edge)));
  if (!in) {
    GB_LOG(kError) << path << " truncated";
    list = EdgeList();
    return list;
  }
  if (ok != nullptr) {
    *ok = true;
  }
  return list;
}

}  // namespace graphbolt
