#include "src/graph/mutable_graph.h"

#include <algorithm>
#include <map>

#include "src/util/logging.h"

namespace graphbolt {
namespace {

// Groups normalized adds/deletes into per-touched-vertex edit lists keyed by
// `key` (src for the CSR view, dst for the CSC view). Scratch is O(batch):
// the ops are sorted by (key, target) and swept once.
std::vector<SlackCsr::VertexEdits> GroupEdits(const AppliedMutations& result, bool key_by_dst) {
  struct Op {
    VertexId key;
    VertexId target;
    Weight weight;
    bool is_add;
  };
  std::vector<Op> ops;
  ops.reserve(result.added.size() + result.deleted.size());
  for (const Edge& e : result.added) {
    ops.push_back(key_by_dst ? Op{e.dst, e.src, e.weight, true} : Op{e.src, e.dst, e.weight, true});
  }
  for (const Edge& e : result.deleted) {
    ops.push_back(key_by_dst ? Op{e.dst, e.src, e.weight, false}
                             : Op{e.src, e.dst, e.weight, false});
  }
  std::sort(ops.begin(), ops.end(), [](const Op& a, const Op& b) {
    if (a.key != b.key) {
      return a.key < b.key;
    }
    return a.target < b.target;
  });

  std::vector<SlackCsr::VertexEdits> edits;
  for (const Op& op : ops) {
    if (edits.empty() || edits.back().vertex != op.key) {
      edits.push_back({op.key, {}, {}});
    }
    if (op.is_add) {
      edits.back().adds.push_back({op.target, op.weight});
    } else {
      edits.back().deletes.push_back(op.target);
    }
  }
  return edits;
}

}  // namespace

MutableGraph::MutableGraph(EdgeList edges) {
  edges.SortAndDeduplicate();
  out_ = SlackCsr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/false);
  in_ = SlackCsr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/true);
}

VertexId MutableGraph::AddVertices(VertexId count) {
  const VertexId first = num_vertices();
  out_.GrowVertices(first + count);
  in_.GrowVertices(first + count);
  return first;
}

AppliedMutations MutableGraph::NormalizeBatch(const MutationBatch& batch) const {
  AppliedMutations result;
  // Normalize: last mutation per endpoint pair wins; self-loops dropped.
  std::map<std::pair<VertexId, VertexId>, EdgeMutation> last;
  for (const EdgeMutation& m : batch) {
    if (m.src == m.dst) {
      continue;
    }
    last[{m.src, m.dst}] = m;
  }
  const VertexId n = num_vertices();
  for (const auto& [endpoints, m] : last) {
    const auto [src, dst] = endpoints;
    const bool exists = src < n && dst < n && out_.HasEdge(src, dst);
    switch (m.kind) {
      case MutationKind::kAddEdge:
        if (!exists) {
          result.added.push_back({src, dst, m.weight});
        }
        break;
      case MutationKind::kDeleteEdge:
        if (exists) {
          result.deleted.push_back({src, dst, out_.EdgeWeight(src, dst)});
        }
        break;
      case MutationKind::kUpdateWeight:
        // Lowered to delete(old weight) + add(new weight) so engines can
        // retract the old contribution exactly.
        if (exists) {
          const Weight old_weight = out_.EdgeWeight(src, dst);
          if (old_weight != m.weight) {
            result.deleted.push_back({src, dst, old_weight});
            result.added.push_back({src, dst, m.weight});
          }
        }
        break;
    }
  }
  return result;
}

MutableGraph::SingleEffect MutableGraph::NormalizeSingle(const EdgeMutation& m) const {
  SingleEffect eff;
  if (m.src == m.dst) {
    return eff;
  }
  const VertexId n = num_vertices();
  const bool exists = m.src < n && m.dst < n && out_.HasEdge(m.src, m.dst);
  switch (m.kind) {
    case MutationKind::kAddEdge:
      if (!exists) {
        eff.has_add = true;
        eff.added = {m.src, m.dst, m.weight};
      }
      break;
    case MutationKind::kDeleteEdge:
      if (exists) {
        eff.has_delete = true;
        eff.deleted = {m.src, m.dst, out_.EdgeWeight(m.src, m.dst)};
      }
      break;
    case MutationKind::kUpdateWeight:
      if (exists) {
        const Weight old_weight = out_.EdgeWeight(m.src, m.dst);
        if (old_weight != m.weight) {
          eff.has_delete = true;
          eff.deleted = {m.src, m.dst, old_weight};
          eff.has_add = true;
          eff.added = {m.src, m.dst, m.weight};
        }
      }
      break;
  }
  return eff;
}

MutableGraph::SingleEffect MutableGraph::ApplySingle(const EdgeMutation& m) {
  if (strategy_ == ApplyStrategy::kRebuild) {
    // The rebuild reference path has no single-mutation shape; delegate so
    // differential tests see identical arena states on both routes.
    const AppliedMutations result = ApplyBatch(MutationBatch{m});
    SingleEffect eff;
    if (!result.added.empty()) {
      eff.has_add = true;
      eff.added = result.added.front();
    }
    if (!result.deleted.empty()) {
      eff.has_delete = true;
      eff.deleted = result.deleted.front();
    }
    return eff;
  }
  const VertexId max_vertex = std::max(m.src, m.dst);
  if (max_vertex >= num_vertices()) {
    AddVertices(max_vertex + 1 - num_vertices());
  }
  const SingleEffect eff = NormalizeSingle(m);
  if (eff.Empty()) {
    return eff;
  }
  // One touched vertex per view. The edit lists persist per thread so the
  // hot path (safe IngestFast splices) runs allocation-free once warm.
  static thread_local std::vector<SlackCsr::VertexEdits> out_edits(1);
  static thread_local std::vector<SlackCsr::VertexEdits> in_edits(1);
  const auto fill = [&eff](std::vector<SlackCsr::VertexEdits>& edits, VertexId key,
                           VertexId target) {
    SlackCsr::VertexEdits& ed = edits.front();
    ed.vertex = key;
    ed.deletes.clear();
    ed.adds.clear();
    if (eff.has_delete) {
      ed.deletes.push_back(target);
    }
    if (eff.has_add) {
      ed.adds.push_back({target, eff.added.weight});
    }
  };
  fill(out_edits, m.src, m.dst);
  fill(in_edits, m.dst, m.src);
  out_.ApplyEdits(out_edits);
  in_.ApplyEdits(in_edits);
  return eff;
}

AppliedMutations MutableGraph::ApplyBatch(const MutationBatch& batch) {
  AppliedMutations result;
  if (batch.empty()) {
    return result;
  }

  // Grow the vertex set to cover every referenced endpoint.
  VertexId max_vertex = 0;
  for (const EdgeMutation& m : batch) {
    max_vertex = std::max({max_vertex, m.src, m.dst});
  }
  if (max_vertex >= num_vertices()) {
    AddVertices(max_vertex + 1 - num_vertices());
  }

  result = NormalizeBatch(batch);
  if (result.Empty()) {
    return result;
  }

  // Splice-vs-rebuild decision: splicing is O(impact) and wins for small
  // batches; once the normalized impact rivals the edge set, one linear
  // merge + tight rebuild is cheaper than |impact| per-vertex splices.
  const size_t impact = result.added.size() + result.deleted.size();
  const bool rebuild =
      strategy_ == ApplyStrategy::kRebuild ||
      (strategy_ == ApplyStrategy::kAuto && impact >= kMinRebuildImpact &&
       impact * kRebuildImpactFactor >= static_cast<size_t>(num_edges()) + impact);
  if (rebuild) {
    RebuildFromEdits(result);
    ++adaptive_rebuilds_;
    return result;
  }

  const std::vector<SlackCsr::VertexEdits> out_edits = GroupEdits(result, /*key_by_dst=*/false);
  const std::vector<SlackCsr::VertexEdits> in_edits = GroupEdits(result, /*key_by_dst=*/true);
  out_.ApplyEdits(out_edits);
  in_.ApplyEdits(in_edits);
  return result;
}

void MutableGraph::RebuildFromEdits(const AppliedMutations& result) {
  const VertexId n = num_vertices();
  const std::vector<SlackCsr::VertexEdits> out_edits = GroupEdits(result, /*key_by_dst=*/false);
  std::vector<Edge> merged;
  merged.reserve(static_cast<size_t>(num_edges()) + result.added.size());
  size_t ei = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = out_.Neighbors(v);
    const auto wts = out_.Weights(v);
    if (ei >= out_edits.size() || out_edits[ei].vertex != v) {
      for (size_t i = 0; i < nbrs.size(); ++i) {
        merged.push_back({v, nbrs[i], wts[i]});
      }
      continue;
    }
    // Three-way merge per touched vertex, all inputs sorted by target. An
    // add wins a tie with an existing entry (the weight-update lowering
    // re-inserts under the new weight) and retires any delete of the same
    // target; a delete drops the existing entry.
    const SlackCsr::VertexEdits& ed = out_edits[ei];
    ++ei;
    size_t i = 0;
    size_t a = 0;
    size_t d = 0;
    while (i < nbrs.size() || a < ed.adds.size()) {
      if (a < ed.adds.size() && (i >= nbrs.size() || ed.adds[a].first <= nbrs[i])) {
        const VertexId target = ed.adds[a].first;
        merged.push_back({v, target, ed.adds[a].second});
        if (i < nbrs.size() && nbrs[i] == target) {
          ++i;  // replaced the existing entry
        }
        while (d < ed.deletes.size() && ed.deletes[d] <= target) {
          ++d;  // delete superseded by the re-insert
        }
        ++a;
      } else {
        const VertexId target = nbrs[i];
        while (d < ed.deletes.size() && ed.deletes[d] < target) {
          ++d;
        }
        if (d < ed.deletes.size() && ed.deletes[d] == target) {
          ++d;
          ++i;
          continue;
        }
        merged.push_back({v, target, wts[i]});
        ++i;
      }
    }
  }
  out_.AdoptRebuilt(SlackCsr::FromEdges(n, merged, /*reverse=*/false));
  in_.AdoptRebuilt(SlackCsr::FromEdges(n, merged, /*reverse=*/true));
}

EdgeList MutableGraph::ToEdgeList() const {
  EdgeList list;
  list.set_num_vertices(num_vertices());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto nbrs = out_.Neighbors(v);
    const auto wts = out_.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      list.edges().push_back({v, nbrs[i], wts[i]});
    }
  }
  return list;
}

}  // namespace graphbolt
