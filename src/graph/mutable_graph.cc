#include "src/graph/mutable_graph.h"

#include <algorithm>
#include <map>

#include "src/util/logging.h"

namespace graphbolt {
namespace {

// Groups normalized adds/deletes into per-touched-vertex edit lists keyed by
// `key` (src for the CSR view, dst for the CSC view). Scratch is O(batch):
// the ops are sorted by (key, target) and swept once.
std::vector<SlackCsr::VertexEdits> GroupEdits(const AppliedMutations& result, bool key_by_dst) {
  struct Op {
    VertexId key;
    VertexId target;
    Weight weight;
    bool is_add;
  };
  std::vector<Op> ops;
  ops.reserve(result.added.size() + result.deleted.size());
  for (const Edge& e : result.added) {
    ops.push_back(key_by_dst ? Op{e.dst, e.src, e.weight, true} : Op{e.src, e.dst, e.weight, true});
  }
  for (const Edge& e : result.deleted) {
    ops.push_back(key_by_dst ? Op{e.dst, e.src, e.weight, false}
                             : Op{e.src, e.dst, e.weight, false});
  }
  std::sort(ops.begin(), ops.end(), [](const Op& a, const Op& b) {
    if (a.key != b.key) {
      return a.key < b.key;
    }
    return a.target < b.target;
  });

  std::vector<SlackCsr::VertexEdits> edits;
  for (const Op& op : ops) {
    if (edits.empty() || edits.back().vertex != op.key) {
      edits.push_back({op.key, {}, {}});
    }
    if (op.is_add) {
      edits.back().adds.push_back({op.target, op.weight});
    } else {
      edits.back().deletes.push_back(op.target);
    }
  }
  return edits;
}

}  // namespace

MutableGraph::MutableGraph(EdgeList edges) {
  edges.SortAndDeduplicate();
  out_ = SlackCsr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/false);
  in_ = SlackCsr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/true);
}

VertexId MutableGraph::AddVertices(VertexId count) {
  const VertexId first = num_vertices();
  out_.GrowVertices(first + count);
  in_.GrowVertices(first + count);
  return first;
}

AppliedMutations MutableGraph::NormalizeBatch(const MutationBatch& batch) const {
  AppliedMutations result;
  // Normalize: last mutation per endpoint pair wins; self-loops dropped.
  std::map<std::pair<VertexId, VertexId>, EdgeMutation> last;
  for (const EdgeMutation& m : batch) {
    if (m.src == m.dst) {
      continue;
    }
    last[{m.src, m.dst}] = m;
  }
  const VertexId n = num_vertices();
  for (const auto& [endpoints, m] : last) {
    const auto [src, dst] = endpoints;
    const bool exists = src < n && dst < n && out_.HasEdge(src, dst);
    switch (m.kind) {
      case MutationKind::kAddEdge:
        if (!exists) {
          result.added.push_back({src, dst, m.weight});
        }
        break;
      case MutationKind::kDeleteEdge:
        if (exists) {
          result.deleted.push_back({src, dst, out_.EdgeWeight(src, dst)});
        }
        break;
      case MutationKind::kUpdateWeight:
        // Lowered to delete(old weight) + add(new weight) so engines can
        // retract the old contribution exactly.
        if (exists) {
          const Weight old_weight = out_.EdgeWeight(src, dst);
          if (old_weight != m.weight) {
            result.deleted.push_back({src, dst, old_weight});
            result.added.push_back({src, dst, m.weight});
          }
        }
        break;
    }
  }
  return result;
}

AppliedMutations MutableGraph::ApplyBatch(const MutationBatch& batch) {
  AppliedMutations result;
  if (batch.empty()) {
    return result;
  }

  // Grow the vertex set to cover every referenced endpoint.
  VertexId max_vertex = 0;
  for (const EdgeMutation& m : batch) {
    max_vertex = std::max({max_vertex, m.src, m.dst});
  }
  if (max_vertex >= num_vertices()) {
    AddVertices(max_vertex + 1 - num_vertices());
  }

  result = NormalizeBatch(batch);
  if (result.Empty()) {
    return result;
  }

  const std::vector<SlackCsr::VertexEdits> out_edits = GroupEdits(result, /*key_by_dst=*/false);
  const std::vector<SlackCsr::VertexEdits> in_edits = GroupEdits(result, /*key_by_dst=*/true);
  out_.ApplyEdits(out_edits);
  in_.ApplyEdits(in_edits);
  return result;
}

EdgeList MutableGraph::ToEdgeList() const {
  EdgeList list;
  list.set_num_vertices(num_vertices());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto nbrs = out_.Neighbors(v);
    const auto wts = out_.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      list.edges().push_back({v, nbrs[i], wts[i]});
    }
  }
  return list;
}

}  // namespace graphbolt
