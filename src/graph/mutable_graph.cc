#include "src/graph/mutable_graph.h"

#include <algorithm>
#include <map>

#include "src/util/logging.h"

namespace graphbolt {

MutableGraph::MutableGraph(EdgeList edges) {
  edges.SortAndDeduplicate();
  out_ = Csr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/false);
  in_ = Csr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/true);
}

VertexId MutableGraph::AddVertices(VertexId count) {
  const VertexId first = num_vertices();
  out_.GrowVertices(first + count);
  in_.GrowVertices(first + count);
  return first;
}

AppliedMutations MutableGraph::NormalizeBatch(const MutationBatch& batch) const {
  AppliedMutations result;
  // Normalize: last mutation per endpoint pair wins; self-loops dropped.
  std::map<std::pair<VertexId, VertexId>, EdgeMutation> last;
  for (const EdgeMutation& m : batch) {
    if (m.src == m.dst) {
      continue;
    }
    last[{m.src, m.dst}] = m;
  }
  const VertexId n = num_vertices();
  for (const auto& [endpoints, m] : last) {
    const auto [src, dst] = endpoints;
    const bool exists = src < n && dst < n && out_.HasEdge(src, dst);
    switch (m.kind) {
      case MutationKind::kAddEdge:
        if (!exists) {
          result.added.push_back({src, dst, m.weight});
        }
        break;
      case MutationKind::kDeleteEdge:
        if (exists) {
          result.deleted.push_back({src, dst, out_.EdgeWeight(src, dst)});
        }
        break;
      case MutationKind::kUpdateWeight:
        // Lowered to delete(old weight) + add(new weight) so engines can
        // retract the old contribution exactly.
        if (exists) {
          const Weight old_weight = out_.EdgeWeight(src, dst);
          if (old_weight != m.weight) {
            result.deleted.push_back({src, dst, old_weight});
            result.added.push_back({src, dst, m.weight});
          }
        }
        break;
    }
  }
  return result;
}

AppliedMutations MutableGraph::ApplyBatch(const MutationBatch& batch) {
  AppliedMutations result;
  if (batch.empty()) {
    return result;
  }

  // Grow the vertex set to cover every referenced endpoint.
  VertexId max_vertex = 0;
  for (const EdgeMutation& m : batch) {
    max_vertex = std::max({max_vertex, m.src, m.dst});
  }
  if (max_vertex >= num_vertices()) {
    AddVertices(max_vertex + 1 - num_vertices());
  }

  result = NormalizeBatch(batch);

  const VertexId n = num_vertices();
  std::vector<std::vector<VertexId>> out_deletes(n);
  std::vector<std::vector<std::pair<VertexId, Weight>>> out_adds(n);
  std::vector<std::vector<VertexId>> in_deletes(n);
  std::vector<std::vector<std::pair<VertexId, Weight>>> in_adds(n);

  for (const Edge& e : result.added) {
    out_adds[e.src].push_back({e.dst, e.weight});
    in_adds[e.dst].push_back({e.src, e.weight});
  }
  for (const Edge& e : result.deleted) {
    out_deletes[e.src].push_back(e.dst);
    in_deletes[e.dst].push_back(e.src);
  }

  // std::map iteration gives (src, dst) order so out_* lists are already
  // sorted by target; in_* need a sort per touched vertex.
  for (auto& v : in_deletes) {
    std::sort(v.begin(), v.end());
  }
  for (auto& v : in_adds) {
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  out_.ApplyEdits(out_deletes, out_adds);
  in_.ApplyEdits(in_deletes, in_adds);
  return result;
}

EdgeList MutableGraph::ToEdgeList() const {
  EdgeList list;
  list.set_num_vertices(num_vertices());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto nbrs = out_.Neighbors(v);
    const auto wts = out_.Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      list.edges().push_back({v, nbrs[i], wts[i]});
    }
  }
  return list;
}

}  // namespace graphbolt
