#include "src/graph/csr.h"

#include <algorithm>

#include "src/parallel/parallel_for.h"
#include "src/parallel/reducer.h"
#include "src/util/logging.h"

namespace graphbolt {

Csr Csr::FromEdges(VertexId num_vertices, std::span<const Edge> edges, bool reverse) {
  Csr csr;
  csr.offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);

  std::vector<EdgeIndex> degrees(num_vertices, 0);
  for (const Edge& e : edges) {
    const VertexId from = reverse ? e.dst : e.src;
    GB_CHECK(from < num_vertices) << "edge endpoint out of range";
    ++degrees[from];
  }
  EdgeIndex running = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    csr.offsets_[v] = running;
    running += degrees[v];
  }
  csr.offsets_[num_vertices] = running;

  csr.targets_.resize(running);
  csr.weights_.resize(running);
  std::vector<EdgeIndex> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : edges) {
    const VertexId from = reverse ? e.dst : e.src;
    const VertexId to = reverse ? e.src : e.dst;
    const EdgeIndex slot = cursor[from]++;
    csr.targets_[slot] = to;
    csr.weights_[slot] = e.weight;
  }

  // Sort each adjacency list by target (weights move with their targets).
  ParallelFor(0, num_vertices, [&csr](size_t v) {
    const EdgeIndex lo = csr.offsets_[v];
    const EdgeIndex hi = csr.offsets_[v + 1];
    const size_t degree = static_cast<size_t>(hi - lo);
    if (degree <= 1) {
      return;
    }
    std::vector<std::pair<VertexId, Weight>> scratch(degree);
    for (size_t i = 0; i < degree; ++i) {
      scratch[i] = {csr.targets_[lo + i], csr.weights_[lo + i]};
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i < degree; ++i) {
      csr.targets_[lo + i] = scratch[i].first;
      csr.weights_[lo + i] = scratch[i].second;
    }
  }, /*grain=*/256);
  return csr;
}

bool Csr::HasEdge(VertexId v, VertexId target) const {
  const auto nbrs = Neighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), target);
}

Weight Csr::EdgeWeight(VertexId v, VertexId target) const {
  const auto nbrs = Neighbors(v);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), target);
  if (it == nbrs.end() || *it != target) {
    return kDefaultWeight;
  }
  return weights_[offsets_[v] + static_cast<EdgeIndex>(it - nbrs.begin())];
}

void Csr::ApplyEdits(const std::vector<std::vector<VertexId>>& deletes,
                     const std::vector<std::vector<std::pair<VertexId, Weight>>>& adds) {
  const VertexId n = num_vertices();
  GB_CHECK(deletes.size() == n && adds.size() == n) << "edit arrays must cover all vertices";

  // Pass 1: per-vertex degree deltas -> new offsets via prefix sum. An add
  // whose target already exists (and is not being deleted) replaces the edge
  // in place, so it does not increase the degree.
  std::vector<EdgeIndex> new_degrees(n, 0);
  ParallelFor(0, n, [&, this](size_t v) {
    const size_t old_degree = Degree(static_cast<VertexId>(v));
    GB_CHECK(deletes[v].size() <= old_degree) << "more deletions than edges at vertex " << v;
    size_t overlap = 0;
    const auto nbrs = Neighbors(static_cast<VertexId>(v));
    size_t di = 0;
    for (const auto& [target, weight] : adds[v]) {
      while (di < deletes[v].size() && deletes[v][di] < target) {
        ++di;
      }
      const bool deleted = di < deletes[v].size() && deletes[v][di] == target;
      if (!deleted && std::binary_search(nbrs.begin(), nbrs.end(), target)) {
        ++overlap;
      }
    }
    new_degrees[v] = old_degree - deletes[v].size() + adds[v].size() - overlap;
  });
  std::vector<EdgeIndex> new_offsets(static_cast<size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    new_offsets[v + 1] = new_offsets[v] + new_degrees[v];
  }

  // Pass 2: per-vertex three-way merge of (old \ deletes) with adds, in
  // parallel over vertices. All inputs are sorted by target so the merge is
  // linear and output lists stay sorted.
  std::vector<VertexId> new_targets(new_offsets.back());
  std::vector<Weight> new_weights(new_offsets.back());
  ParallelFor(0, n, [&, this](size_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    const auto old_nbrs = Neighbors(v);
    const auto old_wts = Weights(v);
    const auto& del = deletes[vi];
    const auto& add = adds[vi];
    EdgeIndex out = new_offsets[vi];
    size_t di = 0;
    size_t ai = 0;
    for (size_t i = 0; i < old_nbrs.size(); ++i) {
      const VertexId t = old_nbrs[i];
      // Insert pending additions that come before this survivor.
      while (ai < add.size() && add[ai].first < t) {
        new_targets[out] = add[ai].first;
        new_weights[out] = add[ai].second;
        ++out;
        ++ai;
      }
      if (di < del.size() && del[di] == t) {
        ++di;  // deleted: skip
        continue;
      }
      if (ai < add.size() && add[ai].first == t) {
        // Re-adding an existing edge updates its weight in place.
        new_targets[out] = t;
        new_weights[out] = add[ai].second;
        ++out;
        ++ai;
        continue;
      }
      new_targets[out] = t;
      new_weights[out] = old_wts[i];
      ++out;
    }
    while (ai < add.size()) {
      new_targets[out] = add[ai].first;
      new_weights[out] = add[ai].second;
      ++out;
      ++ai;
    }
    GB_CHECK(out == new_offsets[vi + 1]) << "merge produced wrong degree at vertex " << v;
  }, /*grain=*/256);

  offsets_ = std::move(new_offsets);
  targets_ = std::move(new_targets);
  weights_ = std::move(new_weights);
}

void Csr::GrowVertices(VertexId new_count) {
  const VertexId old_count = num_vertices();
  if (new_count <= old_count) {
    return;
  }
  const EdgeIndex tail = offsets_.empty() ? 0 : offsets_.back();
  if (offsets_.empty()) {
    offsets_.push_back(0);
  }
  offsets_.resize(static_cast<size_t>(new_count) + 1, tail);
}

bool Csr::CheckInvariants() const {
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (offsets_[v] > offsets_[v + 1]) {
      return false;
    }
    const auto nbrs = Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n) {
        return false;
      }
      if (i > 0 && nbrs[i - 1] >= nbrs[i]) {
        return false;  // unsorted or duplicate
      }
    }
  }
  return targets_.size() == num_edges() && weights_.size() == num_edges();
}

}  // namespace graphbolt
