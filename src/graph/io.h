// Graph file IO: whitespace-separated edge-list text ("src dst [weight]"
// per line, '#' comments) and a compact binary snapshot format.
#ifndef SRC_GRAPH_IO_H_
#define SRC_GRAPH_IO_H_

#include <string>

#include "src/graph/edge_list.h"

namespace graphbolt {

// Loads a text edge list. Lines starting with '#' or '%' are comments.
// Returns an empty list and logs on failure; `ok` (if non-null) reports
// success.
EdgeList LoadEdgeListText(const std::string& path, bool* ok = nullptr);

// Writes "src dst weight" lines. Returns false on IO failure.
bool SaveEdgeListText(const EdgeList& list, const std::string& path);

// Binary snapshot: magic, counts, then packed edges. Round-trips exactly.
bool SaveEdgeListBinary(const EdgeList& list, const std::string& path);
EdgeList LoadEdgeListBinary(const std::string& path, bool* ok = nullptr);

}  // namespace graphbolt

#endif  // SRC_GRAPH_IO_H_
