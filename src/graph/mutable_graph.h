// The streaming graph of §4.1: dual slack-CSR/CSC with batched in-place
// mutation.
//
// Out-edges live in a SlackCsr and in-edges in a reversed SlackCsr so
// engines can push (sparse frontiers) or pull (dense iterations /
// non-decomposable re-evaluation). Mutation batches are normalized (dedup,
// drop no-ops) and spliced into both views atomically, touching only the
// affected vertices — O(batch impact), not O(V+E); the normalized (Ea, Ed)
// result feeds refinement. The rebuild-on-apply Csr remains available as
// the reference implementation (csr.h) for differential tests and the
// old-path benchmark.
#ifndef SRC_GRAPH_MUTABLE_GRAPH_H_
#define SRC_GRAPH_MUTABLE_GRAPH_H_

#include <span>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/graph/mutation.h"
#include "src/graph/slack_csr.h"
#include "src/graph/types.h"

namespace graphbolt {

class MutableGraph {
 public:
  // How ApplyBatch turns the normalized edits into arena updates.
  // kSplice always pays O(batch impact) per-vertex splicing; kRebuild
  // always rebuilds both views from a linear merge (O(V + E), but with a
  // much smaller constant than |impact| splices once impact rivals |E|);
  // kAuto picks per batch from the normalized impact — the crossover
  // measured by BENCH_mutation_throughput.json (rebuild wins at >= 1e5-edge
  // batches on ~1e6-edge graphs, splice at 0.82-0.92x below it).
  enum class ApplyStrategy { kAuto, kSplice, kRebuild };

  // kAuto rebuilds when impact >= kMinRebuildImpact and
  // impact * kRebuildImpactFactor >= |E| + impact (i.e. the batch touches
  // more than ~1/24 of the post-apply edge set) — the geometric middle of
  // the measured 0.8%-8% crossover band, gated by an absolute floor so
  // small graphs never rebuild.
  static constexpr size_t kMinRebuildImpact = 32768;
  static constexpr size_t kRebuildImpactFactor = 24;

  MutableGraph() = default;

  // Builds from an edge list (deduplicated internally).
  explicit MutableGraph(EdgeList edges);

  VertexId num_vertices() const { return out_.num_vertices(); }
  EdgeIndex num_edges() const { return out_.num_edges(); }

  const SlackCsr& out() const { return out_; }
  const SlackCsr& in() const { return in_; }

  size_t OutDegree(VertexId v) const { return out_.Degree(v); }
  size_t InDegree(VertexId v) const { return in_.Degree(v); }

  std::span<const VertexId> OutNeighbors(VertexId v) const { return out_.Neighbors(v); }
  std::span<const VertexId> InNeighbors(VertexId v) const { return in_.Neighbors(v); }
  std::span<const Weight> OutWeights(VertexId v) const { return out_.Weights(v); }
  std::span<const Weight> InWeights(VertexId v) const { return in_.Weights(v); }

  bool HasEdge(VertexId src, VertexId dst) const { return out_.HasEdge(src, dst); }
  Weight EdgeWeight(VertexId src, VertexId dst) const { return out_.EdgeWeight(src, dst); }

  // Adds `count` isolated vertices; returns the id of the first new vertex.
  VertexId AddVertices(VertexId count);

  // Computes the normalized effect of `batch` against the current graph
  // without applying it: duplicates collapsed (last mutation per endpoint
  // pair wins), self-loops dropped, no-op additions of present edges and
  // deletions of absent edges removed. Endpoints beyond the current vertex
  // range are treated as isolated vertices.
  AppliedMutations NormalizeBatch(const MutationBatch& batch) const;

  // Applies a batch atomically to both CSR and CSC views. Mutations that
  // reference vertices >= num_vertices() grow the vertex set first. Scratch
  // is sized by touched vertices, not V, so a 1-edge batch allocates O(1).
  // Returns the normalized effect (see NormalizeBatch).
  AppliedMutations ApplyBatch(const MutationBatch& batch);

  // Normalized effect of ONE mutation: at most one delete plus one add of
  // the same endpoint pair (the weight-update lowering). Equivalent to
  // NormalizeBatch({m}) but with no heap allocation — the single-update
  // fast path classifies against this on every IngestFast call.
  struct SingleEffect {
    bool has_add = false;
    bool has_delete = false;
    Edge added{};    // valid iff has_add
    Edge deleted{};  // valid iff has_delete
    bool Empty() const { return !has_add && !has_delete; }
  };
  SingleEffect NormalizeSingle(const EdgeMutation& m) const;

  // Applies one mutation with semantics identical to ApplyBatch({m}), but
  // the splice scratch is thread-local and reused across calls, so the
  // steady-state single-update fast path never touches the allocator.
  // Returns the normalized effect (see NormalizeSingle).
  SingleEffect ApplySingle(const EdgeMutation& m);

  // Exports all edges (sorted by (src, dst)); used by tests and snapshots.
  EdgeList ToEdgeList() const;

  // Compaction policy for both views (see slack_csr.h). Under kBackground,
  // ApplyBatch never compacts synchronously (short of the kForcedSyncSlack
  // backstop); slack is reclaimed by MaintenanceStep calls instead.
  void SetCompactionMode(SlackCsr::CompactionMode mode) {
    out_.SetCompactionMode(mode);
    in_.SetCompactionMode(mode);
  }

  // One background-compaction increment across both views; call from a
  // quiescent window (StreamDriver does, between batches under the engine
  // mutex). Returns true while either view still has a rewrite in flight.
  bool MaintenanceStep(size_t max_edges) {
    const bool out_pending = out_.MaintenanceStep(max_edges);
    const bool in_pending = in_.MaintenanceStep(max_edges);
    return out_pending || in_pending;
  }

  bool compaction_in_progress() const {
    return out_.compaction_in_progress() || in_.compaction_in_progress();
  }

  // Cumulative compaction counters summed over both views.
  SlackCsr::CompactionStats compaction_stats() const {
    SlackCsr::CompactionStats merged = out_.compaction_stats();
    const SlackCsr::CompactionStats& in_stats = in_.compaction_stats();
    merged.sync_compactions += in_stats.sync_compactions;
    merged.forced_sync_compactions += in_stats.forced_sync_compactions;
    merged.background_compactions += in_stats.background_compactions;
    merged.background_edges_copied += in_stats.background_edges_copied;
    merged.maintenance_steps += in_stats.maintenance_steps;
    return merged;
  }

  bool CheckInvariants() const { return out_.CheckInvariants() && in_.CheckInvariants() && out_.num_edges() == in_.num_edges(); }

  // Selects the ApplyBatch strategy (default kAuto). Forcing kSplice or
  // kRebuild pins the path for differential tests and benchmarks.
  void SetApplyStrategy(ApplyStrategy strategy) { strategy_ = strategy; }
  ApplyStrategy apply_strategy() const { return strategy_; }

  // Batches applied via the rebuild path since construction (cumulative;
  // drivers mirror this into EngineStats::adaptive_rebuilds).
  uint64_t adaptive_rebuilds() const { return adaptive_rebuilds_; }

 private:
  // Rebuilds both views from a linear merge of the current (sorted)
  // adjacency with the normalized edits. Bitwise-equivalent to splicing:
  // the merged edge array is sorted by (src, dst) with identical weights,
  // so Neighbors()/Weights() spans come back in the same order.
  void RebuildFromEdits(const AppliedMutations& result);

  SlackCsr out_;
  SlackCsr in_;
  ApplyStrategy strategy_ = ApplyStrategy::kAuto;
  uint64_t adaptive_rebuilds_ = 0;
};

}  // namespace graphbolt

#endif  // SRC_GRAPH_MUTABLE_GRAPH_H_
