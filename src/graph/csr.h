// Compressed Sparse Row adjacency: the read-only core of the graph layout
// described in §4.1 of the paper. A Csr stores out-edges; the same structure
// built from reversed edges serves as the CSC (in-edge) view.
//
// This is the *reference* implementation: ApplyEdits rebuilds the whole
// structure (O(V+E) per batch). The live graph (MutableGraph) uses SlackCsr
// (slack_csr.h) for O(batch) in-place mutation; Csr stays as the oracle the
// differential fuzz tests and the old-path benchmark compare against.
//
// Neighbor lists are kept sorted by target id, which gives O(log d) edge
// lookup and linear-merge set intersection for Triangle Counting.
#ifndef SRC_GRAPH_CSR_H_
#define SRC_GRAPH_CSR_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/graph/types.h"

namespace graphbolt {

class Csr {
 public:
  Csr() = default;

  // Builds from an edge list; `reverse` builds the CSC (edges flipped).
  static Csr FromEdges(VertexId num_vertices, std::span<const Edge> edges,
                       bool reverse = false);

  VertexId num_vertices() const { return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  EdgeIndex num_edges() const { return offsets_.empty() ? 0 : offsets_.back(); }

  size_t Degree(VertexId v) const {
    return static_cast<size_t>(offsets_[v + 1] - offsets_[v]);
  }

  // Neighbor targets of v, sorted ascending.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v], Degree(v)};
  }

  std::span<const Weight> Weights(VertexId v) const {
    return {weights_.data() + offsets_[v], Degree(v)};
  }

  // True if edge (v, target) exists. O(log Degree(v)).
  bool HasEdge(VertexId v, VertexId target) const;

  // Weight of edge (v, target); kDefaultWeight if absent.
  Weight EdgeWeight(VertexId v, VertexId target) const;

  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<VertexId>& targets() const { return targets_; }
  const std::vector<Weight>& weights() const { return weights_; }

  // Rebuilds this CSR applying per-vertex edits. For each vertex v,
  // `deletes[v]` lists targets to remove and `adds[v]` lists (target, weight)
  // pairs to insert; both must be sorted by target. This is the second pass
  // of the two-pass mutation described in §4.1: the first pass (offset
  // adjustment) is the prefix sum over the per-vertex degree deltas.
  void ApplyEdits(const std::vector<std::vector<VertexId>>& deletes,
                  const std::vector<std::vector<std::pair<VertexId, Weight>>>& adds);

  // Grows the vertex set to `new_count` isolated vertices.
  void GrowVertices(VertexId new_count);

  // Validation: offsets monotone, targets in range and sorted. Used by tests
  // and (in debug builds) after every mutation.
  bool CheckInvariants() const;

 private:
  std::vector<EdgeIndex> offsets_;  // size V+1
  std::vector<VertexId> targets_;   // size E, sorted within each vertex
  std::vector<Weight> weights_;     // size E, parallel to targets_
};

}  // namespace graphbolt

#endif  // SRC_GRAPH_CSR_H_
