#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/random.h"

namespace graphbolt {

namespace {

// Smallest power of two >= n.
uint64_t NextPow2(uint64_t n) {
  uint64_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

EdgeList GenerateRmat(VertexId num_vertices, EdgeIndex num_edges, const RmatOptions& options) {
  GB_CHECK(num_vertices >= 2) << "R-MAT needs at least 2 vertices";
  GB_CHECK(options.a + options.b + options.c <= 1.0) << "R-MAT probabilities exceed 1";
  const uint64_t scale_n = NextPow2(num_vertices);
  const int levels = static_cast<int>(std::log2(static_cast<double>(scale_n)));
  Rng rng(options.seed);

  EdgeList list;
  list.set_num_vertices(num_vertices);
  list.edges().reserve(num_edges + num_edges / 8);

  // Sample in rounds: deduplication and range truncation discard a fraction
  // of samples, so keep topping up until the target is met (power-law graphs
  // concentrate collisions on hubs).
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  for (int round = 0; round < 12 && list.num_edges() < num_edges; ++round) {
    const EdgeIndex missing = num_edges - list.num_edges();
    const EdgeIndex samples = missing + missing / 4 + 64;
    for (EdgeIndex i = 0; i < samples; ++i) {
      uint64_t row = 0;
      uint64_t col = 0;
      for (int level = 0; level < levels; ++level) {
        const double p = rng.NextDouble();
        if (p < options.a) {
          // top-left quadrant: nothing to add
        } else if (p < ab) {
          col |= 1ULL << level;
        } else if (p < abc) {
          row |= 1ULL << level;
        } else {
          row |= 1ULL << level;
          col |= 1ULL << level;
        }
      }
      if (row >= num_vertices || col >= num_vertices || row == col) {
        continue;
      }
      const Weight w = options.assign_random_weights
                           ? static_cast<Weight>(rng.NextDouble() * 0.999 + 0.001)
                           : kDefaultWeight;
      list.edges().push_back({static_cast<VertexId>(row), static_cast<VertexId>(col), w});
    }
    list.SortAndDeduplicate();
  }
  if (list.num_edges() > num_edges) {
    list.edges().resize(num_edges);
  }
  return list;
}

EdgeList GenerateErdosRenyi(VertexId num_vertices, EdgeIndex num_edges, uint64_t seed,
                            bool assign_random_weights) {
  GB_CHECK(num_vertices >= 2) << "need at least 2 vertices";
  const EdgeIndex max_possible =
      static_cast<EdgeIndex>(num_vertices) * (num_vertices - 1);
  GB_CHECK(num_edges <= max_possible) << "too many edges requested";
  Rng rng(seed);
  EdgeList list;
  list.set_num_vertices(num_vertices);
  while (list.num_edges() < num_edges) {
    const EdgeIndex need = num_edges - list.num_edges();
    for (EdgeIndex i = 0; i < need + need / 4 + 8; ++i) {
      const auto src = static_cast<VertexId>(rng.NextBounded(num_vertices));
      const auto dst = static_cast<VertexId>(rng.NextBounded(num_vertices));
      if (src == dst) {
        continue;
      }
      const Weight w = assign_random_weights
                           ? static_cast<Weight>(rng.NextDouble() * 0.999 + 0.001)
                           : kDefaultWeight;
      list.edges().push_back({src, dst, w});
    }
    list.SortAndDeduplicate();
    if (list.num_edges() > num_edges) {
      list.edges().resize(num_edges);
    }
  }
  return list;
}

EdgeList GenerateCycle(VertexId num_vertices) {
  EdgeList list;
  list.set_num_vertices(num_vertices);
  for (VertexId v = 0; v + 1 < num_vertices; ++v) {
    list.edges().push_back({v, v + 1, kDefaultWeight});
  }
  if (num_vertices > 1) {
    list.edges().push_back({num_vertices - 1, 0, kDefaultWeight});
  }
  return list;
}

EdgeList GenerateChain(VertexId num_vertices) {
  EdgeList list;
  list.set_num_vertices(num_vertices);
  for (VertexId v = 0; v + 1 < num_vertices; ++v) {
    list.edges().push_back({v, v + 1, kDefaultWeight});
  }
  return list;
}

EdgeList GenerateStar(VertexId num_vertices) {
  EdgeList list;
  list.set_num_vertices(num_vertices);
  for (VertexId v = 1; v < num_vertices; ++v) {
    list.edges().push_back({0, v, kDefaultWeight});
    list.edges().push_back({v, 0, kDefaultWeight});
  }
  return list;
}

EdgeList GenerateComplete(VertexId num_vertices) {
  EdgeList list;
  list.set_num_vertices(num_vertices);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v = 0; v < num_vertices; ++v) {
      if (u != v) {
        list.edges().push_back({u, v, kDefaultWeight});
      }
    }
  }
  return list;
}

EdgeList GenerateGrid(VertexId rows, VertexId cols) {
  EdgeList list;
  list.set_num_vertices(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        list.edges().push_back({id(r, c), id(r, c + 1), kDefaultWeight});
      }
      if (r + 1 < rows) {
        list.edges().push_back({id(r, c), id(r + 1, c), kDefaultWeight});
      }
    }
  }
  return list;
}

}  // namespace graphbolt
