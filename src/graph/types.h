// Fundamental graph types shared across the library.
#ifndef SRC_GRAPH_TYPES_H_
#define SRC_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace graphbolt {

// Vertex identifiers are dense [0, V) indices. 32 bits cover the laptop-
// scale graphs this reproduction targets; edge offsets use 64 bits so edge
// counts are not capped.
using VertexId = uint32_t;
using EdgeIndex = uint64_t;
using Weight = float;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr Weight kDefaultWeight = 1.0f;

// A directed edge with an optional weight.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = kDefaultWeight;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

// Orders by (src, dst); weight is a payload, not part of edge identity.
struct EdgeEndpointLess {
  bool operator()(const Edge& a, const Edge& b) const {
    if (a.src != b.src) {
      return a.src < b.src;
    }
    return a.dst < b.dst;
  }
};

}  // namespace graphbolt

#endif  // SRC_GRAPH_TYPES_H_
