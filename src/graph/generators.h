// Synthetic graph generators.
//
// The paper evaluates on skewed real-world graphs (Wiki, Twitter, ...).
// Those datasets are not available offline, so the benchmark harnesses use
// R-MAT graphs — the standard surrogate with the same power-law degree
// skew — plus simple topologies for unit tests.
#ifndef SRC_GRAPH_GENERATORS_H_
#define SRC_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/edge_list.h"

namespace graphbolt {

// R-MAT parameters. The classic (0.57, 0.19, 0.19) setting yields a skew
// close to social-network graphs.
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 1;
  bool assign_random_weights = false;  // weights in (0, 1]; default weight 1
};

// Generates a directed R-MAT graph with `num_vertices` (rounded up to a
// power of two internally, then truncated) and approximately `num_edges`
// edges after deduplication and self-loop removal.
EdgeList GenerateRmat(VertexId num_vertices, EdgeIndex num_edges,
                      const RmatOptions& options = {});

// G(n, m) Erdős–Rényi digraph: m distinct uniform random edges.
EdgeList GenerateErdosRenyi(VertexId num_vertices, EdgeIndex num_edges, uint64_t seed = 1,
                            bool assign_random_weights = false);

// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
EdgeList GenerateCycle(VertexId num_vertices);

// Directed chain 0 -> 1 -> ... -> n-1.
EdgeList GenerateChain(VertexId num_vertices);

// Star: hub 0 with edges 0 -> i and i -> 0 for i in [1, n).
EdgeList GenerateStar(VertexId num_vertices);

// Complete digraph on n vertices (no self loops). Quadratic; test-scale only.
EdgeList GenerateComplete(VertexId num_vertices);

// 2D grid (rows x cols) with edges to the right and down neighbors.
EdgeList GenerateGrid(VertexId rows, VertexId cols);

}  // namespace graphbolt

#endif  // SRC_GRAPH_GENERATORS_H_
