// A flat list of directed edges: the interchange format between generators,
// file IO, and CSR construction.
#ifndef SRC_GRAPH_EDGE_LIST_H_
#define SRC_GRAPH_EDGE_LIST_H_

#include <cstddef>
#include <vector>

#include "src/graph/types.h"

namespace graphbolt {

class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& edges() { return edges_; }

  void set_num_vertices(VertexId n) { num_vertices_ = n; }

  void Add(VertexId src, VertexId dst, Weight weight = kDefaultWeight) {
    edges_.push_back({src, dst, weight});
    if (src >= num_vertices_) {
      num_vertices_ = src + 1;
    }
    if (dst >= num_vertices_) {
      num_vertices_ = dst + 1;
    }
  }

  // Sorts by (src, dst) and removes duplicate endpoints (keeping the first
  // occurrence's weight) and self-loops. Returns the number of edges removed.
  size_t SortAndDeduplicate();

  // True if an edge (src, dst) exists (requires sorted edges; linear scan
  // fallback otherwise is not provided — callers sort first).
  bool HasEdgeSorted(VertexId src, VertexId dst) const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace graphbolt

#endif  // SRC_GRAPH_EDGE_LIST_H_
