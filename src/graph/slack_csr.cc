#include "src/graph/slack_csr.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/parallel/parallel_for.h"
#include "src/parallel/reducer.h"
#include "src/util/logging.h"

namespace graphbolt {

SlackCsr SlackCsr::FromEdges(VertexId num_vertices, std::span<const Edge> edges, bool reverse) {
  SlackCsr csr;
  csr.segments_.assign(num_vertices, Segment{});

  std::vector<EdgeIndex> degrees(num_vertices, 0);
  for (const Edge& e : edges) {
    const VertexId from = reverse ? e.dst : e.src;
    GB_CHECK(from < num_vertices) << "edge endpoint out of range";
    ++degrees[from];
  }
  std::vector<EdgeIndex> offsets = degrees;
  const EdgeIndex total = ParallelPrefixSum(offsets);
  for (VertexId v = 0; v < num_vertices; ++v) {
    csr.segments_[v].offset = offsets[v];
    csr.segments_[v].degree = static_cast<uint32_t>(degrees[v]);
    csr.segments_[v].capacity = static_cast<uint32_t>(degrees[v]);
  }
  csr.arena_used_ = total;
  csr.live_edges_ = total;

  csr.targets_.resize(total);
  csr.weights_.resize(total);
  std::vector<EdgeIndex> cursor = offsets;
  for (const Edge& e : edges) {
    const VertexId from = reverse ? e.dst : e.src;
    const VertexId to = reverse ? e.src : e.dst;
    const EdgeIndex slot = cursor[from]++;
    csr.targets_[slot] = to;
    csr.weights_[slot] = e.weight;
  }

  // Sort each segment by target (weights move with their targets).
  ParallelFor(0, num_vertices, [&csr](size_t v) {
    const Segment& s = csr.segments_[v];
    if (s.degree <= 1) {
      return;
    }
    std::vector<std::pair<VertexId, Weight>> scratch(s.degree);
    for (size_t i = 0; i < s.degree; ++i) {
      scratch[i] = {csr.targets_[s.offset + i], csr.weights_[s.offset + i]};
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (size_t i = 0; i < s.degree; ++i) {
      csr.targets_[s.offset + i] = scratch[i].first;
      csr.weights_[s.offset + i] = scratch[i].second;
    }
  }, /*grain=*/256);
  return csr;
}

bool SlackCsr::HasEdge(VertexId v, VertexId target) const {
  const auto nbrs = Neighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), target);
}

Weight SlackCsr::EdgeWeight(VertexId v, VertexId target) const {
  const auto nbrs = Neighbors(v);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), target);
  if (it == nbrs.end() || *it != target) {
    return kDefaultWeight;
  }
  return weights_[segments_[v].offset + static_cast<EdgeIndex>(it - nbrs.begin())];
}

uint32_t SlackCsr::RelocationCapacity(uint32_t degree) {
  return std::bit_ceil(std::max<uint32_t>(degree, 4));
}

void SlackCsr::ApplyEdits(const std::vector<VertexEdits>& edits) {
  last_apply_ = ApplyStats{};
  last_apply_.touched_vertices = edits.size();
  if (edits.empty()) {
    return;
  }
  prefix_valid_ = false;

  // Phase 1 (parallel): new degree per touched vertex. An add whose target
  // already exists and is not being deleted replaces the edge in place, so
  // it does not change the degree.
  std::vector<uint32_t> new_degrees(edits.size());
  ParallelFor(0, edits.size(), [&, this](size_t i) {
    const VertexEdits& e = edits[i];
    GB_CHECK(e.vertex < num_vertices()) << "edit references out-of-range vertex " << e.vertex;
    const size_t old_degree = Degree(e.vertex);
    GB_CHECK(e.deletes.size() <= old_degree)
        << "more deletions than edges at vertex " << e.vertex;
    const auto nbrs = Neighbors(e.vertex);
    size_t overlap = 0;
    size_t di = 0;
    for (const auto& [target, weight] : e.adds) {
      while (di < e.deletes.size() && e.deletes[di] < target) {
        ++di;
      }
      const bool deleted = di < e.deletes.size() && e.deletes[di] == target;
      if (!deleted && std::binary_search(nbrs.begin(), nbrs.end(), target)) {
        ++overlap;
      }
    }
    new_degrees[i] = static_cast<uint32_t>(old_degree - e.deletes.size() + e.adds.size() - overlap);
  }, /*grain=*/64);

  // Phase 2 (serial, O(#relocations)): assign tail slots for segments that
  // outgrew their capacity, then grow the arena once so no data pointer
  // moves during the parallel splice.
  constexpr EdgeIndex kNoReloc = ~EdgeIndex{0};
  std::vector<EdgeIndex> reloc_offset(edits.size(), kNoReloc);
  std::vector<uint32_t> new_capacity(edits.size());
  EdgeIndex cursor = arena_used_;
  int64_t degree_delta = 0;
  for (size_t i = 0; i < edits.size(); ++i) {
    const Segment& s = segments_[edits[i].vertex];
    degree_delta += static_cast<int64_t>(new_degrees[i]) - static_cast<int64_t>(s.degree);
    new_capacity[i] = s.capacity;
    if (new_degrees[i] > s.capacity) {
      new_capacity[i] = RelocationCapacity(new_degrees[i]);
      reloc_offset[i] = cursor;
      cursor += new_capacity[i];
      ++last_apply_.relocations;
    }
  }
  if (cursor > targets_.size()) {
    // Geometric growth so a stream of relocations amortizes to O(1) per edge.
    const size_t grow_to = std::max<size_t>(cursor, targets_.size() + targets_.size() / 2);
    targets_.resize(grow_to);
    weights_.resize(grow_to);
  }

  // Phase 3 (parallel): run-based three-way merge of (old \ deletes) with
  // adds, per touched vertex. Unedited runs between edit targets (located
  // by binary search) move as bulk memmoves, so a hub vertex with a handful
  // of edits costs a few block copies, not O(degree) branches. The prefix
  // below the first edit target never moves for an in-place splice.
  // Destination dispatch:
  //   - relocated:          merge straight into the fresh tail slot
  //   - in-place, shrink:   merge onto itself (writes trail reads when no
  //                         adds are present, so forward memmove is safe)
  //   - in-place, w/ adds:  merge the suffix from the first edit through a
  //                         reused thread-local scratch, copy back once
  std::vector<size_t> spliced(edits.size(), 0);
  ParallelFor(0, edits.size(), [&, this](size_t i) {
    const VertexEdits& e = edits[i];
    Segment& seg = segments_[e.vertex];
    const EdgeIndex src = seg.offset;
    const uint32_t old_degree = seg.degree;
    const uint32_t new_degree = new_degrees[i];
    const VertexId* old_t = targets_.data() + src;
    const Weight* old_w = weights_.data() + src;
    const size_t num_deletes = e.deletes.size();
    const size_t num_adds = e.adds.size();

    // Merges old[oi..old_degree) with every edit into (dst_t, dst_w);
    // returns the number of entries written. memmove tolerates the
    // aliasing shrink case (dst trails the read cursor).
    auto merge_from = [&](size_t oi, VertexId* dst_t, Weight* dst_w) -> size_t {
      size_t out = 0;
      size_t di = 0;
      size_t ai = 0;
      while (di < num_deletes || ai < num_adds) {
        const VertexId t = (di < num_deletes &&
                            (ai == num_adds || e.deletes[di] <= e.adds[ai].first))
                               ? e.deletes[di]
                               : e.adds[ai].first;
        const size_t j = static_cast<size_t>(
            std::lower_bound(old_t + oi, old_t + old_degree, t) - old_t);
        if (j > oi) {
          std::memmove(dst_t + out, old_t + oi, (j - oi) * sizeof(VertexId));
          std::memmove(dst_w + out, old_w + oi, (j - oi) * sizeof(Weight));
          out += j - oi;
          oi = j;
        }
        const bool present = oi < old_degree && old_t[oi] == t;
        bool consumed = false;
        if (di < num_deletes && e.deletes[di] == t) {
          ++di;
          if (present) {
            ++oi;  // deleted: skip the old entry
            consumed = true;
          }
        }
        if (ai < num_adds && e.adds[ai].first == t) {
          // A fresh insertion, or a re-add replacing the existing weight.
          dst_t[out] = t;
          dst_w[out] = e.adds[ai].second;
          ++out;
          ++ai;
          if (present && !consumed) {
            ++oi;
          }
        }
      }
      if (oi < old_degree) {
        std::memmove(dst_t + out, old_t + oi, (old_degree - oi) * sizeof(VertexId));
        std::memmove(dst_w + out, old_w + oi, (old_degree - oi) * sizeof(Weight));
        out += old_degree - oi;
      }
      return out;
    };

    size_t moved = 0;
    if (reloc_offset[i] != kNoReloc) {
      moved = merge_from(0, targets_.data() + reloc_offset[i],
                         weights_.data() + reloc_offset[i]);
      GB_CHECK(moved == new_degree) << "splice produced wrong degree at vertex " << e.vertex;
      seg.offset = reloc_offset[i];
      seg.capacity = new_capacity[i];
    } else {
      // First edit position: everything below it stays untouched in place.
      const VertexId first_edit = num_deletes == 0 ? e.adds.front().first
                                  : num_adds == 0
                                      ? e.deletes.front()
                                      : std::min(e.deletes.front(), e.adds.front().first);
      const size_t j0 = static_cast<size_t>(
          std::lower_bound(old_t, old_t + old_degree, first_edit) - old_t);
      VertexId* base_t = targets_.data() + src;
      Weight* base_w = weights_.data() + src;
      if (num_adds == 0) {
        moved = merge_from(j0, base_t + j0, base_w + j0);
      } else {
        thread_local std::vector<VertexId> scratch_t;
        thread_local std::vector<Weight> scratch_w;
        const size_t suffix = static_cast<size_t>(new_degree) - j0;
        if (scratch_t.size() < suffix) {
          scratch_t.resize(suffix);
          scratch_w.resize(suffix);
        }
        moved = merge_from(j0, scratch_t.data(), scratch_w.data());
        std::memcpy(base_t + j0, scratch_t.data(), moved * sizeof(VertexId));
        std::memcpy(base_w + j0, scratch_w.data(), moved * sizeof(Weight));
      }
      GB_CHECK(j0 + moved == new_degree)
          << "splice produced wrong degree at vertex " << e.vertex;
    }
    seg.degree = new_degree;
    spliced[i] = moved;  // actually-moved entries; the untouched prefix is free
  }, /*grain=*/16);

  for (const size_t s : spliced) {
    last_apply_.edges_spliced += s;
  }
  arena_used_ = cursor;
  live_edges_ = static_cast<EdgeIndex>(static_cast<int64_t>(live_edges_) + degree_delta);

  if (shadow_.active) {
    // Any touched segment's shadow copy (made or pending) is stale: its
    // degree, content, or offset changed. Re-copied at the flip.
    for (const VertexEdits& e : edits) {
      shadow_.dirty[e.vertex] = 1;
    }
  }

  const bool sizable = arena_used_ >= kMinCompactionArena;
  if (compaction_mode_ == CompactionMode::kSync) {
    if (sizable && SlackFraction() > kCompactionThreshold) {
      last_apply_.compactions = 1;
      last_apply_.compaction_edges = live_edges_;
      Compact();
    }
  } else if (sizable && SlackFraction() > kForcedSyncSlack) {
    // Maintenance fell behind the mutation rate; compact now rather than
    // let the arena grow without bound.
    last_apply_.compactions = 1;
    last_apply_.compaction_edges = live_edges_;
    ++compaction_stats_.forced_sync_compactions;
    Compact();
  }
}

void SlackCsr::GrowVertices(VertexId new_count) {
  if (new_count <= num_vertices()) {
    return;
  }
  prefix_valid_ = false;
  segments_.resize(new_count, Segment{});
  if (shadow_.active) {
    // Vertices born mid-epoch have no shadow slot; route them through the
    // dirty tail at the flip (zero degree unless edited, which re-flags).
    shadow_.offsets.resize(new_count, shadow_.total);
    shadow_.dirty.resize(new_count, 1);
  }
}

void SlackCsr::Compact() {
  ++compaction_stats_.sync_compactions;
  shadow_ = ShadowState{};  // a full rewrite supersedes any shadow epoch
  const VertexId n = num_vertices();
  prefix_valid_ = false;
  std::vector<EdgeIndex> offsets(n);
  ParallelFor(0, n, [&](size_t v) { offsets[v] = segments_[v].degree; });
  const EdgeIndex total = ParallelPrefixSum(offsets);
  GB_CHECK(total == live_edges_) << "degree sum disagrees with live edge count";

  std::vector<VertexId> new_targets(total);
  std::vector<Weight> new_weights(total);
  ParallelFor(0, n, [&, this](size_t v) {
    Segment& s = segments_[v];
    std::copy_n(targets_.data() + s.offset, s.degree, new_targets.data() + offsets[v]);
    std::copy_n(weights_.data() + s.offset, s.degree, new_weights.data() + offsets[v]);
  }, /*grain=*/256);
  // Segment metadata is rewritten after the copy: the copy reads old
  // offsets, and each vertex is owned by exactly one task either way.
  ParallelFor(0, n, [&](size_t v) {
    segments_[v].offset = offsets[v];
    segments_[v].capacity = segments_[v].degree;
  });
  targets_ = std::move(new_targets);
  weights_ = std::move(new_weights);
  arena_used_ = total;
}

void SlackCsr::AdoptRebuilt(SlackCsr&& rebuilt) {
  const CompactionMode mode = compaction_mode_;
  CompactionStats stats = compaction_stats_;
  *this = std::move(rebuilt);
  compaction_mode_ = mode;
  compaction_stats_ = stats;
  shadow_ = ShadowState{};  // unpublished; a wholesale rebuild supersedes it
  last_apply_ = ApplyStats{};
  last_apply_.rebuilds = 1;
  prefix_valid_ = false;
}

void SlackCsr::SetCompactionMode(CompactionMode mode) {
  if (mode == compaction_mode_) {
    return;
  }
  compaction_mode_ = mode;
  shadow_ = ShadowState{};  // unpublished; always safe to discard
}

bool SlackCsr::MaintenanceStep(size_t max_edges) {
  if (compaction_mode_ != CompactionMode::kBackground) {
    return false;
  }
  if (!shadow_.active) {
    if (arena_used_ < kMinCompactionArena || SlackFraction() <= kCompactionThreshold) {
      return false;
    }
    StartShadowCompaction();
  }
  ++compaction_stats_.maintenance_steps;
  compaction_stats_.background_edges_copied += CopyShadowChunk(max_edges);
  if (shadow_.copied_up_to >= num_vertices()) {
    FinishShadowCompaction();
  }
  return shadow_.active;
}

void SlackCsr::StartShadowCompaction() {
  const VertexId n = num_vertices();
  shadow_.offsets.resize(n);
  ParallelFor(0, n, [this](size_t v) { shadow_.offsets[v] = segments_[v].degree; });
  shadow_.total = ParallelPrefixSum(shadow_.offsets);
  GB_CHECK(shadow_.total == live_edges_) << "degree sum disagrees with live edge count";
  shadow_.targets.resize(shadow_.total);
  shadow_.weights.resize(shadow_.total);
  shadow_.dirty.assign(n, 0);
  shadow_.copied_up_to = 0;
  shadow_.active = true;
}

size_t SlackCsr::CopyShadowChunk(size_t max_edges) {
  const VertexId limit = num_vertices();
  const VertexId start = shadow_.copied_up_to;
  VertexId end = start;
  size_t budget = 0;
  while (end < limit && budget < max_edges) {
    if (!shadow_.dirty[end]) {
      budget += segments_[end].degree;
    }
    ++end;
  }
  ParallelFor(start, end, [this](size_t v) {
    if (shadow_.dirty[v]) {
      return;  // stale; re-copied at the flip
    }
    const Segment& s = segments_[v];
    std::copy_n(targets_.data() + s.offset, s.degree,
                shadow_.targets.data() + shadow_.offsets[v]);
    std::copy_n(weights_.data() + s.offset, s.degree,
                shadow_.weights.data() + shadow_.offsets[v]);
  }, /*grain=*/256);
  shadow_.copied_up_to = end;
  return budget;
}

void SlackCsr::FinishShadowCompaction() {
  const VertexId n = num_vertices();
  // Dirty segments append after the clean block. Their original shadow
  // slots become slack in the new arena — bounded by the edit traffic of
  // one epoch, far below the threshold that started it.
  EdgeIndex tail = shadow_.total;
  for (VertexId v = 0; v < n; ++v) {
    if (shadow_.dirty[v]) {
      shadow_.offsets[v] = tail;
      tail += segments_[v].degree;
    }
  }
  shadow_.targets.resize(tail);
  shadow_.weights.resize(tail);
  ParallelFor(0, n, [this](size_t v) {
    if (!shadow_.dirty[v]) {
      return;
    }
    const Segment& s = segments_[v];
    std::copy_n(targets_.data() + s.offset, s.degree,
                shadow_.targets.data() + shadow_.offsets[v]);
    std::copy_n(weights_.data() + s.offset, s.degree,
                shadow_.weights.data() + shadow_.offsets[v]);
  }, /*grain=*/256);
  ParallelFor(0, n, [this](size_t v) {
    segments_[v].offset = shadow_.offsets[v];
    segments_[v].capacity = segments_[v].degree;
  });
  targets_ = std::move(shadow_.targets);
  weights_ = std::move(shadow_.weights);
  arena_used_ = tail;
  prefix_valid_ = false;
  ++compaction_stats_.background_compactions;
  shadow_ = ShadowState{};
}

const std::vector<EdgeIndex>& SlackCsr::DegreePrefix() const {
  if (!prefix_valid_ || degree_prefix_.size() != static_cast<size_t>(num_vertices()) + 1) {
    const VertexId n = num_vertices();
    degree_prefix_.resize(n);
    ParallelFor(0, n, [this](size_t v) { degree_prefix_[v] = segments_[v].degree; });
    const EdgeIndex total = ParallelPrefixSum(degree_prefix_);
    degree_prefix_.push_back(total);
    prefix_valid_ = true;
  }
  return degree_prefix_;
}

bool SlackCsr::CheckInvariants() const {
  const VertexId n = num_vertices();
  EdgeIndex degree_sum = 0;
  std::vector<std::pair<EdgeIndex, EdgeIndex>> extents;  // (offset, offset+capacity)
  extents.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    const Segment& s = segments_[v];
    if (s.degree > s.capacity) {
      return false;
    }
    if (s.offset + s.capacity > arena_used_) {
      return false;
    }
    degree_sum += s.degree;
    if (s.capacity > 0) {
      extents.emplace_back(s.offset, s.offset + s.capacity);
    }
    const auto nbrs = Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n) {
        return false;
      }
      if (i > 0 && nbrs[i - 1] >= nbrs[i]) {
        return false;  // unsorted or duplicate
      }
    }
  }
  if (degree_sum != live_edges_ || arena_used_ > targets_.size() ||
      weights_.size() != targets_.size()) {
    return false;
  }
  // Segments must not overlap (slack cells between them are fine).
  std::sort(extents.begin(), extents.end());
  for (size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].first < extents[i - 1].second) {
      return false;
    }
  }
  return true;
}

}  // namespace graphbolt
