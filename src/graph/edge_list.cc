#include "src/graph/edge_list.h"

#include <algorithm>

namespace graphbolt {

size_t EdgeList::SortAndDeduplicate() {
  const size_t before = edges_.size();
  std::sort(edges_.begin(), edges_.end(), EdgeEndpointLess{});
  auto last = std::unique(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  });
  edges_.erase(last, edges_.end());
  auto self_loop = std::remove_if(edges_.begin(), edges_.end(),
                                  [](const Edge& e) { return e.src == e.dst; });
  edges_.erase(self_loop, edges_.end());
  return before - edges_.size();
}

bool EdgeList::HasEdgeSorted(VertexId src, VertexId dst) const {
  const Edge probe{src, dst, 0.0f};
  auto it = std::lower_bound(edges_.begin(), edges_.end(), probe, EdgeEndpointLess{});
  return it != edges_.end() && it->src == src && it->dst == dst;
}

}  // namespace graphbolt
