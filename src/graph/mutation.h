// Edge/vertex mutations and mutation batches (the ∆G of the paper).
#ifndef SRC_GRAPH_MUTATION_H_
#define SRC_GRAPH_MUTATION_H_

#include <vector>

#include "src/graph/types.h"

namespace graphbolt {

enum class MutationKind : uint8_t {
  kAddEdge,
  kDeleteEdge,
  // Changes the weight of an existing edge. Normalization lowers this to a
  // paired delete(old weight) + add(new weight), which every engine already
  // refines correctly; updating an absent edge is a no-op.
  kUpdateWeight,
};

struct EdgeMutation {
  MutationKind kind = MutationKind::kAddEdge;
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = kDefaultWeight;

  static EdgeMutation Add(VertexId src, VertexId dst, Weight weight = kDefaultWeight) {
    return {MutationKind::kAddEdge, src, dst, weight};
  }
  static EdgeMutation Delete(VertexId src, VertexId dst) {
    return {MutationKind::kDeleteEdge, src, dst, kDefaultWeight};
  }
  static EdgeMutation UpdateWeight(VertexId src, VertexId dst, Weight weight) {
    return {MutationKind::kUpdateWeight, src, dst, weight};
  }
};

// A batch of mutations applied atomically between iterations (§2.1: updates
// are batched while an iteration computes and incorporated before the next).
using MutationBatch = std::vector<EdgeMutation>;

// The normalized effect of applying a batch: duplicates collapsed, no-op
// additions of existing edges and deletions of absent edges dropped. The
// refinement engine consumes this (its Ea and Ed sets).
struct AppliedMutations {
  std::vector<Edge> added;
  std::vector<Edge> deleted;

  bool Empty() const { return added.empty() && deleted.empty(); }
};

}  // namespace graphbolt

#endif  // SRC_GRAPH_MUTATION_H_
