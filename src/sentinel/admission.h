// Batch admission control: the screen every incoming MutationBatch passes
// before it is allowed anywhere near the engine.
//
// The streaming surveys (Besta et al.) treat ingestion robustness as a
// first-class systems concern: a production stream carries malformed,
// duplicate, and bursty updates, and the engine must absorb them without
// an operator restart. Concretely, the poisons this screen catches:
//
//   - out-of-range vertex ids: MutableGraph grows its vertex set to cover
//     any id it sees, so a single mutation with src = 4e9 is a memory bomb;
//   - NaN/Inf weights: a non-finite weight propagates through every
//     floating-point algorithm (PageRank, SSSP, ...) and never converges
//     back out — one poisoned edge wedges refinement forever;
//   - oversized batches: a batch bigger than the configured ceiling ties
//     up the worker for an unbounded apply (and its WAL record);
//   - self-loop / duplicate floods: junk traffic that is individually
//     harmless (normalization drops it) but consumes gutter, queue, WAL,
//     and normalization work at line rate.
//
// Screening is pure and lock-free: ScreenBatch inspects only the batch and
// the limits, so StreamDriver runs it before taking any of its mutexes and
// a rejected batch never touches the pipeline. Rejects carry a RejectReason
// that the quarantine (src/sentinel/quarantine.h) persists for operator
// triage and ReplayQuarantine fix-up.
//
// The AdmissionGovernor is the overload half: it tracks an EWMA of apply
// latency and, combined with the pending-queue depth, estimates the drain
// time of the queued work. Above a threshold the driver enters degraded
// mode (queries serve the last consistent snapshot instead of blocking on
// the barrier; gutters coalesce instead of pushing); hysteresis keeps the
// flag from flapping. The governor is not internally synchronized — the
// driver updates and reads it under its own mutex.
#ifndef SRC_SENTINEL_ADMISSION_H_
#define SRC_SENTINEL_ADMISSION_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "src/graph/mutation.h"
#include "src/graph/types.h"

namespace graphbolt {

// Why a batch was refused admission. Persisted (as one byte) in the
// dead-letter WAL, so values are append-only: add new reasons at the end.
enum class RejectReason : uint8_t {
  kNone = 0,
  kOversizedBatch,    // more mutations than AdmissionLimits::max_batch_mutations
  kVertexOutOfRange,  // an endpoint above AdmissionLimits::max_vertex_id
  kNonFiniteWeight,   // NaN or Inf weight on an add/update
  kSelfLoopFlood,     // self-loop fraction above the flood threshold
  kDuplicateFlood,    // duplicate (src, dst) fraction above the flood threshold
  kNumReasons,
};

inline const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kOversizedBatch:
      return "oversized-batch";
    case RejectReason::kVertexOutOfRange:
      return "vertex-out-of-range";
    case RejectReason::kNonFiniteWeight:
      return "non-finite-weight";
    case RejectReason::kSelfLoopFlood:
      return "self-loop-flood";
    case RejectReason::kDuplicateFlood:
      return "duplicate-flood";
    default:
      return "unknown";
  }
}

struct AdmissionLimits {
  // Hard ceiling on mutations per ingested batch (0 = unlimited).
  size_t max_batch_mutations = size_t{1} << 22;
  // Largest vertex id a mutation may reference. The default permits any id
  // the VertexId type can address except the invalid sentinel; production
  // deployments should set it near the expected vertex range, since the
  // graph allocates O(max id seen) state.
  VertexId max_vertex_id = kInvalidVertex - 1;
  // Reject batches carrying NaN/Inf weights.
  bool reject_non_finite_weights = true;
  // Flood thresholds: fractions only apply to batches with at least
  // `flood_min_mutations` mutations (a 1-mutation batch trivially has
  // fraction 1.0). A fraction > 1.0 disables that check.
  size_t flood_min_mutations = 64;
  double max_self_loop_fraction = 0.5;
  double max_duplicate_fraction = 0.9;
};

struct AdmissionVerdict {
  RejectReason reason = RejectReason::kNone;
  // Index of the first offending mutation (size checks report 0).
  size_t offending_index = 0;

  bool admitted() const { return reason == RejectReason::kNone; }
};

// Screens a single mutation — the cheap per-mutation subset of the batch
// screen (range + finiteness), used by StreamDriver::Ingest.
inline AdmissionVerdict ScreenMutation(const EdgeMutation& m, const AdmissionLimits& limits) {
  if (m.src > limits.max_vertex_id || m.dst > limits.max_vertex_id) {
    return {RejectReason::kVertexOutOfRange, 0};
  }
  if (limits.reject_non_finite_weights && m.kind != MutationKind::kDeleteEdge &&
      !std::isfinite(m.weight)) {
    return {RejectReason::kNonFiniteWeight, 0};
  }
  return {};
}

// Screens a whole batch. One pass over the mutations (the duplicate check
// uses a hash set sized by the batch), no locks, no engine access.
inline AdmissionVerdict ScreenBatch(const MutationBatch& batch, const AdmissionLimits& limits) {
  if (limits.max_batch_mutations > 0 && batch.size() > limits.max_batch_mutations) {
    return {RejectReason::kOversizedBatch, 0};
  }
  size_t self_loops = 0;
  size_t duplicates = 0;
  std::unordered_set<uint64_t> seen;
  seen.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const EdgeMutation& m = batch[i];
    if (m.src > limits.max_vertex_id || m.dst > limits.max_vertex_id) {
      return {RejectReason::kVertexOutOfRange, i};
    }
    if (limits.reject_non_finite_weights && m.kind != MutationKind::kDeleteEdge &&
        !std::isfinite(m.weight)) {
      return {RejectReason::kNonFiniteWeight, i};
    }
    self_loops += m.src == m.dst ? 1 : 0;
    const uint64_t key = (static_cast<uint64_t>(m.src) << 32) | m.dst;
    duplicates += seen.insert(key).second ? 0 : 1;
  }
  if (batch.size() >= limits.flood_min_mutations) {
    const double n = static_cast<double>(batch.size());
    if (static_cast<double>(self_loops) > limits.max_self_loop_fraction * n) {
      return {RejectReason::kSelfLoopFlood, 0};
    }
    if (static_cast<double>(duplicates) > limits.max_duplicate_fraction * n) {
      return {RejectReason::kDuplicateFlood, 0};
    }
  }
  return {};
}

// Overload-control thresholds for the admission governor.
struct GovernorOptions {
  // Enter degraded mode when the estimated drain time of the pending queue
  // (queue depth x apply-latency EWMA) exceeds this.
  double degrade_pressure_seconds = 2.0;
  // Leave degraded mode once the estimate falls to or below this
  // (hysteresis: must be <= degrade_pressure_seconds).
  double recover_pressure_seconds = 0.5;
  // EWMA smoothing for the apply-latency estimate.
  double ewma_alpha = 0.2;
};

// Tracks apply-latency EWMA and queue depth; decides the degraded flag.
// Not internally synchronized: StreamDriver calls it under its own mutex.
class AdmissionGovernor {
 public:
  explicit AdmissionGovernor(GovernorOptions options = {}) : options_(options) {}

  // Feeds one observed apply latency (wall seconds) into the EWMA.
  void RecordApply(double seconds) {
    apply_ewma_ = apply_ewma_ == 0.0
                      ? seconds
                      : options_.ewma_alpha * seconds + (1.0 - options_.ewma_alpha) * apply_ewma_;
  }

  // Re-evaluates pressure against the current queue depth and returns the
  // (possibly changed) degraded flag. Pressure is the estimated time to
  // drain what is already queued; an empty queue is always zero pressure,
  // so degradation self-clears once the worker catches up.
  bool Update(size_t queue_depth) {
    const double pressure = static_cast<double>(queue_depth) * apply_ewma_;
    if (!degraded_ && pressure > options_.degrade_pressure_seconds) {
      degraded_ = true;
      ++degraded_entries_;
    } else if (degraded_ && pressure <= options_.recover_pressure_seconds) {
      degraded_ = false;
    }
    return degraded_;
  }

  bool degraded() const { return degraded_; }
  double apply_ewma_seconds() const { return apply_ewma_; }
  uint64_t degraded_entries() const { return degraded_entries_; }

 private:
  GovernorOptions options_;
  double apply_ewma_ = 0.0;
  bool degraded_ = false;
  uint64_t degraded_entries_ = 0;
};

}  // namespace graphbolt

#endif  // SRC_SENTINEL_ADMISSION_H_
