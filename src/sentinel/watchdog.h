// Stall watchdog: a monotonic-clock heartbeat per pipeline stage plus a
// background thread that detects a stage stuck past its deadline.
//
// Each stage (gutter flush, apply, maintenance, checkpoint) marks itself
// busy on entry and idle on exit via a lock-free timestamp (StageScope is
// the RAII form). The watchdog thread polls: a stage that has been
// continuously busy for longer than the stall timeout is reported exactly
// once per episode through the callback, with a structured StallCause.
// An idle stage is never a stall — a healthy pipeline with no traffic
// stays silent.
//
// Heartbeats carry a lane index so one watchdog can cover a sharded
// pipeline: SetLanes(N) (call before the first heartbeat) sizes the slot
// table to N independent copies of every stage, each lane's workers
// heartbeat their own slots, and the single poller renders one verdict
// per stalled (lane, stage) episode. The unsharded driver is lane 0 of a
// one-lane table, so its call sites need no changes.
//
// StreamDriver installs a callback that marks the driver unhealthy,
// cancels the barrier waiters, and (optionally) drives Recover()
// automatically. Recovery is cooperative: the driver exposes a
// cancellation token the stuck stage must observe for the worker join to
// return — the injected kStageStall fault honors it, and real engine code
// would need an equivalent check to be auto-recoverable. A stage that
// ignores cancellation still gets *detected* (healthy() goes false, waiters
// wake), it just cannot be joined.
//
// All timestamps come from std::chrono::steady_clock: wall-clock steps
// (NTP, suspend/resume) can neither hide a stall nor invent one.
#ifndef SRC_SENTINEL_WATCHDOG_H_
#define SRC_SENTINEL_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace graphbolt {

enum class PipelineStage : int {
  kGutterFlush = 0,  // worker-side stale-gutter flush + direct apply
  kApply,            // engine ApplyMutations + WAL journaling
  kMaintenance,      // background-compaction MaintenanceStep
  kCheckpoint,       // checkpoint serialization + commit
  kNumStages,
};

inline const char* PipelineStageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::kGutterFlush:
      return "gutter-flush";
    case PipelineStage::kApply:
      return "apply";
    case PipelineStage::kMaintenance:
      return "maintenance";
    case PipelineStage::kCheckpoint:
      return "checkpoint";
    default:
      return "unknown";
  }
}

// What the watchdog saw when it declared a stall.
struct StallCause {
  PipelineStage stage = PipelineStage::kNumStages;
  double stalled_seconds = 0.0;
  // Which lane's heartbeat went stale; always 0 for unsharded pipelines.
  size_t lane = 0;
};

class StallWatchdog {
 public:
  struct Options {
    // How often the watchdog thread re-checks the heartbeats.
    double poll_interval_seconds = 0.05;
    // A stage continuously busy for longer than this is stalled.
    double stall_timeout_seconds = 5.0;
  };

  // Invoked from the watchdog thread, outside the watchdog's lock, at most
  // once per stage per busy episode.
  using Callback = std::function<void(const StallCause&)>;

  StallWatchdog() : slots_(new Stage[static_cast<size_t>(PipelineStage::kNumStages)]) {}
  ~StallWatchdog() { Stop(); }

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  // Starts (or restarts) the watchdog thread.
  void Start(const Options& options, Callback callback) {
    Stop();
    options_ = options;
    callback_ = std::move(callback);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = false;
    }
    thread_ = std::thread([this] { Loop(); });
  }

  // Stops and joins the watchdog thread; waits out a callback in flight.
  // Must not be called from the callback itself.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  bool running() const { return thread_.joinable(); }

  // Sizes the heartbeat table for a sharded pipeline: `lanes` independent
  // copies of every stage. Must run before the first heartbeat or Start —
  // the table swap is unsynchronized against concurrent EnterStage. Resets
  // every slot to idle.
  void SetLanes(size_t lanes) {
    lanes_ = lanes < 1 ? 1 : lanes;
    slots_.reset(new Stage[lanes_ * static_cast<size_t>(PipelineStage::kNumStages)]);
  }

  size_t lanes() const { return lanes_; }

  // ----- Stage heartbeats (lock-free, safe from any thread) ----------------

  void EnterStage(PipelineStage stage, size_t lane = 0) {
    At(stage, lane).busy_since_ns.store(NowNs());
  }

  void LeaveStage(PipelineStage stage, size_t lane = 0) {
    Stage& s = At(stage, lane);
    s.busy_since_ns.store(0);
    s.reported.store(false);  // next busy episode may report again
  }

  // RAII heartbeat; tolerates a null watchdog so call sites need no guard.
  class StageScope {
   public:
    StageScope(StallWatchdog* watchdog, PipelineStage stage, size_t lane = 0)
        : watchdog_(watchdog), stage_(stage), lane_(lane) {
      if (watchdog_ != nullptr) {
        watchdog_->EnterStage(stage_, lane_);
      }
    }
    ~StageScope() {
      if (watchdog_ != nullptr) {
        watchdog_->LeaveStage(stage_, lane_);
      }
    }
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

   private:
    StallWatchdog* watchdog_;
    PipelineStage stage_;
    size_t lane_;
  };

  // ----- Observation --------------------------------------------------------

  uint64_t stalls_detected() const { return stalls_.load(); }

  std::optional<StallCause> last_stall() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_stall_;
  }

  // Clears the recorded stall after a successful recovery, so the next
  // episode reports fresh.
  void ClearStall() {
    std::lock_guard<std::mutex> lock(mu_);
    last_stall_.reset();
  }

 private:
  struct Stage {
    // steady_clock nanos of the current busy episode's start; 0 when idle.
    std::atomic<int64_t> busy_since_ns{0};
    // Whether this busy episode has already been reported.
    std::atomic<bool> reported{false};
  };

  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  Stage& At(PipelineStage stage, size_t lane) {
    return slots_[lane * static_cast<size_t>(PipelineStage::kNumStages) +
                  static_cast<size_t>(stage)];
  }

  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    const auto poll = std::chrono::duration<double>(options_.poll_interval_seconds);
    const int64_t timeout_ns = static_cast<int64_t>(options_.stall_timeout_seconds * 1e9);
    while (!stop_) {
      cv_.wait_for(lock, poll, [&] { return stop_; });
      if (stop_) {
        break;
      }
      const int64_t now = NowNs();
      for (size_t lane = 0; lane < lanes_ && !stop_; ++lane) {
        for (int i = 0; i < static_cast<int>(PipelineStage::kNumStages); ++i) {
          Stage& s = At(static_cast<PipelineStage>(i), lane);
          const int64_t busy_since = s.busy_since_ns.load();
          if (busy_since == 0 || now - busy_since <= timeout_ns) {
            continue;
          }
          if (s.reported.exchange(true)) {
            continue;  // this episode already fired
          }
          const StallCause cause{static_cast<PipelineStage>(i),
                                 static_cast<double>(now - busy_since) * 1e-9, lane};
          last_stall_ = cause;
          stalls_.fetch_add(1);
          lock.unlock();  // callback may take driver locks / run recovery
          callback_(cause);
          lock.lock();
          if (stop_) {
            break;
          }
        }
      }
    }
  }

  Options options_;
  Callback callback_;
  // lanes_ x kNumStages heartbeat slots, lane-major (see At).
  std::unique_ptr<Stage[]> slots_;
  size_t lanes_ = 1;
  std::atomic<uint64_t> stalls_{0};

  mutable std::mutex mu_;  // guards stop_ and last_stall_
  std::condition_variable cv_;
  bool stop_ = false;
  std::optional<StallCause> last_stall_;
  std::thread thread_;
};

}  // namespace graphbolt

#endif  // SRC_SENTINEL_WATCHDOG_H_
