// The dead-letter WAL for batches refused by admission control.
//
// A rejected batch is never silently dropped: it is appended here, bitwise
// intact, together with its RejectReason, so (a) every reject is accounted
// for, (b) an operator can inspect exactly what was refused and why, and
// (c) after fix-up the batches can re-enter the stream through
// StreamDriver::ReplayQuarantine. One poison batch therefore costs one
// dead-letter append — it can never crash or wedge the pipeline.
//
// Storage reuses WriteAheadLog (src/fault/wal.h) — same record framing,
// same torn-tail-tolerant replay — with the reason code packed into the
// top byte of the record's sequence field (quarantine sequence numbers are
// local counters, nowhere near 2^56). The payload bytes are the batch
// verbatim, which is what makes the round-trip bitwise.
//
// Thread-safe: producers append concurrently with an operator's Drain.
// Drain snapshots the parked records and truncates the log *before*
// feeding them out, so a fix-up callback that re-ingests (and possibly
// re-quarantines) a batch re-enters Append without self-deadlock.
#ifndef SRC_SENTINEL_QUARANTINE_H_
#define SRC_SENTINEL_QUARANTINE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/fault/wal.h"
#include "src/graph/mutation.h"
#include "src/sentinel/admission.h"
#include "src/util/logging.h"

namespace graphbolt {

class Quarantine {
 public:
  // `directory` holds the dead-letter log (quarantine.wal), created on
  // first append. The injector (not owned, may be null) arms
  // FaultSite::kQuarantineAppend so tests can exercise the append-failure
  // path deterministically. A null env means the real filesystem; a
  // FaultyEnv here puts the dead-letter lineage under the same injectable
  // storage as every other durability artifact.
  explicit Quarantine(const std::string& directory, FaultInjector* injector = nullptr,
                      StorageEnv* env = nullptr)
      : injector_(injector) {
    log_.Open(directory + "/quarantine.wal", env);
  }

  Quarantine(const Quarantine&) = delete;
  Quarantine& operator=(const Quarantine&) = delete;

  const std::string& path() const { return log_.path(); }

  // Parks one rejected batch with its reason. Returns false when the
  // dead-letter write itself fails (injected or real IO failure) — the
  // caller counts the batch dropped so accounting stays exact.
  bool Append(RejectReason reason, const MutationBatch& batch) {
    std::lock_guard<std::mutex> lock(mu_);
    if (GB_FAULT_POINT(injector_, FaultSite::kQuarantineAppend)) {
      GB_LOG(kWarning) << "FaultInjector: quarantine append dropped";
      return false;
    }
    if (!log_.Append(Pack(reason, ++seq_), batch)) {
      return false;
    }
    ++parked_;
    return true;
  }

  // Streams every parked record through fn(RejectReason, MutationBatch&&)
  // without consuming it — the operator's inspection view. Returns the
  // number of records delivered.
  template <typename Fn>
  size_t ForEach(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_.Replay(0, [&](uint64_t seq, MutationBatch&& batch) {
      fn(Unpack(seq), std::move(batch));
    });
  }

  // Consumes the quarantine: snapshots all parked records, truncates the
  // log, then feeds each (reason, batch) to fn. Because the log is already
  // empty when fn runs, fn may call Append (a re-screened batch that is
  // still poisonous goes back to quarantine) without deadlock or replay
  // duplication. Returns the number of records fed.
  template <typename Fn>
  size_t Drain(Fn&& fn) {
    std::vector<std::pair<RejectReason, MutationBatch>> parked;
    {
      std::lock_guard<std::mutex> lock(mu_);
      log_.Replay(0, [&](uint64_t seq, MutationBatch&& batch) {
        parked.emplace_back(Unpack(seq), std::move(batch));
      });
      log_.Reset();
      seq_ = 0;
      parked_ = 0;
    }
    for (auto& [reason, batch] : parked) {
      fn(reason, std::move(batch));
    }
    return parked.size();
  }

  // Batches parked since construction or the last Drain. (Counts appends
  // observed by this instance; a pre-existing log on disk additionally
  // replays through ForEach/Drain.)
  uint64_t parked_batches() const {
    std::lock_guard<std::mutex> lock(mu_);
    return parked_;
  }

 private:
  // Reason rides in the top byte of the WAL record's seq field.
  static uint64_t Pack(RejectReason reason, uint64_t seq) {
    return (static_cast<uint64_t>(reason) << 56) | (seq & ((uint64_t{1} << 56) - 1));
  }
  static RejectReason Unpack(uint64_t seq) {
    const uint8_t raw = static_cast<uint8_t>(seq >> 56);
    return raw < static_cast<uint8_t>(RejectReason::kNumReasons) ? static_cast<RejectReason>(raw)
                                                                 : RejectReason::kNone;
  }

  mutable std::mutex mu_;
  WriteAheadLog log_;
  uint64_t seq_ = 0;
  uint64_t parked_ = 0;
  FaultInjector* injector_;
};

}  // namespace graphbolt

#endif  // SRC_SENTINEL_QUARANTINE_H_
