// Umbrella header: the public API of the GraphBolt library.
//
// Typical usage:
//
//   #include "src/graphbolt.h"
//
//   graphbolt::MutableGraph graph(graphbolt::GenerateRmat(100'000, 1'000'000));
//   graphbolt::GraphBoltEngine<graphbolt::PageRank> engine(&graph, graphbolt::PageRank{});
//   engine.InitialCompute();
//   engine.ApplyMutations({graphbolt::EdgeMutation::Add(1, 2)});
//   const auto& ranks = engine.values();
//
// Or, for concurrent ingestion with pipelined batching (any engine
// satisfying the StreamingEngine concept):
//
//   graphbolt::StreamDriver<decltype(engine)> driver(&engine);
//   driver.Ingest(graphbolt::EdgeMutation::Add(1, 2));   // from any thread
//   const auto& fresh = driver.values();                 // exact BSP snapshot
#ifndef SRC_GRAPHBOLT_H_
#define SRC_GRAPHBOLT_H_

#include "src/algorithms/belief_propagation.h"
#include "src/algorithms/coem.h"
#include "src/algorithms/collaborative_filtering.h"
#include "src/algorithms/connected_components.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/multi_source_reach.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/personalized_pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/triangle_counting.h"
#include "src/algorithms/widest_path.h"
#include "src/core/algorithm.h"
#include "src/core/compact_dependency_store.h"
#include "src/core/graphbolt_engine.h"
#include "src/core/streaming_engine.h"
#include "src/driver/stream_driver.h"
#include "src/engine/edge_map.h"
#include "src/fault/checkpoint.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fsck.h"
#include "src/fault/storage_env.h"
#include "src/fault/wal.h"
#include "src/engine/ligra_engine.h"
#include "src/engine/reset_engine.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"
#include "src/kickstarter/kickstarter.h"
#include "src/kickstarter/kickstarter_engine.h"
#include "src/minidd/dataflow.h"
#include "src/sentinel/admission.h"
#include "src/sentinel/quarantine.h"
#include "src/sentinel/watchdog.h"
#include "src/shard/driver_config.h"
#include "src/shard/session.h"
#include "src/shard/sharded_driver.h"
#include "src/stream/update_stream.h"

namespace graphbolt {

// The four engines are the StreamingEngine API surface; a signature drift
// in any of them fails here, at the definition of the public API, rather
// than deep inside a template instantiation.
static_assert(StreamingEngine<LigraEngine<PageRank>>);
static_assert(StreamingEngine<ResetEngine<PageRank>>);
static_assert(StreamingEngine<GraphBoltEngine<PageRank>>);
static_assert(StreamingEngine<KickStarterEngine<KsSsspTraits>>);
// All four are also checkpointable (SaveStateTo/LoadStateFrom), so the
// fault-tolerance layer (src/fault/) covers the whole engine surface.
static_assert(CheckpointableEngine<LigraEngine<PageRank>>);
static_assert(CheckpointableEngine<ResetEngine<PageRank>>);
static_assert(CheckpointableEngine<GraphBoltEngine<PageRank>>);
static_assert(CheckpointableEngine<KickStarterEngine<KsSsspTraits>>);
// The triangle-counting engines produce a scalar count, not per-vertex
// values: batch-drivable (harnesses, timing) but not stream-queryable.
static_assert(BatchEngine<TriangleCountingEngine> &&
              !StreamingEngine<TriangleCountingEngine>);
static_assert(BatchEngine<TriangleCountingResetEngine>);

}  // namespace graphbolt

#endif  // SRC_GRAPHBOLT_H_
