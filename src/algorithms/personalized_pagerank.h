// Personalized PageRank: random walks teleport back to a source set S
// instead of the uniform distribution:
//
//   c(v) = 0.15·[v ∈ S]·|V|/|S| + 0.85 · Σ_{(u,v)} c(u)/out_degree(u)
//
// Same decomposable sum as PageRank — including the propagateDelta fast
// path — but with a sparse, localized solution, which makes incremental
// refinement dramatically cheaper: mutations far from the personalization
// set barely perturb anything.
#ifndef SRC_ALGORITHMS_PERSONALIZED_PAGERANK_H_
#define SRC_ALGORITHMS_PERSONALIZED_PAGERANK_H_

#include <cmath>
#include <memory>
#include <vector>

#include "src/core/algorithm.h"
#include "src/parallel/atomics.h"

namespace graphbolt {

class PersonalizedPageRank {
 public:
  using Value = double;
  using Aggregate = double;
  using Contribution = double;

  static constexpr AggregationKind kKind = AggregationKind::kDecomposable;

  PersonalizedPageRank(std::vector<VertexId> sources, VertexId num_vertices,
                       double damping = 0.85, double tolerance = 1e-9)
      : in_source_set_(std::make_shared<std::vector<uint8_t>>(num_vertices, uint8_t{0})),
        damping_(damping),
        tolerance_(tolerance) {
    for (const VertexId s : sources) {
      (*in_source_set_)[s] = 1;
    }
    size_t count = 0;
    for (const uint8_t flag : *in_source_set_) {
      count += flag;
    }
    teleport_mass_ = count > 0 ? static_cast<double>(num_vertices) / static_cast<double>(count)
                               : 0.0;
  }

  Value InitialValue(VertexId v, const VertexContext& /*ctx*/) const {
    return Teleport(v);
  }

  Aggregate IdentityAggregate() const { return 0.0; }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight /*w*/,
                              const VertexContext& ctx) const {
    return value / Fanout(ctx);
  }

  Contribution DeltaContribution(VertexId /*u*/, const Value& old_value, const Value& new_value,
                                 Weight /*w*/, const VertexContext& old_ctx,
                                 const VertexContext& new_ctx) const {
    return new_value / Fanout(new_ctx) - old_value / Fanout(old_ctx);
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const { AtomicAdd(agg, c); }
  void RetractAtomic(Aggregate* agg, const Contribution& c) const { AtomicAdd(agg, -c); }

  Value VertexCompute(VertexId v, const Aggregate& agg, const VertexContext& /*ctx*/) const {
    return (1.0 - damping_) * Teleport(v) + damping_ * agg;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const { return std::fabs(a - b) > tolerance_; }

  bool IsSource(VertexId v) const {
    return v < in_source_set_->size() && (*in_source_set_)[v] != 0;
  }

 private:
  static double Fanout(const VertexContext& ctx) {
    return ctx.out_degree > 0 ? static_cast<double>(ctx.out_degree) : 1.0;
  }

  double Teleport(VertexId v) const { return IsSource(v) ? teleport_mass_ : 0.0; }

  std::shared_ptr<std::vector<uint8_t>> in_source_set_;
  double teleport_mass_ = 0.0;
  double damping_;
  double tolerance_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_PERSONALIZED_PAGERANK_H_
