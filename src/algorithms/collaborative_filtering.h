// Collaborative Filtering via Alternating Least Squares (Table 4, §3.3):
//
//   g(v) = ⟨ Σ_{(u,v) ∈ E} c(u)·c(u)ᵗ ,  Σ_{(u,v) ∈ E} c(u)·weight(u,v) ⟩
//   c(v) = (M + λI)⁻¹ · b    where (M, b) = g(v)
//
// This is the paper's canonical *complex* aggregation: it statically
// decomposes into two simple sums, but the first sum's inputs are
// transformed values (outer products), so incremental updates re-derive the
// old discrete contribution c(u)·c(u)ᵗ from the old value on the fly and
// subtract it (§3.3 step 2). The engine's retract+propagate pair realizes
// exactly that.
#ifndef SRC_ALGORITHMS_COLLABORATIVE_FILTERING_H_
#define SRC_ALGORITHMS_COLLABORATIVE_FILTERING_H_

#include <array>
#include <cmath>
#include <cstdint>

#include "src/core/algorithm.h"
#include "src/parallel/atomics.h"

namespace graphbolt {

template <int kRank = 4>
class CollaborativeFiltering {
 public:
  using Value = std::array<double, kRank>;
  // Aggregate layout: [0, kRank*kRank) = M (row major), then [.., +kRank) = b.
  using Aggregate = std::array<double, kRank * kRank + kRank>;
  using Contribution = Aggregate;

  static constexpr AggregationKind kKind = AggregationKind::kComplex;

  // `relaxation` in (0, 1] blends the least-squares solution toward the
  // vertex's deterministic prior: x = (1-α)·prior + α·(M+λI)⁻¹b. Plain
  // simultaneous ALS (α = 1) has rotational freedom — equivalent latent
  // solutions keep drifting, so values never stabilize iteration over
  // iteration. Under-relaxation (α ≈ 0.3) anchors the factorization and
  // makes the iteration contract, which is the regime in which the paper's
  // CF numbers (stabilizing values, cheap refinement) were collected.
  explicit CollaborativeFiltering(double lambda = 0.05, uint64_t seed = 17,
                                  double tolerance = 1e-9, double relaxation = 1.0)
      : lambda_(lambda), seed_(seed), tolerance_(tolerance), relaxation_(relaxation) {}

  // Deterministic pseudo-random latent vectors in [0.1, 1.1).
  Value InitialValue(VertexId v, const VertexContext& /*ctx*/) const {
    Value value;
    for (int k = 0; k < kRank; ++k) {
      uint64_t h = seed_ ^ (static_cast<uint64_t>(v) * 0x2545f4914f6cdd1dULL + k);
      h ^= h >> 29;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 32;
      value[k] = 0.1 + static_cast<double>(h >> 11) * 0x1.0p-53;
    }
    return value;
  }

  Aggregate IdentityAggregate() const {
    Aggregate agg{};
    return agg;
  }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight w,
                              const VertexContext& /*ctx*/) const {
    Contribution c{};
    for (int i = 0; i < kRank; ++i) {
      for (int j = 0; j < kRank; ++j) {
        c[i * kRank + j] = value[i] * value[j];
      }
      c[kRank * kRank + i] = value[i] * w;
    }
    return c;
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const {
    for (size_t i = 0; i < c.size(); ++i) {
      AtomicAdd(&(*agg)[i], c[i]);
    }
  }

  void RetractAtomic(Aggregate* agg, const Contribution& c) const {
    for (size_t i = 0; i < c.size(); ++i) {
      AtomicAdd(&(*agg)[i], -c[i]);
    }
  }

  // Solves (M + λI) x = b with Gaussian elimination and partial pivoting.
  Value VertexCompute(VertexId v, const Aggregate& agg, const VertexContext& ctx) const {
    if (ctx.in_degree == 0) {
      return InitialValue(v, ctx);  // no ratings: keep the prior
    }
    double m[kRank][kRank + 1];
    for (int i = 0; i < kRank; ++i) {
      for (int j = 0; j < kRank; ++j) {
        m[i][j] = agg[i * kRank + j] + (i == j ? lambda_ : 0.0);
      }
      m[i][kRank] = agg[kRank * kRank + i];
    }
    for (int col = 0; col < kRank; ++col) {
      int pivot = col;
      for (int row = col + 1; row < kRank; ++row) {
        if (std::fabs(m[row][col]) > std::fabs(m[pivot][col])) {
          pivot = row;
        }
      }
      for (int j = 0; j <= kRank; ++j) {
        std::swap(m[col][j], m[pivot][j]);
      }
      const double diag = m[col][col];
      if (std::fabs(diag) < 1e-12) {
        continue;  // singular direction: λI keeps this rare
      }
      for (int row = 0; row < kRank; ++row) {
        if (row == col) {
          continue;
        }
        const double factor = m[row][col] / diag;
        for (int j = col; j <= kRank; ++j) {
          m[row][j] -= factor * m[col][j];
        }
      }
    }
    Value value;
    for (int i = 0; i < kRank; ++i) {
      value[i] = std::fabs(m[i][i]) < 1e-12 ? 0.0 : m[i][kRank] / m[i][i];
    }
    if (relaxation_ < 1.0) {
      const Value prior = InitialValue(v, ctx);
      for (int i = 0; i < kRank; ++i) {
        value[i] = (1.0 - relaxation_) * prior[i] + relaxation_ * value[i];
      }
    }
    return value;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const {
    for (int k = 0; k < kRank; ++k) {
      if (std::fabs(a[k] - b[k]) > tolerance_) {
        return true;
      }
    }
    return false;
  }

 private:
  double lambda_;
  uint64_t seed_;
  double tolerance_;
  double relaxation_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_COLLABORATIVE_FILTERING_H_
