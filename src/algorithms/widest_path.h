// Single-source widest path (maximum bottleneck capacity):
//
//   c_i(v) = max_{(u,v) ∈ E}  min( c_{i-1}(u), weight(u,v) ),   c(source) = ∞
//
// A second non-decomposable aggregation (max of mins) exercising the
// engine's re-evaluation machinery with the opposite monotonicity to SSSP:
// edge additions only *raise* capacities, deletions lower them.
#ifndef SRC_ALGORITHMS_WIDEST_PATH_H_
#define SRC_ALGORITHMS_WIDEST_PATH_H_

#include <algorithm>

#include "src/core/algorithm.h"
#include "src/parallel/atomics.h"
#include "src/util/logging.h"

namespace graphbolt {

inline constexpr double kInfiniteCapacity = 1e30;

class WidestPath {
 public:
  using Value = double;   // best bottleneck capacity from the source
  using Aggregate = double;
  using Contribution = double;

  static constexpr AggregationKind kKind = AggregationKind::kNonDecomposable;
  static constexpr bool kMonotonic = true;  // additions only improve (raise) values
  static constexpr bool kContextFree = true;  // candidate = min(value, w), degree-blind

  explicit WidestPath(VertexId source) : source_(source) {}

  Value InitialValue(VertexId v, const VertexContext& /*ctx*/) const {
    return v == source_ ? kInfiniteCapacity : 0.0;
  }

  Aggregate IdentityAggregate() const { return 0.0; }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight w,
                              const VertexContext& /*ctx*/) const {
    return std::min(value, static_cast<double>(w));
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const { AtomicMax(agg, c); }

  void RetractAtomic(Aggregate* /*agg*/, const Contribution& /*c*/) const {
    GB_CHECK(false) << "max aggregation is non-decomposable; retraction is undefined";
  }

  Value VertexCompute(VertexId v, const Aggregate& agg, const VertexContext& /*ctx*/) const {
    return v == source_ ? kInfiniteCapacity : agg;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const { return a != b; }

  VertexId source() const { return source_; }

 private:
  VertexId source_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_WIDEST_PATH_H_
