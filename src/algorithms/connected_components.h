// Connected Components via label propagation with a min aggregation:
//
//   c_i(v) = min( v,  min_{(u,v) ∈ E} c_{i-1}(u) )
//
// On a symmetric (undirected-style) graph this converges to the weakly
// connected component id (the minimum vertex id in the component); on a
// digraph it labels vertices by the smallest id that can reach them. The
// aggregation is non-decomposable (min) and monotonic: edge additions only
// lower labels, so addition-only batches use the engine's push fast path,
// while deletions trigger min re-evaluation — the same machinery the paper
// exercises with SSSP (§3.3, §5.4B).
#ifndef SRC_ALGORITHMS_CONNECTED_COMPONENTS_H_
#define SRC_ALGORITHMS_CONNECTED_COMPONENTS_H_

#include "src/core/algorithm.h"
#include "src/parallel/atomics.h"
#include "src/util/logging.h"

namespace graphbolt {

class ConnectedComponents {
 public:
  using Value = double;         // component label (smallest reaching id)
  using Aggregate = double;
  using Contribution = double;

  static constexpr AggregationKind kKind = AggregationKind::kNonDecomposable;
  static constexpr bool kMonotonic = true;
  static constexpr bool kContextFree = true;  // the label itself is the candidate

  Value InitialValue(VertexId v, const VertexContext& /*ctx*/) const {
    return static_cast<Value>(v);
  }

  Aggregate IdentityAggregate() const { return kNoLabel; }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight /*w*/,
                              const VertexContext& /*ctx*/) const {
    return value;
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const { AtomicMin(agg, c); }

  void RetractAtomic(Aggregate* /*agg*/, const Contribution& /*c*/) const {
    GB_CHECK(false) << "min aggregation is non-decomposable; retraction is undefined";
  }

  Value VertexCompute(VertexId v, const Aggregate& agg, const VertexContext& /*ctx*/) const {
    const Value own = static_cast<Value>(v);
    return agg < own ? agg : own;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const { return a != b; }

 private:
  static constexpr double kNoLabel = 1e30;  // identity: no incoming label
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_CONNECTED_COMPONENTS_H_
