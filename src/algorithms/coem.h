// Co-Training Expectation Maximization (Table 4):
//
//   c(v) = Σ_{(u,v) ∈ E} c(u)·weight(u,v) / Σ_{(w,v) ∈ E} weight(w,v)
//
// Semi-supervised named-entity scoring: a set of seed vertices is clamped
// to score 1. The numerator is a decomposable weighted sum; the denominator
// is the in-weight sum provided by the vertex context, so a structural
// mutation that changes it is picked up through the context-change frontier.
#ifndef SRC_ALGORITHMS_COEM_H_
#define SRC_ALGORITHMS_COEM_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/algorithm.h"
#include "src/parallel/atomics.h"
#include "src/util/random.h"

namespace graphbolt {

class CoEM {
 public:
  using Value = double;
  using Aggregate = double;
  using Contribution = double;

  static constexpr AggregationKind kKind = AggregationKind::kDecomposable;

  CoEM(VertexId num_vertices, double seed_fraction = 0.05, uint64_t seed = 11,
       double tolerance = 1e-9)
      : seeds_(std::make_shared<std::vector<uint8_t>>(num_vertices, uint8_t{0})),
        tolerance_(tolerance) {
    Rng rng(seed);
    const auto num_seeds = static_cast<VertexId>(static_cast<double>(num_vertices) * seed_fraction);
    for (VertexId i = 0; i < num_seeds; ++i) {
      (*seeds_)[rng.NextBounded(num_vertices)] = 1;
    }
  }

  Value InitialValue(VertexId v, const VertexContext& /*ctx*/) const {
    return IsSeed(v) ? 1.0 : 0.0;
  }

  Aggregate IdentityAggregate() const { return 0.0; }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight w,
                              const VertexContext& /*ctx*/) const {
    return value * w;
  }

  Contribution DeltaContribution(VertexId /*u*/, const Value& old_value, const Value& new_value,
                                 Weight w, const VertexContext& /*old_ctx*/,
                                 const VertexContext& /*new_ctx*/) const {
    return (new_value - old_value) * w;
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const { AtomicAdd(agg, c); }
  void RetractAtomic(Aggregate* agg, const Contribution& c) const { AtomicAdd(agg, -c); }

  Value VertexCompute(VertexId v, const Aggregate& agg, const VertexContext& ctx) const {
    if (IsSeed(v)) {
      return 1.0;
    }
    if (ctx.in_weight_sum <= 0.0) {
      return 0.0;
    }
    return agg / ctx.in_weight_sum;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const { return std::fabs(a - b) > tolerance_; }

  bool IsSeed(VertexId v) const { return v < seeds_->size() && (*seeds_)[v] != 0; }

 private:
  std::shared_ptr<std::vector<uint8_t>> seeds_;
  double tolerance_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_COEM_H_
