// PageRank (Table 4):  c(v) = 0.15 + 0.85 · Σ_{(u,v) ∈ E} c(u)/out_degree(u)
//
// A simple decomposable aggregation (sum). Provides the combined
// DeltaContribution fast path of Algorithm 3 (propagateDelta): a change of
// value or of out-degree folds into a single atomic add.
#ifndef SRC_ALGORITHMS_PAGERANK_H_
#define SRC_ALGORITHMS_PAGERANK_H_

#include <cmath>

#include "src/core/algorithm.h"
#include "src/parallel/atomics.h"

namespace graphbolt {

class PageRank {
 public:
  using Value = double;
  using Aggregate = double;
  using Contribution = double;

  static constexpr AggregationKind kKind = AggregationKind::kDecomposable;

  explicit PageRank(double damping = 0.85, double tolerance = 1e-9)
      : damping_(damping), tolerance_(tolerance) {}

  Value InitialValue(VertexId /*v*/, const VertexContext& /*ctx*/) const { return 1.0; }

  Aggregate IdentityAggregate() const { return 0.0; }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight /*w*/,
                              const VertexContext& ctx) const {
    return value / Fanout(ctx);
  }

  Contribution DeltaContribution(VertexId /*u*/, const Value& old_value, const Value& new_value,
                                 Weight /*w*/, const VertexContext& old_ctx,
                                 const VertexContext& new_ctx) const {
    return new_value / Fanout(new_ctx) - old_value / Fanout(old_ctx);
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const { AtomicAdd(agg, c); }
  void RetractAtomic(Aggregate* agg, const Contribution& c) const { AtomicAdd(agg, -c); }

  Value VertexCompute(VertexId /*v*/, const Aggregate& agg, const VertexContext& /*ctx*/) const {
    return (1.0 - damping_) + damping_ * agg;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const { return std::fabs(a - b) > tolerance_; }

  double damping() const { return damping_; }

 private:
  // Dangling vertices contribute as if they had one edge so their rank is
  // not silently dropped from the system.
  static double Fanout(const VertexContext& ctx) {
    return ctx.out_degree > 0 ? static_cast<double>(ctx.out_degree) : 1.0;
  }

  double damping_;
  double tolerance_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_PAGERANK_H_
