// Label Propagation (Zhu & Ghahramani, Table 4):
//
//   agg(v)[f] = Σ_{(u,v) ∈ E} c(u)[f] · weight(u,v)
//   c(v)      = seed(v) fixed one-hot, else normalize(agg(v))
//
// Vertex values are label distributions (fixed arity L). The aggregation is
// a per-label weighted sum — decomposable — and the combined delta applies
// (new − old) · weight in one pass.
#ifndef SRC_ALGORITHMS_LABEL_PROPAGATION_H_
#define SRC_ALGORITHMS_LABEL_PROPAGATION_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/algorithm.h"
#include "src/parallel/atomics.h"
#include "src/util/logging.h"
#include "src/util/random.h"

namespace graphbolt {

template <int kLabels = 2>
class LabelPropagation {
 public:
  using Value = std::array<double, kLabels>;
  using Aggregate = std::array<double, kLabels>;
  using Contribution = std::array<double, kLabels>;

  static constexpr AggregationKind kKind = AggregationKind::kDecomposable;

  // Assigns `seed_fraction` of vertices a fixed one-hot label (round-robin
  // over labels, pseudo-random vertex choice).
  LabelPropagation(VertexId num_vertices, double seed_fraction = 0.1, uint64_t seed = 7,
                   double tolerance = 1e-9)
      : seeds_(std::make_shared<std::vector<int8_t>>(num_vertices, int8_t{-1})),
        tolerance_(tolerance) {
    Rng rng(seed);
    const auto num_seeds = static_cast<VertexId>(static_cast<double>(num_vertices) * seed_fraction);
    for (VertexId i = 0; i < num_seeds; ++i) {
      const auto v = static_cast<VertexId>(rng.NextBounded(num_vertices));
      (*seeds_)[v] = static_cast<int8_t>(i % kLabels);
    }
  }

  Value InitialValue(VertexId v, const VertexContext& /*ctx*/) const {
    return SeedOrUniform(v);
  }

  Aggregate IdentityAggregate() const {
    Aggregate agg{};
    return agg;
  }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight w,
                              const VertexContext& /*ctx*/) const {
    Contribution c;
    for (int f = 0; f < kLabels; ++f) {
      c[f] = value[f] * w;
    }
    return c;
  }

  Contribution DeltaContribution(VertexId /*u*/, const Value& old_value, const Value& new_value,
                                 Weight w, const VertexContext& /*old_ctx*/,
                                 const VertexContext& /*new_ctx*/) const {
    Contribution c;
    for (int f = 0; f < kLabels; ++f) {
      c[f] = (new_value[f] - old_value[f]) * w;
    }
    return c;
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const {
    for (int f = 0; f < kLabels; ++f) {
      AtomicAdd(&(*agg)[f], c[f]);
    }
  }

  void RetractAtomic(Aggregate* agg, const Contribution& c) const {
    for (int f = 0; f < kLabels; ++f) {
      AtomicAdd(&(*agg)[f], -c[f]);
    }
  }

  Value VertexCompute(VertexId v, const Aggregate& agg, const VertexContext& /*ctx*/) const {
    if (v < seeds_->size() && (*seeds_)[v] >= 0) {
      return SeedOrUniform(v);  // seed labels are clamped
    }
    double total = 0.0;
    for (int f = 0; f < kLabels; ++f) {
      total += agg[f];
    }
    Value value;
    if (total <= 1e-12) {
      value.fill(1.0 / kLabels);
      return value;
    }
    for (int f = 0; f < kLabels; ++f) {
      value[f] = agg[f] / total;
    }
    return value;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const {
    for (int f = 0; f < kLabels; ++f) {
      if (std::fabs(a[f] - b[f]) > tolerance_) {
        return true;
      }
    }
    return false;
  }

  bool IsSeed(VertexId v) const { return v < seeds_->size() && (*seeds_)[v] >= 0; }

 private:
  Value SeedOrUniform(VertexId v) const {
    Value value;
    if (v < seeds_->size() && (*seeds_)[v] >= 0) {
      value.fill(0.0);
      value[(*seeds_)[v]] = 1.0;
    } else {
      value.fill(1.0 / kLabels);
    }
    return value;
  }

  std::shared_ptr<std::vector<int8_t>> seeds_;
  double tolerance_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_LABEL_PROPAGATION_H_
