// Loopy Belief Propagation (Table 4):
//
//   ∀s: agg(v)[s] = Π_{(u,v) ∈ E}  Σ_{s'} φ(u,s')·ψ(u,v,s',s)·c(u,s')
//   c(v) = normalize(agg(v))
//
// The aggregation is a per-state product over transformed vertex values — a
// *complex* aggregation in the paper's taxonomy (§3.3): old contributions
// cannot be diffed away, so the engine re-derives them from old values on
// the fly and issues retract+propagate pairs (Algorithm 2).
//
// Numerical note: we carry the product in log space, so retract divides by
// subtracting logs. This is a monotone reparameterization of the paper's
// atomicMultiply/atomicDivide (same semantics, same incremental structure)
// that stays finite for the hub vertices of power-law graphs, where a raw
// product of thousands of normalized messages underflows doubles.
#ifndef SRC_ALGORITHMS_BELIEF_PROPAGATION_H_
#define SRC_ALGORITHMS_BELIEF_PROPAGATION_H_

#include <array>
#include <cmath>
#include <cstdint>

#include "src/core/algorithm.h"
#include "src/parallel/atomics.h"

namespace graphbolt {

template <int kStates = 3>
class BeliefPropagation {
 public:
  // Values are normalized state distributions; aggregates are per-state
  // log-products of incoming messages.
  using Value = std::array<double, kStates>;
  using Aggregate = std::array<double, kStates>;
  using Contribution = std::array<double, kStates>;  // log message

  static constexpr AggregationKind kKind = AggregationKind::kComplex;

  explicit BeliefPropagation(uint64_t prior_seed = 13, double tolerance = 1e-9)
      : prior_seed_(prior_seed), tolerance_(tolerance) {}

  Value InitialValue(VertexId /*v*/, const VertexContext& /*ctx*/) const {
    Value value;
    value.fill(1.0 / kStates);
    return value;
  }

  Aggregate IdentityAggregate() const {
    Aggregate agg{};  // log 1 = 0 per state
    return agg;
  }

  Contribution ContributionOf(VertexId u, const Value& value, Weight /*w*/,
                              const VertexContext& /*ctx*/) const {
    // Message from u: m[s] = Σ_{s'} φ(u,s')·ψ(s',s)·value[s'], normalized and
    // clamped away from zero, carried as logs.
    std::array<double, kStates> message{};
    double total = 0.0;
    for (int s = 0; s < kStates; ++s) {
      double m = 0.0;
      for (int sp = 0; sp < kStates; ++sp) {
        m += Phi(u, sp) * Psi(sp, s) * value[sp];
      }
      message[s] = m;
      total += m;
    }
    Contribution log_message;
    for (int s = 0; s < kStates; ++s) {
      const double normalized = total > 0.0 ? message[s] / total : 1.0 / kStates;
      log_message[s] = std::log(normalized < kMinProb ? kMinProb : normalized);
    }
    return log_message;
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const {
    for (int s = 0; s < kStates; ++s) {
      AtomicAdd(&(*agg)[s], c[s]);
    }
  }

  void RetractAtomic(Aggregate* agg, const Contribution& c) const {
    for (int s = 0; s < kStates; ++s) {
      AtomicAdd(&(*agg)[s], -c[s]);
    }
  }

  Value VertexCompute(VertexId /*v*/, const Aggregate& agg, const VertexContext& /*ctx*/) const {
    // Softmax: normalized product of the aggregated (log) messages.
    double max_log = agg[0];
    for (int s = 1; s < kStates; ++s) {
      max_log = std::max(max_log, agg[s]);
    }
    Value value;
    double total = 0.0;
    for (int s = 0; s < kStates; ++s) {
      value[s] = std::exp(agg[s] - max_log);
      total += value[s];
    }
    for (int s = 0; s < kStates; ++s) {
      value[s] /= total;
    }
    return value;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const {
    for (int s = 0; s < kStates; ++s) {
      if (std::fabs(a[s] - b[s]) > tolerance_) {
        return true;
      }
    }
    return false;
  }

  // Vertex prior φ(v, s): deterministic pseudo-random in [0.2, 1.0].
  double Phi(VertexId v, int s) const {
    uint64_t h = prior_seed_ ^ (static_cast<uint64_t>(v) * 0x9e3779b97f4a7c15ULL + s);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return 0.2 + 0.8 * static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  // Edge potential ψ(s', s): smoothing matrix favoring state agreement.
  static double Psi(int from, int to) {
    return from == to ? 0.6 : 0.4 / (kStates - 1);
  }

 private:
  static constexpr double kMinProb = 1e-6;

  uint64_t prior_seed_;
  double tolerance_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_BELIEF_PROPAGATION_H_
