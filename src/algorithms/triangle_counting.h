// Triangle Counting (Table 4):
//
//   T(G) = Σ_{(u,v) ∈ E} | in_neighbors(u) ∩ out_neighbors(v) |
//
// TC is not iterative: mutations have purely local impact (§5.2), so
// GraphBolt adjusts the count by recounting only the per-edge terms whose
// inputs changed — the term edges themselves (Ea, Ed) plus persisting edges
// (u, v) where u gained/lost an in-edge or v gained/lost an out-edge. The
// restart baseline (Ligra == GB-Reset for TC) recounts every term.
#ifndef SRC_ALGORITHMS_TRIANGLE_COUNTING_H_
#define SRC_ALGORITHMS_TRIANGLE_COUNTING_H_

#include <cstdint>

#include "src/engine/stats.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"

namespace graphbolt {

// Full count over every edge term. `stats`, if non-null, accumulates the
// number of adjacency entries scanned (the edge-computation metric).
uint64_t CountTriangles(const MutableGraph& graph, EngineStats* stats = nullptr);

// Incremental triangle counting over a stream of mutation batches.
class TriangleCountingEngine {
 public:
  explicit TriangleCountingEngine(MutableGraph* graph) : graph_(graph) {}

  // Full initial count.
  void InitialCompute();

  // Applies the batch and adjusts the count locally.
  AppliedMutations ApplyMutations(const MutationBatch& batch);

  uint64_t count() const { return count_; }
  const EngineStats& stats() const { return stats_; }

 private:
  // Sum of the |in(u) ∩ out(v)| terms for the affected edge set of the
  // current graph state. Used before and after the structural mutation.
  uint64_t AffectedTermSum(const AppliedMutations& normalized, bool include_added);

  MutableGraph* graph_;
  uint64_t count_ = 0;
  EngineStats stats_;
};

// Restart baseline: recounts everything after each batch.
class TriangleCountingResetEngine {
 public:
  explicit TriangleCountingResetEngine(MutableGraph* graph) : graph_(graph) {}

  void InitialCompute();
  AppliedMutations ApplyMutations(const MutationBatch& batch);

  uint64_t count() const { return count_; }
  const EngineStats& stats() const { return stats_; }

 private:
  MutableGraph* graph_;
  uint64_t count_ = 0;
  EngineStats stats_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_TRIANGLE_COUNTING_H_
