#include "src/algorithms/triangle_counting.h"

#include <atomic>
#include <unordered_set>
#include <vector>

#include "src/parallel/parallel_for.h"
#include "src/util/timer.h"

namespace graphbolt {

namespace {

// |in(u) ∩ out(v)| via a linear merge over the sorted adjacency lists.
// `scanned`, if non-null, accumulates the number of entries visited.
uint64_t IntersectionSize(std::span<const VertexId> a, std::span<const VertexId> b,
                          uint64_t* scanned) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  if (scanned != nullptr) {
    *scanned += i + j;
  }
  return count;
}

uint64_t PackEdge(VertexId src, VertexId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

}  // namespace

uint64_t CountTriangles(const MutableGraph& graph, EngineStats* stats) {
  const VertexId n = graph.num_vertices();
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> scanned{0};
  ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
    uint64_t local_total = 0;
    uint64_t local_scanned = 0;
    for (size_t ui = lo; ui < hi; ++ui) {
      const VertexId u = static_cast<VertexId>(ui);
      const auto in_u = graph.InNeighbors(u);
      for (const VertexId v : graph.OutNeighbors(u)) {
        local_total += IntersectionSize(in_u, graph.OutNeighbors(v), &local_scanned);
      }
    }
    total.fetch_add(local_total, std::memory_order_relaxed);
    scanned.fetch_add(local_scanned, std::memory_order_relaxed);
  }, /*grain=*/128);
  if (stats != nullptr) {
    stats->edges_processed += scanned.load();
  }
  return total.load();
}

void TriangleCountingEngine::InitialCompute() {
  Timer timer;
  stats_.Clear();
  count_ = CountTriangles(*graph_, &stats_);
  stats_.iterations = 1;
  stats_.seconds = timer.Seconds();
}

uint64_t TriangleCountingEngine::AffectedTermSum(const AppliedMutations& normalized,
                                                 bool include_added) {
  // Gather the affected term edges of the *current* graph state: out-edges
  // of vertices whose in-set changed, in-edges of vertices whose out-set
  // changed, and the mutated edges themselves.
  std::unordered_set<uint64_t> terms;
  std::unordered_set<VertexId> in_changed;   // mutation destinations
  std::unordered_set<VertexId> out_changed;  // mutation sources
  for (const Edge& e : normalized.added) {
    out_changed.insert(e.src);
    in_changed.insert(e.dst);
  }
  for (const Edge& e : normalized.deleted) {
    out_changed.insert(e.src);
    in_changed.insert(e.dst);
  }
  const VertexId n = graph_->num_vertices();
  for (const VertexId u : in_changed) {
    if (u >= n) {
      continue;
    }
    for (const VertexId v : graph_->OutNeighbors(u)) {
      terms.insert(PackEdge(u, v));
    }
  }
  for (const VertexId v : out_changed) {
    if (v >= n) {
      continue;
    }
    for (const VertexId u : graph_->InNeighbors(v)) {
      terms.insert(PackEdge(u, v));
    }
  }
  const auto& batch_edges = include_added ? normalized.added : normalized.deleted;
  for (const Edge& e : batch_edges) {
    if (e.src < n && e.dst < n && graph_->HasEdge(e.src, e.dst)) {
      terms.insert(PackEdge(e.src, e.dst));
    }
  }

  uint64_t sum = 0;
  uint64_t scanned = 0;
  for (const uint64_t packed : terms) {
    const auto u = static_cast<VertexId>(packed >> 32);
    const auto v = static_cast<VertexId>(packed & 0xffffffffULL);
    sum += IntersectionSize(graph_->InNeighbors(u), graph_->OutNeighbors(v), &scanned);
  }
  stats_.edges_processed += scanned;
  return sum;
}

AppliedMutations TriangleCountingEngine::ApplyMutations(const MutationBatch& batch) {
  stats_.Clear();
  Timer timer;
  const AppliedMutations normalized = graph_->NormalizeBatch(batch);
  const uint64_t old_sum = AffectedTermSum(normalized, /*include_added=*/false);

  Timer mutation_timer;
  AppliedMutations applied = graph_->ApplyBatch(batch);
  stats_.mutation_seconds = mutation_timer.Seconds();

  const uint64_t new_sum = AffectedTermSum(normalized, /*include_added=*/true);
  count_ = static_cast<uint64_t>(static_cast<int64_t>(count_) + static_cast<int64_t>(new_sum) -
                                 static_cast<int64_t>(old_sum));
  stats_.iterations = 1;
  stats_.seconds = timer.Seconds() - stats_.mutation_seconds;
  return applied;
}

void TriangleCountingResetEngine::InitialCompute() {
  Timer timer;
  stats_.Clear();
  count_ = CountTriangles(*graph_, &stats_);
  stats_.iterations = 1;
  stats_.seconds = timer.Seconds();
}

AppliedMutations TriangleCountingResetEngine::ApplyMutations(const MutationBatch& batch) {
  stats_.Clear();
  Timer mutation_timer;
  AppliedMutations applied = graph_->ApplyBatch(batch);
  stats_.mutation_seconds = mutation_timer.Seconds();
  Timer timer;
  count_ = CountTriangles(*graph_, &stats_);
  stats_.iterations = 1;
  stats_.seconds = timer.Seconds();
  return applied;
}

}  // namespace graphbolt
