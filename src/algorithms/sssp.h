// Single-Source Shortest Paths and BFS as non-decomposable min aggregations
// (§3.3 "Aggregation Properties & Extensions", §5.4B).
//
//   g(v) = min_{(u,v) ∈ E} ( c(u) + weight(u,v) )
//   c(v) = v == source ? 0 : g(v)
//
// min has no inverse, so the engine re-evaluates impacted vertices by
// pulling their full in-neighborhood — the re-evaluation strategy the paper
// uses when comparing against KickStarter. Run in convergence mode: rounds
// are Bellman–Ford iterations.
#ifndef SRC_ALGORITHMS_SSSP_H_
#define SRC_ALGORITHMS_SSSP_H_

#include <algorithm>

#include "src/core/algorithm.h"
#include "src/parallel/atomics.h"
#include "src/util/logging.h"

namespace graphbolt {

inline constexpr double kUnreachable = 1e30;

class Sssp {
 public:
  using Value = double;
  using Aggregate = double;
  using Contribution = double;

  static constexpr AggregationKind kKind = AggregationKind::kNonDecomposable;
  static constexpr bool kMonotonic = true;
  static constexpr bool kContextFree = true;  // candidate = value + w, degree-blind

  explicit Sssp(VertexId source) : source_(source) {}

  Value InitialValue(VertexId v, const VertexContext& /*ctx*/) const {
    return v == source_ ? 0.0 : kUnreachable;
  }

  Aggregate IdentityAggregate() const { return kUnreachable; }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight w,
                              const VertexContext& /*ctx*/) const {
    return value >= kUnreachable ? kUnreachable : value + w;
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const { AtomicMin(agg, c); }

  void RetractAtomic(Aggregate* /*agg*/, const Contribution& /*c*/) const {
    GB_CHECK(false) << "min aggregation is non-decomposable; retraction is undefined";
  }

  Value VertexCompute(VertexId v, const Aggregate& agg, const VertexContext& /*ctx*/) const {
    return v == source_ ? 0.0 : agg;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const { return a != b; }

  VertexId source() const { return source_; }

 private:
  VertexId source_;
};

// Breadth-first search: shortest hop count, ignoring edge weights.
class Bfs {
 public:
  using Value = double;
  using Aggregate = double;
  using Contribution = double;

  static constexpr AggregationKind kKind = AggregationKind::kNonDecomposable;
  static constexpr bool kMonotonic = true;
  static constexpr bool kContextFree = true;  // candidate = value + 1, degree-blind

  explicit Bfs(VertexId source) : source_(source) {}

  Value InitialValue(VertexId v, const VertexContext& /*ctx*/) const {
    return v == source_ ? 0.0 : kUnreachable;
  }

  Aggregate IdentityAggregate() const { return kUnreachable; }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight /*w*/,
                              const VertexContext& /*ctx*/) const {
    return value >= kUnreachable ? kUnreachable : value + 1.0;
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const { AtomicMin(agg, c); }

  void RetractAtomic(Aggregate* /*agg*/, const Contribution& /*c*/) const {
    GB_CHECK(false) << "min aggregation is non-decomposable; retraction is undefined";
  }

  Value VertexCompute(VertexId v, const Aggregate& agg, const VertexContext& /*ctx*/) const {
    return v == source_ ? 0.0 : agg;
  }

  bool ValuesDiffer(const Value& a, const Value& b) const { return a != b; }

  VertexId source() const { return source_; }

 private:
  VertexId source_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_SSSP_H_
