// Multi-source reachability: each vertex accumulates a bitmask of which of
// up to 64 source vertices can reach it.
//
//   c(v) = seed_mask(v) | ⋃_{(u,v) ∈ E} c(u)
//
// The aggregation is bitwise OR — idempotent and monotonic under additions
// (like min/max, it cannot retract a bit), so it exercises the engine's
// non-decomposable machinery with an *integer* aggregate type. This is the
// core of neighborhood-function / radius estimation algorithms (the
// Ligra-family "MSBFS" pattern), and a streaming primitive in its own
// right: which regions can my monitors still see as edges churn?
#ifndef SRC_ALGORITHMS_MULTI_SOURCE_REACH_H_
#define SRC_ALGORITHMS_MULTI_SOURCE_REACH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/algorithm.h"
#include "src/util/logging.h"

namespace graphbolt {

class MultiSourceReach {
 public:
  using Value = uint64_t;        // bit s set <=> source s reaches v
  using Aggregate = uint64_t;
  using Contribution = uint64_t;

  static constexpr AggregationKind kKind = AggregationKind::kNonDecomposable;
  static constexpr bool kMonotonic = true;  // additions only set more bits
  static constexpr bool kContextFree = true;  // the reach mask ignores degrees

  explicit MultiSourceReach(std::vector<VertexId> sources, VertexId num_vertices)
      : seed_masks_(std::make_shared<std::vector<uint64_t>>(num_vertices, 0)) {
    GB_CHECK(sources.size() <= 64) << "at most 64 sources per instance";
    for (size_t s = 0; s < sources.size(); ++s) {
      GB_CHECK(sources[s] < num_vertices) << "source out of range";
      (*seed_masks_)[sources[s]] |= 1ULL << s;
    }
  }

  Value InitialValue(VertexId v, const VertexContext& /*ctx*/) const { return SeedMask(v); }

  Aggregate IdentityAggregate() const { return 0; }

  Contribution ContributionOf(VertexId /*u*/, const Value& value, Weight /*w*/,
                              const VertexContext& /*ctx*/) const {
    return value;
  }

  void AggregateAtomic(Aggregate* agg, const Contribution& c) const {
    reinterpret_cast<std::atomic<uint64_t>*>(agg)->fetch_or(c, std::memory_order_relaxed);
  }

  void RetractAtomic(Aggregate* /*agg*/, const Contribution& /*c*/) const {
    GB_CHECK(false) << "bitwise OR is non-decomposable; retraction is undefined";
  }

  Value VertexCompute(VertexId v, const Aggregate& agg, const VertexContext& /*ctx*/) const {
    return agg | SeedMask(v);
  }

  bool ValuesDiffer(const Value& a, const Value& b) const { return a != b; }

 private:
  uint64_t SeedMask(VertexId v) const {
    return v < seed_masks_->size() ? (*seed_masks_)[v] : 0;
  }

  std::shared_ptr<std::vector<uint64_t>> seed_masks_;
};

}  // namespace graphbolt

#endif  // SRC_ALGORITHMS_MULTI_SOURCE_REACH_H_
