// Byte-level accounting of dependency-tracking state.
//
// Table 9 of the paper reports the memory increase of GraphBolt relative to
// GB-Reset. We account the dominant structures explicitly (aggregation
// history, changed-bit vectors, snapshot arrays) through this registry
// rather than scraping the allocator, so the numbers are exact and
// attributable.
#ifndef SRC_UTIL_MEMORY_H_
#define SRC_UTIL_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace graphbolt {

// A named memory counter. Components register bytes under a category; the
// Table 9 bench reads the totals.
class MemoryAccountant {
 public:
  // Process-wide instance.
  static MemoryAccountant& Instance();

  void Add(const std::string& category, int64_t bytes);

  int64_t Total(const std::string& category) const;

  // All (category, bytes) pairs, sorted by category.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  void Reset();

 private:
  MemoryAccountant() = default;

  mutable std::vector<std::pair<std::string, int64_t>> entries_;
};

}  // namespace graphbolt

#endif  // SRC_UTIL_MEMORY_H_
