#include "src/util/memory.h"

#include <algorithm>
#include <mutex>

namespace graphbolt {

namespace {
std::mutex& AccountantMutex() {
  static std::mutex mutex;
  return mutex;
}
}  // namespace

MemoryAccountant& MemoryAccountant::Instance() {
  static MemoryAccountant instance;
  return instance;
}

void MemoryAccountant::Add(const std::string& category, int64_t bytes) {
  std::lock_guard<std::mutex> lock(AccountantMutex());
  for (auto& entry : entries_) {
    if (entry.first == category) {
      entry.second += bytes;
      return;
    }
  }
  entries_.emplace_back(category, bytes);
}

int64_t MemoryAccountant::Total(const std::string& category) const {
  std::lock_guard<std::mutex> lock(AccountantMutex());
  for (const auto& entry : entries_) {
    if (entry.first == category) {
      return entry.second;
    }
  }
  return 0;
}

std::vector<std::pair<std::string, int64_t>> MemoryAccountant::Snapshot() const {
  std::lock_guard<std::mutex> lock(AccountantMutex());
  auto copy = entries_;
  std::sort(copy.begin(), copy.end());
  return copy;
}

void MemoryAccountant::Reset() {
  std::lock_guard<std::mutex> lock(AccountantMutex());
  entries_.clear();
}

}  // namespace graphbolt
