// Concurrent fixed-size bitset.
//
// Used for per-iteration changed-vertex tracking (hybrid execution) and for
// deduplicating frontier insertion during parallel refinement. Set() is safe
// to call concurrently from multiple threads; resizing is not.
#ifndef SRC_UTIL_BITSET_H_
#define SRC_UTIL_BITSET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace graphbolt {

class AtomicBitset {
 public:
  AtomicBitset() = default;

  explicit AtomicBitset(size_t size) { Resize(size); }

  // Resizes to hold `size` bits, clearing all bits. Not thread-safe.
  void Resize(size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, Word{});
    for (auto& w : words_) {
      w.value.store(0, std::memory_order_relaxed);
    }
  }

  size_t size() const { return size_; }

  // Grows to `new_size` bits, preserving existing bits. Not thread-safe.
  void Grow(size_t new_size) {
    if (new_size <= size_) {
      return;
    }
    size_ = new_size;
    words_.resize((new_size + 63) / 64);
  }

  // Sets bit `i`. Returns true if this call transitioned it from 0 to 1,
  // which lets callers claim exclusive ownership of frontier insertion.
  bool Set(size_t i) {
    const uint64_t mask = 1ULL << (i & 63);
    const uint64_t old =
        words_[i >> 6].value.fetch_or(mask, std::memory_order_relaxed);
    return (old & mask) == 0;
  }

  // Clears bit `i`. Thread-safe with respect to other Set/Clear calls.
  void Clear(size_t i) {
    const uint64_t mask = 1ULL << (i & 63);
    words_[i >> 6].value.fetch_and(~mask, std::memory_order_relaxed);
  }

  bool Test(size_t i) const {
    return (words_[i >> 6].value.load(std::memory_order_relaxed) >>
            (i & 63)) &
           1ULL;
  }

  // Clears every bit. Not thread-safe.
  void ClearAll() {
    for (auto& w : words_) {
      w.value.store(0, std::memory_order_relaxed);
    }
  }

  // Number of set bits (sequential scan).
  size_t Count() const {
    size_t count = 0;
    for (const auto& w : words_) {
      count += static_cast<size_t>(
          __builtin_popcountll(w.value.load(std::memory_order_relaxed)));
    }
    return count;
  }

 private:
  struct Word {
    std::atomic<uint64_t> value{0};
    Word() = default;
    Word(const Word& other) : value(other.value.load(std::memory_order_relaxed)) {}
    Word& operator=(const Word& other) {
      value.store(other.value.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  size_t size_ = 0;
  std::vector<Word> words_;
};

}  // namespace graphbolt

#endif  // SRC_UTIL_BITSET_H_
