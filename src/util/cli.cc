#include "src/util/cli.h"

#include <cstdio>
#include <cstdlib>

#include "src/util/logging.h"

namespace graphbolt {

namespace {
const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "string";
    case 1:
      return "int";
    case 2:
      return "double";
    case 3:
      return "bool";
  }
  return "?";
}
}  // namespace

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

ArgParser& ArgParser::AddString(const std::string& name, const std::string& default_value,
                                const std::string& help) {
  flags_.push_back({name, Kind::kString, default_value, help, default_value});
  return *this;
}

ArgParser& ArgParser::AddInt(const std::string& name, int64_t default_value,
                             const std::string& help) {
  const std::string text = std::to_string(default_value);
  flags_.push_back({name, Kind::kInt, text, help, text});
  return *this;
}

ArgParser& ArgParser::AddDouble(const std::string& name, double default_value,
                                const std::string& help) {
  const std::string text = std::to_string(default_value);
  flags_.push_back({name, Kind::kDouble, text, help, text});
  return *this;
}

ArgParser& ArgParser::AddBool(const std::string& name, bool default_value,
                              const std::string& help) {
  const std::string text = default_value ? "true" : "false";
  flags_.push_back({name, Kind::kBool, text, help, text});
  return *this;
}

const ArgParser::Flag* ArgParser::Find(const std::string& name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

ArgParser::Flag* ArgParser::FindMutable(const std::string& name) {
  for (auto& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

void ArgParser::PrintHelp() const {
  std::printf("%s\n\nFlags:\n", description_.c_str());
  for (const auto& flag : flags_) {
    std::printf("  --%s <%s>  %s (default: %s)\n", flag.name.c_str(),
                KindName(static_cast<int>(flag.kind)), flag.help.c_str(),
                flag.default_value.c_str());
  }
}

bool ArgParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    Flag* flag = FindMutable(name);
    if (flag == nullptr) {
      GB_LOG(kError) << "Unknown flag --" << name;
      PrintHelp();
      return false;
    }
    if (!has_value) {
      if (flag->kind == Kind::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        GB_LOG(kError) << "Flag --" << name << " requires a value";
        return false;
      }
    }
    flag->value = value;
  }
  return true;
}

std::string ArgParser::GetString(const std::string& name) const {
  const Flag* flag = Find(name);
  GB_CHECK(flag != nullptr) << "Unregistered flag: " << name;
  return flag->value;
}

int64_t ArgParser::GetInt(const std::string& name) const {
  const Flag* flag = Find(name);
  GB_CHECK(flag != nullptr) << "Unregistered flag: " << name;
  return std::strtoll(flag->value.c_str(), nullptr, 10);
}

double ArgParser::GetDouble(const std::string& name) const {
  const Flag* flag = Find(name);
  GB_CHECK(flag != nullptr) << "Unregistered flag: " << name;
  return std::strtod(flag->value.c_str(), nullptr);
}

bool ArgParser::GetBool(const std::string& name) const {
  const Flag* flag = Find(name);
  GB_CHECK(flag != nullptr) << "Unregistered flag: " << name;
  return flag->value == "true" || flag->value == "1" || flag->value == "yes";
}

}  // namespace graphbolt
