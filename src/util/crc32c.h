#pragma once

// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding durability artifacts (WAL records, checkpoint sections).
// Software slice-by-one table implementation: ~1 GB/s, which dwarfs the
// artifact sizes involved, and carries no ISA dependency. The table is built
// at compile time so there is no init-order hazard for static-storage users.
//
// Checksums are *masked* before hitting disk (the leveldb trick): a CRC of
// data that itself embeds CRCs is weak, and a file of zeros would otherwise
// carry a valid zero CRC. Maskers rotate and add a constant so a stored
// masked CRC never equals the raw CRC of anything.

#include <array>
#include <cstddef>
#include <cstdint>

namespace graphbolt {

namespace crc32c_detail {

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace crc32c_detail

// Extends a running CRC32C with `n` bytes. Start from Crc32c() (or 0) and
// chain calls to checksum discontiguous sections as one stream.
inline uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = crc32c_detail::kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

// Masked form stored on disk (see header comment).
inline constexpr uint32_t kCrcMaskDelta = 0xA282EAD8u;

inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - kCrcMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace graphbolt
