// Lightweight leveled logging for the GraphBolt library.
//
// Logging is intentionally minimal: a process-wide level, a stream sink
// (stderr by default), and macros that compile to a short-circuited check
// when the level is disabled. Benchmarks raise the level to kWarning so the
// timed region is not polluted by formatting work.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace graphbolt {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Returns the current process-wide log level.
LogLevel GetLogLevel();

// Sets the process-wide log level. Not thread-safe with concurrent logging;
// call during setup.
void SetLogLevel(LogLevel level);

// Converts a level to its display tag ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

// One log statement. Accumulates a message via operator<< and emits it on
// destruction. A kFatal message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace graphbolt

#define GB_LOG(level)                                                  \
  if (::graphbolt::LogLevel::level < ::graphbolt::GetLogLevel()) {    \
  } else                                                               \
    ::graphbolt::LogMessage(::graphbolt::LogLevel::level, __FILE__, __LINE__)

// Always-on assertion that logs the failed condition and aborts. Used for
// invariants that must hold in release builds (e.g. graph integrity).
#define GB_CHECK(cond)                                                      \
  if (cond) {                                                               \
  } else                                                                    \
    ::graphbolt::LogMessage(::graphbolt::LogLevel::kFatal, __FILE__,        \
                            __LINE__)                                       \
        << "Check failed: " #cond " "

// Debug-only assertion: compiles to GB_CHECK in debug builds and to nothing
// (condition not evaluated) when NDEBUG is set. Used for contract violations
// that are programming errors, not data errors — e.g. calling
// ThreadPool::SetNumThreads from inside a parallel region.
#ifdef NDEBUG
#define GB_DCHECK(cond) \
  if (true) {           \
  } else                \
    ::graphbolt::LogMessage(::graphbolt::LogLevel::kFatal, __FILE__, __LINE__)
#else
#define GB_DCHECK(cond) GB_CHECK(cond)
#endif

#endif  // SRC_UTIL_LOGGING_H_
