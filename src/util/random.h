// Deterministic, fast pseudo-random generators.
//
// Graph generation, mutation-stream construction, and property tests all
// need reproducible randomness that is cheap enough to call per edge. We use
// SplitMix64 for seeding and Xoshiro256** for bulk generation; both are
// public-domain algorithms (Blackman & Vigna).
#ifndef SRC_UTIL_RANDOM_H_
#define SRC_UTIL_RANDOM_H_

#include <cstdint>

namespace graphbolt {

// SplitMix64: used to expand a single seed into independent streams.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  static constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

  explicit Rng(uint64_t seed = kDefaultSeed) {
    uint64_t sm = seed;
    for (auto& s : state_) {
      s = SplitMix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace graphbolt

#endif  // SRC_UTIL_RANDOM_H_
