// Tiny command-line flag parser shared by examples and benchmark binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--name` flags, plus
// `--help` text generated from registered flags. No external dependencies.
#ifndef SRC_UTIL_CLI_H_
#define SRC_UTIL_CLI_H_

#include <cstdint>
#include <string>
#include <vector>

namespace graphbolt {

class ArgParser {
 public:
  ArgParser(std::string program_description);

  // Registers a flag with a default. Returns *this for chaining.
  ArgParser& AddString(const std::string& name, const std::string& default_value,
                       const std::string& help);
  ArgParser& AddInt(const std::string& name, int64_t default_value, const std::string& help);
  ArgParser& AddDouble(const std::string& name, double default_value, const std::string& help);
  ArgParser& AddBool(const std::string& name, bool default_value, const std::string& help);

  // Parses argv. On `--help` prints usage and returns false; on an unknown
  // flag logs an error and returns false. Otherwise returns true.
  bool Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Positional (non-flag) arguments encountered during Parse.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Kind { kString, kInt, kDouble, kBool };

  struct Flag {
    std::string name;
    Kind kind;
    std::string value;  // textual form; converted on Get*
    std::string help;
    std::string default_value;
  };

  const Flag* Find(const std::string& name) const;
  Flag* FindMutable(const std::string& name);
  void PrintHelp() const;

  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace graphbolt

#endif  // SRC_UTIL_CLI_H_
