// Wall-clock timers used by the benchmark harnesses and the engines'
// self-reported phase timings.
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace graphbolt {

// A restartable wall-clock timer with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Resets the epoch to now.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across multiple start/stop windows, e.g. to separate a
// refinement phase from a structure-mutation phase inside a loop.
class AccumulatingTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_seconds_ += timer_.Seconds(); }
  double TotalSeconds() const { return total_seconds_; }
  void Clear() { total_seconds_ = 0.0; }

 private:
  Timer timer_;
  double total_seconds_ = 0.0;
};

// Exponential-backoff sleeper for retry loops on the durable IO paths
// (WAL appends, checkpoint writes): each Sleep() waits the current delay,
// then multiplies it for the next attempt. The delay is capped at
// max_seconds so a long retry chain cannot wedge the worker for an
// unbounded stretch, and each sleep is jittered into [delay/2, delay] so
// concurrent retriers (multiple drivers against the same disk) decorrelate
// instead of hammering in lockstep. The jitter stream is deterministic per
// Backoff instance when a seed is supplied; by default it draws from a
// process-wide counter, which is still reproducible under single-threaded
// test runs.
class Backoff {
 public:
  Backoff(double initial_seconds, double multiplier,
          double max_seconds = kNoMax, uint64_t seed = 0)
      : delay_seconds_(initial_seconds),
        multiplier_(multiplier),
        max_seconds_(max_seconds > 0.0 ? max_seconds : kNoMax),
        rng_(Mix(seed != 0 ? seed : NextAutoSeed())) {}

  // Sleeps for the (jittered, capped) current delay and advances to the
  // next one.
  void Sleep() {
    std::this_thread::sleep_for(std::chrono::duration<double>(JitteredDelay()));
    delay_seconds_ = delay_seconds_ * multiplier_;
    if (delay_seconds_ > max_seconds_) {
      delay_seconds_ = max_seconds_;
    }
  }

  // The (uncapped-by-jitter) delay the next Sleep() draws from; the actual
  // sleep lands in [next_delay_seconds()/2, next_delay_seconds()].
  double next_delay_seconds() const { return delay_seconds_; }

  double max_seconds() const { return max_seconds_; }

 private:
  static constexpr double kNoMax = 1e30;

  static uint64_t NextAutoSeed() {
    static std::atomic<uint64_t> counter{0x6261636b6f666631ULL};  // "backoff1"
    return counter.fetch_add(0x9e3779b97f4a7c15ULL) + 1;
  }

  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  double JitteredDelay() {
    rng_ = Mix(rng_);
    const double u = static_cast<double>(rng_ >> 11) * 0x1.0p-53;  // [0, 1)
    return delay_seconds_ * (0.5 + 0.5 * u);
  }

  double delay_seconds_;
  double multiplier_;
  double max_seconds_;
  uint64_t rng_;
};

}  // namespace graphbolt

#endif  // SRC_UTIL_TIMER_H_
