// Wall-clock timers used by the benchmark harnesses and the engines'
// self-reported phase timings.
#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace graphbolt {

// A restartable wall-clock timer with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Resets the epoch to now.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across multiple start/stop windows, e.g. to separate a
// refinement phase from a structure-mutation phase inside a loop.
class AccumulatingTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_seconds_ += timer_.Seconds(); }
  double TotalSeconds() const { return total_seconds_; }
  void Clear() { total_seconds_ = 0.0; }

 private:
  Timer timer_;
  double total_seconds_ = 0.0;
};

// Exponential-backoff sleeper for retry loops on the durable IO paths
// (WAL appends, checkpoint writes): each Sleep() waits the current delay,
// then multiplies it for the next attempt.
class Backoff {
 public:
  Backoff(double initial_seconds, double multiplier)
      : delay_seconds_(initial_seconds), multiplier_(multiplier) {}

  // Sleeps for the current delay and advances to the next one.
  void Sleep() {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_seconds_));
    delay_seconds_ *= multiplier_;
  }

  // The delay the next Sleep() will wait.
  double next_delay_seconds() const { return delay_seconds_; }

 private:
  double delay_seconds_;
  double multiplier_;
};

}  // namespace graphbolt

#endif  // SRC_UTIL_TIMER_H_
