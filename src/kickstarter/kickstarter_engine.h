// Generalized KickStarter: the dependence-tree incremental technique of
// Vora et al. (ASPLOS'17) templated over any monotonic path algorithm.
//
// A monotonic path algorithm is described by a traits type:
//
//   struct SsspTraits {
//     using Value = double;
//     Value InitialValue(VertexId v) const;        // source seed / worst
//     Value Worst() const;                          // the no-path value
//     bool Better(Value a, Value b) const;          // strict improvement
//     Value Relax(Value u, Weight w) const;         // candidate via (u,v)
//   };
//
// Each vertex remembers the in-neighbor its value came from (its parent in
// the dependence tree). Additions relax; a deletion (or a worsening weight
// update) of a tree edge invalidates the subtree hanging off it, whose
// vertices are trimmed to safe approximations pulled from unaffected
// in-neighbors and then corrected by monotonic propagation. No per-
// iteration history is kept and no BSP guarantee is given — the asynchrony
// monotonic algorithms tolerate is the whole trick (§5.4B of GraphBolt).
#ifndef SRC_KICKSTARTER_KICKSTARTER_ENGINE_H_
#define SRC_KICKSTARTER_KICKSTARTER_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/streaming_engine.h"
#include "src/engine/stats.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"
#include "src/graph/types.h"
#include "src/parallel/scheduler_scope.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

template <typename Traits>
class KickStarterEngine {
 public:
  using Value = typename Traits::Value;

  KickStarterEngine(MutableGraph* graph, Traits traits)
      : graph_(graph), traits_(std::move(traits)) {}

  // Full computation from scratch (builds the dependence tree).
  void InitialCompute() {
    Timer timer;
    SchedulerCounterScope scheduler(&stats_);
    stats_.Clear();
    const VertexId n = graph_->num_vertices();
    values_.assign(n, traits_.Worst());
    parent_.assign(n, kInvalidVertex);
    std::vector<VertexId> seeds;
    for (VertexId v = 0; v < n; ++v) {
      values_[v] = traits_.InitialValue(v);
      if (traits_.Better(values_[v], traits_.Worst())) {
        seeds.push_back(v);
      }
    }
    Propagate(std::move(seeds));
    stats_.seconds = timer.Seconds();
  }

  // Applies the batch and incrementally corrects values.
  // Stats lifecycle (identical across engines, see stats.h): the mutation
  // is timed first, then Clear(), then mutation_seconds is assigned — so
  // stats() describes exactly this call, like the other three engines.
  AppliedMutations ApplyMutations(const MutationBatch& batch) {
    SchedulerCounterScope scheduler(&stats_);
    Timer mutation_timer;
    AppliedMutations applied = graph_->ApplyBatch(batch);
    const double mutation_seconds = mutation_timer.Seconds();
    stats_.Clear();
    stats_.mutation_seconds = mutation_seconds;

    Timer timer;
    const VertexId n = graph_->num_vertices();
    const auto old_n = static_cast<VertexId>(values_.size());
    values_.resize(n, traits_.Worst());
    parent_.resize(n, kInvalidVertex);
    for (VertexId v = old_n; v < n; ++v) {
      values_[v] = traits_.InitialValue(v);
    }

    // 1. Deleted tree edges invalidate their destination's value.
    std::vector<uint8_t> affected(n, 0);
    std::vector<VertexId> seeds;
    for (const Edge& e : applied.deleted) {
      if (parent_[e.dst] == e.src && !affected[e.dst]) {
        affected[e.dst] = 1;
        seeds.push_back(e.dst);
      }
    }

    // 2. The invalidation propagates down the dependence tree.
    if (!seeds.empty()) {
      std::vector<std::vector<VertexId>> children(n);
      for (VertexId v = 0; v < n; ++v) {
        if (parent_[v] != kInvalidVertex) {
          children[parent_[v]].push_back(v);
        }
      }
      std::vector<VertexId> frontier = seeds;
      while (!frontier.empty()) {
        std::vector<VertexId> next;
        for (const VertexId a : frontier) {
          for (const VertexId c : children[a]) {
            if (!affected[c]) {
              affected[c] = 1;
              seeds.push_back(c);
              next.push_back(c);
            }
          }
        }
        frontier.swap(next);
      }
    }

    // 3. Trim affected vertices to the best value obtainable from
    // unaffected in-neighbors — a safe approximation the monotonic
    // propagation then improves.
    std::vector<VertexId> worklist;
    uint64_t edges = 0;
    for (const VertexId a : seeds) {
      values_[a] = traits_.InitialValue(a);
      parent_[a] = kInvalidVertex;
    }
    for (const VertexId a : seeds) {
      const auto in_nbrs = graph_->InNeighbors(a);
      const auto in_wts = graph_->InWeights(a);
      edges += in_nbrs.size();
      for (size_t e = 0; e < in_nbrs.size(); ++e) {
        const VertexId u = in_nbrs[e];
        if (affected[u]) {
          continue;
        }
        const Value candidate = traits_.Relax(values_[u], in_wts[e]);
        if (traits_.Better(candidate, values_[a])) {
          values_[a] = candidate;
          parent_[a] = u;
        }
      }
      if (traits_.Better(values_[a], traits_.Worst())) {
        worklist.push_back(a);  // any valid value (own seed or pulled) re-propagates
      }
    }
    stats_.edges_processed += edges;

    // 4. Additions (and improved weights) relax directly.
    for (const Edge& e : applied.added) {
      const Value candidate = traits_.Relax(values_[e.src], e.weight);
      if (traits_.Better(candidate, values_[e.dst])) {
        values_[e.dst] = candidate;
        parent_[e.dst] = e.src;
        worklist.push_back(e.dst);
      }
    }
    // Seeds whose value was invalidated but found no unaffected neighbor
    // may still be reached from other corrected vertices; trimmed seeds
    // with a valid approximation propagate from step 3's worklist.
    std::sort(worklist.begin(), worklist.end());
    worklist.erase(std::unique(worklist.begin(), worklist.end()), worklist.end());
    Propagate(std::move(worklist));
    stats_.seconds = timer.Seconds();
    return applied;
  }

  // Streams the computed state for checkpointing (CheckpointableEngine,
  // src/core/streaming_engine.h). Values AND the dependence tree: parents
  // are what deletion handling invalidates, so they must survive recovery
  // for post-restore batches to correct exactly as an uninterrupted run.
  bool SaveStateTo(std::ostream& out) const {
    static_assert(std::is_trivially_copyable_v<Value>);
    const uint64_t magic = kStateMagic;
    const uint64_t n = values_.size();
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(values_.data()),
              static_cast<std::streamsize>(n * sizeof(Value)));
    out.write(reinterpret_cast<const char*>(parent_.data()),
              static_cast<std::streamsize>(n * sizeof(VertexId)));
    return static_cast<bool>(out);
  }

  bool LoadStateFrom(std::istream& in) {
    uint64_t magic = 0;
    uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || magic != kStateMagic || n != graph_->num_vertices()) {
      return false;
    }
    values_.resize(n);
    parent_.resize(n);
    in.read(reinterpret_cast<char*>(values_.data()),
            static_cast<std::streamsize>(n * sizeof(Value)));
    in.read(reinterpret_cast<char*>(parent_.data()),
            static_cast<std::streamsize>(n * sizeof(VertexId)));
    return static_cast<bool>(in);
  }

  const std::vector<Value>& values() const { return values_; }
  const std::vector<VertexId>& parents() const { return parent_; }
  const EngineStats& stats() const { return stats_; }

  // The graph this engine computes over; StreamDriver uses it to run
  // background-compaction maintenance between batches.
  MutableGraph* mutable_graph() { return graph_; }

  // ----- Single-update fast path (src/driver/fast_path.h) -------------------
  // Classifies one mutation against the tagged dependencies (the dependence
  // tree). Safe means the batched ApplyMutations path would provably leave
  // values_ and parent_ bitwise unchanged — a value-preserving addition
  // (its Relax candidate does not beat the target's value, so step 4 never
  // fires) or a non-tree deletion (parent_[dst] != src, so step 1 seeds no
  // invalidation) — making the mutation's whole effect the graph splice.
  // WAL replay through the batched path during Recover() then reconstructs
  // exactly the live state.
  FastPathVerdict ClassifyFast(const EdgeMutation& m) const {
    const VertexId n = graph_->num_vertices();
    if (m.src >= n || m.dst >= n) {
      return {false, "grows-vertex-set"};
    }
    if (values_.size() != static_cast<size_t>(n)) {
      return {false, "not-computed"};
    }
    const MutableGraph::SingleEffect eff = graph_->NormalizeSingle(m);
    if (eff.Empty()) {
      return {true, "graph-noop"};
    }
    if (eff.has_delete) {
      const Edge& e = eff.deleted;
      if (parent_[e.dst] == e.src) {
        return {false, "tree-edge"};
      }
    }
    if (eff.has_add) {
      const Edge& e = eff.added;
      if (traits_.Better(traits_.Relax(values_[e.src], e.weight), values_[e.dst])) {
        return {false, "relaxes-target"};
      }
    }
    if (eff.has_add && eff.has_delete) {
      return {true, "value-preserving-reweight"};
    }
    return {true, eff.has_add ? "cannot-relax" : "non-tree-edge"};
  }

  // Applies a mutation previously classified safe as a bare graph splice.
  // Re-validates first (the caller serializes this against batched applies,
  // but classification may have run before an intervening batch); returns
  // false to send the mutation down the batched path instead.
  bool ApplyFastSafe(const EdgeMutation& m) {
    if (!ClassifyFast(m).safe) {
      return false;
    }
    graph_->ApplySingle(m);
    return true;
  }

 private:
  static constexpr uint64_t kStateMagic = 0x47424B5353543031ULL;  // "GBKSST01"

  // Monotonic relaxation from a seed worklist until fixpoint.
  void Propagate(std::vector<VertexId> worklist) {
    std::vector<VertexId> next;
    uint64_t edges = 0;
    while (!worklist.empty()) {
      next.clear();
      for (const VertexId u : worklist) {
        const auto out_nbrs = graph_->OutNeighbors(u);
        const auto out_wts = graph_->OutWeights(u);
        edges += out_nbrs.size();
        for (size_t e = 0; e < out_nbrs.size(); ++e) {
          const VertexId v = out_nbrs[e];
          const Value candidate = traits_.Relax(values_[u], out_wts[e]);
          if (traits_.Better(candidate, values_[v])) {
            values_[v] = candidate;
            parent_[v] = u;
            next.push_back(v);
          }
        }
      }
      worklist.swap(next);
      ++stats_.iterations;
    }
    stats_.edges_processed += edges;
  }

  MutableGraph* graph_;
  Traits traits_;
  std::vector<Value> values_;
  std::vector<VertexId> parent_;
  EngineStats stats_;
};

// ----- Trait instances -------------------------------------------------------

// Shortest paths (weighted) / BFS (unit weights).
class KsSsspTraits {
 public:
  using Value = double;
  explicit KsSsspTraits(VertexId source, bool use_weights = true)
      : source_(source), use_weights_(use_weights) {}
  Value InitialValue(VertexId v) const { return v == source_ ? 0.0 : Worst(); }
  Value Worst() const { return 1e30; }
  bool Better(Value a, Value b) const { return a < b; }
  Value Relax(Value u, Weight w) const {
    return u >= Worst() ? Worst() : u + (use_weights_ ? static_cast<double>(w) : 1.0);
  }

 private:
  VertexId source_;
  bool use_weights_;
};

// Connected components by minimum reaching label.
class KsComponentsTraits {
 public:
  using Value = double;
  Value InitialValue(VertexId v) const { return static_cast<Value>(v); }
  Value Worst() const { return 1e30; }
  bool Better(Value a, Value b) const { return a < b; }
  Value Relax(Value u, Weight /*w*/) const { return u; }
};

// Widest (maximum bottleneck) path.
class KsWidestPathTraits {
 public:
  using Value = double;
  explicit KsWidestPathTraits(VertexId source) : source_(source) {}
  Value InitialValue(VertexId v) const { return v == source_ ? 1e30 : Worst(); }
  Value Worst() const { return 0.0; }
  bool Better(Value a, Value b) const { return a > b; }
  Value Relax(Value u, Weight w) const { return std::min(u, static_cast<Value>(w)); }

 private:
  VertexId source_;
};

}  // namespace graphbolt

#endif  // SRC_KICKSTARTER_KICKSTARTER_ENGINE_H_
