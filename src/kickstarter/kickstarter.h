// KickStarter baseline (§5.4B): incremental streaming computation for
// monotonic path-based algorithms via value dependence trees and trimmed
// approximations (Vora et al., ASPLOS'17).
//
// Each vertex remembers the in-neighbor its value was computed from (its
// parent in the dependence tree). Edge additions simply relax. An edge
// deletion invalidates the subtree hanging off it: those vertices are
// "trimmed" to safe over-approximations pulled from unaffected in-neighbors
// and then corrected by monotonic (min) propagation. Unlike GraphBolt this
// keeps no per-iteration history and gives no BSP guarantee — it exploits
// the asynchrony monotonic algorithms tolerate, which is why it wins on
// SSSP in Figure 9.
#ifndef SRC_KICKSTARTER_KICKSTARTER_H_
#define SRC_KICKSTARTER_KICKSTARTER_H_

#include <vector>

#include "src/engine/stats.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"
#include "src/graph/types.h"

namespace graphbolt {

class KickStarterSssp {
 public:
  // `use_weights` false turns the computation into BFS hop counts.
  KickStarterSssp(MutableGraph* graph, VertexId source, bool use_weights = true);

  // Full computation from scratch (builds the dependence tree).
  void InitialCompute();

  // Applies the batch and incrementally corrects distances.
  AppliedMutations ApplyMutations(const MutationBatch& batch);

  const std::vector<double>& distances() const { return dist_; }
  const std::vector<VertexId>& parents() const { return parent_; }
  const EngineStats& stats() const { return stats_; }

 private:
  double EdgeLength(VertexId u, size_t slot) const;

  // Monotonic relaxation from a seed worklist until fixpoint.
  void Propagate(std::vector<VertexId> worklist);

  MutableGraph* graph_;
  VertexId source_;
  bool use_weights_;
  std::vector<double> dist_;
  std::vector<VertexId> parent_;
  EngineStats stats_;
};

}  // namespace graphbolt

#endif  // SRC_KICKSTARTER_KICKSTARTER_H_
