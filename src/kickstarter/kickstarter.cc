#include "src/kickstarter/kickstarter.h"

#include <algorithm>

#include "src/algorithms/sssp.h"  // kUnreachable
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

KickStarterSssp::KickStarterSssp(MutableGraph* graph, VertexId source, bool use_weights)
    : graph_(graph), source_(source), use_weights_(use_weights) {}

double KickStarterSssp::EdgeLength(VertexId u, size_t slot) const {
  return use_weights_ ? static_cast<double>(graph_->OutWeights(u)[slot]) : 1.0;
}

void KickStarterSssp::InitialCompute() {
  Timer timer;
  stats_.Clear();
  const VertexId n = graph_->num_vertices();
  dist_.assign(n, kUnreachable);
  parent_.assign(n, kInvalidVertex);
  GB_CHECK(source_ < n) << "source out of range";
  dist_[source_] = 0.0;
  Propagate({source_});
  stats_.seconds = timer.Seconds();
}

void KickStarterSssp::Propagate(std::vector<VertexId> worklist) {
  std::vector<VertexId> next;
  uint64_t edges = 0;
  while (!worklist.empty()) {
    next.clear();
    for (const VertexId u : worklist) {
      const auto out_nbrs = graph_->OutNeighbors(u);
      edges += out_nbrs.size();
      for (size_t e = 0; e < out_nbrs.size(); ++e) {
        const VertexId v = out_nbrs[e];
        const double candidate = dist_[u] + EdgeLength(u, e);
        if (candidate < dist_[v]) {
          dist_[v] = candidate;
          parent_[v] = u;
          next.push_back(v);
        }
      }
    }
    worklist.swap(next);
    ++stats_.iterations;
  }
  stats_.edges_processed += edges;
}

AppliedMutations KickStarterSssp::ApplyMutations(const MutationBatch& batch) {
  stats_.Clear();
  Timer mutation_timer;
  AppliedMutations applied = graph_->ApplyBatch(batch);
  stats_.mutation_seconds = mutation_timer.Seconds();

  Timer timer;
  const VertexId n = graph_->num_vertices();
  dist_.resize(n, kUnreachable);
  parent_.resize(n, kInvalidVertex);

  // 1. Identify vertices whose dependence-tree parent edge was deleted.
  std::vector<uint8_t> affected(n, 0);
  std::vector<VertexId> seeds;
  for (const Edge& e : applied.deleted) {
    if (parent_[e.dst] == e.src) {
      affected[e.dst] = 1;
      seeds.push_back(e.dst);
    }
  }

  // 2. Grow the affected set down the dependence tree (children inherit the
  // invalidation). Child lists are materialized from the parent array.
  if (!seeds.empty()) {
    std::vector<std::vector<VertexId>> children(n);
    for (VertexId v = 0; v < n; ++v) {
      if (parent_[v] != kInvalidVertex) {
        children[parent_[v]].push_back(v);
      }
    }
    std::vector<VertexId> frontier = seeds;
    while (!frontier.empty()) {
      std::vector<VertexId> next;
      for (const VertexId a : frontier) {
        for (const VertexId c : children[a]) {
          if (!affected[c]) {
            affected[c] = 1;
            seeds.push_back(c);
            next.push_back(c);
          }
        }
      }
      frontier.swap(next);
    }
  }

  // 3. Trim: reset each affected vertex to the best value obtainable from
  // *unaffected* in-neighbors — a safe over-approximation of the truth.
  std::vector<VertexId> worklist;
  uint64_t edges = 0;
  for (const VertexId a : seeds) {
    dist_[a] = a == source_ ? 0.0 : kUnreachable;
    parent_[a] = kInvalidVertex;
  }
  for (const VertexId a : seeds) {
    const auto in_nbrs = graph_->InNeighbors(a);
    const auto in_wts = graph_->InWeights(a);
    edges += in_nbrs.size();
    for (size_t e = 0; e < in_nbrs.size(); ++e) {
      const VertexId u = in_nbrs[e];
      if (affected[u]) {
        continue;
      }
      const double len = use_weights_ ? static_cast<double>(in_wts[e]) : 1.0;
      if (dist_[u] + len < dist_[a]) {
        dist_[a] = dist_[u] + len;
        parent_[a] = u;
      }
    }
    if (dist_[a] < kUnreachable) {
      worklist.push_back(a);
    }
  }
  stats_.edges_processed += edges;

  // 4. Edge additions relax directly.
  for (const Edge& e : applied.added) {
    const double len = use_weights_ ? static_cast<double>(e.weight) : 1.0;
    if (dist_[e.src] + len < dist_[e.dst]) {
      dist_[e.dst] = dist_[e.src] + len;
      parent_[e.dst] = e.src;
      worklist.push_back(e.dst);
    }
  }

  // 5. Monotonic correction until fixpoint.
  std::sort(worklist.begin(), worklist.end());
  worklist.erase(std::unique(worklist.begin(), worklist.end()), worklist.end());
  Propagate(std::move(worklist));
  stats_.seconds = timer.Seconds();
  return applied;
}

}  // namespace graphbolt
