// The engine concepts: the unified API surface every processing engine in
// this repository exposes to streaming infrastructure.
//
// Two layers:
//
//   BatchEngine      the compute lifecycle — anything that can be driven
//                    batch by batch and timed (the bench harness needs no
//                    more). The triangle-counting engines live here: their
//                    result is a scalar count, not per-vertex values.
//   StreamingEngine  a BatchEngine that also exposes per-vertex values();
//                    what StreamDriver and differential tests require.
//
// Four engines satisfy StreamingEngine — LigraEngine (restart), ResetEngine
// (delta + restart), GraphBoltEngine (dependency-driven refinement), and
// KickStarterEngine (dependence-tree correction) — and `src/graphbolt.h`
// statically asserts that they keep doing so. Anything generic over an
// engine constrains on these concepts instead of duck typing, so a drifted
// signature is a compile error at the definition site rather than a
// template-instantiation stack.
//
// The contract:
//
//   InitialCompute()   runs the full computation from initial values on the
//                      current graph snapshot (the only entry point; the
//                      old Ligra-style Compute() alias is gone).
//   ApplyMutations(b)  applies the batch to the graph and brings the result
//                      to exactly the new snapshot's, returning the
//                      normalized (Ea, Ed) effect.
//   values()           the per-vertex results of the latest snapshot.
//   stats()            EngineStats for the most recent compute/refine call
//                      (see stats.h for the Clear() lifecycle).
//
// Engines are NOT internally synchronized: InitialCompute/ApplyMutations
// must not run concurrently with each other or with values()/stats()
// readers. StreamDriver (src/driver/stream_driver.h) provides that
// serialization for concurrent producers.
#ifndef SRC_CORE_STREAMING_ENGINE_H_
#define SRC_CORE_STREAMING_ENGINE_H_

#include <concepts>
#include <cstddef>
#include <iosfwd>
#include <ranges>
#include <type_traits>
#include <utility>

#include "src/engine/stats.h"
#include "src/graph/mutation.h"

namespace graphbolt {

template <typename E>
concept BatchEngine =
    requires(E engine, const E& const_engine, const MutationBatch& batch) {
      engine.InitialCompute();
      { engine.ApplyMutations(batch) } -> std::same_as<AppliedMutations>;
      { const_engine.stats() } -> std::same_as<const EngineStats&>;
    };

template <typename E>
concept StreamingEngine =
    BatchEngine<E> && requires(const E& const_engine) {
      { const_engine.values() } -> std::ranges::random_access_range;
      { const_engine.values().size() } -> std::convertible_to<size_t>;
    };

// A StreamingEngine whose computed state round-trips through a byte
// stream: SaveStateTo writes everything ApplyMutations depends on beyond
// the graph itself (values, dependency store, ...), LoadStateFrom restores
// it against an already-restored graph and returns false on malformed
// input. What Checkpointer (src/fault/checkpoint.h) and
// StreamDriver::Recover() require.
template <typename E>
concept CheckpointableEngine =
    StreamingEngine<E> && requires(E engine, const E& const_engine, std::ostream& out,
                                   std::istream& in) {
      { const_engine.SaveStateTo(out) } -> std::same_as<bool>;
      { engine.LoadStateFrom(in) } -> std::same_as<bool>;
    };

// Verdict of the single-update safety classification (the RisGraph-style
// fast path, src/driver/fast_path.h). A mutation is *safe* when the engine
// can prove that applying it through the batched ApplyMutations path would
// leave the engine's computed state (values, dependency store / dependence
// tree) bitwise unchanged — so the update reduces to a bare graph splice
// that can bypass gutter batching. `reason` names the rule that fired
// (static string; for stats, tests, and operator diagnostics).
struct FastPathVerdict {
  bool safe = false;
  const char* reason = "";
};

// The per-vertex value type an engine computes, as seen through values().
template <typename E>
using EngineValueT = std::remove_cvref_t<decltype(std::declval<const E&>().values()[0])>;

class MutableGraph;

// A StreamingEngine that exposes the MutableGraph it computes over. This is
// what lets streaming infrastructure schedule graph maintenance — the
// background SlackCsr compaction steps — in the quiescent windows between
// batches, where the engine contract already guarantees nobody is reading
// or mutating the adjacency. All four engines satisfy it.
template <typename E>
concept GraphMaintainableEngine =
    StreamingEngine<E> && requires(E engine) {
      { engine.mutable_graph() } -> std::convertible_to<MutableGraph*>;
    };

// A StreamingEngine that additionally supports the asynchronous
// delta-accumulative execution mode (the Maiter tier): barrier-free
// propagation of pending deltas for decomposable aggregations, serving
// eventually-consistent values between steps. Only engines whose
// aggregation can retract contributions can satisfy this —
// GraphBoltEngine over PageRank/CoEM/Label Propagation does; KickStarter
// and the non-decomposable (min/max) instantiations are rejected at
// compile time by the `requires(kAsyncEligible)` gates on the members.
//
// The mode contract (see graphbolt_engine.h for semantics):
//
//   EnterAsyncMode()        BSP -> async flip from the current values.
//   AsyncApplyMutations(b)  barrier-free batch apply; activates impacts.
//   AsyncStep(budget)       one bounded priority-ordered propagation round;
//                           returns the convergence residual.
//   AsyncResidual()         last computed residual (0 == at fixed point).
//   ExitAsyncReconcile()    async -> BSP with one reconciling barrier that
//                           restores bitwise-deterministic state.
//   async_mode()            which mode the engine is in.
template <typename E>
concept AsyncDeltaEngine =
    StreamingEngine<E> && requires(E engine, const E& const_engine,
                                   const MutationBatch& batch, size_t budget) {
      engine.EnterAsyncMode();
      { engine.AsyncApplyMutations(batch) } -> std::same_as<AppliedMutations>;
      { engine.AsyncStep(budget) } -> std::same_as<double>;
      { const_engine.AsyncResidual() } -> std::same_as<double>;
      engine.ExitAsyncReconcile();
      { const_engine.async_mode() } -> std::same_as<bool>;
    };

}  // namespace graphbolt

#endif  // SRC_CORE_STREAMING_ENGINE_H_
