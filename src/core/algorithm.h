// The generalized incremental programming model (§3.3, §4.2).
//
// A graph algorithm is a value type describing one BSP computation:
//
//   c_i(v) = ∮( ⊕_{(u,v) ∈ E} contribution(c_{i-1}(u)) )
//
// The algorithm supplies the aggregation operator ⊕ (`AggregateAtomic`),
// its inverse ⋃- (`RetractAtomic`), the per-edge contribution function, and
// the vertex function ∮ (`VertexCompute`). The engines derive everything
// else: Ligra-style restart processing, GB-Reset delta processing, and
// GraphBolt dependency-driven refinement all run the *same* algorithm
// struct.
//
// Aggregation kinds:
//  - kDecomposable: ⊕ has an inverse acting on single contributions (sum,
//    product). Refinement uses retract/aggregate pairs, and simple
//    difference-style deltas collapse into one pass.
//  - kComplex: decomposed into simple sub-aggregations whose inputs are
//    transformed vertex values (BP products, CF matrix sums). The engine
//    re-derives old contributions from old values on the fly ("on-the-fly
//    evaluation of discrete contributions") and issues retract+aggregate
//    pairs — the GraphBolt-RP execution mode of §5.4.
//  - kNonDecomposable: no inverse (min/max). The engine re-evaluates the
//    aggregation by pulling the full in-neighborhood of impacted vertices.
#ifndef SRC_CORE_ALGORITHM_H_
#define SRC_CORE_ALGORITHM_H_

#include <concepts>
#include <cstddef>
#include <vector>

#include "src/graph/mutable_graph.h"
#include "src/graph/types.h"

namespace graphbolt {

enum class AggregationKind {
  kDecomposable,
  kComplex,
  kNonDecomposable,
};

// Per-vertex structural context captured at computation time. Contribution
// and vertex functions may depend on it (PageRank divides by out-degree,
// CoEM normalizes by the in-weight sum). Refinement keeps the pre-mutation
// snapshot so old contributions can be reproduced exactly.
struct VertexContext {
  uint32_t out_degree = 0;
  uint32_t in_degree = 0;
  double out_weight_sum = 0.0;
  double in_weight_sum = 0.0;

  friend bool operator==(const VertexContext&, const VertexContext&) = default;
};

// Computes the context of every vertex of `graph` (one pass over both edge
// directions).
std::vector<VertexContext> ComputeVertexContexts(const MutableGraph& graph);

// Optional marker: the aggregation absorbs improved inputs without
// retraction (min/max-style idempotent domination). When a mutation batch
// contains only edge additions, values can only improve, so the engine may
// push improved contributions directly instead of re-evaluating full
// in-neighborhoods (§5.4B: "edge additions in SSSP can be computed
// incrementally by min without re-evaluating it").
template <typename A>
constexpr bool IsMonotonicAggregation() {
  if constexpr (requires { A::kMonotonic; }) {
    return A::kMonotonic;
  } else {
    return false;
  }
}

// Optional marker: the algorithm's InitialValue / ContributionOf /
// VertexCompute ignore the VertexContext entirely (path algorithms: the
// candidate through an edge is a function of the source value and the edge
// weight alone). The single-update fast path (src/driver/fast_path.h)
// requires this to prove that the degree shift caused by an edge mutation
// cannot move any contribution; without the marker every real mutation is
// conservatively unsafe for context-dependent algorithms like PageRank,
// whose per-edge contribution divides by the (now changed) out-degree.
template <typename A>
constexpr bool IsContextFreeAlgorithm() {
  if constexpr (requires { A::kContextFree; }) {
    return A::kContextFree;
  } else {
    return false;
  }
}

// The compile-time contract every algorithm satisfies. Engines are
// templates over `Algo`; this concept documents and enforces the surface.
template <typename A>
concept GraphAlgorithm = requires(const A algo, typename A::Aggregate* agg,
                                  const typename A::Aggregate& agg_const,
                                  const typename A::Value& value,
                                  const typename A::Contribution& contribution,
                                  VertexId v, Weight w, const VertexContext& ctx) {
  typename A::Value;
  typename A::Aggregate;
  typename A::Contribution;
  { A::kKind } -> std::convertible_to<AggregationKind>;
  { algo.InitialValue(v, ctx) } -> std::same_as<typename A::Value>;
  { algo.IdentityAggregate() } -> std::same_as<typename A::Aggregate>;
  { algo.ContributionOf(v, value, w, ctx) } -> std::same_as<typename A::Contribution>;
  { algo.AggregateAtomic(agg, contribution) };
  { algo.RetractAtomic(agg, contribution) };
  { algo.VertexCompute(v, agg_const, ctx) } -> std::same_as<typename A::Value>;
  { algo.ValuesDiffer(value, value) } -> std::same_as<bool>;
};

}  // namespace graphbolt

#endif  // SRC_CORE_ALGORITHM_H_
