// The dependency store (§3.2): per-iteration aggregation values g_i(v) plus
// per-iteration changed-vertex bit vectors.
//
// The store is the O(V·t) representation of the dependency graph A_G: only
// aggregation values are kept; the dependency *structure* is re-derived
// from the input graph during refinement. Two pruning mechanisms bound t
// and the per-level population:
//
//  - Horizontal pruning: levels beyond `history_size` are not tracked; the
//    engine switches to hybrid execution there, guided by the changed-bit
//    vectors (which are kept for every level — 1 bit per vertex).
//  - Vertical pruning: once a vertex's aggregation stabilizes (equal to the
//    previous level's), later levels share the previous entry. The dense
//    backing array still holds a copy for O(1) access; `logical_entries()`
//    reports the pruned footprint the paper's Table 9 measures.
#ifndef SRC_CORE_DEPENDENCY_STORE_H_
#define SRC_CORE_DEPENDENCY_STORE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

#include "src/engine/vertex_subset.h"
#include "src/graph/types.h"
#include "src/parallel/parallel_for.h"
#include "src/util/bitset.h"
#include "src/util/logging.h"

namespace graphbolt {

template <typename AggregateT>
class DependencyStore {
 public:
  // Prepares the store for a fresh computation over `num_vertices` vertices
  // tracking at most `history_size` levels of aggregations.
  void Reset(VertexId num_vertices, uint32_t history_size) {
    num_vertices_ = num_vertices;
    history_size_ = history_size;
    levels_.clear();
    changed_.clear();
    logical_entries_ = 0;
  }

  VertexId num_vertices() const { return num_vertices_; }
  uint32_t history_size() const { return history_size_; }

  // Number of levels with stored aggregations (<= history_size).
  uint32_t tracked_levels() const { return static_cast<uint32_t>(levels_.size()); }

  // Number of levels with changed-bit vectors (== iterations executed).
  uint32_t total_levels() const { return static_cast<uint32_t>(changed_.size()); }

  bool IsTracked(uint32_t level) const { return level >= 1 && level <= tracked_levels(); }

  // Records the aggregation array at the end of iteration `level` (1-based).
  // Levels must be snapshotted in order. Beyond the history size only the
  // changed bits are kept (horizontal pruning).
  void SnapshotLevel(uint32_t level, const std::vector<AggregateT>& aggregates,
                     AtomicBitset changed_bits) {
    GB_CHECK(level == total_levels() + 1) << "levels must be snapshotted in order";
    changed_.push_back(std::move(changed_bits));
    if (level > history_size_) {
      return;  // horizontal pruning: aggregations not tracked
    }
    levels_.push_back(aggregates);
    // Vertical pruning accounting: an entry is logically stored only if it
    // differs from the previous level's entry.
    if (level == 1) {
      logical_entries_ += num_vertices_;
      return;
    }
    const auto& prev = levels_[level - 2];
    const auto& cur = levels_[level - 1];
    uint64_t fresh = 0;
    for (VertexId v = 0; v < num_vertices_; ++v) {
      if (!(cur[v] == prev[v])) {
        ++fresh;
      }
    }
    logical_entries_ += fresh;
  }

  // Extends the store to cover vertices added by a mutation batch. New
  // vertices behave as if they had existed isolated since the start: their
  // aggregation is the identity at every level and they never changed.
  void GrowVertices(VertexId new_count, const AggregateT& identity) {
    if (new_count <= num_vertices_) {
      return;
    }
    for (auto& level : levels_) {
      level.resize(new_count, identity);
    }
    for (auto& bits : changed_) {
      bits.Grow(new_count);
    }
    if (!levels_.empty()) {
      logical_entries_ += new_count - num_vertices_;  // level-1 entries
    }
    num_vertices_ = new_count;
  }

  // Discards changed-bit levels beyond `level` (used when a refined run
  // converges in fewer iterations than the previous one).
  void TruncateLevels(uint32_t level) {
    if (changed_.size() > level) {
      changed_.resize(level);
    }
    if (levels_.size() > level) {
      levels_.resize(level);
    }
  }

  // Appends a changed-bit level past the tracked history (continuation
  // iterations of hybrid execution).
  void AppendChangedBits(AtomicBitset changed_bits) { changed_.push_back(std::move(changed_bits)); }

  // Mutable access to g_level(v) for refinement. level is 1-based.
  AggregateT& At(uint32_t level, VertexId v) {
    GB_CHECK(IsTracked(level)) << "level " << level << " not tracked";
    return levels_[level - 1][v];
  }

  const AggregateT& At(uint32_t level, VertexId v) const {
    GB_CHECK(IsTracked(level)) << "level " << level << " not tracked";
    return levels_[level - 1][v];
  }

  const std::vector<AggregateT>& LevelArray(uint32_t level) const {
    GB_CHECK(IsTracked(level)) << "level " << level << " not tracked";
    return levels_[level - 1];
  }

  std::vector<AggregateT>& MutableLevelArray(uint32_t level) {
    GB_CHECK(IsTracked(level)) << "level " << level << " not tracked";
    return levels_[level - 1];
  }

  // Copies the current aggregations of `targets` at `level` into `scratch`
  // (resized to cover all vertices; non-target cells are unspecified).
  // Refinement mutates the scratch concurrently and writes it back through
  // CommitLevel — the storage-backend-independent access pattern that lets
  // the engine run on either this dense store or the compact per-vertex
  // store.
  void MaterializeLevel(uint32_t level, const VertexSubset& targets,
                        std::vector<AggregateT>* scratch) {
    GB_CHECK(IsTracked(level)) << "level " << level << " not tracked";
    const auto& source = levels_[level - 1];
    if (scratch->size() < source.size()) {
      scratch->resize(source.size());
    }
    ParallelFor(0, targets.size(), [&](size_t i) {
      const VertexId v = targets.members()[i];
      (*scratch)[v] = source[v];
    }, /*grain=*/512);
  }

  // Writes the refined aggregations of `targets` back into the store.
  void CommitLevel(uint32_t level, const VertexSubset& targets,
                   const std::vector<AggregateT>& scratch) {
    GB_CHECK(IsTracked(level)) << "level " << level << " not tracked";
    auto& destination = levels_[level - 1];
    ParallelFor(0, targets.size(), [&](size_t i) {
      const VertexId v = targets.members()[i];
      destination[v] = scratch[v];
    }, /*grain=*/512);
  }

  // Storage compaction hook (no-op for the dense store; the compact store
  // drops stabilized suffixes here).
  void RepruneTails(const VertexSubset& /*targets*/) {}

  // Changed-vertex bits for iteration `level` (1-based): bit v set iff
  // c_level(v) differed from c_{level-1}(v).
  const AtomicBitset& ChangedAt(uint32_t level) const {
    GB_CHECK(level >= 1 && level <= total_levels()) << "no changed bits for level " << level;
    return changed_[level - 1];
  }

  AtomicBitset& MutableChangedAt(uint32_t level) {
    GB_CHECK(level >= 1 && level <= total_levels()) << "no changed bits for level " << level;
    return changed_[level - 1];
  }

  // Logical number of stored aggregation entries after vertical pruning.
  uint64_t logical_entries() const { return logical_entries_; }

  // Logical dependency-store footprint in bytes: pruned aggregation entries
  // plus the changed-bit vectors. This is what vertical pruning *could*
  // save; the dense backend still allocates full levels (actual_bytes),
  // while CompactDependencyStore realizes the savings.
  uint64_t logical_bytes() const {
    return logical_entries_ * sizeof(AggregateT) + total_levels() * (num_vertices_ / 8 + 8);
  }

  // Bytes this dense backend actually allocates for dependency state.
  uint64_t actual_bytes() const {
    return static_cast<uint64_t>(tracked_levels()) * num_vertices_ * sizeof(AggregateT) +
           total_levels() * (num_vertices_ / 8 + 8);
  }

  // Binary (de)serialization. Aggregates are written raw, so the format is
  // only portable across builds with identical Aggregate layout.
  void SerializeTo(std::ostream& out) const {
    static_assert(std::is_trivially_copyable_v<AggregateT>);
    const uint64_t header[4] = {num_vertices_, history_size_, tracked_levels(), total_levels()};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    for (const auto& level : levels_) {
      out.write(reinterpret_cast<const char*>(level.data()),
                static_cast<std::streamsize>(level.size() * sizeof(AggregateT)));
    }
    for (const auto& bits : changed_) {
      for (VertexId base = 0; base < num_vertices_; base += 64) {
        uint64_t word = 0;
        for (VertexId offset = 0; offset < 64 && base + offset < num_vertices_; ++offset) {
          word |= static_cast<uint64_t>(bits.Test(base + offset)) << offset;
        }
        out.write(reinterpret_cast<const char*>(&word), sizeof(word));
      }
    }
    out.write(reinterpret_cast<const char*>(&logical_entries_), sizeof(logical_entries_));
  }

  // Returns false (leaving the store reset) on malformed input.
  bool DeserializeFrom(std::istream& in) {
    uint64_t header[4] = {};
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (!in) {
      return false;
    }
    num_vertices_ = static_cast<VertexId>(header[0]);
    history_size_ = static_cast<uint32_t>(header[1]);
    const auto tracked = static_cast<uint32_t>(header[2]);
    const auto total = static_cast<uint32_t>(header[3]);
    levels_.assign(tracked, std::vector<AggregateT>(num_vertices_));
    for (auto& level : levels_) {
      in.read(reinterpret_cast<char*>(level.data()),
              static_cast<std::streamsize>(level.size() * sizeof(AggregateT)));
    }
    changed_.clear();
    changed_.reserve(total);
    for (uint32_t l = 0; l < total; ++l) {
      AtomicBitset bits(num_vertices_);
      for (VertexId base = 0; base < num_vertices_; base += 64) {
        uint64_t word = 0;
        in.read(reinterpret_cast<char*>(&word), sizeof(word));
        for (VertexId offset = 0; offset < 64 && base + offset < num_vertices_; ++offset) {
          if ((word >> offset) & 1ULL) {
            bits.Set(base + offset);
          }
        }
      }
      changed_.push_back(std::move(bits));
    }
    in.read(reinterpret_cast<char*>(&logical_entries_), sizeof(logical_entries_));
    if (!in) {
      Reset(0, 0);
      return false;
    }
    return true;
  }

 private:
  VertexId num_vertices_ = 0;
  uint32_t history_size_ = 0;
  std::vector<std::vector<AggregateT>> levels_;  // levels_[i] = g_{i+1}
  std::vector<AtomicBitset> changed_;            // changed_[i] = bits of level i+1
  uint64_t logical_entries_ = 0;
};

}  // namespace graphbolt

#endif  // SRC_CORE_DEPENDENCY_STORE_H_
