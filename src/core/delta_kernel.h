// The per-vertex accumulate/propagate kernel shared by both execution
// modes of GraphBoltEngine (src/core/graphbolt_engine.h).
//
// The synchronous BSP refinement loop and the asynchronous
// delta-accumulative mode (the Maiter-style barrier-free tier) perform the
// same two primitive operations on aggregation cells:
//
//   PushChange     apply one contributor's value/context change to a target
//                  cell — either as a combined delta (decomposable
//                  aggregations with DeltaContribution) or as a
//                  retract-old / aggregate-new pair.
//   PullAggregate  rebuild a vertex's aggregation from its full
//                  in-neighborhood under a given value assignment.
//
// Extracting them here keeps the two modes numerically identical edge by
// edge: an async step propagating a delta along (u, w) executes exactly the
// instruction sequence the BSP transitive-impact pass would, so the async
// fixed point coincides with the BSP fixed point for decomposable
// aggregations (PAPERS.md: Maiter's accumulative iterative computation).
#ifndef SRC_CORE_DELTA_KERNEL_H_
#define SRC_CORE_DELTA_KERNEL_H_

#include <vector>

#include "src/core/algorithm.h"
#include "src/engine/reset_engine.h"  // HasDeltaContribution
#include "src/graph/mutable_graph.h"

namespace graphbolt {

template <GraphAlgorithm Algo>
struct DeltaKernel {
  using Value = typename Algo::Value;
  using Aggregate = typename Algo::Aggregate;

  // Applies one change (retract old / aggregate new, or a combined delta) to
  // a target aggregation cell. `use_retract_propagate` forces the two-call
  // pair even when the algorithm offers a combined delta (the GraphBolt-RP
  // ablation of §5.4A).
  static void PushChange(const Algo& algo, bool use_retract_propagate, VertexId u,
                         const Value& old_value, const Value& new_value, Weight w,
                         const VertexContext& old_ctx, const VertexContext& new_ctx,
                         Aggregate* agg) {
    if constexpr (HasDeltaContribution<Algo>) {
      if (!use_retract_propagate) {
        algo.AggregateAtomic(agg,
                             algo.DeltaContribution(u, old_value, new_value, w, old_ctx, new_ctx));
        return;
      }
    }
    algo.RetractAtomic(agg, algo.ContributionOf(u, old_value, w, old_ctx));
    algo.AggregateAtomic(agg, algo.ContributionOf(u, new_value, w, new_ctx));
  }

  // Re-evaluates g(v) by pulling the full in-neighborhood with `vals` under
  // `contexts`. `edge_counter` accumulates the in-degree for stats.
  static Aggregate PullAggregate(const Algo& algo, const MutableGraph& graph,
                                 const std::vector<VertexContext>& contexts, VertexId v,
                                 const std::vector<Value>& vals, uint64_t* edge_counter) {
    Aggregate agg = algo.IdentityAggregate();
    const auto in_nbrs = graph.InNeighbors(v);
    const auto in_wts = graph.InWeights(v);
    for (size_t i = 0; i < in_nbrs.size(); ++i) {
      const VertexId u = in_nbrs[i];
      algo.AggregateAtomic(&agg, algo.ContributionOf(u, vals[u], in_wts[i], contexts[u]));
    }
    *edge_counter += in_nbrs.size();
    return agg;
  }
};

}  // namespace graphbolt

#endif  // SRC_CORE_DELTA_KERNEL_H_
