// The paper's §4.1 dependency layout, implemented for real memory savings:
//
//   "The aggregation values are maintained as arrays per-vertex to hold
//    values across iterations. ... the aggregation values are maintained
//    contiguously such that if g_i(v) is to be saved because it reflects an
//    updated value compared to g_{i-1}(v), then g_k(v) is also maintained
//    ∀k < i (i.e., holes reflecting no change are eliminated)."
//
// Each vertex owns a contiguous history of its aggregation values from
// level 1 up to the last level at which the value changed; the stabilized
// suffix is never stored (*vertical pruning*), and reads past the end
// return the last stored value. Compared to DependencyStore (dense per-
// level arrays, O(1) cache-friendly access, pruning tracked only as
// accounting), this trades some access locality for a footprint that
// actually shrinks with stabilization — Table 9's memory benchmark reports
// both.
//
// The interface mirrors DependencyStore so GraphBoltEngine can be
// instantiated with either backend.
#ifndef SRC_CORE_COMPACT_DEPENDENCY_STORE_H_
#define SRC_CORE_COMPACT_DEPENDENCY_STORE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

#include "src/engine/vertex_subset.h"
#include "src/graph/types.h"
#include "src/parallel/parallel_for.h"
#include "src/util/bitset.h"
#include "src/util/logging.h"

namespace graphbolt {

template <typename AggregateT>
class CompactDependencyStore {
 public:
  void Reset(VertexId num_vertices, uint32_t history_size) {
    num_vertices_ = num_vertices;
    history_size_ = history_size;
    tracked_levels_ = 0;
    history_.assign(num_vertices, {});
    changed_.clear();
  }

  VertexId num_vertices() const { return num_vertices_; }
  uint32_t history_size() const { return history_size_; }
  uint32_t tracked_levels() const { return tracked_levels_; }
  uint32_t total_levels() const { return static_cast<uint32_t>(changed_.size()); }
  bool IsTracked(uint32_t level) const { return level >= 1 && level <= tracked_levels_; }

  void SnapshotLevel(uint32_t level, const std::vector<AggregateT>& aggregates,
                     AtomicBitset changed_bits) {
    GB_CHECK(level == total_levels() + 1) << "levels must be snapshotted in order";
    changed_.push_back(std::move(changed_bits));
    if (level > history_size_) {
      return;  // horizontal pruning
    }
    ++tracked_levels_;
    ParallelFor(0, num_vertices_, [&](size_t v) {
      AppendLevel(static_cast<VertexId>(v), level, aggregates[v]);
    }, /*grain=*/512);
  }

  const AggregateT& At(uint32_t level, VertexId v) const {
    GB_CHECK(IsTracked(level)) << "level " << level << " not tracked";
    const auto& h = history_[v];
    GB_CHECK(!h.empty()) << "no history for vertex " << v;
    const size_t index = level <= h.size() ? level - 1 : h.size() - 1;
    return h[index];
  }

  void MaterializeLevel(uint32_t level, const VertexSubset& targets,
                        std::vector<AggregateT>* scratch) {
    if (scratch->size() < num_vertices_) {
      scratch->resize(num_vertices_);
    }
    ParallelFor(0, targets.size(), [&](size_t i) {
      const VertexId v = targets.members()[i];
      (*scratch)[v] = At(level, v);
    }, /*grain=*/512);
  }

  // Writes refined aggregations back, extending a vertex's history (with
  // hole-filling copies, per §4.1) when the refined level lies beyond its
  // pruned tail.
  void CommitLevel(uint32_t level, const VertexSubset& targets,
                   const std::vector<AggregateT>& scratch) {
    GB_CHECK(IsTracked(level)) << "level " << level << " not tracked";
    ParallelFor(0, targets.size(), [&](size_t i) {
      const VertexId v = targets.members()[i];
      auto& h = history_[v];
      if (h.size() > level) {
        // Interior write: the suffix beyond `level` is stored explicitly.
        h[level - 1] = scratch[v];
        return;
      }
      // The write lands on (or beyond) the last stored entry, which anchors
      // the clamp for every pruned level after it. Those levels were NOT
      // refined here, so the old stable value must be re-materialized as a
      // guard entry right after the refined one — otherwise reads of later
      // levels would see the refined value instead of the truth.
      const AggregateT stable = h.empty() ? scratch[v] : h.back();
      while (h.size() + 1 < level) {
        h.push_back(stable);  // eliminate holes below the refined level
      }
      if (h.size() == level) {
        h.back() = scratch[v];
      } else {
        h.push_back(scratch[v]);
      }
      if (level < tracked_levels_ && !(scratch[v] == stable)) {
        h.push_back(stable);
      }
    }, /*grain=*/256);
  }

  // Drops stabilized suffixes re-created by refinement: trailing entries
  // equal to their predecessor carry no information (reads clamp).
  void RepruneTails(const VertexSubset& targets) {
    ParallelFor(0, targets.size(), [&](size_t i) {
      auto& h = history_[targets.members()[i]];
      while (h.size() > 1 && h[h.size() - 1] == h[h.size() - 2]) {
        h.pop_back();
      }
    }, /*grain=*/256);
  }

  void GrowVertices(VertexId new_count, const AggregateT& identity) {
    if (new_count <= num_vertices_) {
      return;
    }
    history_.resize(new_count);
    if (tracked_levels_ >= 1) {
      for (VertexId v = num_vertices_; v < new_count; ++v) {
        history_[v].push_back(identity);
      }
    }
    for (auto& bits : changed_) {
      bits.Grow(new_count);
    }
    num_vertices_ = new_count;
  }

  void TruncateLevels(uint32_t level) {
    if (changed_.size() > level) {
      changed_.resize(level);
    }
    if (tracked_levels_ > level) {
      tracked_levels_ = level;
      for (auto& h : history_) {
        if (h.size() > level) {
          h.resize(level);
        }
      }
    }
  }

  void AppendChangedBits(AtomicBitset changed_bits) { changed_.push_back(std::move(changed_bits)); }

  const AtomicBitset& ChangedAt(uint32_t level) const {
    GB_CHECK(level >= 1 && level <= total_levels()) << "no changed bits for level " << level;
    return changed_[level - 1];
  }

  AtomicBitset& MutableChangedAt(uint32_t level) {
    GB_CHECK(level >= 1 && level <= total_levels()) << "no changed bits for level " << level;
    return changed_[level - 1];
  }

  // Entries actually stored — the real (not just accounted) footprint.
  uint64_t logical_entries() const {
    uint64_t total = 0;
    for (const auto& h : history_) {
      total += h.size();
    }
    return total;
  }

  uint64_t logical_bytes() const {
    return logical_entries() * sizeof(AggregateT) + total_levels() * (num_vertices_ / 8 + 8) +
           num_vertices_ * sizeof(void*) * 3;  // per-vertex vector headers
  }

  // Same as logical_bytes: this backend allocates what it stores.
  uint64_t actual_bytes() const { return logical_bytes(); }

  void SerializeTo(std::ostream& out) const {
    static_assert(std::is_trivially_copyable_v<AggregateT>);
    const uint64_t header[4] = {num_vertices_, history_size_, tracked_levels_, total_levels()};
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    for (const auto& h : history_) {
      const uint64_t size = h.size();
      out.write(reinterpret_cast<const char*>(&size), sizeof(size));
      out.write(reinterpret_cast<const char*>(h.data()),
                static_cast<std::streamsize>(size * sizeof(AggregateT)));
    }
    for (const auto& bits : changed_) {
      for (VertexId base = 0; base < num_vertices_; base += 64) {
        uint64_t word = 0;
        for (VertexId offset = 0; offset < 64 && base + offset < num_vertices_; ++offset) {
          word |= static_cast<uint64_t>(bits.Test(base + offset)) << offset;
        }
        out.write(reinterpret_cast<const char*>(&word), sizeof(word));
      }
    }
  }

  bool DeserializeFrom(std::istream& in) {
    uint64_t header[4] = {};
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (!in) {
      return false;
    }
    num_vertices_ = static_cast<VertexId>(header[0]);
    history_size_ = static_cast<uint32_t>(header[1]);
    tracked_levels_ = static_cast<uint32_t>(header[2]);
    const auto total = static_cast<uint32_t>(header[3]);
    history_.assign(num_vertices_, {});
    for (auto& h : history_) {
      uint64_t size = 0;
      in.read(reinterpret_cast<char*>(&size), sizeof(size));
      if (!in || size > tracked_levels_) {
        Reset(0, 0);
        return false;
      }
      h.resize(size);
      in.read(reinterpret_cast<char*>(h.data()),
              static_cast<std::streamsize>(size * sizeof(AggregateT)));
    }
    changed_.clear();
    changed_.reserve(total);
    for (uint32_t l = 0; l < total; ++l) {
      AtomicBitset bits(num_vertices_);
      for (VertexId base = 0; base < num_vertices_; base += 64) {
        uint64_t word = 0;
        in.read(reinterpret_cast<char*>(&word), sizeof(word));
        for (VertexId offset = 0; offset < 64 && base + offset < num_vertices_; ++offset) {
          if ((word >> offset) & 1ULL) {
            bits.Set(base + offset);
          }
        }
      }
      changed_.push_back(std::move(bits));
    }
    if (!in) {
      Reset(0, 0);
      return false;
    }
    return true;
  }

 private:
  // Appends level `level`'s value during the initial run, pruning when the
  // value matches the stored tail.
  void AppendLevel(VertexId v, uint32_t level, const AggregateT& value) {
    auto& h = history_[v];
    if (h.empty()) {
      h.push_back(value);
      return;
    }
    if (value == h.back() && h.size() < level) {
      return;  // stabilized: prune
    }
    while (h.size() + 1 < level) {
      h.push_back(h.back());  // eliminate holes
    }
    h.push_back(value);
  }

  VertexId num_vertices_ = 0;
  uint32_t history_size_ = 0;
  uint32_t tracked_levels_ = 0;
  std::vector<std::vector<AggregateT>> history_;  // history_[v][i] = g_{i+1}(v)
  std::vector<AtomicBitset> changed_;
  uint64_t logical_entries_unused_ = 0;
};

}  // namespace graphbolt

#endif  // SRC_CORE_COMPACT_DEPENDENCY_STORE_H_
