// The GraphBolt engine: BSP processing with dependency tracking, and
// dependency-driven value refinement on graph mutation (§3, §4).
//
// Initial computation runs the same selective-scheduling BSP loop as the
// GB-Reset baseline, but snapshots the aggregation array g_i(v) and the
// changed-vertex bits after every iteration into a DependencyStore.
//
// On a mutation batch (Ea, Ed) the engine refines the tracked levels
// iteration by iteration (§3.3):
//
//   g^T_i(v) = g_i(v)  ⊎_{(u,v) ∈ Ea} contrib(c_{i-1}(u))
//                      ⋃-_{(u,v) ∈ Ed} contrib(c_{i-1}(u))
//                      ⋃△_{(u,v) ∈ E^T, contrib changed} contrib(c^T_{i-1}(u))
//
// where "contrib changed" covers both value changes and vertex-context
// changes (a mutation changes the endpoint's degree, which changes its
// contribution along *all* its edges — Algorithm 3's old_degree/new_degree).
// The direct terms use old values with old contexts; the transitive term
// retracts (old value, old context) and aggregates (new value, new context)
// so the sum telescopes to exactly the new graph's aggregation.
//
// Past the tracked history (horizontal pruning) the engine switches to
// computation-aware hybrid execution (§4.2): selective pull-recomputation
// seeded by the per-iteration changed-vertex bit vectors recorded during the
// original run. Every vertex whose value could change — through the new
// dynamics (out-neighbors of the current frontier) or through the original
// dynamics (the recorded changed set) — is recomputed from its full
// in-neighborhood, so the continuation is still exact BSP.
//
// Non-decomposable aggregations (min/max) cannot retract; for those the
// engine re-evaluates impacted vertices by pulling the full in-neighborhood
// at every refined level (§3.3 "Aggregation Properties & Extensions").
#ifndef SRC_CORE_GRAPHBOLT_ENGINE_H_
#define SRC_CORE_GRAPHBOLT_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/algorithm.h"
#include "src/core/delta_kernel.h"
#include "src/core/dependency_store.h"
#include "src/core/streaming_engine.h"
#include "src/engine/reset_engine.h"  // HasDeltaContribution
#include "src/engine/stats.h"
#include "src/engine/vertex_subset.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"
#include "src/parallel/atomics.h"
#include "src/parallel/parallel_for.h"
#include "src/parallel/reducer.h"
#include "src/parallel/scheduler_scope.h"
#include "src/parallel/task_arena.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

// `StoreT` selects the dependency-storage backend: the default dense
// per-level DependencyStore, or CompactDependencyStore for the paper's
// per-vertex contiguous layout with real vertical-pruning savings.
template <GraphAlgorithm Algo, typename StoreT = DependencyStore<typename Algo::Aggregate>>
class GraphBoltEngine {
 public:
  using Value = typename Algo::Value;
  using Aggregate = typename Algo::Aggregate;

  struct Options {
    uint32_t max_iterations = 10;
    bool run_to_convergence = false;
    // Horizontal pruning: number of iterations whose aggregations are
    // tracked. Refinement past this point uses hybrid execution. Must be
    // at least 1.
    uint32_t history_size = 1u << 30;
    // Forces retract+propagate pairs even when the algorithm offers a
    // combined delta (the GraphBolt-RP configuration of §5.4A).
    bool use_retract_propagate = false;
    // Computation-aware fallback (extension): when > 0, a batch mutating
    // more than this fraction of the graph's edges triggers a full
    // recompute-with-tracking instead of refinement — at such densities
    // refinement cost approaches (or exceeds) a GB-Reset restart.
    double reset_fallback_fraction = 0.0;
    // Ablation switch: disables the monotonic push fast path for
    // addition-only batches, forcing full min/max re-evaluation.
    bool disable_monotonic_push = false;
  };

  GraphBoltEngine(MutableGraph* graph, Algo algo, Options options = {})
      : graph_(graph), algo_(std::move(algo)), options_(options) {
    GB_CHECK(options_.history_size >= 1) << "history_size must be >= 1";
  }

  // Runs the full computation from initial values, tracking dependencies.
  void InitialCompute() {
    Timer timer;
    SchedulerCounterScope scheduler(&stats_);
    stats_.Clear();
    contexts_ = ComputeVertexContexts(*graph_);
    const VertexId n = graph_->num_vertices();
    store_.Reset(n, options_.history_size);
    values_.assign(n, Value{});
    aggregates_.assign(n, algo_.IdentityAggregate());
    ParallelFor(0, n, [&](size_t v) {
      values_[v] = algo_.InitialValue(static_cast<VertexId>(v), contexts_[v]);
    });

    std::vector<std::pair<VertexId, Value>> frontier = FirstIteration();
    while (store_.total_levels() < options_.max_iterations) {
      if (options_.run_to_convergence && frontier.empty()) {
        break;
      }
      frontier = TrackedIteration(frontier);
    }
    stats_.iterations = store_.total_levels();
    stats_.seconds = timer.Seconds();
  }

  // Applies the batch to the graph, refines the dependency store, and
  // continues computation to produce the new snapshot's final values.
  // Stats lifecycle (identical across engines, see stats.h): mutation timed
  // first, then Clear(), then mutation_seconds assigned.
  AppliedMutations ApplyMutations(const MutationBatch& batch) {
    GB_CHECK(!async_mode_) << "BSP ApplyMutations while in async mode; "
                              "use AsyncApplyMutations or ExitAsyncReconcile first";
    SchedulerCounterScope scheduler(&stats_);
    Timer mutation_timer;
    AppliedMutations applied = graph_->ApplyBatch(batch);
    const double mutation_seconds = mutation_timer.Seconds();

    const size_t mutated = applied.added.size() + applied.deleted.size();
    if (options_.reset_fallback_fraction > 0.0 &&
        static_cast<double>(mutated) >
            options_.reset_fallback_fraction * static_cast<double>(graph_->num_edges())) {
      InitialCompute();  // rebuilds values and the dependency store
      stats_.mutation_seconds = mutation_seconds;
      return applied;
    }

    Timer timer;
    stats_.Clear();
    stats_.mutation_seconds = mutation_seconds;
    if (!applied.Empty()) {
      Refine(applied);
    }
    stats_.seconds = timer.Seconds();
    return applied;
  }

  // Buffers mutations that arrive while a refinement is in flight (§4.1:
  // "Mutations arriving during refinement are buffered to prioritize
  // latency of the ongoing refinement step, and are applied immediately
  // after refining finishes"). Call ProcessPending() at the next quiescent
  // point to apply everything buffered so far as one batch.
  void EnqueueMutations(const MutationBatch& batch) {
    pending_.insert(pending_.end(), batch.begin(), batch.end());
  }

  size_t pending_mutation_count() const { return pending_.size(); }

  AppliedMutations ProcessPending() {
    MutationBatch batch;
    batch.swap(pending_);
    return ApplyMutations(batch);
  }

  // Streams the engine's computed state (values + dependency store) so a
  // streaming session can resume in a fresh process — or so a Checkpointer
  // (src/fault/checkpoint.h) can embed it in a checkpoint file. The graph
  // itself is saved separately; LoadStateFrom must be called on an engine
  // whose graph already holds the same snapshot (contexts are recomputed
  // from it). Mutations buffered via EnqueueMutations are not part of the
  // persisted state. Returns false on IO failure or mismatched state.
  bool SaveStateTo(std::ostream& out) const {
    static_assert(std::is_trivially_copyable_v<Value>);
    const uint64_t magic = kStateMagic;
    const uint64_t n = values_.size();
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(values_.data()),
              static_cast<std::streamsize>(n * sizeof(Value)));
    store_.SerializeTo(out);
    return static_cast<bool>(out);
  }

  bool LoadStateFrom(std::istream& in) {
    uint64_t magic = 0;
    uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || magic != kStateMagic) {
      GB_LOG(kError) << "not a graphbolt engine state";
      return false;
    }
    if (n != graph_->num_vertices()) {
      GB_LOG(kError) << "state has " << n << " vertices but the graph has "
                     << graph_->num_vertices();
      return false;
    }
    values_.resize(n);
    in.read(reinterpret_cast<char*>(values_.data()),
            static_cast<std::streamsize>(n * sizeof(Value)));
    if (!in || !store_.DeserializeFrom(in)) {
      GB_LOG(kError) << "engine state truncated or malformed";
      return false;
    }
    contexts_ = ComputeVertexContexts(*graph_);
    return true;
  }

  // Path-based convenience wrappers over the stream API.
  bool SaveState(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      GB_LOG(kError) << "cannot open " << path << " for writing";
      return false;
    }
    return SaveStateTo(out);
  }

  bool LoadState(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      GB_LOG(kError) << "cannot open " << path;
      return false;
    }
    return LoadStateFrom(in);
  }

  const std::vector<Value>& values() const { return values_; }
  const EngineStats& stats() const { return stats_; }
  const StoreT& store() const { return store_; }
  const Algo& algorithm() const { return algo_; }

  // The graph this engine computes over; StreamDriver uses it to run
  // background-compaction maintenance between batches.
  MutableGraph* mutable_graph() { return graph_; }

  // ----- Single-update fast path (src/driver/fast_path.h) -------------------
  // Classifies one mutation against the dependency store. Safe means the
  // batched ApplyMutations path would provably leave values_ and the store
  // bitwise unchanged — the mutation's whole effect is the graph splice —
  // so WAL replay through the batched path during Recover() reconstructs
  // exactly the live state.
  //
  // Rules:
  //  - Graph no-ops (duplicate add, absent delete, self-loop) are safe for
  //    every algorithm: ApplyMutations on an empty normalized effect skips
  //    Refine entirely.
  //  - Real mutations are provable only for monotonic pull-based
  //    context-free algorithms (SSSP/BFS/CC/widest/reach). An addition is
  //    safe when its candidate contribution cannot improve the target's
  //    aggregation at any tracked level of the dependency store (min/max
  //    absorbs it without moving a bit); a deletion is safe when its
  //    contribution is strictly dominated at every level (removing a
  //    non-attaining input leaves each re-evaluated min unchanged).
  //  - Decomposable algorithms (PageRank): a real edge change shifts the
  //    endpoint's degree context, which moves its contribution along every
  //    incident edge, so only graph no-ops are safe.
  FastPathVerdict ClassifyFast(const EdgeMutation& m) const {
    const VertexId n = graph_->num_vertices();
    if (m.src >= n || m.dst >= n) {
      return {false, "grows-vertex-set"};
    }
    if (values_.size() != n) {
      return {false, "not-computed"};
    }
    const MutableGraph::SingleEffect eff = graph_->NormalizeSingle(m);
    if (eff.Empty()) {
      return {true, "graph-noop"};
    }
    if constexpr (!kPullBased) {
      return {false, "context-shift-moves-contributions"};
    } else if constexpr (!IsMonotonicAggregation<Algo>() || !IsContextFreeAlgorithm<Algo>()) {
      return {false, "algorithm-not-provable"};
    } else {
      if (options_.reset_fallback_fraction > 0.0) {
        return {false, "reset-fallback-configured"};
      }
      const uint32_t tracked = store_.tracked_levels();
      if (tracked == 0 || tracked != store_.total_levels()) {
        // Pruned history would hand the replay to the hybrid continuation,
        // whose intermediate aggregations are not stored and so not provable.
        return {false, "pruned-history"};
      }
      if (options_.run_to_convergence && store_.ChangedAt(tracked).Count() > 0) {
        return {false, "still-converging"};
      }
      // The refined replay rewrites the endpoints' final values from the
      // last tracked level; require that rewrite to be a bitwise no-op.
      auto final_consistent = [&](VertexId v) {
        return SameBits(values_[v],
                        algo_.VertexCompute(v, store_.At(tracked, v), contexts_[v]));
      };
      // c_{level-1}(src) as the refined run sees it entering `level`.
      auto value_entering = [&](uint32_t level, VertexId u) {
        return level == 1 ? algo_.InitialValue(u, contexts_[u])
                          : algo_.VertexCompute(u, store_.At(level - 1, u), contexts_[u]);
      };
      if (eff.has_add) {
        const Edge& e = eff.added;
        if (!final_consistent(e.src) || !final_consistent(e.dst)) {
          return {false, "stale-final-value"};
        }
        for (uint32_t level = 1; level <= tracked; ++level) {
          const auto cand =
              algo_.ContributionOf(e.src, value_entering(level, e.src), e.weight,
                                   contexts_[e.src]);
          const Aggregate& cur = store_.At(level, e.dst);
          Aggregate probe = cur;
          algo_.AggregateAtomic(&probe, cand);
          if (!SameBits(probe, cur)) {
            return {false, "relaxes-tracked-level"};
          }
        }
      }
      if (eff.has_delete) {
        const Edge& e = eff.deleted;
        if constexpr (!std::is_same_v<typename Algo::Contribution, Aggregate>) {
          return {false, "deletion-not-provable"};
        } else {
          if (!final_consistent(e.src) || !final_consistent(e.dst)) {
            return {false, "stale-final-value"};
          }
          for (uint32_t level = 1; level <= tracked; ++level) {
            const Aggregate cand =
                algo_.ContributionOf(e.src, value_entering(level, e.src), e.weight,
                                     contexts_[e.src]);
            const Aggregate& cur = store_.At(level, e.dst);
            Aggregate probe = cur;
            algo_.AggregateAtomic(&probe, cand);
            // Dominating (shouldn't happen for a present edge) or attaining
            // the aggregate: the edge is load-bearing, escalate.
            if (!SameBits(probe, cur) || SameBits(cand, cur)) {
              return {false, "attains-aggregate"};
            }
          }
        }
      }
      return {true, eff.has_delete ? "dominated-contribution" : "cannot-relax"};
    }
  }

  // Applies a mutation previously classified safe as a bare graph splice.
  // Re-validates first (the caller serializes this against batched applies,
  // but classification may have run before an intervening batch); returns
  // false to send the mutation down the batched path instead. Leaves
  // contexts_ untouched: the next batched Refine recomputes them and treats
  // the endpoints as context-changed, which is value-preserving for the
  // context-free algorithms real mutations are classified safe under.
  bool ApplyFastSafe(const EdgeMutation& m) {
    if (!ClassifyFast(m).safe) {
      return false;
    }
    graph_->ApplySingle(m);
    return true;
  }

  // ----- Async delta-accumulative mode (Maiter tier) ------------------------
  // For decomposable aggregations only: barrier-free accumulative iteration
  // in the style of Maiter / libgrape-lite's async delta PageRank. The
  // invariant throughout is
  //
  //   aggregates_[v] == ⊎_{(u,v) ∈ E} contrib(prop_values_[u])
  //
  // where prop_values_[u] is the value u last propagated along its
  // out-edges. A step picks active vertices (aggregate moved since their
  // last propagation) in residual-priority order, pushes each one's delta
  // to its out-neighbors through the same DeltaKernel the BSP refinement
  // uses, and publishes the new value. The mode converges to the *true*
  // algorithm fixed point — when BSP ran with a truncated iteration cap,
  // async values legitimately drift from the k-step front toward the fixed
  // point; that is the eventually-consistent contract.
  //
  // While async_mode() is true the dependency store is stale: BSP
  // ApplyMutations is rejected, and callers must not checkpoint engine
  // state. ExitAsyncReconcile() restores the BSP contract with one
  // reconciling recompute whose result is bitwise-identical (single thread)
  // to a fresh InitialCompute on the current graph.
  static constexpr bool kAsyncEligible = Algo::kKind == AggregationKind::kDecomposable;

  bool async_mode() const { return async_mode_; }

  // Monotone-ish convergence residual: total pending |value change| over
  // vertices whose aggregate moved since their last propagation. Zero means
  // the async values are the fixed point of the current graph.
  double AsyncResidual() const { return async_residual_; }

  // Switches to async mode from the current BSP values: rebuilds the live
  // aggregation array from scratch and activates every vertex that is off
  // its fixed point (a truncated BSP run leaves a nonzero residual).
  void EnterAsyncMode()
    requires(kAsyncEligible)
  {
    if (async_mode_) {
      return;
    }
    const VertexId n = graph_->num_vertices();
    contexts_ = ComputeVertexContexts(*graph_);
    prop_values_ = values_;
    aggregates_.assign(n, algo_.IdentityAggregate());
    async_active_.Resize(n);
    ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
      uint64_t scratch_edges = 0;
      for (size_t vi = lo; vi < hi; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        aggregates_[v] = DeltaKernel<Algo>::PullAggregate(algo_, *graph_, contexts_, v,
                                                          prop_values_, &scratch_edges);
      }
    }, /*grain=*/64);
    async_mode_ = true;
    async_residual_ = ComputeAsyncResidual();
  }

  // Applies a mutation batch while in async mode: splices the graph, then
  // patches the live aggregation array in place — direct edge impact at old
  // contexts, then a context-shift pass over every endpoint whose context
  // changed — so the invariant above holds on the new graph without any
  // barrier. Affected vertices are activated; deltas flow on the next
  // AsyncStep. Stats lifecycle matches ApplyMutations.
  AppliedMutations AsyncApplyMutations(const MutationBatch& batch)
    requires(kAsyncEligible)
  {
    GB_CHECK(async_mode_) << "AsyncApplyMutations outside async mode";
    SchedulerCounterScope scheduler(&stats_);
    Timer mutation_timer;
    AppliedMutations applied = graph_->ApplyBatch(batch);
    const double mutation_seconds = mutation_timer.Seconds();
    Timer timer;
    stats_.Clear();
    stats_.mutation_seconds = mutation_seconds;
    if (applied.Empty()) {
      stats_.seconds = timer.Seconds();
      return applied;
    }

    const VertexId n = graph_->num_vertices();
    const VertexId old_n = static_cast<VertexId>(prop_values_.size());
    std::vector<VertexContext> old_contexts = std::move(contexts_);
    old_contexts.resize(n);  // new vertices: empty old context
    contexts_ = ComputeVertexContexts(*graph_);
    values_.resize(n, Value{});
    prop_values_.resize(n, Value{});
    aggregates_.resize(n, algo_.IdentityAggregate());
    async_active_.Grow(n);
    for (VertexId v = old_n; v < n; ++v) {
      const Value init = algo_.VertexCompute(v, algo_.IdentityAggregate(), contexts_[v]);
      values_[v] = init;
      prop_values_[v] = init;
      async_active_.Set(v);
    }

    // Endpoints whose context changed: their contribution along every
    // out-edge moves even though their propagated value did not.
    AtomicBitset ctx_changed_bits(n);
    std::vector<VertexId> ctx_changed;
    auto note_endpoint = [&](VertexId v) {
      if (!(old_contexts[v] == contexts_[v]) && ctx_changed_bits.Set(v)) {
        ctx_changed.push_back(v);
      }
    };
    for (const Edge& e : applied.added) {
      note_endpoint(e.src);
      note_endpoint(e.dst);
    }
    for (const Edge& e : applied.deleted) {
      note_endpoint(e.src);
      note_endpoint(e.dst);
    }

    // Direct impact at old contexts: aggregates_ currently hold prop-value
    // contributions at old contexts over the old edge set, so adding /
    // retracting the mutated edges' old-context contributions moves the sum
    // to the new edge set (still at old contexts).
    for (const Edge& e : applied.added) {
      algo_.AggregateAtomic(&aggregates_[e.dst],
                            algo_.ContributionOf(e.src, prop_values_[e.src], e.weight,
                                                 old_contexts[e.src]));
      async_active_.Set(e.dst);
    }
    for (const Edge& e : applied.deleted) {
      algo_.RetractAtomic(&aggregates_[e.dst],
                          algo_.ContributionOf(e.src, prop_values_[e.src], e.weight,
                                               old_contexts[e.src]));
      async_active_.Set(e.dst);
    }
    stats_.edges_processed += applied.added.size() + applied.deleted.size();

    // Context shift: retract old-context / aggregate new-context along the
    // *current* out-edges of every context-changed endpoint, telescoping the
    // sum to new contexts over the new edge set.
    std::atomic<uint64_t> edges{0};
    ParallelForChunks(0, ctx_changed.size(), [&](size_t lo, size_t hi) {
      uint64_t local_edges = 0;
      for (size_t i = lo; i < hi; ++i) {
        const VertexId u = ctx_changed[i];
        const auto out_nbrs = graph_->OutNeighbors(u);
        const auto out_wts = graph_->OutWeights(u);
        for (size_t e = 0; e < out_nbrs.size(); ++e) {
          DeltaKernel<Algo>::PushChange(algo_, options_.use_retract_propagate, u,
                                        prop_values_[u], prop_values_[u], out_wts[e],
                                        old_contexts[u], contexts_[u],
                                        &aggregates_[out_nbrs[e]]);
          async_active_.Set(out_nbrs[e]);
        }
        local_edges += out_nbrs.size();
        async_active_.Set(u);
      }
      edges.fetch_add(local_edges, std::memory_order_relaxed);
    }, /*grain=*/16);
    stats_.edges_processed += edges.load();

    async_residual_ = ComputeAsyncResidual();
    stats_.seconds = timer.Seconds();
    return applied;
  }

  // One bounded round of asynchronous delta propagation: selects up to
  // `budget` active vertices with the largest pending residual (budget 0
  // means unbounded), propagates their deltas along out-edges in
  // priority-ordered chunks (TaskArena's priority lane drains high-impact
  // work first), then recomputes the global residual. Returns the residual.
  // Deliberately does not touch stats_ — the driver owns async accounting
  // across steps, and engine stats are merged per-apply.
  double AsyncStep(size_t budget)
    requires(kAsyncEligible)
  {
    GB_CHECK(async_mode_) << "AsyncStep outside async mode";
    const VertexId n = graph_->num_vertices();
    if (budget == 0) {
      budget = n;
    }
    struct Candidate {
      double mag;
      VertexId v;
    };
    std::vector<Candidate> cands;
    {
      std::mutex merge;
      ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
        std::vector<Candidate> local;
        for (size_t vi = lo; vi < hi; ++vi) {
          const VertexId v = static_cast<VertexId>(vi);
          if (!async_active_.Test(v)) {
            continue;
          }
          const Value next = algo_.VertexCompute(v, aggregates_[v], contexts_[v]);
          if (!algo_.ValuesDiffer(prop_values_[v], next)) {
            async_active_.Clear(v);
            continue;
          }
          local.push_back({ResidualMagnitude(prop_values_[v], next), v});
        }
        if (!local.empty()) {
          std::lock_guard<std::mutex> lock(merge);
          cands.insert(cands.end(), local.begin(), local.end());
        }
      }, /*grain=*/512);
    }
    if (cands.empty()) {
      async_residual_ = 0.0;
      return 0.0;
    }
    auto by_mag_desc = [](const Candidate& a, const Candidate& b) { return a.mag > b.mag; };
    if (cands.size() > budget) {
      std::nth_element(cands.begin(), cands.begin() + static_cast<ptrdiff_t>(budget),
                       cands.end(), by_mag_desc);
      cands.resize(budget);
    }
    std::sort(cands.begin(), cands.end(), by_mag_desc);

    constexpr size_t kChunk = 64;
    {
      TaskGroup group;
      for (size_t lo = 0; lo < cands.size(); lo += kChunk) {
        const size_t hi = std::min(cands.size(), lo + kChunk);
        group.RunPriority(cands[lo].mag, [this, &cands, lo, hi] {
          for (size_t i = lo; i < hi; ++i) {
            PropagateOne(cands[i].v);
          }
        });
      }
      group.Wait();
    }
    async_residual_ = ComputeAsyncResidual();
    return async_residual_;
  }

  // Leaves async mode with one reconciling barrier: recomputes values and
  // the dependency store from scratch, so the post-reconcile state is
  // bitwise-identical (single thread) to a fresh InitialCompute on the
  // current graph — the deterministic-recovery contract the BSP mode makes.
  void ExitAsyncReconcile()
    requires(kAsyncEligible)
  {
    if (!async_mode_) {
      return;
    }
    async_mode_ = false;
    async_residual_ = 0.0;
    prop_values_.clear();
    prop_values_.shrink_to_fit();
    async_active_.Resize(0);
    InitialCompute();
  }

 private:
  static constexpr bool kPullBased = Algo::kKind == AggregationKind::kNonDecomposable;
  static constexpr uint64_t kStateMagic = 0x47424f4c54535431ULL;  // "GBOLTST1"

  // Bitwise equality — the fast path's safety contract is stated in bits,
  // not tolerances, so recovery replay stays exact.
  template <typename T>
  static bool SameBits(const T& a, const T& b) {
    static_assert(std::is_trivially_copyable_v<T>);
    return std::memcmp(&a, &b, sizeof(T)) == 0;
  }

  struct FrontierEntry {
    VertexId v;
    Value old_value;  // value in the pre-mutation run
    Value new_value;  // value in the refined run
  };

  // Epoch-stamped per-level scratch recording the old and new values of
  // every vertex touched while refining one level. Two instances alternate
  // between consecutive levels, giving O(1) old/new value lookups without
  // hashing.
  struct LevelScratch {
    std::vector<Value> old_values;
    std::vector<Value> new_values;
    std::vector<uint32_t> stamps;
    uint32_t epoch = 0;

    void Prepare(VertexId n) {
      if (stamps.size() < n) {
        stamps.resize(n, 0);
        old_values.resize(n);
        new_values.resize(n);
      }
      ++epoch;
    }
    bool Has(VertexId v) const { return stamps[v] == epoch; }
    void Record(VertexId v, const Value& old_value) {
      stamps[v] = epoch;
      old_values[v] = old_value;
      new_values[v] = old_value;
    }
  };

  // ----- Initial (tracked) computation -------------------------------------

  // Iteration 1: full pull pass over every vertex. Returns the changed set
  // carrying pre-change values, and snapshots level 1.
  std::vector<std::pair<VertexId, Value>> FirstIteration() {
    const VertexId n = graph_->num_vertices();
    std::atomic<uint64_t> edges{0};
    ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
      uint64_t local_edges = 0;
      for (size_t vi = lo; vi < hi; ++vi) {
        const VertexId v = static_cast<VertexId>(vi);
        const auto in_nbrs = graph_->InNeighbors(v);
        const auto in_wts = graph_->InWeights(v);
        for (size_t i = 0; i < in_nbrs.size(); ++i) {
          const VertexId u = in_nbrs[i];
          algo_.AggregateAtomic(&aggregates_[vi],
                                algo_.ContributionOf(u, values_[u], in_wts[i], contexts_[u]));
        }
        local_edges += in_nbrs.size();
      }
      edges.fetch_add(local_edges, std::memory_order_relaxed);
    });
    stats_.edges_processed += edges.load();
    return CommitIteration(VertexSubset::All(n));
  }

  // Iterations >= 2: selective delta processing (push) or selective pull
  // re-evaluation for non-decomposable aggregations. Snapshots the level.
  std::vector<std::pair<VertexId, Value>> TrackedIteration(
      const std::vector<std::pair<VertexId, Value>>& frontier) {
    const VertexId n = graph_->num_vertices();
    FrontierBuilder touched(n);
    std::atomic<uint64_t> edges{0};

    if constexpr (kPullBased) {
      ParallelForChunks(0, frontier.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          for (const VertexId w : graph_->OutNeighbors(frontier[i].first)) {
            touched.Claim(w);
          }
        }
      }, /*grain=*/64);
      // TakeAuto: a dense target set comes back as its bitset alone and is
      // swept below (and in CommitIteration) without ever packing the
      // sparse member vector. Both walks ascend, so the single-threaded
      // visit order — and the committed values — are identical either way.
      VertexSubset targets = touched.TakeAuto();
      if (targets.dense_only()) {
        const AtomicBitset& bits = targets.Dense();
        ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
          uint64_t local_edges = 0;
          for (size_t vi = lo; vi < hi; ++vi) {
            const VertexId v = static_cast<VertexId>(vi);
            if (bits.Test(v)) {
              aggregates_[v] = PullAggregate(v, values_, &local_edges);
            }
          }
          edges.fetch_add(local_edges, std::memory_order_relaxed);
        }, /*grain=*/512);
      } else {
        ParallelForChunks(0, targets.size(), [&](size_t lo, size_t hi) {
          uint64_t local_edges = 0;
          for (size_t i = lo; i < hi; ++i) {
            const VertexId v = targets.members()[i];
            aggregates_[v] = PullAggregate(v, values_, &local_edges);
          }
          edges.fetch_add(local_edges, std::memory_order_relaxed);
        }, /*grain=*/64);
      }
      stats_.edges_processed += edges.load();
      return CommitIteration(targets);
    } else {
      ParallelForChunks(0, frontier.size(), [&](size_t lo, size_t hi) {
        uint64_t local_edges = 0;
        for (size_t i = lo; i < hi; ++i) {
          const auto& [u, old_value] = frontier[i];
          const auto out_nbrs = graph_->OutNeighbors(u);
          const auto out_wts = graph_->OutWeights(u);
          for (size_t e = 0; e < out_nbrs.size(); ++e) {
            const VertexId w = out_nbrs[e];
            PushChange(u, old_value, values_[u], out_wts[e], contexts_[u], contexts_[u],
                       &aggregates_[w]);
            touched.Claim(w);
          }
          local_edges += out_nbrs.size();
        }
        edges.fetch_add(local_edges, std::memory_order_relaxed);
      }, /*grain=*/64);
      stats_.edges_processed += edges.load();
      return CommitIteration(touched.TakeAuto());
    }
  }

  // Computes new values for `targets`, snapshots the level (aggregates +
  // changed bits), and returns the changed set.
  std::vector<std::pair<VertexId, Value>> CommitIteration(const VertexSubset& targets) {
    const VertexId n = graph_->num_vertices();
    AtomicBitset changed_bits(n);
    std::vector<std::pair<VertexId, Value>> changed;
    std::mutex merge;
    const auto commit_one = [&](VertexId v, std::vector<std::pair<VertexId, Value>>* local) {
      const Value next = algo_.VertexCompute(v, aggregates_[v], contexts_[v]);
      if (algo_.ValuesDiffer(values_[v], next)) {
        changed_bits.Set(v);
        local->emplace_back(v, values_[v]);
        values_[v] = next;
      }
    };
    if (targets.dense_only()) {
      // Fused-dense targets (TakeAuto): sweep the bitset instead of
      // forcing the sparse pack. Ascending like the member walk, so a
      // single-threaded commit is bitwise-identical.
      const AtomicBitset& bits = targets.Dense();
      ParallelForChunks(0, n, [&](size_t lo, size_t hi) {
        std::vector<std::pair<VertexId, Value>> local;
        for (size_t vi = lo; vi < hi; ++vi) {
          const VertexId v = static_cast<VertexId>(vi);
          if (bits.Test(v)) {
            commit_one(v, &local);
          }
        }
        std::lock_guard<std::mutex> lock(merge);
        changed.insert(changed.end(), local.begin(), local.end());
      }, /*grain=*/512);
    } else {
      ParallelForChunks(0, targets.size(), [&](size_t lo, size_t hi) {
        std::vector<std::pair<VertexId, Value>> local;
        for (size_t i = lo; i < hi; ++i) {
          commit_one(targets.members()[i], &local);
        }
        std::lock_guard<std::mutex> lock(merge);
        changed.insert(changed.end(), local.begin(), local.end());
      }, /*grain=*/256);
    }
    store_.SnapshotLevel(store_.total_levels() + 1, aggregates_, std::move(changed_bits));
    return changed;
  }

  // ----- Refinement ---------------------------------------------------------

  // Applies one change (retract old / aggregate new, or a combined delta) to
  // a target aggregation cell. Shared with the async mode via DeltaKernel.
  void PushChange(VertexId u, const Value& old_value, const Value& new_value, Weight w,
                  const VertexContext& old_ctx, const VertexContext& new_ctx, Aggregate* agg) {
    DeltaKernel<Algo>::PushChange(algo_, options_.use_retract_propagate, u, old_value,
                                  new_value, w, old_ctx, new_ctx, agg);
  }

  // Re-evaluates g(v) by pulling the full in-neighborhood with `vals`.
  Aggregate PullAggregate(VertexId v, const std::vector<Value>& vals, uint64_t* edge_counter) {
    return DeltaKernel<Algo>::PullAggregate(algo_, *graph_, contexts_, v, vals, edge_counter);
  }

  // c_{level}(v) in the *pre-mutation* run. `prev` holds snapshotted old
  // values of vertices refined at `level`; untouched vertices still hold
  // their old aggregation in the store.
  Value OldValueAt(uint32_t level, VertexId v, const std::vector<VertexContext>& old_contexts,
                   const LevelScratch& prev) const {
    if (level == 0) {
      return algo_.InitialValue(v, old_contexts[v]);
    }
    if (prev.Has(v)) {
      return prev.old_values[v];
    }
    return algo_.VertexCompute(v, store_.At(level, v), old_contexts[v]);
  }

  // c^T_{level}(v) in the refined run; valid once level has been refined.
  Value NewValueAt(uint32_t level, VertexId v) const {
    if (level == 0) {
      return algo_.InitialValue(v, contexts_[v]);
    }
    return algo_.VertexCompute(v, store_.At(level, v), contexts_[v]);
  }

  // Fast path reading the scratch of `level` when v was touched there.
  Value NewValueAt(uint32_t level, VertexId v, const LevelScratch& scratch) const {
    if (level >= 1 && scratch.Has(v)) {
      return scratch.new_values[v];
    }
    return NewValueAt(level, v);
  }

  void Refine(const AppliedMutations& applied) {
    const VertexId n = graph_->num_vertices();
    const VertexId old_n = store_.num_vertices();
    std::vector<VertexContext> old_contexts = std::move(contexts_);
    old_contexts.resize(n);  // new vertices: empty old context
    contexts_ = ComputeVertexContexts(*graph_);
    store_.GrowVertices(n, algo_.IdentityAggregate());
    values_.resize(n, Value{});
    // New vertices behave as if they had existed isolated all along; the
    // value of an isolated vertex is constant from iteration 1 onward.
    for (VertexId v = old_n; v < n; ++v) {
      values_[v] = algo_.VertexCompute(v, algo_.IdentityAggregate(), contexts_[v]);
    }

    const uint32_t tracked = store_.tracked_levels();
    const uint32_t orig_total = store_.total_levels();

    // Contributors whose context changed: their contribution along every
    // out-edge changes even if their value does not.
    AtomicBitset ctx_changed_bits(n);
    std::vector<VertexId> ctx_changed;
    auto note_endpoint = [&](VertexId v) {
      if (!(old_contexts[v] == contexts_[v]) && ctx_changed_bits.Set(v)) {
        ctx_changed.push_back(v);
      }
    };
    for (const Edge& e : applied.added) {
      note_endpoint(e.src);
      note_endpoint(e.dst);
    }
    for (const Edge& e : applied.deleted) {
      note_endpoint(e.src);
      note_endpoint(e.dst);
    }

    // Level-0 frontier: only context-changed vertices can differ.
    std::vector<FrontierEntry> frontier;
    for (const VertexId v : ctx_changed) {
      frontier.push_back({v, algo_.InitialValue(v, old_contexts[v]),
                          algo_.InitialValue(v, contexts_[v])});
    }

    LevelScratch scratch[2];
    scratch[0].Prepare(n);  // stands in for "level 0": nothing touched
    for (uint32_t level = 1; level <= tracked; ++level) {
      frontier = RefineLevel(level, applied, frontier, ctx_changed, old_contexts,
                             scratch[(level - 1) & 1], &scratch[level & 1]);
      ++stats_.iterations;
    }
    // Give the storage backend a chance to drop suffixes that refinement
    // re-expanded but that ended up stable again (no-op for the dense store).
    store_.RepruneTails(VertexSubset::All(n));

    // Decide whether the computation must continue past the refined levels:
    // untracked original iterations remain, or (in convergence mode) the
    // refined run is still changing at the last refined level.
    const bool more_levels = tracked < orig_total;
    const bool still_changing =
        options_.run_to_convergence && tracked >= 1 && store_.ChangedAt(tracked).Count() > 0;
    if (more_levels || still_changing) {
      ContinueBeyondHistory(tracked, orig_total);
    } else {
      for (const FrontierEntry& entry : frontier) {
        values_[entry.v] = entry.new_value;
      }
    }
  }

  // Refines one tracked level; returns the next frontier (changed values and
  // context-changed contributors). `prev` is the scratch filled while
  // refining level-1; `cur` receives this level's touched old/new values.
  std::vector<FrontierEntry> RefineLevel(uint32_t level, const AppliedMutations& applied,
                                         const std::vector<FrontierEntry>& frontier,
                                         const std::vector<VertexId>& ctx_changed,
                                         const std::vector<VertexContext>& old_contexts,
                                         const LevelScratch& prev, LevelScratch* cur) {
    const VertexId n = graph_->num_vertices();
    std::atomic<uint64_t> edges{0};
    cur->Prepare(n);

    // 1. Targets of this level: direct mutation targets plus out-neighbors
    //    of the previous level's changed contributors.
    FrontierBuilder touched(n);
    for (const Edge& e : applied.added) {
      touched.Claim(e.dst);
    }
    for (const Edge& e : applied.deleted) {
      touched.Claim(e.dst);
    }
    ParallelForChunks(0, frontier.size(), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        for (const VertexId w : graph_->OutNeighbors(frontier[i].v)) {
          touched.Claim(w);
        }
      }
    }, /*grain=*/64);
    VertexSubset targets = touched.Take();

    // Materialize the targets' aggregations into a dense scratch the
    // mutation passes operate on; every write below lands on a target, so
    // committing the targets back is a complete update of the level.
    store_.MaterializeLevel(level, targets, &level_scratch_);
    std::vector<Aggregate>& agg = level_scratch_;

    // 2. Snapshot old values of targets before mutating this level.
    ParallelFor(0, targets.size(), [&](size_t i) {
      const VertexId v = targets.members()[i];
      cur->Record(v, algo_.VertexCompute(v, agg[v], old_contexts[v]));
    }, /*grain=*/256);

    if constexpr (kPullBased) {
      // 3a-fast. Monotonic aggregations with addition-only batches: values
      // only improve, and the aggregation absorbs improved inputs without
      // retraction, so push the improved contributions directly (§5.4B).
      const bool push_only = IsMonotonicAggregation<Algo>() && applied.deleted.empty() &&
                             !options_.disable_monotonic_push;
      if (push_only) {
        for (const Edge& e : applied.added) {
          algo_.AggregateAtomic(&agg[e.dst],
                                algo_.ContributionOf(e.src, NewValueAt(level - 1, e.src, prev),
                                                     e.weight, contexts_[e.src]));
        }
        stats_.edges_processed += applied.added.size();
        ParallelForChunks(0, frontier.size(), [&](size_t lo, size_t hi) {
          uint64_t local_edges = 0;
          for (size_t i = lo; i < hi; ++i) {
            const FrontierEntry& entry = frontier[i];
            const auto out_nbrs = graph_->OutNeighbors(entry.v);
            const auto out_wts = graph_->OutWeights(entry.v);
            for (size_t e = 0; e < out_nbrs.size(); ++e) {
              algo_.AggregateAtomic(&agg[out_nbrs[e]],
                                    algo_.ContributionOf(entry.v, entry.new_value, out_wts[e],
                                                         contexts_[entry.v]));
            }
            local_edges += out_nbrs.size();
          }
          edges.fetch_add(local_edges, std::memory_order_relaxed);
        }, /*grain=*/64);
      } else {
        // 3a. Non-decomposable: re-evaluate each target from its full new
        // in-neighborhood using refined level-1 values.
        ParallelForChunks(0, targets.size(), [&](size_t lo, size_t hi) {
          uint64_t local_edges = 0;
          for (size_t i = lo; i < hi; ++i) {
            const VertexId v = targets.members()[i];
            Aggregate fresh = algo_.IdentityAggregate();
            const auto in_nbrs = graph_->InNeighbors(v);
            const auto in_wts = graph_->InWeights(v);
            for (size_t e = 0; e < in_nbrs.size(); ++e) {
              const VertexId u = in_nbrs[e];
              algo_.AggregateAtomic(
                  &fresh, algo_.ContributionOf(u, NewValueAt(level - 1, u, prev), in_wts[e],
                                               contexts_[u]));
            }
            local_edges += in_nbrs.size();
            agg[v] = fresh;
          }
          edges.fetch_add(local_edges, std::memory_order_relaxed);
        }, /*grain=*/64);
      }
    } else {
      // 3b. Direct impact: ⊎ new edges' old contributions, ⋃- deleted ones.
      for (const Edge& e : applied.added) {
        const Value old_src = OldValueAt(level - 1, e.src, old_contexts, prev);
        algo_.AggregateAtomic(&agg[e.dst],
                              algo_.ContributionOf(e.src, old_src, e.weight, old_contexts[e.src]));
      }
      for (const Edge& e : applied.deleted) {
        const Value old_src = OldValueAt(level - 1, e.src, old_contexts, prev);
        algo_.RetractAtomic(&agg[e.dst],
                            algo_.ContributionOf(e.src, old_src, e.weight, old_contexts[e.src]));
      }
      stats_.edges_processed += applied.added.size() + applied.deleted.size();

      // 4. Transitive impact: ⋃△ over out-edges (in E^T) of every changed
      // contributor.
      ParallelForChunks(0, frontier.size(), [&](size_t lo, size_t hi) {
        uint64_t local_edges = 0;
        for (size_t i = lo; i < hi; ++i) {
          const FrontierEntry& entry = frontier[i];
          const auto out_nbrs = graph_->OutNeighbors(entry.v);
          const auto out_wts = graph_->OutWeights(entry.v);
          for (size_t e = 0; e < out_nbrs.size(); ++e) {
            PushChange(entry.v, entry.old_value, entry.new_value, out_wts[e],
                       old_contexts[entry.v], contexts_[entry.v], &agg[out_nbrs[e]]);
          }
          local_edges += out_nbrs.size();
        }
        edges.fetch_add(local_edges, std::memory_order_relaxed);
      }, /*grain=*/64);
    }
    stats_.edges_processed += edges.load();

    // 5. Recompute target values, update changed bits, build next frontier.
    AtomicBitset in_next(n);
    std::vector<FrontierEntry> next;
    std::mutex merge;
    AtomicBitset& changed_bits = store_.MutableChangedAt(level);
    ParallelForChunks(0, targets.size(), [&](size_t lo, size_t hi) {
      std::vector<FrontierEntry> local;
      for (size_t i = lo; i < hi; ++i) {
        const VertexId v = targets.members()[i];
        const Value new_val = algo_.VertexCompute(v, agg[v], contexts_[v]);
        cur->new_values[v] = new_val;
        const Value prev_new = NewValueAt(level - 1, v, prev);
        if (algo_.ValuesDiffer(prev_new, new_val)) {
          changed_bits.Set(v);
        } else {
          changed_bits.Clear(v);
        }
        if (algo_.ValuesDiffer(cur->old_values[v], new_val)) {
          in_next.Set(v);
          local.push_back({v, cur->old_values[v], new_val});
        }
      }
      std::lock_guard<std::mutex> lock(merge);
      next.insert(next.end(), local.begin(), local.end());
    }, /*grain=*/256);

    // A vertex that changed at the previous level but is not a target here
    // keeps its aggregation (and hence its value at this level), yet its
    // changed bit must be refreshed: the bit compares against its *new*
    // previous-level value.
    for (const FrontierEntry& entry : frontier) {
      if (touched.Contains(entry.v)) {
        continue;
      }
      // Not a target: its aggregation was not materialized; read the store.
      const Value here = algo_.VertexCompute(entry.v, store_.At(level, entry.v), contexts_[entry.v]);
      if (algo_.ValuesDiffer(entry.new_value, here)) {
        changed_bits.Set(entry.v);
      } else {
        changed_bits.Clear(entry.v);
      }
    }

    // Context-changed contributors stay in the frontier at every level even
    // when their value is unchanged.
    for (const VertexId v : ctx_changed) {
      if (in_next.Test(v)) {
        continue;
      }
      if (cur->Has(v)) {
        next.push_back({v, cur->old_values[v], cur->new_values[v]});
      } else {
        const Aggregate& untouched = store_.At(level, v);
        const Value old_val = algo_.VertexCompute(v, untouched, old_contexts[v]);
        cur->Record(v, old_val);
        cur->new_values[v] = algo_.VertexCompute(v, untouched, contexts_[v]);
        next.push_back({v, old_val, cur->new_values[v]});
      }
    }

    store_.CommitLevel(level, targets, agg);
    return next;
  }

  // ----- Hybrid continuation ------------------------------------------------

  // Computation-aware hybrid execution past the refined history: selective
  // pull-recomputation seeded by the changed-bit vectors.
  void ContinueBeyondHistory(uint32_t from_level, uint32_t orig_total) {
    const VertexId n = graph_->num_vertices();

    // Full value array at the entry level.
    std::vector<Value> cur(n);
    ParallelFor(0, n, [&](size_t v) {
      cur[v] = NewValueAt(from_level, static_cast<VertexId>(v));
    }, /*grain=*/512);

    // Frontier: vertices whose refined value changed at the entry level.
    std::vector<VertexId> frontier;
    if (from_level >= 1) {
      const AtomicBitset& bits = store_.ChangedAt(from_level);
      for (VertexId v = 0; v < n; ++v) {
        if (bits.Test(v)) {
          frontier.push_back(v);
        }
      }
    }

    uint32_t level = from_level + 1;
    while (level <= orig_total ||
           (options_.run_to_convergence && !frontier.empty() && level <= options_.max_iterations)) {
      if (!options_.run_to_convergence && level > options_.max_iterations) {
        break;
      }
      FrontierBuilder affected(n);
      ParallelForChunks(0, frontier.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          for (const VertexId w : graph_->OutNeighbors(frontier[i])) {
            affected.Claim(w);
          }
        }
      }, /*grain=*/64);
      if (level <= orig_total) {
        // Replay the original dynamics: vertices that changed at this level
        // in the pre-mutation run must be recomputed too.
        const AtomicBitset& orig_bits = store_.ChangedAt(level);
        for (VertexId v = 0; v < n; ++v) {
          if (orig_bits.Test(v)) {
            affected.Claim(v);
          }
        }
      }
      VertexSubset targets = affected.Take();

      std::vector<Value> fresh(targets.size());
      std::atomic<uint64_t> edges{0};
      ParallelForChunks(0, targets.size(), [&](size_t lo, size_t hi) {
        uint64_t local_edges = 0;
        for (size_t i = lo; i < hi; ++i) {
          const VertexId v = targets.members()[i];
          const Aggregate agg = PullAggregate(v, cur, &local_edges);
          fresh[i] = algo_.VertexCompute(v, agg, contexts_[v]);
        }
        edges.fetch_add(local_edges, std::memory_order_relaxed);
      }, /*grain=*/64);
      stats_.edges_processed += edges.load();

      // Commit (BSP barrier already passed), update changed bits, and build
      // the next frontier.
      std::vector<VertexId> next;
      if (level <= orig_total) {
        AtomicBitset& bits = store_.MutableChangedAt(level);
        for (size_t i = 0; i < targets.size(); ++i) {
          const VertexId v = targets.members()[i];
          const bool differs = algo_.ValuesDiffer(cur[v], fresh[i]);
          if (differs) {
            bits.Set(v);
            next.push_back(v);
          } else {
            bits.Clear(v);
          }
          cur[v] = fresh[i];
        }
      } else {
        AtomicBitset bits(n);
        for (size_t i = 0; i < targets.size(); ++i) {
          const VertexId v = targets.members()[i];
          if (algo_.ValuesDiffer(cur[v], fresh[i])) {
            bits.Set(v);
            next.push_back(v);
          }
          cur[v] = fresh[i];
        }
        store_.AppendChangedBits(std::move(bits));
      }
      frontier = std::move(next);
      ++stats_.iterations;
      ++level;
    }
    values_ = std::move(cur);
  }

  // ----- Async mode internals -----------------------------------------------

  // How far apart two values are, for priority ordering and the residual
  // sum. Arithmetic values use their absolute difference; structured values
  // (label arrays) count 1 per differing vertex.
  static double ResidualMagnitude(const Value& a, const Value& b) {
    if constexpr (std::is_arithmetic_v<Value>) {
      return std::fabs(static_cast<double>(a) - static_cast<double>(b));
    } else {
      return 1.0;
    }
  }

  // Propagates one vertex's pending delta: clears its active bit, pushes
  // (prop -> next) along every out-edge, publishes the new value. Racing
  // pushes into this vertex re-set the bit; the post-step residual scan
  // re-activates anything a relaxed-ordering race slipped past.
  // Copies one aggregate cell with element-wise atomic loads. Concurrent
  // PropagateOne calls CAS into the cell while this vertex reads it, and
  // mixed atomic/plain access to one location is a data race — the copy
  // pairs the read side with PushChange's atomics. Relaxed is enough: a
  // stale element only delays convergence, and the post-step residual
  // scan re-activates anything it left behind.
  static Aggregate LoadAggregateRelaxed(const Aggregate& cell) {
    if constexpr (std::is_arithmetic_v<Aggregate>) {
      return AtomicLoad(&cell);
    } else {
      Aggregate out{};
      for (size_t i = 0; i < cell.size(); ++i) {
        out[i] = AtomicLoad(&cell[i]);
      }
      return out;
    }
  }

  void PropagateOne(VertexId v) {
    async_active_.Clear(v);
    const Value cur = prop_values_[v];
    const Aggregate agg = LoadAggregateRelaxed(aggregates_[v]);
    const Value next = algo_.VertexCompute(v, agg, contexts_[v]);
    if (!algo_.ValuesDiffer(cur, next)) {
      return;
    }
    const auto out_nbrs = graph_->OutNeighbors(v);
    const auto out_wts = graph_->OutWeights(v);
    for (size_t e = 0; e < out_nbrs.size(); ++e) {
      DeltaKernel<Algo>::PushChange(algo_, options_.use_retract_propagate, v, cur, next,
                                    out_wts[e], contexts_[v], contexts_[v],
                                    &aggregates_[out_nbrs[e]]);
      async_active_.Set(out_nbrs[e]);
    }
    prop_values_[v] = next;
    values_[v] = next;
  }

  // Full-scan residual: sums the pending change of every vertex that is off
  // its aggregate, re-activating it (self-healing against lost wakeups from
  // the relaxed clear/push race in PropagateOne). Deterministic reduction
  // tree, so the residual trajectory is reproducible for a fixed schedule.
  double ComputeAsyncResidual() {
    const VertexId n = graph_->num_vertices();
    return ParallelReduceSum<double>(0, n, [&](size_t vi) {
      const VertexId v = static_cast<VertexId>(vi);
      const Value next = algo_.VertexCompute(v, aggregates_[v], contexts_[v]);
      if (!algo_.ValuesDiffer(prop_values_[v], next)) {
        return 0.0;
      }
      async_active_.Set(v);
      return ResidualMagnitude(prop_values_[v], next);
    });
  }

  MutableGraph* graph_;
  Algo algo_;
  Options options_;
  std::vector<VertexContext> contexts_;
  std::vector<Value> values_;
  std::vector<Aggregate> aggregates_;    // scratch for the initial run
  std::vector<Aggregate> level_scratch_;  // refinement working copy of one level
  StoreT store_;
  EngineStats stats_;
  MutationBatch pending_;  // mutations buffered during refinement

  // Async-mode state (empty while in BSP mode).
  bool async_mode_ = false;
  std::vector<Value> prop_values_;  // values whose contributions are in aggregates_
  AtomicBitset async_active_;       // aggregate moved since last propagation
  double async_residual_ = 0.0;
};

}  // namespace graphbolt

#endif  // SRC_CORE_GRAPHBOLT_ENGINE_H_
