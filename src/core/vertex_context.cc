#include "src/core/algorithm.h"

#include "src/parallel/parallel_for.h"

namespace graphbolt {

std::vector<VertexContext> ComputeVertexContexts(const MutableGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexContext> contexts(n);
  ParallelFor(0, n, [&](size_t vi) {
    const VertexId v = static_cast<VertexId>(vi);
    VertexContext& ctx = contexts[vi];
    ctx.out_degree = static_cast<uint32_t>(graph.OutDegree(v));
    ctx.in_degree = static_cast<uint32_t>(graph.InDegree(v));
    double out_sum = 0.0;
    for (const Weight w : graph.OutWeights(v)) {
      out_sum += w;
    }
    double in_sum = 0.0;
    for (const Weight w : graph.InWeights(v)) {
      in_sum += w;
    }
    ctx.out_weight_sum = out_sum;
    ctx.in_weight_sum = in_sum;
  }, /*grain=*/512);
  return contexts;
}

}  // namespace graphbolt
