#include "src/minidd/dataflow.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/algorithms/sssp.h"  // kUnreachable
#include "src/util/timer.h"

namespace graphbolt {

// ----- DdPageRank -----------------------------------------------------------

DdPageRank::DdPageRank(const EdgeList& initial, uint32_t iterations, double damping,
                       double tolerance)
    : edges_(initial), iterations_(iterations), damping_(damping), tolerance_(tolerance) {}

double DdPageRank::RankAt(uint32_t level, VertexId v) const {
  const auto& arrangement = levels_[level];
  auto it = arrangement.find(v);
  if (it != arrangement.end()) {
    return it->second;
  }
  // Absent keys take the level's default: the initial rank at level 0, the
  // isolated-vertex rank afterwards.
  return level == 0 ? 1.0 : 1.0 - damping_;
}

double DdPageRank::JoinAndReduce(uint32_t level, VertexId v, uint64_t* tuples) {
  double sum = 0.0;
  const auto& in_tuples = edges_.InTuples(v);
  for (const auto& [u, w] : in_tuples) {
    const size_t degree = edges_.OutDegree(u);
    sum += RankAt(level - 1, u) / (degree > 0 ? static_cast<double>(degree) : 1.0);
  }
  *tuples += in_tuples.size();
  return (1.0 - damping_) + damping_ * sum;
}

void DdPageRank::InitialCompute() {
  Timer timer;
  stats_.Clear();
  const VertexId n = edges_.max_vertex() + 1;
  levels_.assign(1, {});
  levels_[0].reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    levels_[0].emplace(v, 1.0);
  }
  uint64_t tuples = 0;
  for (uint32_t level = 1; level <= iterations_; ++level) {
    levels_.emplace_back();
    auto& cur = levels_.back();
    cur.reserve(n);
    for (VertexId v = 0; v < n; ++v) {
      cur.emplace(v, JoinAndReduce(level, v, &tuples));
    }
    ++stats_.iterations;
  }
  stats_.edges_processed = tuples;
  stats_.seconds = timer.Seconds();
}

void DdPageRank::ApplyUpdates(const MutationBatch& batch) {
  Timer timer;
  stats_.Clear();
  const std::vector<VertexId> touched_keys = edges_.ApplyDiffs(ToDiffs(batch));

  // Keys whose arranged tuples changed contribute differently at every
  // level (their out-degree moved), like GraphBolt's context-changed set.
  std::unordered_set<VertexId> persistent(touched_keys.begin(), touched_keys.end());
  std::unordered_set<VertexId> changed = persistent;

  uint64_t tuples = 0;
  for (uint32_t level = 1; level <= iterations_; ++level) {
    std::unordered_set<VertexId> affected;
    for (const VertexId u : changed) {
      for (const auto& [dst, w] : edges_.OutTuples(u)) {
        affected.insert(dst);
      }
    }
    for (const VertexId k : touched_keys) {
      affected.insert(k);  // degree changes affect the key's own join inputs
    }
    std::unordered_set<VertexId> next = persistent;
    for (const VertexId v : affected) {
      const double fresh = JoinAndReduce(level, v, &tuples);
      const double previous = RankAt(level, v);
      if (std::fabs(fresh - previous) > tolerance_) {
        next.insert(v);
      }
      levels_[level][v] = fresh;
    }
    changed = std::move(next);
    ++stats_.iterations;
  }
  stats_.edges_processed = tuples;
  stats_.seconds = timer.Seconds();
}

// ----- DdSssp ---------------------------------------------------------------

DdSssp::DdSssp(const EdgeList& initial, VertexId source, uint32_t max_rounds)
    : edges_(initial), source_(source), max_rounds_(max_rounds) {}

double DdSssp::DistAt(uint32_t level, VertexId v) const {
  if (v == source_) {
    return 0.0;
  }
  if (level >= levels_.size()) {
    level = static_cast<uint32_t>(levels_.size()) - 1;
  }
  const auto& arrangement = levels_[level];
  auto it = arrangement.find(v);
  return it == arrangement.end() ? kUnreachable : it->second;
}

double DdSssp::JoinAndReduce(uint32_t level, VertexId v, uint64_t* tuples) {
  if (v == source_) {
    return 0.0;
  }
  double best = kUnreachable;
  const auto& in_tuples = edges_.InTuples(v);
  for (const auto& [u, w] : in_tuples) {
    const double base = DistAt(level - 1, u);
    if (base < kUnreachable) {
      best = std::min(best, base + w);
    }
  }
  *tuples += in_tuples.size();
  return best;
}

// Re-joins every vertex in `affected` at `level`; records changes and
// returns the set of vertices whose value at this level moved.
std::unordered_set<VertexId> DdSssp::ProcessLevel(uint32_t level,
                                                  const std::unordered_set<VertexId>& affected,
                                                  uint64_t* tuples) {
  std::unordered_set<VertexId> changed;
  for (const VertexId v : affected) {
    const double fresh = JoinAndReduce(level, v, tuples);
    const double previous = DistAt(level, v);
    if (fresh != previous) {
      levels_[level][v] = fresh;
      changed.insert(v);
    }
  }
  ++stats_.iterations;
  return changed;
}

void DdSssp::InitialCompute() {
  Timer timer;
  stats_.Clear();
  levels_.assign(1, {});
  levels_[0].emplace(source_, 0.0);
  uint64_t tuples = 0;
  std::unordered_set<VertexId> changed{source_};
  for (uint32_t round = 1; round <= max_rounds_ && !changed.empty(); ++round) {
    levels_.push_back(levels_.back());
    std::unordered_set<VertexId> affected;
    for (const VertexId u : changed) {
      for (const auto& [v, w] : edges_.OutTuples(u)) {
        affected.insert(v);
      }
    }
    changed = ProcessLevel(round, affected, &tuples);
  }
  stats_.edges_processed = tuples;
  stats_.seconds = timer.Seconds();
}

void DdSssp::ApplyUpdates(const MutationBatch& batch) {
  Timer timer;
  stats_.Clear();
  const std::vector<VertexId> touched_keys = edges_.ApplyDiffs(ToDiffs(batch));
  const std::unordered_set<VertexId> direct(touched_keys.begin(), touched_keys.end());

  uint64_t tuples = 0;
  std::unordered_set<VertexId> changed;
  // Pass 1: every stored level. Mutated-edge endpoints are re-joined at each
  // level (their in-tuple sets changed); changed values propagate forward.
  const uint32_t stored = static_cast<uint32_t>(levels_.size()) - 1;
  for (uint32_t level = 1; level <= stored; ++level) {
    std::unordered_set<VertexId> affected = direct;
    for (const VertexId u : changed) {
      for (const auto& [v, w] : edges_.OutTuples(u)) {
        affected.insert(v);
      }
    }
    changed = ProcessLevel(level, affected, &tuples);
  }
  // Pass 2: the new fixpoint may need more rounds than the old one.
  for (uint32_t extra = 0; extra < max_rounds_ && !changed.empty(); ++extra) {
    levels_.push_back(levels_.back());
    std::unordered_set<VertexId> affected;
    for (const VertexId u : changed) {
      for (const auto& [v, w] : edges_.OutTuples(u)) {
        affected.insert(v);
      }
    }
    changed = ProcessLevel(static_cast<uint32_t>(levels_.size()) - 1, affected, &tuples);
  }
  // Drop converged duplicate tail levels.
  while (levels_.size() > 2 && levels_[levels_.size() - 1] == levels_[levels_.size() - 2]) {
    levels_.pop_back();
  }
  stats_.edges_processed = tuples;
  stats_.seconds = timer.Seconds();
}

}  // namespace graphbolt
