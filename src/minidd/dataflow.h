// Incremental iterative dataflows over the minidd substrate (§5.4).
//
// Both computations follow the Differential Dataflow formulation the paper
// describes: edge tuples are joined with per-iteration state arrangements,
// grouped at destination keys, and the impact of input diffs is propagated
// level by level through memoized per-iteration arrangements. All state
// lives in hash maps keyed by vertex — the generic representation — so the
// comparison against GraphBolt's dense graph-aware arrays is the one the
// paper makes.
#ifndef SRC_MINIDD_DATAFLOW_H_
#define SRC_MINIDD_DATAFLOW_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/engine/stats.h"
#include "src/minidd/collection.h"

namespace graphbolt {

// PageRank expressed as an incremental iterative dataflow with a fixed
// iteration count.
class DdPageRank {
 public:
  DdPageRank(const EdgeList& initial, uint32_t iterations, double damping = 0.85,
             double tolerance = 1e-9);

  // Full (non-incremental) evaluation of every iteration level.
  void InitialCompute();

  // Applies input diffs and incrementally updates every level.
  void ApplyUpdates(const MutationBatch& batch);

  // Final ranks (last iteration level).
  const std::unordered_map<VertexId, double>& ranks() const { return levels_.back(); }

  const EngineStats& stats() const { return stats_; }

 private:
  double RankAt(uint32_t level, VertexId v) const;

  // Recomputes the rank of `v` at `level` by joining its in-tuples with the
  // previous level's arrangement.
  double JoinAndReduce(uint32_t level, VertexId v, uint64_t* tuples);

  EdgeArrangement edges_;
  uint32_t iterations_;
  double damping_;
  double tolerance_;
  // levels_[i] = rank arrangement after iteration i (levels_[0] = initial).
  std::vector<std::unordered_map<VertexId, double>> levels_;
  EngineStats stats_;
};

// Single-source shortest paths as an incremental iterative dataflow run to
// fixpoint (levels are Bellman–Ford rounds).
class DdSssp {
 public:
  DdSssp(const EdgeList& initial, VertexId source, uint32_t max_rounds = 512);

  void InitialCompute();
  void ApplyUpdates(const MutationBatch& batch);

  const std::unordered_map<VertexId, double>& distances() const { return levels_.back(); }
  const EngineStats& stats() const { return stats_; }

 private:
  double DistAt(uint32_t level, VertexId v) const;
  double JoinAndReduce(uint32_t level, VertexId v, uint64_t* tuples);
  std::unordered_set<VertexId> ProcessLevel(uint32_t level,
                                            const std::unordered_set<VertexId>& affected,
                                            uint64_t* tuples);

  EdgeArrangement edges_;
  VertexId source_;
  uint32_t max_rounds_;
  std::vector<std::unordered_map<VertexId, double>> levels_;
  EngineStats stats_;
};

}  // namespace graphbolt

#endif  // SRC_MINIDD_DATAFLOW_H_
