#include "src/minidd/collection.h"

#include <algorithm>

namespace graphbolt {

namespace {
const std::vector<std::pair<VertexId, Weight>>& EmptyTuples() {
  static const std::vector<std::pair<VertexId, Weight>> empty;
  return empty;
}
}  // namespace

EdgeArrangement::EdgeArrangement(const EdgeList& edges) {
  for (const Edge& e : edges.edges()) {
    by_src_[e.src].emplace_back(e.dst, e.weight);
    by_dst_[e.dst].emplace_back(e.src, e.weight);
    max_vertex_ = std::max({max_vertex_, e.src, e.dst});
    ++num_tuples_;
  }
  if (edges.num_vertices() > 0) {
    max_vertex_ = std::max(max_vertex_, edges.num_vertices() - 1);
  }
}

std::vector<VertexId> EdgeArrangement::ApplyDiffs(const std::vector<EdgeDiff>& diffs) {
  std::vector<VertexId> touched_keys;
  for (const EdgeDiff& diff : diffs) {
    const Edge& e = diff.record;
    max_vertex_ = std::max({max_vertex_, e.src, e.dst});
    if (diff.multiplicity > 0) {
      // Insert unless already present (the graph is simple).
      auto& out = by_src_[e.src];
      const bool present = std::any_of(out.begin(), out.end(),
                                       [&e](const auto& t) { return t.first == e.dst; });
      if (present) {
        continue;
      }
      out.emplace_back(e.dst, e.weight);
      by_dst_[e.dst].emplace_back(e.src, e.weight);
      ++num_tuples_;
    } else {
      auto& out = by_src_[e.src];
      auto it = std::find_if(out.begin(), out.end(),
                             [&e](const auto& t) { return t.first == e.dst; });
      if (it == out.end()) {
        continue;
      }
      out.erase(it);
      auto& in = by_dst_[e.dst];
      auto jt = std::find_if(in.begin(), in.end(),
                             [&e](const auto& t) { return t.first == e.src; });
      in.erase(jt);
      --num_tuples_;
    }
    touched_keys.push_back(e.src);
    touched_keys.push_back(e.dst);
  }
  std::sort(touched_keys.begin(), touched_keys.end());
  touched_keys.erase(std::unique(touched_keys.begin(), touched_keys.end()), touched_keys.end());
  return touched_keys;
}

const std::vector<std::pair<VertexId, Weight>>& EdgeArrangement::OutTuples(VertexId src) const {
  auto it = by_src_.find(src);
  return it == by_src_.end() ? EmptyTuples() : it->second;
}

const std::vector<std::pair<VertexId, Weight>>& EdgeArrangement::InTuples(VertexId dst) const {
  auto it = by_dst_.find(dst);
  return it == by_dst_.end() ? EmptyTuples() : it->second;
}

std::vector<EdgeDiff> ToDiffs(const MutationBatch& batch) {
  std::vector<EdgeDiff> diffs;
  diffs.reserve(batch.size());
  for (const EdgeMutation& m : batch) {
    const Edge record{m.src, m.dst, m.weight};
    if (m.kind == MutationKind::kUpdateWeight) {
      // Weight update = retract old tuple, insert new one.
      diffs.push_back({record, -1});
      diffs.push_back({record, +1});
      continue;
    }
    diffs.push_back({record, m.kind == MutationKind::kAddEdge ? 1 : -1});
  }
  return diffs;
}

}  // namespace graphbolt
