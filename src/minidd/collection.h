// Mini differential-dataflow substrate (§5.4A comparator).
//
// Differential Dataflow represents data as keyed multiset collections whose
// evolution is described by diffs, and computes by joining/grouping those
// collections through *generic* operators over hashed arrangements. This
// module provides the corresponding pieces at small scale:
//
//   - Diff<Record>: a record with a +/- multiplicity.
//   - EdgeArrangement: the edge collection arranged (indexed) by src and by
//     dst, updated by diffs.
//
// What makes this a faithful stand-in for the paper's comparison is the
// *cost profile*, not feature completeness: per-tuple hashing, per-level
// hashed state arrangements, and graph-unaware operators — exactly the
// generality overhead §5.4A attributes Differential Dataflow's slowdown to.
#ifndef SRC_MINIDD_COLLECTION_H_
#define SRC_MINIDD_COLLECTION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/graph/mutation.h"
#include "src/graph/types.h"

namespace graphbolt {

// A change to a multiset: +1 inserts the record, -1 removes one occurrence.
template <typename Record>
struct Diff {
  Record record;
  int32_t multiplicity = 1;
};

using EdgeDiff = Diff<Edge>;

// The edge collection arranged by both endpoints. Adjacency is held in
// hashed per-key tuple vectors (not CSR) — the representation a generic
// dataflow system would build.
class EdgeArrangement {
 public:
  EdgeArrangement() = default;
  explicit EdgeArrangement(const EdgeList& edges);

  // Applies a batch of edge diffs. Returns the keys (src and dst vertices)
  // whose arranged tuples changed.
  std::vector<VertexId> ApplyDiffs(const std::vector<EdgeDiff>& diffs);

  const std::vector<std::pair<VertexId, Weight>>& OutTuples(VertexId src) const;
  const std::vector<std::pair<VertexId, Weight>>& InTuples(VertexId dst) const;

  size_t OutDegree(VertexId src) const { return OutTuples(src).size(); }

  size_t num_tuples() const { return num_tuples_; }
  VertexId max_vertex() const { return max_vertex_; }

 private:
  std::unordered_map<VertexId, std::vector<std::pair<VertexId, Weight>>> by_src_;
  std::unordered_map<VertexId, std::vector<std::pair<VertexId, Weight>>> by_dst_;
  size_t num_tuples_ = 0;
  VertexId max_vertex_ = 0;
};

// Converts mutation batches into edge diffs (the input-stream encoding).
std::vector<EdgeDiff> ToDiffs(const MutationBatch& batch);

}  // namespace graphbolt

#endif  // SRC_MINIDD_COLLECTION_H_
