// Adaptive sizing of the background-compaction budget.
//
// The drivers run SlackCsr maintenance steps in the idle windows between
// batches, bounded by an edge budget so a step never adds unbounded latency
// in front of a queued batch. A static budget is either too timid (slack
// piles up under a slow trickle with long idle gaps) or too aggressive
// (a tick eats into the next batch's latency on a saturated stream).
//
// MaintenanceBudget derives the budget from two observed signals:
//
//   idle  EWMA of the worker's idle-window length — the time a queue poll
//         actually waited before coming back empty;
//   cost  EWMA of the per-edge maintenance cost, measured across steps
//         that copied at least one edge.
//
// Next() sizes a tick to fill about half the typical idle window at the
// observed per-edge cost, clamped to [min(configured, 4096), 2^22] edges.
// Until both signals have data it returns the configured static budget, so
// a driver's first ticks behave exactly as before.
#ifndef SRC_DRIVER_MAINTENANCE_BUDGET_H_
#define SRC_DRIVER_MAINTENANCE_BUDGET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace graphbolt {

class MaintenanceBudget {
 public:
  explicit MaintenanceBudget(size_t configured) : configured_(configured) {}

  // The worker waited `seconds` on an empty queue before its poll expired.
  void RecordIdle(double seconds) {
    if (seconds <= 0.0) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    idle_ewma_ = idle_ewma_ == 0.0 ? seconds
                                   : kAlpha * seconds + (1.0 - kAlpha) * idle_ewma_;
  }

  // A maintenance step copied `edges` edges in `seconds` wall-clock. Steps
  // that found no compaction work (edges == 0) carry no cost signal.
  void RecordStep(uint64_t edges, double seconds) {
    if (edges == 0 || seconds <= 0.0) {
      return;
    }
    const double per_edge = seconds / static_cast<double>(edges);
    std::lock_guard<std::mutex> lock(mu_);
    cost_ewma_ = cost_ewma_ == 0.0 ? per_edge
                                   : kAlpha * per_edge + (1.0 - kAlpha) * cost_ewma_;
  }

  // The edge budget for the next maintenance step.
  size_t Next() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (idle_ewma_ == 0.0 || cost_ewma_ == 0.0) {
      return configured_;  // no measurements yet: static behavior
    }
    const double edges = idle_ewma_ * kIdleFraction / cost_ewma_;
    const double floor = static_cast<double>(std::min(configured_, kFloor));
    return static_cast<size_t>(std::clamp(edges, floor, static_cast<double>(kCap)));
  }

 private:
  static constexpr double kAlpha = 0.2;         // EWMA smoothing factor
  static constexpr double kIdleFraction = 0.5;  // fill half the idle window
  static constexpr size_t kFloor = 4096;        // never starve maintenance
  static constexpr size_t kCap = size_t{1} << 22;  // bound a single tick

  const size_t configured_;
  mutable std::mutex mu_;
  double idle_ewma_ = 0.0;
  double cost_ewma_ = 0.0;
};

}  // namespace graphbolt

#endif  // SRC_DRIVER_MAINTENANCE_BUDGET_H_
