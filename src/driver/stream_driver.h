// StreamDriver: the pipelined ingestion front-end that turns a batch engine
// into a streaming service.
//
// The engines in this repository are synchronous: callers hand-build a
// MutationBatch and block on ApplyMutations. The driver decouples the three
// phases so they overlap (the GraphSketchDriver / GutteringSystem /
// WorkerThreadGroup split of GraphZeppelin, adapted to one global BSP
// engine):
//
//   producers ──Ingest──► GutterBuffer ──flush──► BoundedQueue ──► worker
//   (any threads)         (batch by size           (backpressure)   thread
//                          or staleness)                            applies
//                                                                   batches
//
// - Any number of producer threads Ingest() individual edge mutations; the
//   gutter absorbs them and flushes a batch when it reaches
//   `Options::batch_size` or has been sitting for
//   `Options::flush_interval_seconds`.
// - Flushed batches travel through a bounded queue to a single background
//   worker that calls the engine's ApplyMutations. The bound is the
//   backpressure mechanism: when refinement falls behind ingestion,
//   producers block inside Ingest (or batches are shed, under
//   OverflowPolicy::kDropNewest), so memory stays bounded.
// - PrepQuery() is the query barrier: it flushes the gutter, waits until
//   every flushed batch has been applied, and returns — after which
//   values() is an exact BSP snapshot (what a from-scratch run on the
//   current graph would produce). When nothing is buffered or in flight the
//   barrier is a cached-query fast path: one mutex acquisition, no waiting.
// - Stop() (also the destructor) drains: ingestion closes, the gutter's
//   remainder is flushed, the worker applies everything queued and joins.
//   Mutations ingested after Stop are counted dropped, never lost silently.
//
// Ordering semantics: mutations from one producer thread are applied in
// their ingest order. Mutations racing on different producers have no
// defined global order — whole batches may interleave — which is
// indistinguishable from some legal arrival order of those producers.
//
// The engine is never accessed concurrently: the worker serializes every
// ApplyMutations, and the query paths synchronize with it. QuerySnapshot()
// is safe at any time from any thread; values() returns a reference into
// the engine and is meant for quiescent callers (after PrepQuery returns
// and while no concurrent producer can trigger a flush, e.g. single-
// producer loops or after Stop).
#ifndef SRC_DRIVER_STREAM_DRIVER_H_
#define SRC_DRIVER_STREAM_DRIVER_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/streaming_engine.h"
#include "src/driver/gutter_buffer.h"
#include "src/engine/stats.h"
#include "src/graph/mutation.h"
#include "src/parallel/bounded_queue.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

template <StreamingEngine Engine>
class StreamDriver {
 public:
  using Value = EngineValueT<Engine>;

  // What to do with a flushed batch when the pending queue is full.
  enum class OverflowPolicy {
    kBlock,       // block the flushing producer (lossless backpressure)
    kDropNewest,  // shed the batch, counting stats().mutations_dropped
  };

  struct Options {
    // Gutter flush threshold: mutations per batch handed to the engine.
    size_t batch_size = 1024;
    // A non-full gutter flushes once its oldest mutation is this stale.
    double flush_interval_seconds = 0.05;
    // Capacity of the flushed-batch queue; the backpressure bound.
    size_t max_pending_batches = 4;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    // Keep only the last mutation per (src, dst) within a flush — exactly
    // the mutations MutableGraph::NormalizeBatch would honor anyway.
    bool coalesce = true;
  };

  // The engine must outlive the driver and already hold the initial
  // snapshot; run engine->InitialCompute() before ingesting.
  explicit StreamDriver(Engine* engine, Options options = {})
      : engine_(engine), options_(options), queue_(options.max_pending_batches) {
    GB_CHECK(options_.batch_size >= 1) << "batch_size must be >= 1";
    worker_ = std::thread([this] { WorkerLoop(); });
  }

  ~StreamDriver() { Stop(); }

  StreamDriver(const StreamDriver&) = delete;
  StreamDriver& operator=(const StreamDriver&) = delete;

  // Thread-safe. Blocks only when a flush hits a full queue under kBlock.
  // Returns false (and counts the mutation dropped) after Stop().
  bool Ingest(const EdgeMutation& mutation) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_) {
      ++stats_.mutations_dropped;
      return false;
    }
    gutter_.Add(mutation);
    ++stats_.mutations_enqueued;
    if (gutter_.size() >= options_.batch_size) {
      FlushLocked(lock);
    }
    return true;
  }

  // Ingests a pre-built batch mutation by mutation (flush boundaries still
  // follow Options::batch_size). Returns how many were accepted.
  size_t IngestBatch(const MutationBatch& batch) {
    std::unique_lock<std::mutex> lock(mu_);
    size_t accepted = 0;
    for (const EdgeMutation& mutation : batch) {
      if (!accepting_) {  // re-checked: FlushLocked releases the lock
        stats_.mutations_dropped += batch.size() - accepted;
        break;
      }
      gutter_.Add(mutation);
      ++stats_.mutations_enqueued;
      ++accepted;
      if (gutter_.size() >= options_.batch_size) {
        FlushLocked(lock);
      }
    }
    return accepted;
  }

  // Hands the gutter's current contents (a partial batch) to the worker.
  void Flush() {
    std::unique_lock<std::mutex> lock(mu_);
    FlushLocked(lock);
  }

  // Query barrier: flush + drain. On return every mutation flushed before
  // the call has been applied, so the engine holds an exact BSP snapshot.
  // Returns false when the fast path hit (nothing was buffered or in
  // flight — the previous snapshot is still current).
  bool PrepQuery() {
    std::unique_lock<std::mutex> lock(mu_);
    if (gutter_.empty() && in_flight_ == 0) {
      return false;  // cached-query fast path
    }
    FlushLocked(lock);
    drained_cv_.wait(lock, [&] { return in_flight_ == 0; });
    return true;
  }

  // Barrier + reference to the engine's values. The reference is an exact
  // BSP snapshot at return; it stays valid but may be rewritten once
  // another producer triggers a flush — see the header comment.
  const std::vector<Value>& values() {
    PrepQuery();
    return engine_->values();
  }

  // Barrier + copy, safe under concurrent ingestion from other threads.
  std::vector<Value> QuerySnapshot() {
    PrepQuery();
    std::lock_guard<std::mutex> engine_lock(engine_mu_);
    return engine_->values();
  }

  // Cumulative driver statistics (see stats.h: engine fields are summed
  // over applied batches; driver fields count since construction).
  EngineStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  // Mutations currently buffered in the gutter (not yet flushed).
  size_t pending_mutations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return gutter_.size();
  }

  // Drains and shuts down: stops accepting, flushes the gutter remainder,
  // waits for the worker to apply everything queued, joins it. Idempotent;
  // called by the destructor.
  void Stop() {
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopped_) {
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      accepting_ = false;
      FlushLocked(lock);
    }
    queue_.Close();
    worker_.join();
    stopped_ = true;
  }

 private:
  struct TimedBatch {
    MutationBatch batch;
    Timer since_flush;  // epoch set at flush; read when the apply finishes
  };

  // Takes the gutter as a batch and moves it toward the worker. Caller
  // holds `lock`; the queue handoff happens unlocked so a blocked push
  // stalls only the flushing producer, never the worker's bookkeeping.
  // in_flight_ covers the unlocked window, keeping the batch visible to
  // PrepQuery and to the worker's stale-flush check throughout.
  void FlushLocked(std::unique_lock<std::mutex>& lock) {
    if (gutter_.empty()) {
      return;
    }
    TimedBatch item;
    item.batch = gutter_.Take(options_.coalesce, &stats_.mutations_coalesced);
    item.since_flush.Reset();
    const size_t mutations = item.batch.size();
    ++in_flight_;
    lock.unlock();
    bool pushed = false;
    double waited = 0.0;
    if (options_.overflow == OverflowPolicy::kDropNewest) {
      pushed = queue_.TryPush(std::move(item));
    } else if (!queue_.TryPush(std::move(item))) {
      Timer wait;  // full: this block is the backpressure producers feel
      pushed = queue_.Push(std::move(item));
      waited = wait.Seconds();
    } else {
      pushed = true;
    }
    lock.lock();
    stats_.queue_wait_seconds += waited;
    if (!pushed) {  // shed (kDropNewest) or interrupted by shutdown
      stats_.mutations_dropped += mutations;
      if (--in_flight_ == 0) {
        drained_cv_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    const auto poll = std::chrono::duration<double>(options_.flush_interval_seconds);
    for (;;) {
      std::optional<TimedBatch> item = queue_.PopFor(poll);
      if (item.has_value()) {
        ApplyOne(std::move(*item));
        continue;
      }
      if (queue_.closed()) {
        if (queue_.Empty()) {
          break;
        }
        continue;
      }
      // Poll timeout with no pending work anywhere: flush a stale gutter
      // and apply it directly. Never through the queue — the worker must
      // not block behind itself — and only when in_flight_ == 0, so the
      // gutter's contents are strictly newer than anything already formed
      // and ordering is preserved.
      std::unique_lock<std::mutex> lock(mu_);
      if (in_flight_ == 0 && !gutter_.empty() &&
          gutter_.AgeSeconds() >= options_.flush_interval_seconds) {
        TimedBatch stale;
        stale.batch = gutter_.Take(options_.coalesce, &stats_.mutations_coalesced);
        stale.since_flush.Reset();
        ++in_flight_;
        lock.unlock();
        ApplyOne(std::move(stale));
      }
    }
  }

  void ApplyOne(TimedBatch item) {
    {
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      engine_->ApplyMutations(item.batch);
    }
    const EngineStats& applied = engine_->stats();  // worker is the sole engine writer
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches_applied;
    stats_.seconds += applied.seconds;
    stats_.mutation_seconds += applied.mutation_seconds;
    stats_.edges_processed += applied.edges_processed;
    stats_.iterations += applied.iterations;
    stats_.flush_latency_seconds += item.since_flush.Seconds();
    if (--in_flight_ == 0) {
      drained_cv_.notify_all();
    }
  }

  Engine* engine_;
  Options options_;

  mutable std::mutex mu_;  // guards gutter_, stats_, in_flight_, accepting_
  std::condition_variable drained_cv_;
  GutterBuffer gutter_;
  EngineStats stats_;
  // Batches taken from the gutter but not yet applied (queued, mid-push,
  // or being applied). PrepQuery waits for this to reach zero.
  size_t in_flight_ = 0;
  bool accepting_ = true;

  std::mutex engine_mu_;  // held while the engine is applied or snapshotted
  BoundedQueue<TimedBatch> queue_;
  std::thread worker_;

  std::mutex stop_mu_;  // serializes Stop callers; guards stopped_
  bool stopped_ = false;
};

}  // namespace graphbolt

#endif  // SRC_DRIVER_STREAM_DRIVER_H_
