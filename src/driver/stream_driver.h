// StreamDriver: the pipelined ingestion front-end that turns a batch engine
// into a streaming service.
//
// The engines in this repository are synchronous: callers hand-build a
// MutationBatch and block on ApplyMutations. The driver decouples the three
// phases so they overlap (the GraphSketchDriver / GutteringSystem /
// WorkerThreadGroup split of GraphZeppelin, adapted to one global BSP
// engine):
//
//   producers ──Ingest──► GutterBuffer ──flush──► BoundedQueue ──► worker
//   (any threads)         (batch by size           (backpressure)   thread
//                          or staleness)                            applies
//                                                                   batches
//
// - Any number of producer threads Ingest() individual edge mutations; the
//   gutter absorbs them and flushes a batch when it reaches
//   `Options::batch_size` or has been sitting for
//   `Options::flush_interval_seconds`.
// - Flushed batches travel through a bounded queue to a single background
//   worker that calls the engine's ApplyMutations. The bound is the
//   backpressure mechanism: when refinement falls behind ingestion,
//   producers block inside Ingest (or batches are shed, under
//   OverflowPolicy::kDropNewest / kShedToWal), so memory stays bounded.
// - PrepQuery() is the query barrier: it flushes the gutter, waits until
//   every flushed batch has been applied (and replays any shed batches),
//   and returns — after which values() is an exact BSP snapshot (what a
//   from-scratch run on the current graph would produce). When nothing is
//   buffered or in flight the barrier is a cached-query fast path: one
//   mutex acquisition, no waiting.
// - Stop() (also the destructor) drains: ingestion closes, the gutter's
//   remainder is flushed, the worker applies everything queued and joins.
//   Mutations ingested after Stop are counted dropped, never lost silently.
//
// Fault tolerance (src/fault/): attach a Checkpointer via Options and the
// driver journals every batch to a write-ahead log immediately before
// applying it (under the engine mutex, so WAL order == apply order by
// construction) and snapshots full engine state at the checkpointer's
// cadence. After a worker crash — detectable via healthy() — Recover()
// restores the newest valid checkpoint, replays the WAL tail and any shed
// batches, and restarts the pipeline; with a single producer the restored
// values are bitwise identical to a fault-free run. A WAL append that fails
// past its retry budget forces an immediate checkpoint, which supersedes
// the lost record. A crashed worker closes the queue, so producers shed to
// the durable side log (or drop, under kDropNewest) instead of blocking
// forever behind a dead consumer.
//
// Ordering semantics: mutations from one producer thread are applied in
// their ingest order. Mutations racing on different producers have no
// defined global order — whole batches may interleave — which is
// indistinguishable from some legal arrival order of those producers.
// Shed batches additionally lose their place in the stream: they re-enter
// at the next query barrier or recovery, after batches flushed later.
//
// The engine is never accessed concurrently: the worker serializes every
// ApplyMutations, and the query paths synchronize with it. QuerySnapshot()
// is safe at any time from any thread; values() returns a reference into
// the engine and is meant for quiescent callers (after PrepQuery returns
// and while no concurrent producer can trigger a flush, e.g. single-
// producer loops or after Stop).
#ifndef SRC_DRIVER_STREAM_DRIVER_H_
#define SRC_DRIVER_STREAM_DRIVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/streaming_engine.h"
#include "src/graph/mutable_graph.h"
#include "src/driver/gutter_buffer.h"
#include "src/engine/stats.h"
#include "src/fault/checkpoint.h"
#include "src/fault/fault_injector.h"
#include "src/graph/mutation.h"
#include "src/parallel/bounded_queue.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

// The GRAPHBOLT_BG_COMPACTION=1 default for
// StreamDriver::Options::background_compaction.
inline bool DefaultBackgroundCompaction() {
  const char* env = std::getenv("GRAPHBOLT_BG_COMPACTION");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

template <StreamingEngine Engine>
class StreamDriver {
 public:
  using Value = EngineValueT<Engine>;

  // What to do with a flushed batch when the pending queue is full.
  enum class OverflowPolicy {
    kBlock,       // block the flushing producer (lossless backpressure)
    kDropNewest,  // shed the batch, counting stats().mutations_dropped
    kShedToWal,   // park the batch in the checkpointer's durable shed log;
                  // it re-enters at the next PrepQuery barrier or recovery
  };

  struct Options {
    // Gutter flush threshold: mutations per batch handed to the engine.
    size_t batch_size = 1024;
    // A non-full gutter flushes once its oldest mutation is this stale.
    double flush_interval_seconds = 0.05;
    // Capacity of the flushed-batch queue; the backpressure bound.
    size_t max_pending_batches = 4;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    // Keep only the last mutation per (src, dst) within a flush — exactly
    // the mutations MutableGraph::NormalizeBatch would honor anyway.
    bool coalesce = true;
    // Durability: when set, every applied batch is journaled and engine
    // state is checkpointed at the checkpointer's cadence; Recover()
    // becomes available. Not owned; must outlive the driver.
    Checkpointer<Engine>* checkpointer = nullptr;
    // Test-only deterministic fault injection (no-op unless compiled with
    // GRAPHBOLT_FAULT_INJECTION=1). Not owned.
    FaultInjector* fault_injector = nullptr;
    // Background SlackCsr compaction: the worker runs graph maintenance
    // steps in the windows between batches (under the engine mutex), so
    // ApplyBatch never pays a synchronous compaction pass — see
    // slack_csr.h. Requires a GraphMaintainableEngine; ignored (with a
    // warning) otherwise. Defaults to the GRAPHBOLT_BG_COMPACTION
    // environment variable ("1" enables).
    bool background_compaction = DefaultBackgroundCompaction();
    // Edge budget per maintenance step, per adjacency view. Bounds the
    // latency a step can add in front of a queued batch.
    size_t maintenance_budget_edges = 1u << 16;
  };

  // The engine must outlive the driver and already hold the initial
  // snapshot; run engine->InitialCompute() before ingesting (and
  // CheckpointNow() after it, so a crash before the first cadence
  // checkpoint still has a baseline to recover from).
  explicit StreamDriver(Engine* engine, Options options = {})
      : engine_(engine),
        options_(options),
        queue_(options.max_pending_batches),
        checkpointer_(options.checkpointer),
        injector_(options.fault_injector) {
    GB_CHECK(options_.batch_size >= 1) << "batch_size must be >= 1";
    GB_CHECK(options_.overflow != OverflowPolicy::kShedToWal || checkpointer_ != nullptr)
        << "OverflowPolicy::kShedToWal requires a Checkpointer";
    if (options_.background_compaction) {
      if constexpr (GraphMaintainableEngine<Engine>) {
        engine_->mutable_graph()->SetCompactionMode(
            SlackCsr::CompactionMode::kBackground);
      } else {
        GB_LOG(kWarning) << "background_compaction requested but the engine "
                            "does not expose its graph; staying synchronous";
        options_.background_compaction = false;
      }
    }
    queue_.ArmFaultInjector(injector_);
    worker_ = std::thread([this] { WorkerLoop(); });
  }

  ~StreamDriver() { Stop(); }

  StreamDriver(const StreamDriver&) = delete;
  StreamDriver& operator=(const StreamDriver&) = delete;

  // Thread-safe. Blocks only when a flush hits a full queue under kBlock.
  // Returns false (and counts the mutation dropped) after Stop().
  bool Ingest(const EdgeMutation& mutation) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_) {
      ++stats_.mutations_dropped;
      return false;
    }
    gutter_.Add(mutation);
    ++stats_.mutations_enqueued;
    if (gutter_.size() >= options_.batch_size) {
      FlushLocked(lock);
    }
    return true;
  }

  // Ingests a pre-built batch mutation by mutation (flush boundaries still
  // follow Options::batch_size). Returns how many were accepted.
  size_t IngestBatch(const MutationBatch& batch) {
    std::unique_lock<std::mutex> lock(mu_);
    size_t accepted = 0;
    for (const EdgeMutation& mutation : batch) {
      if (!accepting_) {  // re-checked: FlushLocked releases the lock
        stats_.mutations_dropped += batch.size() - accepted;
        break;
      }
      gutter_.Add(mutation);
      ++stats_.mutations_enqueued;
      ++accepted;
      if (gutter_.size() >= options_.batch_size) {
        FlushLocked(lock);
      }
    }
    return accepted;
  }

  // Hands the gutter's current contents (a partial batch) to the worker.
  void Flush() {
    std::unique_lock<std::mutex> lock(mu_);
    FlushLocked(lock);
  }

  // Query barrier: flush + drain (+ shed replay). On return every mutation
  // flushed before the call has been applied, so the engine holds an exact
  // BSP snapshot. Returns false when the fast path hit (nothing was
  // buffered, in flight, or shed — the previous snapshot is still current).
  // On a crashed driver the barrier returns immediately with a stale
  // snapshot; check healthy() and call Recover().
  bool PrepQuery() {
    std::unique_lock<std::mutex> lock(mu_);
    if (gutter_.empty() && in_flight_ == 0 && shed_batches_ == 0) {
      return false;  // cached-query fast path
    }
    for (;;) {
      if (worker_dead_) {
        GB_LOG(kWarning) << "PrepQuery on a crashed driver: snapshot is stale; Recover() first";
        return true;
      }
      FlushLocked(lock);
      drained_cv_.wait(lock, [&] { return in_flight_ == 0 || worker_dead_; });
      if (worker_dead_) {
        GB_LOG(kWarning) << "worker died during the query barrier; Recover() first";
        return true;
      }
      if (shed_batches_ == 0) {
        return true;
      }
      lock.unlock();
      ReplayShed();
      lock.lock();
    }
  }

  // Barrier + reference to the engine's values. The reference is an exact
  // BSP snapshot at return; it stays valid but may be rewritten once
  // another producer triggers a flush — see the header comment.
  const std::vector<Value>& values() {
    PrepQuery();
    return engine_->values();
  }

  // Barrier + copy, safe under concurrent ingestion from other threads.
  std::vector<Value> QuerySnapshot() {
    PrepQuery();
    std::lock_guard<std::mutex> engine_lock(engine_mu_);
    return engine_->values();
  }

  // Cumulative driver statistics (see stats.h: engine fields are summed
  // over applied batches; driver fields count since construction; the
  // durability block merges in the checkpointer's counters).
  EngineStats stats() const {
    EngineStats snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot = stats_;
    }
    if (checkpointer_ != nullptr) {
      checkpointer_->MergeStats(&snapshot);
    }
    return snapshot;
  }

  // Mutations currently buffered in the gutter (not yet flushed).
  size_t pending_mutations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return gutter_.size();
  }

  // False once the worker thread has been killed by fault injection (the
  // stand-in for a real worker crash). The pipeline stops applying; call
  // Recover() to restore and restart.
  bool healthy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !worker_dead_;
  }

  // Writes a checkpoint of the current engine state immediately — the
  // baseline right after InitialCompute, or an explicit save point.
  bool CheckpointNow() {
    if constexpr (CheckpointableEngine<Engine>) {
      if (checkpointer_ == nullptr) {
        return false;
      }
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      return checkpointer_->WriteCheckpoint(applied_seq_);
    } else {
      return false;
    }
  }

  // Crash recovery: restores the newest valid checkpoint from disk into the
  // graph and engine, replays the WAL tail past it, applies batches that
  // were still queued at the crash (process memory, not crash casualties),
  // re-applies shed batches, and restarts the worker. Queued-then-shed is
  // the stream order: shedding only starts once the queue is full or
  // closed, so anything queued predates anything shed. Works both on a
  // live driver whose worker died and as cold-start recovery on a freshly
  // constructed graph/engine/driver (no InitialCompute needed). Always
  // restores from disk — in-memory engine state is discarded — so the
  // persisted path is the one being trusted. Returns false (pipeline
  // restarted, engine state left as-is) when no valid checkpoint exists.
  bool Recover() {
    if constexpr (!CheckpointableEngine<Engine>) {
      GB_LOG(kError) << "Recover() requires a CheckpointableEngine";
      return false;
    } else {
      std::lock_guard<std::mutex> stop_lock(stop_mu_);
      if (checkpointer_ == nullptr) {
        GB_LOG(kError) << "Recover() without a Checkpointer";
        return false;
      }
      Timer wall;
      {
        std::lock_guard<std::mutex> lock(mu_);
        accepting_ = false;
      }
      queue_.Close();
      if (worker_.joinable()) {
        worker_.join();
      }
      std::vector<TimedBatch> preserved;
      while (std::optional<TimedBatch> leftover = queue_.Pop()) {
        preserved.push_back(std::move(*leftover));
      }
      bool restored = false;
      bool applied_preserved = false;
      uint64_t replayed_wal = 0;
      uint64_t replayed_shed = 0;
      {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        uint64_t ckpt_seq = 0;
        restored = checkpointer_->RestoreLatest(&ckpt_seq);
        if (restored) {
          applied_seq_ = ckpt_seq;
          // The tail was journaled with its final sequence numbers already:
          // replay applies without re-journaling or cadence checkpoints.
          replayed_wal = checkpointer_->ReplayWal(
              ckpt_seq, [&](uint64_t seq, MutationBatch&& batch) {
                engine_->ApplyMutations(batch);
                applied_seq_ = seq;
              });
        }
        // Restored state — or live in-memory state left at a batch boundary
        // by the kill — can absorb the not-yet-applied remainder. A cold
        // start without any valid checkpoint cannot (the engine was never
        // initialized), so the shed log stays parked for a later attempt.
        if (restored || applied_seq_ > 0) {
          for (TimedBatch& item : preserved) {
            ApplyJournaled(item.batch);
          }
          applied_preserved = true;
          replayed_shed = checkpointer_->DrainShed(
              [&](MutationBatch&& batch) { ApplyJournaled(batch); });
        }
        if (restored) {
          // Fresh checkpoint at the recovered frontier: the next crash
          // recovers from here, and the superseded WAL prefix can compact.
          checkpointer_->WriteCheckpoint(applied_seq_);
        }
      }
      queue_.Reset();
      {
        std::lock_guard<std::mutex> lock(mu_);
        worker_dead_ = false;
        accepting_ = true;
        shed_batches_ = 0;
        if (applied_preserved) {
          // First-time applies (queued + shed) count as applied; WAL-tail
          // re-applications only as replayed.
          stats_.batches_applied += preserved.size() + replayed_shed;
        } else {
          for (const TimedBatch& item : preserved) {
            stats_.mutations_dropped += item.batch.size();
          }
        }
        in_flight_ -= preserved.size();
        if (in_flight_ == 0) {
          drained_cv_.notify_all();
        }
        if (restored) {
          ++stats_.recoveries;
          stats_.batches_replayed += replayed_wal + replayed_shed;
          stats_.shed_batches_replayed += replayed_shed;
        }
      }
      worker_ = std::thread([this] { WorkerLoop(); });
      stopped_ = false;
      if (restored) {
        GB_LOG(kInfo) << "recovered to batch " << applied_seq_ << " (" << replayed_wal
                      << " WAL, " << preserved.size() << " queued, " << replayed_shed
                      << " shed batches replayed) in " << wall.Millis() << " ms";
      }
      return restored;
    }
  }

  // Drains and shuts down: stops accepting, flushes the gutter remainder,
  // waits for the worker to apply everything queued, joins it, and replays
  // any shed batches. Idempotent; called by the destructor. After a worker
  // crash the un-applied queue leftovers are parked in the durable shed log
  // (recoverable by a later cold-start Recover) or counted dropped.
  void Stop() {
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopped_) {
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      accepting_ = false;
      FlushLocked(lock);
    }
    queue_.Close();
    worker_.join();
    bool dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dead = worker_dead_;
    }
    while (std::optional<TimedBatch> leftover = queue_.Pop()) {
      const bool shed = checkpointer_ != nullptr && checkpointer_->AppendShed(leftover->batch);
      std::lock_guard<std::mutex> lock(mu_);
      if (shed) {
        stats_.mutations_shed_to_wal += leftover->batch.size();
        ++shed_batches_;
      } else {
        stats_.mutations_dropped += leftover->batch.size();
      }
      if (--in_flight_ == 0) {
        drained_cv_.notify_all();
      }
    }
    if (!dead) {
      bool have_shed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        have_shed = shed_batches_ > 0;
      }
      if (have_shed) {
        ReplayShed();  // engine is idle: the worker has joined
      }
    }
    stopped_ = true;
  }

 private:
  struct TimedBatch {
    MutationBatch batch;
    Timer since_flush;  // epoch set at flush; read when the apply finishes
  };

  // Takes the gutter as a batch and moves it toward the worker. Caller
  // holds `lock`; the queue handoff happens unlocked so a blocked push
  // stalls only the flushing producer, never the worker's bookkeeping.
  // in_flight_ covers the unlocked window, keeping the batch visible to
  // PrepQuery and to the worker's stale-flush check throughout.
  //
  // A push can fail three ways: full under kDropNewest (drop), full under
  // kShedToWal (shed), or queue closed — shutdown or a crashed worker —
  // where the batch sheds durably when a checkpointer is attached and
  // drops otherwise.
  void FlushLocked(std::unique_lock<std::mutex>& lock) {
    if (gutter_.empty()) {
      return;
    }
    TimedBatch item;
    item.batch = gutter_.Take(options_.coalesce, &stats_.mutations_coalesced);
    item.since_flush.Reset();
    const size_t mutations = item.batch.size();
    ++in_flight_;
    lock.unlock();
    bool pushed = false;
    double waited = 0.0;
    if (queue_.TryPush(std::move(item))) {
      pushed = true;
    } else if (options_.overflow == OverflowPolicy::kBlock) {
      Timer wait;  // full: this block is the backpressure producers feel
      pushed = queue_.Push(std::move(item));
      waited = wait.Seconds();
    }
    bool shed = false;
    if (!pushed && options_.overflow != OverflowPolicy::kDropNewest &&
        checkpointer_ != nullptr) {
      shed = checkpointer_->AppendShed(item.batch);
    }
    lock.lock();
    stats_.queue_wait_seconds += waited;
    if (!pushed) {
      if (shed) {
        stats_.mutations_shed_to_wal += mutations;
        ++shed_batches_;
      } else {
        stats_.mutations_dropped += mutations;
      }
      if (--in_flight_ == 0) {
        drained_cv_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    const auto poll = std::chrono::duration<double>(options_.flush_interval_seconds);
    for (;;) {
      std::optional<TimedBatch> item = queue_.PopFor(poll);
      if (item.has_value()) {
        ApplyOne(std::move(*item));
        if (WorkerKilled()) {
          return;
        }
        // One maintenance increment per batch keeps compaction overlapped
        // with a saturated stream (the quiescent window between applies).
        MaintenanceTick();
        continue;
      }
      if (queue_.closed()) {
        if (queue_.Empty()) {
          break;
        }
        continue;
      }
      MaintenanceTick();  // idle poll: let a pending rewrite advance
      // Poll timeout with no pending work anywhere: flush a stale gutter
      // and apply it directly. Never through the queue — the worker must
      // not block behind itself — and only when in_flight_ == 0, so the
      // gutter's contents are strictly newer than anything already formed
      // and ordering is preserved.
      std::unique_lock<std::mutex> lock(mu_);
      if (in_flight_ == 0 && !gutter_.empty() &&
          gutter_.AgeSeconds() >= options_.flush_interval_seconds) {
        TimedBatch stale;
        stale.batch = gutter_.Take(options_.coalesce, &stats_.mutations_coalesced);
        stale.since_flush.Reset();
        ++in_flight_;
        lock.unlock();
        ApplyOne(std::move(stale));
        if (WorkerKilled()) {
          return;
        }
      }
    }
  }

  // The kWorkerKill site fires between batches (after an apply completes),
  // so the engine is always left at a batch boundary — a crash never tears
  // a refinement. The queue closes so producers stop blocking behind the
  // dead consumer (their pushes fail over to the shed/drop path); queued
  // batches stay poppable for Recover().
  bool WorkerKilled() {
    if (!GB_FAULT_POINT(injector_, FaultSite::kWorkerKill)) {
      return false;
    }
    queue_.Close();
    std::lock_guard<std::mutex> lock(mu_);
    worker_dead_ = true;
    GB_LOG(kWarning) << "FaultInjector: worker killed after batch "
                     << stats_.batches_applied;
    drained_cv_.notify_all();
    return true;
  }

  void ApplyOne(TimedBatch item) {
    EngineStats applied;
    {
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      ApplyJournaled(item.batch);
      applied = engine_->stats();
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches_applied;
    stats_.seconds += applied.seconds;
    stats_.mutation_seconds += applied.mutation_seconds;
    stats_.edges_processed += applied.edges_processed;
    stats_.iterations += applied.iterations;
    stats_.tasks_forked += applied.tasks_forked;
    stats_.tasks_stolen += applied.tasks_stolen;
    stats_.inline_runs += applied.inline_runs;
    stats_.flush_latency_seconds += item.since_flush.Seconds();
    if (--in_flight_ == 0) {
      drained_cv_.notify_all();
    }
  }

  // One background-compaction increment in the quiescent window between
  // batches. Holding the engine mutex makes this the epoch barrier: no
  // apply or query can observe a half-built shadow, and a completed
  // rewrite flips in under the same lock every reader takes.
  void MaintenanceTick() {
    if constexpr (GraphMaintainableEngine<Engine>) {
      if (!options_.background_compaction) {
        return;
      }
      SlackCsr::CompactionStats compaction;
      {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        MutableGraph* graph = engine_->mutable_graph();
        graph->MaintenanceStep(options_.maintenance_budget_edges);
        compaction = graph->compaction_stats();
      }
      std::lock_guard<std::mutex> lock(mu_);
      // The graph's counters are already cumulative; mirror, don't sum.
      stats_.maintenance_steps = compaction.maintenance_steps;
      stats_.background_compactions = compaction.background_compactions;
      stats_.background_compaction_edges = compaction.background_edges_copied;
      stats_.forced_sync_compactions = compaction.forced_sync_compactions;
    }
  }

  // Every engine apply funnels through here (worker batches, shed replay):
  // assign the next sequence number, journal write-ahead, apply, then
  // checkpoint on cadence. Caller holds engine_mu_.
  void ApplyJournaled(const MutationBatch& batch) {
    ++applied_seq_;
    bool journaled = true;
    if (checkpointer_ != nullptr) {
      journaled = checkpointer_->AppendWal(applied_seq_, batch);
    }
    engine_->ApplyMutations(batch);
    if (checkpointer_ != nullptr) {
      if constexpr (CheckpointableEngine<Engine>) {
        // force: a batch whose WAL record was lost must be captured by a
        // checkpoint before the next crash.
        checkpointer_->MaybeCheckpoint(applied_seq_, /*force=*/!journaled);
      }
    }
  }

  // Applies batches parked in the shed log through the journaled path.
  // shed_replay_mu_ serializes concurrent barriers so a batch is never
  // applied twice; the engine lock orders the replay against the worker.
  void ReplayShed() {
    if (checkpointer_ == nullptr) {
      return;
    }
    std::lock_guard<std::mutex> replay_lock(shed_replay_mu_);
    uint64_t replayed = 0;
    EngineStats summed;
    {
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      replayed = checkpointer_->DrainShed([&](MutationBatch&& batch) {
        ApplyJournaled(batch);
        const EngineStats& applied = engine_->stats();
        summed.seconds += applied.seconds;
        summed.mutation_seconds += applied.mutation_seconds;
        summed.edges_processed += applied.edges_processed;
        summed.iterations += applied.iterations;
        summed.tasks_forked += applied.tasks_forked;
        summed.tasks_stolen += applied.tasks_stolen;
        summed.inline_runs += applied.inline_runs;
      });
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.shed_batches_replayed += replayed;
    stats_.batches_applied += replayed;
    stats_.seconds += summed.seconds;
    stats_.mutation_seconds += summed.mutation_seconds;
    stats_.edges_processed += summed.edges_processed;
    stats_.iterations += summed.iterations;
    stats_.tasks_forked += summed.tasks_forked;
    stats_.tasks_stolen += summed.tasks_stolen;
    stats_.inline_runs += summed.inline_runs;
    shed_batches_ = shed_batches_ >= replayed ? shed_batches_ - replayed : 0;
  }

  Engine* engine_;
  Options options_;

  mutable std::mutex mu_;  // guards gutter_, stats_, in_flight_, accepting_,
                           // worker_dead_, shed_batches_
  std::condition_variable drained_cv_;
  GutterBuffer gutter_;
  EngineStats stats_;
  // Batches taken from the gutter but not yet applied (queued, mid-push,
  // or being applied). PrepQuery waits for this to reach zero.
  size_t in_flight_ = 0;
  bool accepting_ = true;
  bool worker_dead_ = false;
  // Batches currently parked in the checkpointer's shed log.
  size_t shed_batches_ = 0;

  std::mutex engine_mu_;  // held while the engine is applied or snapshotted;
                          // also guards applied_seq_ and the WAL append order
  uint64_t applied_seq_ = 0;
  std::mutex shed_replay_mu_;  // serializes ReplayShed calls

  BoundedQueue<TimedBatch> queue_;
  std::thread worker_;
  Checkpointer<Engine>* checkpointer_;
  FaultInjector* injector_;

  std::mutex stop_mu_;  // serializes Stop/Recover callers; guards stopped_
  bool stopped_ = false;
};

}  // namespace graphbolt

#endif  // SRC_DRIVER_STREAM_DRIVER_H_
