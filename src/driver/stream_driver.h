// StreamDriver: the pipelined ingestion front-end that turns a batch engine
// into a streaming service.
//
// The engines in this repository are synchronous: callers hand-build a
// MutationBatch and block on ApplyMutations. The driver decouples the three
// phases so they overlap (the GraphSketchDriver / GutteringSystem /
// WorkerThreadGroup split of GraphZeppelin, adapted to one global BSP
// engine):
//
//   producers ──Ingest──► GutterBuffer ──flush──► BoundedQueue ──► worker
//   (any threads)         (batch by size           (backpressure)   thread
//                          or staleness)                            applies
//                                                                   batches
//
// - Any number of producer threads Ingest() individual edge mutations; the
//   gutter absorbs them and flushes a batch when it reaches
//   `Options::batch_size` or has been sitting for
//   `Options::flush_interval_seconds`.
// - Flushed batches travel through a bounded queue to a single background
//   worker that calls the engine's ApplyMutations. The bound is the
//   backpressure mechanism: when refinement falls behind ingestion,
//   producers block inside Ingest (or batches are shed, under
//   OverflowPolicy::kDropNewest / kShedToWal), so memory stays bounded.
// - PrepQuery() is the query barrier: it flushes the gutter, waits until
//   every flushed batch has been applied (and replays any shed batches),
//   and returns — after which values() is an exact BSP snapshot (what a
//   from-scratch run on the current graph would produce). When nothing is
//   buffered or in flight the barrier is a cached-query fast path: one
//   mutex acquisition, no waiting.
// - Stop() (also the destructor) drains: ingestion closes, the gutter's
//   remainder is flushed, the worker applies everything queued and joins.
//   Mutations ingested after Stop are counted dropped, never lost silently.
//
// Fault tolerance (src/fault/): attach a Checkpointer via Options and the
// driver journals every batch to a write-ahead log immediately before
// applying it (under the engine mutex, so WAL order == apply order by
// construction) and snapshots full engine state at the checkpointer's
// cadence. After a worker crash — detectable via healthy() — Recover()
// restores the newest valid checkpoint, replays the WAL tail and any shed
// batches, and restarts the pipeline; with a single producer the restored
// values are bitwise identical to a fault-free run. A WAL append that fails
// past its retry budget forces an immediate checkpoint, which supersedes
// the lost record. A crashed worker closes the queue, so producers shed to
// the durable side log (or drop, under kDropNewest) instead of blocking
// forever behind a dead consumer.
//
// Robustness (src/sentinel/): setting Options::quarantine_dir arms
// admission control — every ingested mutation and batch is screened
// (vertex range, NaN/Inf weights, size ceiling, flood heuristics) before
// any driver lock is taken, and rejects are parked bitwise-intact in a
// dead-letter WAL with a reason code; ReplayQuarantine() re-admits them
// after operator fix-up. An admission governor tracks an apply-latency
// EWMA: under the kDegrade overflow policy an overloaded driver coalesces
// in the gutter instead of blocking, and PrepQuery serves the last
// consistent snapshot (degraded() reports the flag) instead of waiting on
// the barrier. kShedOldest evicts the oldest queued batch so the freshest
// data keeps flowing. Options::watchdog_stall_seconds starts a stall
// watchdog that heartbeats every pipeline stage; a hung stage marks the
// driver unhealthy, wakes the barrier waiters, and (with a checkpointer
// attached) drives Recover() automatically.
//
// Ordering semantics: mutations from one producer thread are applied in
// their ingest order. Mutations racing on different producers have no
// defined global order — whole batches may interleave — which is
// indistinguishable from some legal arrival order of those producers.
// Shed batches additionally lose their place in the stream: they re-enter
// at the next query barrier or recovery, after batches flushed later.
//
// The engine is never accessed concurrently: the worker serializes every
// ApplyMutations, and the query paths synchronize with it. QuerySnapshot()
// is safe at any time from any thread; values() returns a reference into
// the engine and is meant for quiescent callers (after PrepQuery returns
// and while no concurrent producer can trigger a flush, e.g. single-
// producer loops or after Stop).
#ifndef SRC_DRIVER_STREAM_DRIVER_H_
#define SRC_DRIVER_STREAM_DRIVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/streaming_engine.h"
#include "src/graph/mutable_graph.h"
#include "src/driver/fast_path.h"
#include "src/driver/gutter_buffer.h"
#include "src/driver/maintenance_budget.h"
#include "src/engine/stats.h"
#include "src/fault/checkpoint.h"
#include "src/fault/fault_injector.h"
#include "src/graph/mutation.h"
#include "src/parallel/bounded_queue.h"
#include "src/parallel/task_arena.h"
#include "src/sentinel/admission.h"
#include "src/sentinel/quarantine.h"
#include "src/sentinel/watchdog.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

// The GRAPHBOLT_BG_COMPACTION=1 default for
// StreamDriver::Options::background_compaction.
inline bool DefaultBackgroundCompaction() {
  const char* env = std::getenv("GRAPHBOLT_BG_COMPACTION");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

// The GRAPHBOLT_FAST_PATH=1 default for StreamDriver::Options::fast_path.
inline bool DefaultFastPath() {
  const char* env = std::getenv("GRAPHBOLT_FAST_PATH");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

// When the drivers may flip an AsyncDeltaEngine into the Maiter-style
// asynchronous delta-accumulative execution mode (INTERNALS §14). Shared
// between StreamDriver::Options and the sharded DriverConfig, so it lives
// at namespace scope like OverflowPolicy.
enum class AsyncModePolicy {
  kOff,          // never: strictly synchronous BSP (the default)
  kDegradeOnly,  // only while the kDegrade governor reports overload;
                 // reconciles back to BSP when pressure clears
  kAuto,         // let the driver decide. Today the only trigger is the
                 // same degrade signal, so kAuto behaves like
                 // kDegradeOnly; it reserves latitude for future
                 // heuristics without an operator-visible rename.
};

// The GRAPHBOLT_ASYNC_MODE default for Options::async_mode / the sharded
// DriverConfig ("off" | "degrade-only" | "auto"; anything else reads off).
inline AsyncModePolicy DefaultAsyncModePolicy() {
  const char* env = std::getenv("GRAPHBOLT_ASYNC_MODE");
  if (env == nullptr) {
    return AsyncModePolicy::kOff;
  }
  const std::string_view value(env);
  if (value == "auto") {
    return AsyncModePolicy::kAuto;
  }
  if (value == "degrade-only") {
    return AsyncModePolicy::kDegradeOnly;
  }
  return AsyncModePolicy::kOff;
}

// What to do with a flushed batch when the pending queue is full. Shared
// between StreamDriver and the sharded driver's DriverConfig
// (src/shard/driver_config.h), so it lives at namespace scope; the nested
// StreamDriver<E>::OverflowPolicy alias keeps existing call sites working.
enum class OverflowPolicy {
  kBlock,       // block the flushing producer (lossless backpressure)
  kDropNewest,  // shed the batch, counting stats().mutations_dropped
  kShedToWal,   // park the batch in the checkpointer's durable shed log;
                // it re-enters at the next PrepQuery barrier or recovery
  kShedOldest,  // evict the *oldest* queued batch (into the shed log when
                // a checkpointer is attached, else dropped) to admit the
                // fresh one: new data beats stale data under overload
  kDegrade,     // never block, never lose: a batch that cannot be queued
                // re-merges into the gutter to be re-coalesced and
                // retried, and PrepQuery serves the last consistent
                // snapshot while the governor reports overload
};

template <StreamingEngine Engine>
class StreamDriver {
 public:
  using Value = EngineValueT<Engine>;

  using OverflowPolicy = ::graphbolt::OverflowPolicy;

  struct Options {
    // Gutter flush threshold: mutations per batch handed to the engine.
    size_t batch_size = 1024;
    // A non-full gutter flushes once its oldest mutation is this stale.
    double flush_interval_seconds = 0.05;
    // Capacity of the flushed-batch queue; the backpressure bound.
    size_t max_pending_batches = 4;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    // Keep only the last mutation per (src, dst) within a flush — exactly
    // the mutations MutableGraph::NormalizeBatch would honor anyway.
    bool coalesce = true;
    // Durability: when set, every applied batch is journaled and engine
    // state is checkpointed at the checkpointer's cadence; Recover()
    // becomes available. Not owned; must outlive the driver.
    Checkpointer<Engine>* checkpointer = nullptr;
    // Test-only deterministic fault injection (no-op unless compiled with
    // GRAPHBOLT_FAULT_INJECTION=1). Not owned.
    FaultInjector* fault_injector = nullptr;
    // Background scrub cadence: every this-many seconds of worker idle
    // time, verify every durability artifact (checkpoint chain, journal,
    // shed log) with the same predicates recovery uses, quarantining
    // corrupt checkpoints and healing torn WAL tails. 0 disables; needs a
    // checkpointer. Runs off the idle poll so it never delays a batch.
    double scrub_interval_seconds = 0.0;
    // Background SlackCsr compaction: the worker runs graph maintenance
    // steps in the windows between batches (under the engine mutex), so
    // ApplyBatch never pays a synchronous compaction pass — see
    // slack_csr.h. Requires a GraphMaintainableEngine; ignored (with a
    // warning) otherwise. Defaults to the GRAPHBOLT_BG_COMPACTION
    // environment variable ("1" enables).
    bool background_compaction = DefaultBackgroundCompaction();
    // Edge budget per maintenance step, per adjacency view. Bounds the
    // latency a step can add in front of a queued batch.
    size_t maintenance_budget_edges = 1u << 16;

    // ----- Sentinel: admission, overload control, stall watchdog ----------
    // Non-empty enables admission control: every ingested mutation and
    // batch is screened against `admission` before any driver lock, and
    // rejects are parked bitwise-intact (with a RejectReason) in a
    // dead-letter WAL under this directory (created if absent). Replay
    // them with ReplayQuarantine() after fix-up.
    std::string quarantine_dir;
    AdmissionLimits admission;
    // Overload-governor thresholds: pressure is pending-queue depth times
    // the apply-latency EWMA (see sentinel/admission.h).
    GovernorOptions governor;
    // Stall watchdog: a pipeline stage continuously busy for this many
    // seconds is declared stalled — healthy() goes false and barrier
    // waiters wake. 0 disables the watchdog thread.
    double watchdog_stall_seconds = 0.0;
    double watchdog_poll_seconds = 0.05;
    // On a detected stall, drive Recover() automatically (needs a
    // checkpointer); otherwise the driver only reports unhealthy.
    bool watchdog_auto_recover = true;

    // ----- Single-update fast path (src/driver/fast_path.h) ---------------
    // Enables IngestFast(): single mutations the engine classifies safe
    // bypass gutter batching and splice in place (journaled, per-vertex
    // claims, no engine lock); unsafe ones escalate into the gutter as a
    // refinement micro-batch. With this false, IngestFast == Ingest.
    bool fast_path = DefaultFastPath();

    // ----- Async delta-accumulative mode (the Maiter tier; INTERNALS §14) --
    // With an AsyncDeltaEngine and OverflowPolicy::kDegrade, kDegradeOnly /
    // kAuto let the driver flip the engine into barrier-free async mode
    // while the governor reports overload: degraded queries then observe
    // continuously-updating, eventually-consistent values whose distance
    // from the true fixed point is bounded by stats().async_residual,
    // instead of a frozen snapshot. Self-clearing: when pressure recedes
    // (or a barrier needs exactness) the driver runs one reconciling
    // barrier that restores bitwise-deterministic BSP state. Defaults to
    // the GRAPHBOLT_ASYNC_MODE environment variable.
    AsyncModePolicy async_mode = DefaultAsyncModePolicy();
    // Vertex budget per async propagation round (0 = unbounded round).
    size_t async_step_budget = size_t{1} << 14;
  };

  // The engine must outlive the driver and already hold the initial
  // snapshot; run engine->InitialCompute() before ingesting (and
  // CheckpointNow() after it, so a crash before the first cadence
  // checkpoint still has a baseline to recover from).
  explicit StreamDriver(Engine* engine, Options options = {})
      : engine_(engine),
        options_(options),
        governor_(options.governor),
        budget_(options.maintenance_budget_edges),
        queue_(options.max_pending_batches),
        checkpointer_(options.checkpointer),
        injector_(options.fault_injector) {
    GB_CHECK(options_.batch_size >= 1) << "batch_size must be >= 1";
    GB_CHECK(options_.overflow != OverflowPolicy::kShedToWal || checkpointer_ != nullptr)
        << "OverflowPolicy::kShedToWal requires a Checkpointer";
    if (options_.background_compaction) {
      if constexpr (GraphMaintainableEngine<Engine>) {
        engine_->mutable_graph()->SetCompactionMode(
            SlackCsr::CompactionMode::kBackground);
      } else {
        GB_LOG(kWarning) << "background_compaction requested but the engine "
                            "does not expose its graph; staying synchronous";
        options_.background_compaction = false;
      }
    }
    if (!options_.quarantine_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options_.quarantine_dir, ec);
      quarantine_ = std::make_unique<Quarantine>(
          options_.quarantine_dir, injector_,
          checkpointer_ != nullptr ? checkpointer_->env() : nullptr);
    }
    queue_.ArmFaultInjector(injector_);
    worker_ = std::thread([this] { WorkerLoop(); });
    if (options_.watchdog_stall_seconds > 0.0) {
      watchdog_.Start({options_.watchdog_poll_seconds, options_.watchdog_stall_seconds},
                      [this](const StallCause& cause) { OnStall(cause); });
    }
  }

  ~StreamDriver() { Stop(); }

  StreamDriver(const StreamDriver&) = delete;
  StreamDriver& operator=(const StreamDriver&) = delete;

  // Thread-safe. Blocks only when a flush hits a full queue under kBlock.
  // Returns false (and counts the mutation dropped) after Stop(), or (with
  // admission control armed) when the mutation fails the screen and is
  // quarantined instead.
  bool Ingest(const EdgeMutation& mutation) {
    if (quarantine_ != nullptr) {
      const AdmissionVerdict verdict = ScreenMutation(mutation, options_.admission);
      if (!verdict.admitted()) {
        QuarantineReject(verdict.reason, MutationBatch{mutation});
        return false;
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_) {
      ++stats_.mutations_dropped;
      return false;
    }
    gutter_.Add(mutation);
    ++stats_.mutations_enqueued;
    if (gutter_.size() >= options_.batch_size) {
      FlushLocked(lock);
    }
    return true;
  }

  // Single-update fast path (Options::fast_path; see src/driver/fast_path.h
  // and INTERNALS §13). Screens the mutation like Ingest, then asks the
  // engine to classify it against its dependency state:
  //
  //   safe    journaled at the next applied sequence number and spliced into
  //           the graph in place — no gutter, no flush, no barrier, and no
  //           engine_mu_: the apply serializes through journal_mu_ (against
  //           batched applies, maintenance, and checkpoints) plus per-vertex
  //           claims, and flips the fast-path epoch around the splice.
  //   unsafe  escalated into the gutter as a refinement micro-batch via the
  //           normal Ingest path (counted fastpath_unsafe_escalated).
  //
  // When the journal mutex is contended (a batched apply or maintenance pass
  // is in flight) the mutation escalates rather than blocking: the fast path
  // never waits on batch-scale work. With fast_path disabled or an engine
  // that cannot classify, this is exactly Ingest. Returns false only when
  // the mutation was rejected (quarantined or not accepting).
  bool IngestFast(const EdgeMutation& mutation) {
    if constexpr (!FastPathEngine<Engine>) {
      return Ingest(mutation);
    } else {
      if (!options_.fast_path) {
        return Ingest(mutation);
      }
      if (quarantine_ != nullptr) {
        const AdmissionVerdict verdict = ScreenMutation(mutation, options_.admission);
        if (!verdict.admitted()) {
          QuarantineReject(verdict.reason, MutationBatch{mutation});
          return false;
        }
      }
      {
        VertexClaims::Guard guard(&claims_, mutation.src, mutation.dst);
        std::unique_lock<std::mutex> journal(journal_mu_, std::try_to_lock);
        // While the async tier is engaged the BSP dependency store is stale,
        // so ClassifyFast cannot reason about it: escalate. Mode flips hold
        // journal_mu_, so a false read here stays false for this splice.
        if (journal.owns_lock() && !async_engaged_.load(std::memory_order_acquire) &&
            engine_->ClassifyFast(mutation).safe) {
          // Admission bookkeeping before the point of no return: once the
          // WAL record lands the mutation is part of the admitted stream.
          {
            std::lock_guard<std::mutex> lock(mu_);
            if (!accepting_) {
              ++stats_.mutations_dropped;
              return false;
            }
            ++stats_.mutations_enqueued;
          }
          ++applied_seq_;
          bool journaled = true;
          if (checkpointer_ != nullptr) {
            journaled = checkpointer_->AppendWal(applied_seq_, MutationBatch{mutation});
          }
          epoch_.BeginApply();
          const bool applied = engine_->ApplyFastSafe(mutation);
          epoch_.EndApply();
          // journal_mu_ excluded every writer between ClassifyFast and the
          // re-validation inside ApplyFastSafe, so the verdict cannot flip.
          GB_CHECK(applied) << "fast-path re-validation failed under the journal lock";
          if (checkpointer_ != nullptr && !journaled) {
            // The WAL record was lost (injected fault): force a checkpoint
            // so recovery still covers this splice. Engine state cannot
            // move while we hold journal_mu_.
            if constexpr (CheckpointableEngine<Engine>) {
              checkpointer_->MaybeCheckpoint(applied_seq_, /*force=*/true);
            }
          }
          fast_counters_.safe_applied.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
      fast_counters_.unsafe_escalated.fetch_add(1, std::memory_order_relaxed);
      return Ingest(mutation);
    }
  }

  // Ingests a pre-built batch mutation by mutation (flush boundaries still
  // follow Options::batch_size). Returns how many were accepted; 0 with the
  // whole batch quarantined when admission control rejects it.
  size_t IngestBatch(const MutationBatch& batch) {
    if (quarantine_ != nullptr) {
      const AdmissionVerdict verdict = ScreenBatch(batch, options_.admission);
      if (!verdict.admitted()) {
        QuarantineReject(verdict.reason, batch);
        return 0;
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    size_t accepted = 0;
    for (const EdgeMutation& mutation : batch) {
      if (!accepting_) {  // re-checked: FlushLocked releases the lock
        stats_.mutations_dropped += batch.size() - accepted;
        break;
      }
      gutter_.Add(mutation);
      ++stats_.mutations_enqueued;
      ++accepted;
      if (gutter_.size() >= options_.batch_size) {
        FlushLocked(lock);
      }
    }
    return accepted;
  }

  // Hands the gutter's current contents (a partial batch) to the worker.
  void Flush() {
    std::unique_lock<std::mutex> lock(mu_);
    FlushLocked(lock);
  }

  // Query barrier: flush + drain (+ shed replay). On return every mutation
  // flushed before the call has been applied, so the engine holds an exact
  // BSP snapshot. Returns false when the fast path hit (nothing was
  // buffered, in flight, or shed — the previous snapshot is still current).
  // On a crashed driver the barrier returns immediately with a stale
  // snapshot; check healthy() and call Recover().
  bool PrepQuery() {
    std::unique_lock<std::mutex> lock(mu_);
    bool cached = gutter_.empty() && in_flight_ == 0 && shed_batches_ == 0;
    if constexpr (AsyncDeltaEngine<Engine>) {
      // An async-engaged engine holds eventually-consistent values, never
      // an exact BSP snapshot, so the fast path's "still current" claim
      // would be a lie: fall through to the reconciling barrier.
      cached = cached && !async_engaged_.load(std::memory_order_acquire);
    }
    if (cached) {
      return false;  // cached-query fast path
    }
    if (options_.overflow == OverflowPolicy::kDegrade && governor_.degraded()) {
      // Degraded serve: under overload, don't block on the barrier. In BSP
      // mode the engine state is always *some* prefix-consistent snapshot
      // (whole batches apply under engine_mu_), just not the freshest one.
      // With the async tier engaged the served values are instead
      // eventually consistent and continuously updating — every applied
      // batch and propagation round moves them toward the fixed point, and
      // stats().async_residual bounds the remaining distance. Use
      // QuerySnapshot() to read either race-free. Clears automatically
      // once the governor's pressure recedes.
      ++stats_.degraded_queries;
      if (async_engaged_.load(std::memory_order_acquire)) {
        ++stats_.async_fresh_queries;
      }
      return true;
    }
    for (;;) {
      if (worker_dead_) {
        GB_LOG(kWarning) << "PrepQuery on a crashed driver: snapshot is stale; Recover() first";
        return true;
      }
      FlushLocked(lock, /*allow_refill=*/false);
      drained_cv_.wait(lock, [&] { return in_flight_ == 0 || worker_dead_; });
      if (worker_dead_) {
        GB_LOG(kWarning) << "worker died during the query barrier; Recover() first";
        return true;
      }
      if constexpr (AsyncDeltaEngine<Engine>) {
        if (async_engaged_.load(std::memory_order_acquire)) {
          // The barrier promises an exact BSP snapshot: run the
          // reconciling barrier first, then re-check the drain (the
          // reconcile dropped mu_, so producers may have raced in).
          lock.unlock();
          {
            std::lock_guard<std::mutex> engine_lock(engine_mu_);
            ReconcileAsync();
          }
          lock.lock();
          continue;
        }
      }
      if (shed_batches_ == 0) {
        return true;
      }
      lock.unlock();
      ReplayShed();
      lock.lock();
    }
  }

  // Barrier + reference to the engine's values. The reference is an exact
  // BSP snapshot at return; it stays valid but may be rewritten once
  // another producer triggers a flush — see the header comment.
  const std::vector<Value>& values() {
    PrepQuery();
    return engine_->values();
  }

  // Barrier + copy, safe under concurrent ingestion from other threads.
  std::vector<Value> QuerySnapshot() {
    PrepQuery();
    std::lock_guard<std::mutex> engine_lock(engine_mu_);
    // Seqlock against in-flight fast-path splices: safe applies leave the
    // value vector bitwise unchanged, but the epoch check makes the
    // prefix-consistency argument local instead of relying on that proof.
    for (;;) {
      const uint64_t epoch = epoch_.ReadStable();
      std::vector<Value> snapshot = engine_->values();
      if (epoch_.Validate(epoch)) {
        return snapshot;
      }
    }
  }

  // Cumulative driver statistics (see stats.h: engine fields are summed
  // over applied batches; driver fields count since construction; the
  // durability block merges in the checkpointer's counters).
  EngineStats stats() const {
    EngineStats snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      snapshot = stats_;
      snapshot.apply_ewma_seconds = governor_.apply_ewma_seconds();
      snapshot.degraded_entries = governor_.degraded_entries();
    }
    if (checkpointer_ != nullptr) {
      checkpointer_->MergeStats(&snapshot);
    }
    snapshot.fastpath_safe_applied = fast_counters_.safe_applied.load(std::memory_order_relaxed);
    snapshot.fastpath_unsafe_escalated =
        fast_counters_.unsafe_escalated.load(std::memory_order_relaxed);
    snapshot.fastpath_epoch_flips = epoch_.flips();
    return snapshot;
  }

  // Mutations currently buffered in the gutter (not yet flushed).
  size_t pending_mutations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return gutter_.size();
  }

  // False once the worker thread has been killed by fault injection (the
  // stand-in for a real worker crash). The pipeline stops applying; call
  // Recover() to restore and restart.
  bool healthy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !worker_dead_;
  }

  // True while the admission governor has the driver in degraded mode
  // (overload): under kDegrade, PrepQuery serves the last consistent
  // snapshot instead of blocking on the barrier.
  bool degraded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return governor_.degraded();
  }

  // The dead-letter quarantine; null unless Options::quarantine_dir was
  // set. Inspect parked batches with quarantine()->ForEach.
  Quarantine* quarantine() { return quarantine_.get(); }

  // Batches currently parked in the dead-letter WAL.
  uint64_t quarantined_batches() const {
    return quarantine_ != nullptr ? quarantine_->parked_batches() : 0;
  }

  // Drains the quarantine through `fixup(RejectReason, MutationBatch&)`.
  // fixup repairs the batch in place and returns true to re-admit it — the
  // batch is re-screened, so a still-poison batch goes straight back to
  // quarantine — or false to discard it. Call on a live (accepting)
  // driver. Returns the number of parked batches fed to fixup.
  template <typename Fixup>
  size_t ReplayQuarantine(Fixup&& fixup) {
    if (quarantine_ == nullptr) {
      return 0;
    }
    return quarantine_->Drain([&](RejectReason reason, MutationBatch&& batch) {
      if (!fixup(reason, batch)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.quarantine_discarded;
        stats_.mutations_dropped += batch.size();
        return;
      }
      const size_t accepted = IngestBatch(batch);
      if (accepted > 0 || batch.empty()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.quarantine_replayed;
      }
    });
  }

  // Replay with no fix-up: every parked batch is re-screened as-is.
  size_t ReplayQuarantine() {
    return ReplayQuarantine([](RejectReason, MutationBatch&) { return true; });
  }

  // Writes a checkpoint of the current engine state immediately — the
  // baseline right after InitialCompute, or an explicit save point.
  bool CheckpointNow() {
    if constexpr (CheckpointableEngine<Engine>) {
      if (checkpointer_ == nullptr) {
        return false;
      }
      StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kCheckpoint);
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      std::lock_guard<std::mutex> journal_lock(journal_mu_);
      return checkpointer_->WriteCheckpoint(applied_seq_);
    } else {
      return false;
    }
  }

  // Crash recovery: restores the newest valid checkpoint from disk into the
  // graph and engine, replays the WAL tail past it, applies batches that
  // were still queued at the crash (process memory, not crash casualties),
  // re-applies shed batches, and restarts the worker. Queued-then-shed is
  // the stream order: shedding only starts once the queue is full or
  // closed, so anything queued predates anything shed. Works both on a
  // live driver whose worker died and as cold-start recovery on a freshly
  // constructed graph/engine/driver (no InitialCompute needed). Always
  // restores from disk — in-memory engine state is discarded — so the
  // persisted path is the one being trusted. Returns false (pipeline
  // restarted, engine state left as-is) when no valid checkpoint exists.
  bool Recover() {
    if constexpr (!CheckpointableEngine<Engine>) {
      GB_LOG(kError) << "Recover() requires a CheckpointableEngine";
      return false;
    } else {
      std::lock_guard<std::mutex> stop_lock(stop_mu_);
      if (checkpointer_ == nullptr) {
        GB_LOG(kError) << "Recover() without a Checkpointer";
        return false;
      }
      Timer wall;
      {
        std::lock_guard<std::mutex> lock(mu_);
        accepting_ = false;
      }
      queue_.Close();
      // Cooperative cancellation: a worker parked in an injected stage
      // stall observes this token, sheds its in-hand batch, and exits so
      // the join below returns.
      stall_abort_.store(true);
      if (worker_.joinable()) {
        worker_.join();
      }
      std::vector<TimedBatch> preserved;
      while (std::optional<TimedBatch> leftover = queue_.Pop()) {
        preserved.push_back(std::move(*leftover));
      }
      bool restored = false;
      bool applied_preserved = false;
      uint64_t replayed_wal = 0;
      uint64_t replayed_shed = 0;
      {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        if constexpr (AsyncDeltaEngine<Engine>) {
          // WAL replay goes through BSP ApplyMutations: a crash inside an
          // async window reconciles first. The reconcile force-checkpoints,
          // so the reconciled fixpoint is the newest restore point and the
          // replay tail past it is empty.
          ReconcileAsync();
        }
        bool can_absorb = false;
        {
          // journal_mu_ fences out concurrent fast-path splices while the
          // engine is rebuilt from disk (ApplyJournaled re-takes it below).
          std::lock_guard<std::mutex> journal_lock(journal_mu_);
          uint64_t ckpt_seq = 0;
          restored = checkpointer_->RestoreLatest(&ckpt_seq);
          if (restored) {
            applied_seq_ = ckpt_seq;
            // The tail was journaled with its final sequence numbers already:
            // replay applies without re-journaling or cadence checkpoints.
            replayed_wal = checkpointer_->ReplayWal(
                ckpt_seq, [&](uint64_t seq, MutationBatch&& batch) {
                  engine_->ApplyMutations(batch);
                  applied_seq_ = seq;
                });
          }
          // Restored state — or live in-memory state left at a batch boundary
          // by the kill — can absorb the not-yet-applied remainder. A cold
          // start without any valid checkpoint cannot (the engine was never
          // initialized), so the shed log stays parked for a later attempt.
          can_absorb = restored || applied_seq_ > 0;
        }
        if (can_absorb) {
          for (TimedBatch& item : preserved) {
            ApplyJournaled(item.batch);
          }
          applied_preserved = true;
          replayed_shed = checkpointer_->DrainShed(
              [&](MutationBatch&& batch) { ApplyJournaled(batch); });
        }
        if (restored) {
          // Fresh checkpoint at the recovered frontier: the next crash
          // recovers from here, and the superseded WAL prefix can compact.
          std::lock_guard<std::mutex> journal_lock(journal_mu_);
          checkpointer_->WriteCheckpoint(applied_seq_);
        }
      }
      queue_.Reset();
      {
        std::lock_guard<std::mutex> lock(mu_);
        worker_dead_ = false;
        accepting_ = true;
        // Subtract only what DrainShed actually replayed: a producer racing
        // against recovery may shed into the log after the drain, and that
        // batch must stay counted or the next barrier would never replay it.
        shed_batches_ -= std::min(shed_batches_, static_cast<size_t>(replayed_shed));
        if (applied_preserved) {
          // First-time applies (queued + shed) count as applied; WAL-tail
          // re-applications only as replayed.
          stats_.batches_applied += preserved.size() + replayed_shed;
        } else {
          for (const TimedBatch& item : preserved) {
            stats_.mutations_dropped += item.batch.size();
          }
        }
        in_flight_ -= preserved.size();
        if (in_flight_ == 0) {
          drained_cv_.notify_all();
        }
        if (restored) {
          ++stats_.recoveries;
          stats_.batches_replayed += replayed_wal + replayed_shed;
          stats_.shed_batches_replayed += replayed_shed;
        }
      }
      stall_abort_.store(false);
      worker_ = std::thread([this] { WorkerLoop(); });
      stopped_ = false;
      // Restart the watchdog after a Stop()-then-Recover() revival. No-op
      // when it is already running — including when this very call runs
      // *on* the watchdog thread (auto-recovery).
      if (options_.watchdog_stall_seconds > 0.0 && !watchdog_.running()) {
        watchdog_.Start({options_.watchdog_poll_seconds, options_.watchdog_stall_seconds},
                        [this](const StallCause& cause) { OnStall(cause); });
      }
      if (restored) {
        GB_LOG(kInfo) << "recovered to batch " << applied_seq_ << " (" << replayed_wal
                      << " WAL, " << preserved.size() << " queued, " << replayed_shed
                      << " shed batches replayed) in " << wall.Millis() << " ms";
      }
      return restored;
    }
  }

  // Sequence number of the newest batch applied through the journal — the
  // durable frontier. After Recover() it is exactly the number of batches
  // the recovered state contains, which is what the crash harness diffs
  // against a fresh prefix run.
  uint64_t applied_seq() {
    std::lock_guard<std::mutex> lock(journal_mu_);
    return applied_seq_;
  }

  // One synchronous scrub pass over the durability artifacts (see
  // Options::scrub_interval_seconds). Returns corrupt artifacts found; 0
  // is a healthy disk or no checkpointer. Safe against a live pipeline:
  // only the journal serialization is held, so queries and staged applies
  // wait at most one artifact verification.
  uint64_t ScrubNow() {
    if (checkpointer_ == nullptr) {
      return 0;
    }
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    return checkpointer_->Scrub().corruptions;
  }

  // Drains and shuts down: stops accepting, flushes the gutter remainder,
  // waits for the worker to apply everything queued, joins it, and replays
  // any shed batches. Idempotent; called by the destructor. After a worker
  // crash the un-applied queue leftovers are parked in the durable shed log
  // (recoverable by a later cold-start Recover) or counted dropped.
  void Stop() {
    // The watchdog's callback may be inside Recover() — which takes
    // stop_mu_ — so stop it *before* acquiring stop_mu_ or Stop deadlocks
    // behind its own watchdog.
    watchdog_.Stop();
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopped_) {
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      accepting_ = false;
      FlushLocked(lock, /*allow_refill=*/false);
    }
    stall_abort_.store(true);  // release a worker parked in an injected stall
    queue_.Close();
    worker_.join();
    bool dead;
    {
      std::lock_guard<std::mutex> lock(mu_);
      dead = worker_dead_;
    }
    while (std::optional<TimedBatch> leftover = queue_.Pop()) {
      const bool shed = checkpointer_ != nullptr && checkpointer_->AppendShed(leftover->batch);
      std::lock_guard<std::mutex> lock(mu_);
      if (shed) {
        stats_.mutations_shed_to_wal += leftover->batch.size();
        ++shed_batches_;
      } else {
        stats_.mutations_dropped += leftover->batch.size();
      }
      if (--in_flight_ == 0) {
        drained_cv_.notify_all();
      }
    }
    if constexpr (AsyncDeltaEngine<Engine>) {
      // The worker has joined, so nothing will tick the mode again: leave
      // the engine reconciled to bitwise-deterministic BSP state (shed
      // replay below and any later barrier go through BSP ApplyMutations).
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      ReconcileAsync();
    }
    if (!dead) {
      bool have_shed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        have_shed = shed_batches_ > 0;
      }
      if (have_shed) {
        ReplayShed();  // engine is idle: the worker has joined
      }
    }
    stopped_ = true;
  }

 private:
  struct TimedBatch {
    MutationBatch batch;
    Timer since_flush;  // epoch set at flush; read when the apply finishes
  };

  // Takes the gutter as a batch and moves it toward the worker. Caller
  // holds `lock`; the queue handoff happens unlocked so a blocked push
  // stalls only the flushing producer, never the worker's bookkeeping.
  // in_flight_ covers the unlocked window, keeping the batch visible to
  // PrepQuery and to the worker's stale-flush check throughout.
  //
  // Overflow on a full queue follows the policy: kBlock waits (the
  // backpressure producers feel), kDropNewest drops, kShedToWal sheds
  // durably, kShedOldest evicts the oldest queued batch into the shed log
  // (or drops it) to admit the fresh one, and kDegrade puts the batch
  // *back* into the gutter to be re-coalesced and retried — unless
  // `allow_refill` is false (query barrier / shutdown), where kDegrade
  // falls back to a lossless blocking push. A closed queue (shutdown or a
  // crashed worker) sheds durably when a checkpointer is attached and
  // drops otherwise, under every policy.
  void FlushLocked(std::unique_lock<std::mutex>& lock, bool allow_refill = true) {
    if (gutter_.empty()) {
      return;
    }
    if (options_.overflow == OverflowPolicy::kDegrade && allow_refill &&
        !queue_.closed() && queue_.size() >= queue_.capacity()) {
      // Coalesce under pressure: leave the batch in the gutter (duplicates
      // die at the eventual Take) instead of churning Take/Refill on every
      // ingested mutation while the queue stays full.
      governor_.Update(queue_.size());
      return;
    }
    TimedBatch item;
    item.batch = gutter_.Take(options_.coalesce, &stats_.mutations_coalesced);
    item.since_flush.Reset();
    const size_t mutations = item.batch.size();
    ++in_flight_;
    lock.unlock();
    bool pushed = false;
    double waited = 0.0;
    std::optional<TimedBatch> evicted;
    if (queue_.TryPush(std::move(item))) {
      pushed = true;
    } else if (options_.overflow == OverflowPolicy::kBlock ||
               (options_.overflow == OverflowPolicy::kDegrade && !allow_refill)) {
      Timer wait;  // full: this block is the backpressure producers feel
      pushed = queue_.Push(std::move(item));
      waited = wait.Seconds();
    } else if (options_.overflow == OverflowPolicy::kShedOldest) {
      pushed = queue_.PushEvictOldest(std::move(item), &evicted);
    }
    const bool closed = !pushed && queue_.closed();
    const bool refill = !pushed && !closed && allow_refill &&
                        options_.overflow == OverflowPolicy::kDegrade;
    bool shed = false;
    if (!pushed && !refill && options_.overflow != OverflowPolicy::kDropNewest &&
        checkpointer_ != nullptr) {
      shed = checkpointer_->AppendShed(item.batch);
    }
    bool evicted_shed = false;
    if (evicted.has_value() && checkpointer_ != nullptr) {
      evicted_shed = checkpointer_->AppendShed(evicted->batch);
    }
    lock.lock();
    stats_.queue_wait_seconds += waited;
    if (evicted.has_value()) {
      // The evicted batch leaves the pipeline un-applied: account it shed
      // (durable) or dropped, and release its in-flight slot.
      ++stats_.shed_oldest_evictions;
      if (evicted_shed) {
        stats_.mutations_shed_to_wal += evicted->batch.size();
        ++shed_batches_;
      } else {
        stats_.mutations_dropped += evicted->batch.size();
      }
      if (--in_flight_ == 0) {
        drained_cv_.notify_all();
      }
    }
    if (!pushed) {
      if (refill) {
        gutter_.Refill(std::move(item.batch));
      } else if (shed) {
        stats_.mutations_shed_to_wal += mutations;
        ++shed_batches_;
      } else {
        stats_.mutations_dropped += mutations;
      }
      if (--in_flight_ == 0) {
        drained_cv_.notify_all();
      }
    }
    governor_.Update(queue_.size());
  }

  void WorkerLoop() {
    for (;;) {
      Timer poll;
      std::optional<TimedBatch> item =
          queue_.PopFor(std::chrono::duration<double>(NextPollSeconds()));
      if (item.has_value()) {
        if (ApplyOne(std::move(*item))) {
          return;  // stall-aborted: recovery owns the pipeline now
        }
        if (WorkerKilled()) {
          return;
        }
        // One maintenance increment per batch keeps compaction overlapped
        // with a saturated stream (the quiescent window between applies).
        MaintenanceTick();
      } else if (queue_.closed()) {
        if (queue_.Empty()) {
          break;
        }
        continue;
      } else {
        // An empty poll IS the idle window the maintenance budget sizes
        // ticks against; feed the observation before spending it.
        budget_.RecordIdle(poll.Seconds());
        MaintenanceTick();  // idle poll: let a pending rewrite advance
        AsyncTick();        // refresh overload state; propagate or reconcile
        MaybeScrub();       // cadence-gated artifact verification
      }
      // The stale check runs after *every* iteration — successful pops
      // included, so a busy queue cannot starve a stale gutter — against
      // the monotonic deadline NextPollSeconds carries across polls.
      if (TryFlushStaleGutter()) {
        return;
      }
    }
  }

  // The worker's next wait: the flush interval, shortened so the wait
  // expires exactly when the gutter's oldest mutation goes stale. This is
  // the monotonic deadline carried across polls — a pop or short timeout
  // no longer re-arms the full interval. A gutter already past its
  // deadline but blocked by an in-flight batch (direct apply would
  // reorder) gets a short back-off instead of a spin.
  double NextPollSeconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (gutter_.empty()) {
      return options_.flush_interval_seconds;
    }
    const double remaining = options_.flush_interval_seconds - gutter_.AgeSeconds();
    if (remaining <= 0.0) {
      return in_flight_ > 0 ? 1e-3 : 1e-4;
    }
    return remaining;
  }

  // Flushes a stale gutter and applies it directly — never through the
  // queue (the worker must not block behind itself), and only when
  // in_flight_ == 0 so the gutter's contents are strictly newer than
  // anything already formed and ordering is preserved. Returns true when
  // the worker must exit (killed or stall-aborted mid-apply).
  bool TryFlushStaleGutter() {
    std::unique_lock<std::mutex> lock(mu_);
    if (in_flight_ != 0 || gutter_.empty() ||
        gutter_.AgeSeconds() < options_.flush_interval_seconds) {
      return false;
    }
    StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kGutterFlush);
    TimedBatch stale;
    stale.batch = gutter_.Take(options_.coalesce, &stats_.mutations_coalesced);
    stale.since_flush.Reset();
    ++in_flight_;
    lock.unlock();
    if (ApplyOne(std::move(stale))) {
      return true;
    }
    return WorkerKilled();
  }

  // The kWorkerKill site fires between batches (after an apply completes),
  // so the engine is always left at a batch boundary — a crash never tears
  // a refinement. The queue closes so producers stop blocking behind the
  // dead consumer (their pushes fail over to the shed/drop path); queued
  // batches stay poppable for Recover().
  bool WorkerKilled() {
    if (!GB_FAULT_POINT(injector_, FaultSite::kWorkerKill)) {
      return false;
    }
    queue_.Close();
    std::lock_guard<std::mutex> lock(mu_);
    worker_dead_ = true;
    GB_LOG(kWarning) << "FaultInjector: worker killed after batch "
                     << stats_.batches_applied;
    drained_cv_.notify_all();
    return true;
  }

  // Applies one batch under the engine mutex, with the kApply heartbeat.
  // Returns true when the apply was cancelled by stall recovery: the
  // worker must exit, and the in-hand batch has been shed durably (or
  // counted dropped) so recovery's shed drain replays it.
  bool ApplyOne(TimedBatch item) {
    if (GB_FAULT_POINT(injector_, FaultSite::kStageStall)) {
      // Injected hung apply: park (cooperatively) with the stage reading
      // busy until recovery cancels via stall_abort_. Parks *outside*
      // engine_mu_ — a stage that wedged while holding the engine could be
      // detected but never joined (see watchdog.h).
      StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kApply);
      GB_LOG(kWarning) << "FaultInjector: apply stage stalled";
      while (!stall_abort_.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const bool shed = checkpointer_ != nullptr && checkpointer_->AppendShed(item.batch);
      std::lock_guard<std::mutex> lock(mu_);
      if (shed) {
        stats_.mutations_shed_to_wal += item.batch.size();
        ++shed_batches_;
      } else {
        stats_.mutations_dropped += item.batch.size();
      }
      if (--in_flight_ == 0) {
        drained_cv_.notify_all();
      }
      return true;
    }
    Timer wall;
    EngineStats applied;
    uint64_t rebuilds = 0;
    bool async_applied = false;
    bool async_stepped = false;
    double async_residual = 0.0;
    uint64_t priority_delta = 0;
    {
      StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kApply);
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      SyncAsyncMode();
      if constexpr (AsyncDeltaEngine<Engine>) {
        if (async_engaged_.load(std::memory_order_relaxed)) {
          AsyncApplyJournaled(item.batch);  // reconciles itself on WAL loss
          async_applied = true;
          if (async_engaged_.load(std::memory_order_relaxed) &&
              engine_->AsyncResidual() > 0.0) {
            // One bounded propagation round rides along with every apply,
            // so the served values chase the mutations they absorb. The
            // engine leaves async-round scheduler work unattributed;
            // account the priority-lane pushes from the arena directly.
            const uint64_t before = TaskArena::Instance().counters().tasks_priority;
            engine_->AsyncStep(options_.async_step_budget);
            priority_delta = TaskArena::Instance().counters().tasks_priority - before;
            async_stepped = true;
          }
          async_residual = engine_->AsyncResidual();
        }
      }
      if (!async_applied) {
        ApplyJournaled(item.batch);
      }
      applied = engine_->stats();
      if constexpr (GraphMaintainableEngine<Engine>) {
        rebuilds = engine_->mutable_graph()->adaptive_rebuilds();
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    // The graph's rebuild counter is cumulative; mirror, don't sum.
    stats_.adaptive_rebuilds = rebuilds;
    ++stats_.batches_applied;
    stats_.seconds += applied.seconds;
    stats_.mutation_seconds += applied.mutation_seconds;
    stats_.edges_processed += applied.edges_processed;
    stats_.iterations += applied.iterations;
    stats_.tasks_forked += applied.tasks_forked;
    stats_.tasks_stolen += applied.tasks_stolen;
    stats_.inline_runs += applied.inline_runs;
    stats_.tasks_priority += applied.tasks_priority + priority_delta;
    if (async_applied) {
      ++stats_.async_applies;
      stats_.async_steps += async_stepped ? 1 : 0;
      stats_.async_residual = async_residual;
    }
    stats_.flush_latency_seconds += item.since_flush.Seconds();
    governor_.RecordApply(wall.Seconds());
    governor_.Update(queue_.size());
    if (--in_flight_ == 0) {
      drained_cv_.notify_all();
    }
    return false;
  }

  // One background-compaction increment in the quiescent window between
  // batches. Holding the engine mutex makes this the epoch barrier: no
  // apply or query can observe a half-built shadow, and a completed
  // rewrite flips in under the same lock every reader takes.
  // Worker-only (single ticking thread, so the cadence timer needs no
  // lock): run a scrub pass once the configured interval of wall time has
  // passed since the last one. Rides the idle poll — a saturated pipeline
  // defers scrubbing, which is the right priority order.
  void MaybeScrub() {
    if (checkpointer_ == nullptr || options_.scrub_interval_seconds <= 0.0 ||
        scrub_timer_.Seconds() < options_.scrub_interval_seconds) {
      return;
    }
    scrub_timer_.Reset();
    ScrubNow();
  }

  void MaintenanceTick() {
    if constexpr (GraphMaintainableEngine<Engine>) {
      if (!options_.background_compaction) {
        return;
      }
      // Adaptive budget: sized from the observed idle-window length and
      // per-edge cost, falling back to the configured constant until both
      // signals have data (see maintenance_budget.h).
      const size_t budget = budget_.Next();
      SlackCsr::CompactionStats compaction;
      Timer step;
      {
        StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kMaintenance);
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        std::lock_guard<std::mutex> journal_lock(journal_mu_);  // vs fast-path splices
        MutableGraph* graph = engine_->mutable_graph();
        graph->MaintenanceStep(budget);
        compaction = graph->compaction_stats();
      }
      // Feed the cost signal with this step's delta (the graph counter is
      // cumulative); lock wait counts as cost, which rightly shrinks the
      // budget when the engine is contended.
      budget_.RecordStep(compaction.background_edges_copied - last_maintenance_edges_,
                         step.Seconds());
      last_maintenance_edges_ = compaction.background_edges_copied;
      std::lock_guard<std::mutex> lock(mu_);
      // The graph's counters are already cumulative; mirror, don't sum.
      stats_.maintenance_steps = compaction.maintenance_steps;
      stats_.background_compactions = compaction.background_compactions;
      stats_.background_compaction_edges = compaction.background_edges_copied;
      stats_.forced_sync_compactions = compaction.forced_sync_compactions;
      stats_.maintenance_budget_edges = budget;
    }
  }

  // ----- Async delta-accumulative mode (INTERNALS §14) ---------------------
  //
  // Mode flips hold BOTH engine_mu_ and journal_mu_: the fast path splices
  // under journal_mu_ alone, and a splice racing EnterAsyncMode's aggregate
  // rebuild (or the reconcile's recompute) would tear it. async_engaged_
  // mirrors engine_->async_mode() so either lock — or neither, for
  // advisory reads — observes the flip race-free. While engaged: IngestFast
  // escalates (ClassifyFast reasons about the stale BSP dependency store),
  // cadence checkpoints are suppressed (same staleness), and the WAL keeps
  // journaling every batch — recovery replays it through BSP
  // ApplyMutations, landing on a legitimate BSP state of the final graph.

  // True when policy, overflow policy, and the governor agree the engine
  // should be running async. kAuto and kDegradeOnly share the degrade
  // trigger today (see AsyncModePolicy).
  bool AsyncWanted() const {
    if (options_.async_mode == AsyncModePolicy::kOff ||
        options_.overflow != OverflowPolicy::kDegrade) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    return governor_.degraded();
  }

  // Flips the engine to match AsyncWanted(). Caller holds engine_mu_.
  void SyncAsyncMode() {
    if constexpr (AsyncDeltaEngine<Engine>) {
      const bool want = AsyncWanted();
      const bool engaged = async_engaged_.load(std::memory_order_relaxed);
      if (want && !engaged) {
        double residual = 0.0;
        {
          std::lock_guard<std::mutex> journal_lock(journal_mu_);
          engine_->EnterAsyncMode();
          async_engaged_.store(true, std::memory_order_release);
          residual = engine_->AsyncResidual();
        }
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.async_entries;
        stats_.async_residual = residual;
      } else if (!want && engaged) {
        ReconcileAsync();
      }
    }
  }

  // One reconciling barrier: async -> BSP (a from-scratch refinement on the
  // final graph restores bitwise-deterministic state), then a forced
  // checkpoint — cadence checkpoints were suppressed across the async
  // window, so the store must re-cover the frontier now. No-op when the
  // engine is already synchronous. Caller holds engine_mu_ but not mu_.
  void ReconcileAsync() {
    if constexpr (AsyncDeltaEngine<Engine>) {
      if (!async_engaged_.load(std::memory_order_relaxed)) {
        return;
      }
      {
        std::lock_guard<std::mutex> journal_lock(journal_mu_);
        engine_->ExitAsyncReconcile();
        async_engaged_.store(false, std::memory_order_release);
        if (checkpointer_ != nullptr) {
          if constexpr (CheckpointableEngine<Engine>) {
            StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kCheckpoint);
            checkpointer_->WriteCheckpoint(applied_seq_);
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.async_reconciles;
      stats_.async_residual = 0.0;
    }
  }

  // The async counterpart of ApplyJournaled: journal write-ahead, then the
  // barrier-free apply. No cadence checkpoint — the dependency store is
  // stale while async, so a snapshot here would be unrecoverable; a lost
  // WAL record instead forces an immediate reconcile, whose checkpoint
  // supersedes it. Caller holds engine_mu_.
  void AsyncApplyJournaled(const MutationBatch& batch) {
    if constexpr (AsyncDeltaEngine<Engine>) {
      bool journaled = true;
      {
        std::lock_guard<std::mutex> journal_lock(journal_mu_);
        ++applied_seq_;
        if (checkpointer_ != nullptr) {
          journaled = checkpointer_->AppendWal(applied_seq_, batch);
        }
        engine_->AsyncApplyMutations(batch);
      }
      if (checkpointer_ != nullptr && !journaled) {
        GB_LOG(kWarning) << "async apply lost its WAL record; reconciling to a checkpoint";
        ReconcileAsync();
      }
    }
  }

  // An idle-window async round: refresh the governor (a quiet queue is what
  // clears degraded mode), flip the engine to match, and — while engaged
  // and unconverged — run one bounded propagation round. Running on every
  // idle poll is what makes the mode self-clearing without waiting for a
  // query barrier, and what drives the residual to zero once ingestion
  // pauses: freshness progresses even with no queries observing it.
  void AsyncTick() {
    if constexpr (AsyncDeltaEngine<Engine>) {
      if (options_.async_mode == AsyncModePolicy::kOff ||
          options_.overflow != OverflowPolicy::kDegrade) {
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        governor_.Update(queue_.size());
      }
      bool stepped = false;
      double residual = 0.0;
      uint64_t priority_delta = 0;
      {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        SyncAsyncMode();
        if (async_engaged_.load(std::memory_order_relaxed) &&
            engine_->AsyncResidual() > 0.0) {
          const uint64_t before = TaskArena::Instance().counters().tasks_priority;
          residual = engine_->AsyncStep(options_.async_step_budget);
          priority_delta = TaskArena::Instance().counters().tasks_priority - before;
          stepped = true;
        }
      }
      if (stepped) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.async_steps;
        stats_.async_residual = residual;
        stats_.tasks_priority += priority_delta;
      }
    }
  }

  // Every engine apply funnels through here (worker batches, shed replay):
  // assign the next sequence number, journal write-ahead, apply, then
  // checkpoint on cadence. Caller holds engine_mu_; journal_mu_ is taken
  // here so fast-path splices interleave only at batch boundaries.
  void ApplyJournaled(const MutationBatch& batch) {
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    ++applied_seq_;
    bool journaled = true;
    if (checkpointer_ != nullptr) {
      journaled = checkpointer_->AppendWal(applied_seq_, batch);
    }
    engine_->ApplyMutations(batch);
    if (checkpointer_ != nullptr) {
      if constexpr (CheckpointableEngine<Engine>) {
        StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kCheckpoint);
        // force: a batch whose WAL record was lost must be captured by a
        // checkpoint before the next crash.
        checkpointer_->MaybeCheckpoint(applied_seq_, /*force=*/!journaled);
      }
    }
  }

  // Applies batches parked in the shed log through the journaled path.
  // shed_replay_mu_ serializes concurrent barriers so a batch is never
  // applied twice; the engine lock orders the replay against the worker.
  void ReplayShed() {
    if (checkpointer_ == nullptr) {
      return;
    }
    std::lock_guard<std::mutex> replay_lock(shed_replay_mu_);
    uint64_t replayed = 0;
    EngineStats summed;
    {
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      if constexpr (AsyncDeltaEngine<Engine>) {
        // Shed replay goes through BSP ApplyMutations; the same engine_mu_
        // scope keeps a racing tick from re-entering async mid-drain.
        ReconcileAsync();
      }
      replayed = checkpointer_->DrainShed([&](MutationBatch&& batch) {
        ApplyJournaled(batch);
        const EngineStats& applied = engine_->stats();
        summed.seconds += applied.seconds;
        summed.mutation_seconds += applied.mutation_seconds;
        summed.edges_processed += applied.edges_processed;
        summed.iterations += applied.iterations;
        summed.tasks_forked += applied.tasks_forked;
        summed.tasks_stolen += applied.tasks_stolen;
        summed.inline_runs += applied.inline_runs;
        summed.tasks_priority += applied.tasks_priority;
      });
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.shed_batches_replayed += replayed;
    stats_.batches_applied += replayed;
    stats_.seconds += summed.seconds;
    stats_.mutation_seconds += summed.mutation_seconds;
    stats_.edges_processed += summed.edges_processed;
    stats_.iterations += summed.iterations;
    stats_.tasks_forked += summed.tasks_forked;
    stats_.tasks_stolen += summed.tasks_stolen;
    stats_.inline_runs += summed.inline_runs;
    stats_.tasks_priority += summed.tasks_priority;
    shed_batches_ = shed_batches_ >= replayed ? shed_batches_ - replayed : 0;
  }

  // Parks a rejected batch in the dead-letter WAL, or counts it dropped
  // when the dead-letter append itself fails — either way the reject is
  // accounted for exactly once.
  void QuarantineReject(RejectReason reason, const MutationBatch& batch) {
    const bool parked = quarantine_->Append(reason, batch);
    std::lock_guard<std::mutex> lock(mu_);
    if (parked) {
      ++stats_.batches_quarantined;
      stats_.mutations_quarantined += batch.size();
    } else {
      stats_.mutations_dropped += batch.size();
    }
    GB_LOG(kWarning) << "admission: rejected batch of " << batch.size() << " mutations ("
                     << RejectReasonName(reason)
                     << (parked ? "); quarantined" : "); dead-letter append failed, dropped");
  }

  // Watchdog verdict: a stage exceeded the stall timeout. Runs on the
  // watchdog thread, outside the watchdog's lock. Marks the driver
  // unhealthy and wakes every barrier waiter immediately; with a
  // checkpointer attached, drives the full recovery path (cancel the
  // stuck stage, restore, replay, restart).
  void OnStall(const StallCause& cause) {
    GB_LOG(kWarning) << "watchdog: stage " << PipelineStageName(cause.stage)
                     << " stalled for " << cause.stalled_seconds << " s";
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.stalls_detected;
      worker_dead_ = true;
      drained_cv_.notify_all();
    }
    queue_.Close();  // producers fail over to shed/drop, not block
    if (options_.watchdog_auto_recover && checkpointer_ != nullptr) {
      if (Recover()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.watchdog_recoveries;
      }
      watchdog_.ClearStall();
    }
  }

  Engine* engine_;
  Options options_;

  mutable std::mutex mu_;  // guards gutter_, stats_, in_flight_, accepting_,
                           // worker_dead_, shed_batches_
  std::condition_variable drained_cv_;
  GutterBuffer gutter_;
  EngineStats stats_;
  // Overload governor: apply-latency EWMA + the degraded flag. Guarded by
  // mu_ like the stats it feeds.
  AdmissionGovernor governor_;
  // Batches taken from the gutter but not yet applied (queued, mid-push,
  // or being applied). PrepQuery waits for this to reach zero.
  size_t in_flight_ = 0;
  bool accepting_ = true;
  bool worker_dead_ = false;
  // Batches currently parked in the checkpointer's shed log.
  size_t shed_batches_ = 0;

  std::mutex engine_mu_;  // held while the engine is applied or snapshotted
  // Journal mutex, nested strictly *inside* engine_mu_ (never the reverse):
  // serializes applied_seq_, the WAL append order, and every write to the
  // engine/graph — batched applies (via ApplyJournaled), graph maintenance,
  // checkpoint writes, recovery restore, and fast-path splices. The fast
  // path takes only this mutex, never engine_mu_, which is what keeps safe
  // single-update applies free of the engine lock.
  std::mutex journal_mu_;
  uint64_t applied_seq_ = 0;
  std::mutex shed_replay_mu_;  // serializes ReplayShed calls

  // Mirror of engine_->async_mode(): set and cleared only while holding
  // BOTH engine_mu_ and journal_mu_, so holding either suffices to read it
  // race-free (the fast path gates on it under journal_mu_ alone).
  std::atomic<bool> async_engaged_{false};

  // Adaptive background-maintenance budget (worker-thread signals; the
  // class synchronizes itself). last_maintenance_edges_ tracks the graph's
  // cumulative copied-edge counter between ticks; worker-thread only.
  MaintenanceBudget budget_;
  uint64_t last_maintenance_edges_ = 0;

  // Fast-path state (Options::fast_path; see src/driver/fast_path.h).
  VertexClaims claims_;
  FastPathEpoch epoch_;
  FastPathCounters fast_counters_;

  BoundedQueue<TimedBatch> queue_;
  std::thread worker_;
  Checkpointer<Engine>* checkpointer_;
  FaultInjector* injector_;
  // Worker-thread-only scrub cadence (see MaybeScrub).
  Timer scrub_timer_;

  // Sentinel: the dead-letter quarantine (null unless configured), the
  // stall watchdog, and the cooperative cancellation token a stalled
  // stage observes so recovery can join the worker.
  std::unique_ptr<Quarantine> quarantine_;
  StallWatchdog watchdog_;
  std::atomic<bool> stall_abort_{false};

  std::mutex stop_mu_;  // serializes Stop/Recover callers; guards stopped_
  bool stopped_ = false;
};

}  // namespace graphbolt

#endif  // SRC_DRIVER_STREAM_DRIVER_H_
