// The single-update fast path: RisGraph-style safe/unsafe classification
// (PAPERS.md) grafted onto the batched GraphBolt serving stack.
//
// Batched refinement puts a whole gutter flush + BSP barrier between a
// single-edge mutation and its queryable effect. For serving traffic that
// is mostly individually harmless updates, the fast path classifies each
// mutation against engine state — the dependency store for GraphBoltEngine,
// the dependence tree for KickStarterEngine — as
//
//   safe    the batched ApplyMutations path would provably leave the
//           engine's computed state (values, store/tree) bitwise
//           unchanged: the update's entire effect is the graph splice, so
//           it is applied in place in microseconds, and
//   unsafe  anything unprovable: escalated into the existing gutter as a
//           refinement micro-batch, where the batched machinery repairs
//           values exactly.
//
// Consistency protocol (the reason this is correct, see INTERNALS §13):
//
//   - WAL ordering: every safe apply journals its 1-mutation batch at the
//     next applied sequence number *before* splicing, under the same
//     journal serialization batched applies use — so the WAL order equals
//     the apply order, and Recover()'s replay (which routes everything
//     through the batched path) reconstructs the live state bitwise. That
//     replay is exactly why "safe" is defined as batched-no-op.
//   - Engine-lock freedom: safe applies never take the driver's engine
//     mutex. They serialize against batched applies and graph maintenance
//     through the narrower journal mutex, and against each other through
//     striped per-vertex claims (VertexClaims) on the two endpoints.
//   - Epoch: a seqlock-style fast-path epoch is odd while a splice is in
//     flight. Snapshot readers (PrepQuery's value copy) read the epoch
//     stable-even before and unchanged after copying, so a served snapshot
//     is always a prefix of the admitted stream — it can never observe half
//     of a fast apply.
#ifndef SRC_DRIVER_FAST_PATH_H_
#define SRC_DRIVER_FAST_PATH_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>

#include "src/core/streaming_engine.h"
#include "src/graph/mutation.h"
#include "src/graph/types.h"

namespace graphbolt {

// A StreamingEngine that can classify and apply single-mutation updates.
// ClassifyFast is advisory (lock-free read of engine state); ApplyFastSafe
// re-validates under the caller's serialization and either splices the
// graph (true) or refuses (false: escalate to the batched path).
template <typename E>
concept FastPathEngine =
    StreamingEngine<E> && requires(E engine, const E& const_engine, const EdgeMutation& m) {
      { const_engine.ClassifyFast(m) } -> std::same_as<FastPathVerdict>;
      { engine.ApplyFastSafe(m) } -> std::same_as<bool>;
    };

// Striped per-vertex claims. A safe apply claims the stripes of its two
// endpoints (in stripe order, so concurrent claimants cannot deadlock)
// before touching the adjacency; claims are held for the sub-microsecond
// splice window only, so contention is spin-cheap. Striping keeps the
// table O(1) in the vertex count and immune to graph growth.
class VertexClaims {
 public:
  static constexpr size_t kStripes = 4096;

  // RAII claim over the (up to two) stripes covering {a, b}.
  class Guard {
   public:
    Guard(VertexClaims* claims, VertexId a, VertexId b) : claims_(claims) {
      lo_ = static_cast<uint32_t>(a % kStripes);
      hi_ = static_cast<uint32_t>(b % kStripes);
      if (lo_ > hi_) {
        std::swap(lo_, hi_);
      }
      claims_->Lock(lo_);
      if (hi_ != lo_) {
        claims_->Lock(hi_);
      }
    }
    ~Guard() {
      if (hi_ != lo_) {
        claims_->Unlock(hi_);
      }
      claims_->Unlock(lo_);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    VertexClaims* claims_;
    uint32_t lo_ = 0;
    uint32_t hi_ = 0;
  };

 private:
  void Lock(uint32_t s) {
    int spins = 0;
    while (flags_[s].test_and_set(std::memory_order_acquire)) {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  void Unlock(uint32_t s) { flags_[s].clear(std::memory_order_release); }

  std::atomic_flag flags_[kStripes] = {};
};

// Seqlock-style fast-path epoch: odd while a safe apply is splicing, even
// otherwise. Writers (safe applies) are already serialized by the journal
// mutex, so parity is well-defined; readers never block on it.
class FastPathEpoch {
 public:
  // Called by the (journal-serialized) applier around the splice.
  void BeginApply() { epoch_.fetch_add(1, std::memory_order_acq_rel); }
  void EndApply() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  // Spins until the epoch is even (no splice in flight) and returns it;
  // pair with Validate() after reading to detect a concurrent apply.
  uint64_t ReadStable() const {
    for (;;) {
      const uint64_t e = epoch_.load(std::memory_order_acquire);
      if ((e & 1) == 0) {
        return e;
      }
      std::this_thread::yield();
    }
  }
  bool Validate(uint64_t before) const {
    return epoch_.load(std::memory_order_acquire) == before;
  }

  // Completed safe applies (EngineStats::fastpath_epoch_flips).
  uint64_t flips() const { return epoch_.load(std::memory_order_relaxed) / 2; }

 private:
  std::atomic<uint64_t> epoch_{0};
};

// Lock-free fast-path counters, merged into EngineStats by the drivers.
struct FastPathCounters {
  std::atomic<uint64_t> safe_applied{0};
  std::atomic<uint64_t> unsafe_escalated{0};
};

}  // namespace graphbolt

#endif  // SRC_DRIVER_FAST_PATH_H_
