// The driver's ingestion gutter: an append buffer where individual edge
// mutations accumulate until a flush boundary (size threshold, staleness
// deadline, query barrier, or shutdown) turns them into one MutationBatch.
//
// The name and role follow GraphZeppelin's GutteringSystem: high-velocity
// single-edge updates are absorbed cheaply and handed to the compute path
// in engine-sized units. Unlike a sketch gutter this one is not sharded per
// vertex — GraphBolt's ApplyMutations wants one global batch per BSP step,
// so a single buffer under the driver's lock is the correct granularity.
//
// Flushing can *coalesce*: MutableGraph::NormalizeBatch applies last-wins
// semantics per (src, dst) pair within a batch, so every mutation that a
// later mutation of the same pair supersedes is dead weight — dropping it
// here is exactly equivalent and saves the engine the normalization work.
//
// Not thread-safe; StreamDriver serializes access under its own mutex.
#ifndef SRC_DRIVER_GUTTER_BUFFER_H_
#define SRC_DRIVER_GUTTER_BUFFER_H_

#include <cstdint>
#include <unordered_set>
#include <utility>

#include "src/graph/mutation.h"
#include "src/graph/types.h"
#include "src/util/timer.h"

namespace graphbolt {

class GutterBuffer {
 public:
  void Add(const EdgeMutation& mutation) {
    if (buffer_.empty()) {
      age_.Reset();
    }
    buffer_.push_back(mutation);
  }

  // Puts a previously Taken batch back at the *front* of the gutter (the
  // kDegrade policy: a batch that could not be queued re-merges with
  // whatever accumulated since, to be re-coalesced and retried as one unit).
  // The refilled mutations are the oldest in the buffer, so the age epoch
  // resets to now only as a lower bound — refill under pressure must not
  // make the gutter look forever-stale and force flush loops.
  void Refill(MutationBatch&& batch) {
    if (batch.empty()) {
      return;
    }
    if (buffer_.empty()) {
      age_.Reset();
      buffer_ = std::move(batch);
      return;
    }
    batch.insert(batch.end(), std::make_move_iterator(buffer_.begin()),
                 std::make_move_iterator(buffer_.end()));
    buffer_ = std::move(batch);
  }

  size_t size() const { return buffer_.size(); }
  bool empty() const { return buffer_.empty(); }

  // Seconds since the oldest buffered mutation arrived (0 when empty).
  double AgeSeconds() const { return buffer_.empty() ? 0.0 : age_.Seconds(); }

  // Moves the buffered mutations out as one batch, leaving the gutter
  // empty. With `coalesce`, keeps only the last mutation per (src, dst)
  // pair — the only one NormalizeBatch would honor — preserving arrival
  // order among survivors; `*coalesced` receives the number dropped.
  MutationBatch Take(bool coalesce, uint64_t* coalesced) {
    MutationBatch batch;
    batch.swap(buffer_);
    if (!coalesce || batch.size() < 2) {
      return batch;
    }
    // Backward scan marks each pair's last occurrence; forward compaction
    // keeps the batch stable.
    std::unordered_set<uint64_t> seen;
    seen.reserve(batch.size());
    std::vector<uint8_t> keep(batch.size(), 0);
    for (size_t i = batch.size(); i-- > 0;) {
      if (seen.insert(PairKey(batch[i])).second) {
        keep[i] = 1;
      }
    }
    size_t out = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (keep[i]) {
        batch[out++] = batch[i];
      }
    }
    *coalesced += batch.size() - out;
    batch.resize(out);
    return batch;
  }

 private:
  static uint64_t PairKey(const EdgeMutation& m) {
    return (static_cast<uint64_t>(m.src) << 32) | m.dst;
  }

  MutationBatch buffer_;
  Timer age_;  // epoch of the oldest buffered mutation
};

}  // namespace graphbolt

#endif  // SRC_DRIVER_GUTTER_BUFFER_H_
