#include "src/shard/driver_config.h"

#include <cerrno>
#include <cstdlib>
#include <string>

namespace graphbolt {
namespace {

// Numeric parsers that reject trailing junk, so "12x" or "" fail loudly
// instead of truncating.
bool ParseUint(const std::string& text, uint64_t* value) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || text[0] == '-') {
    return false;
  }
  *value = parsed;
  return true;
}

bool ParseNonNegativeDouble(const std::string& text, double* value) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0' || parsed < 0.0) {
    return false;
  }
  *value = parsed;
  return true;
}

const char* Getenv(const char* name) { return std::getenv(name); }

// One env override: returns false (with *error set) only when the variable
// is present and malformed.
template <typename Apply>
bool EnvOverride(const char* name, std::string* error, Apply&& apply) {
  const char* raw = Getenv(name);
  if (raw == nullptr) {
    return true;
  }
  if (!apply(std::string(raw))) {
    *error = std::string(name) + "=\"" + raw + "\" is not a valid value; " +
             *error;
    return false;
  }
  return true;
}

}  // namespace

bool DriverConfig::ParseOverflow(const std::string& name, OverflowPolicy* policy) {
  if (name == "block") {
    *policy = OverflowPolicy::kBlock;
  } else if (name == "drop") {
    *policy = OverflowPolicy::kDropNewest;
  } else if (name == "shed") {
    *policy = OverflowPolicy::kShedToWal;
  } else if (name == "shed-oldest") {
    *policy = OverflowPolicy::kShedOldest;
  } else if (name == "degrade") {
    *policy = OverflowPolicy::kDegrade;
  } else {
    return false;
  }
  return true;
}

const char* DriverConfig::OverflowName(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kDropNewest:
      return "drop";
    case OverflowPolicy::kShedToWal:
      return "shed";
    case OverflowPolicy::kShedOldest:
      return "shed-oldest";
    case OverflowPolicy::kDegrade:
      return "degrade";
  }
  return "unknown";
}

bool DriverConfig::ParseAsyncMode(const std::string& name, AsyncModePolicy* policy) {
  if (name == "off") {
    *policy = AsyncModePolicy::kOff;
  } else if (name == "degrade-only") {
    *policy = AsyncModePolicy::kDegradeOnly;
  } else if (name == "auto") {
    *policy = AsyncModePolicy::kAuto;
  } else {
    return false;
  }
  return true;
}

const char* DriverConfig::AsyncModeName(AsyncModePolicy policy) {
  switch (policy) {
    case AsyncModePolicy::kOff:
      return "off";
    case AsyncModePolicy::kDegradeOnly:
      return "degrade-only";
    case AsyncModePolicy::kAuto:
      return "auto";
  }
  return "unknown";
}

bool DriverConfig::ParseQuota(const std::string& spec, TenantQuota* quota,
                              std::string* error) {
  TenantQuota parsed;
  std::string fields[3];
  size_t field = 0;
  for (const char c : spec) {
    if (c == ':') {
      if (++field >= 3) {
        *error = "quota spec \"" + spec +
                 "\" has too many fields; expected rate[:burst[:total]]";
        return false;
      }
    } else {
      fields[field].push_back(c);
    }
  }
  if (!ParseNonNegativeDouble(fields[0], &parsed.mutations_per_second)) {
    *error = "quota spec \"" + spec +
             "\": rate must be a non-negative number (mutations/second; 0 = unlimited)";
    return false;
  }
  if (field >= 1 && !ParseNonNegativeDouble(fields[1], &parsed.burst_mutations)) {
    *error = "quota spec \"" + spec +
             "\": burst must be a non-negative number (mutations; 0 = default)";
    return false;
  }
  uint64_t total = 0;
  if (field >= 2) {
    if (!ParseUint(fields[2], &total)) {
      *error = "quota spec \"" + spec +
               "\": total must be a non-negative integer (mutations; 0 = unlimited)";
      return false;
    }
    parsed.max_total_mutations = total;
  }
  *quota = parsed;
  return true;
}

void DriverConfig::RegisterFlags(ArgParser& args) {
  const DriverConfig defaults;
  args.AddInt("shards", static_cast<int64_t>(defaults.shards),
              "ingestion shard lanes (1 = unsharded pipeline)");
  args.AddInt("batch-size", static_cast<int64_t>(defaults.batch_size),
              "gutter flush threshold: mutations per batch");
  args.AddDouble("flush-ms", defaults.flush_interval_seconds * 1e3,
                 "flush a non-full gutter once its oldest mutation is this stale");
  args.AddInt("max-pending-batches", static_cast<int64_t>(defaults.max_pending_batches),
              "flushed-batch queue capacity (the backpressure bound)");
  args.AddString("overflow", OverflowName(defaults.overflow),
                 "backpressure policy: block | drop | shed | shed-oldest | degrade");
  args.AddBool("coalesce", defaults.coalesce,
               "keep only the last mutation per (src,dst) within a flush");
  args.AddBool("bg-compaction", defaults.background_compaction,
               "reclaim arena slack in background maintenance steps");
  args.AddBool("fast-path", defaults.fast_path,
               "splice safe single updates in place, bypassing gutter batching");
  args.AddInt("maintenance-budget", static_cast<int64_t>(defaults.maintenance_budget_edges),
              "edge budget per background maintenance step (adapted to observed "
              "idle windows once the driver has measurements)");
  args.AddString("async-mode", AsyncModeName(defaults.async_mode),
                 "async delta-accumulative tier: off | degrade-only | auto "
                 "(needs --overflow degrade and a decomposable engine)");
  args.AddString("checkpoint-dir", "", "enable WAL + checkpoints in this directory");
  args.AddInt("checkpoint-every", static_cast<int64_t>(defaults.checkpoint_every),
              "checkpoint cadence in batches (0 = WAL only)");
  args.AddDouble("scrub-interval-s", defaults.scrub_interval_seconds,
                 "verify durability artifacts every this many idle seconds, "
                 "quarantining corrupt checkpoints and healing torn WALs (0 = off)");
  args.AddString("quarantine-dir", "",
                 "arm admission control; rejects park in this dead-letter WAL directory");
  args.AddInt("max-batch-edges", 0,
              "admission ceiling on mutations per ingested batch (0 = library default)");
  args.AddInt("watchdog-ms", 0,
              "stall watchdog timeout in ms (0 = off; auto-recovery needs --checkpoint-dir)");
  args.AddString("default-quota", "",
                 "per-tenant quota rate[:burst[:total]] for tenants without an entry");
  args.AddString("tenant-quotas", "",
                 "comma-separated tenant=rate[:burst[:total]] quota entries");
}

bool DriverConfig::FromCli(const ArgParser& args, std::string* error) {
  const int64_t shards_flag = args.GetInt("shards");
  if (shards_flag < 1) {
    *error = "--shards must be >= 1 (got " + std::to_string(shards_flag) + ")";
    return false;
  }
  shards = static_cast<size_t>(shards_flag);
  const int64_t batch_flag = args.GetInt("batch-size");
  if (batch_flag < 1) {
    *error = "--batch-size must be >= 1 (got " + std::to_string(batch_flag) + ")";
    return false;
  }
  batch_size = static_cast<size_t>(batch_flag);
  const double flush_ms = args.GetDouble("flush-ms");
  if (flush_ms <= 0.0) {
    *error = "--flush-ms must be > 0 (got " + std::to_string(flush_ms) + ")";
    return false;
  }
  flush_interval_seconds = flush_ms * 1e-3;
  const int64_t pending = args.GetInt("max-pending-batches");
  if (pending < 1) {
    *error = "--max-pending-batches must be >= 1 (got " + std::to_string(pending) + ")";
    return false;
  }
  max_pending_batches = static_cast<size_t>(pending);
  if (!ParseOverflow(args.GetString("overflow"), &overflow)) {
    *error = "--overflow \"" + args.GetString("overflow") +
             "\" is unknown; use block | drop | shed | shed-oldest | degrade";
    return false;
  }
  coalesce = args.GetBool("coalesce");
  background_compaction = args.GetBool("bg-compaction");
  fast_path = args.GetBool("fast-path");
  const int64_t budget = args.GetInt("maintenance-budget");
  if (budget < 1) {
    *error = "--maintenance-budget must be >= 1 (got " + std::to_string(budget) + ")";
    return false;
  }
  maintenance_budget_edges = static_cast<size_t>(budget);
  if (!ParseAsyncMode(args.GetString("async-mode"), &async_mode)) {
    *error = "--async-mode \"" + args.GetString("async-mode") +
             "\" is unknown; use off | degrade-only | auto";
    return false;
  }
  checkpoint_dir = args.GetString("checkpoint-dir");
  const int64_t cadence = args.GetInt("checkpoint-every");
  if (cadence < 0) {
    *error = "--checkpoint-every must be >= 0 (got " + std::to_string(cadence) + ")";
    return false;
  }
  checkpoint_every = static_cast<uint64_t>(cadence);
  const double scrub_s = args.GetDouble("scrub-interval-s");
  if (scrub_s < 0.0) {
    *error = "--scrub-interval-s must be >= 0 (got " + std::to_string(scrub_s) + ")";
    return false;
  }
  scrub_interval_seconds = scrub_s;
  quarantine_dir = args.GetString("quarantine-dir");
  const int64_t max_edges = args.GetInt("max-batch-edges");
  if (max_edges < 0) {
    *error = "--max-batch-edges must be >= 0 (got " + std::to_string(max_edges) + ")";
    return false;
  }
  if (max_edges > 0) {
    admission.max_batch_mutations = static_cast<size_t>(max_edges);
  }
  const int64_t watchdog_ms = args.GetInt("watchdog-ms");
  if (watchdog_ms < 0) {
    *error = "--watchdog-ms must be >= 0 (got " + std::to_string(watchdog_ms) + ")";
    return false;
  }
  watchdog_stall_seconds = static_cast<double>(watchdog_ms) * 1e-3;
  if (!args.GetString("default-quota").empty() &&
      !ParseQuota(args.GetString("default-quota"), &default_quota, error)) {
    *error = "--default-quota: " + *error;
    return false;
  }
  const std::string quotas = args.GetString("tenant-quotas");
  if (!quotas.empty()) {
    std::string entry;
    for (size_t i = 0; i <= quotas.size(); ++i) {
      if (i < quotas.size() && quotas[i] != ',') {
        entry.push_back(quotas[i]);
        continue;
      }
      if (!entry.empty()) {
        const size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) {
          *error = "--tenant-quotas entry \"" + entry +
                   "\" is malformed; expected tenant=rate[:burst[:total]]";
          return false;
        }
        TenantQuota quota;
        if (!ParseQuota(entry.substr(eq + 1), &quota, error)) {
          *error = "--tenant-quotas entry \"" + entry + "\": " + *error;
          return false;
        }
        tenant_quotas[entry.substr(0, eq)] = quota;
        entry.clear();
      }
    }
  }
  const std::string valid = Validate();
  if (!valid.empty()) {
    *error = valid;
    return false;
  }
  return true;
}

bool DriverConfig::FromEnv(std::string* error) {
  *error = "";
  if (!EnvOverride("GRAPHBOLT_SHARDS", error, [&](const std::string& v) {
        uint64_t parsed = 0;
        *error = "expected a positive integer shard count";
        if (!ParseUint(v, &parsed) || parsed == 0) {
          return false;
        }
        shards = static_cast<size_t>(parsed);
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_BATCH_SIZE", error, [&](const std::string& v) {
        uint64_t parsed = 0;
        *error = "expected a positive integer batch size";
        if (!ParseUint(v, &parsed) || parsed == 0) {
          return false;
        }
        batch_size = static_cast<size_t>(parsed);
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_FLUSH_MS", error, [&](const std::string& v) {
        double parsed = 0.0;
        *error = "expected a positive flush interval in milliseconds";
        if (!ParseNonNegativeDouble(v, &parsed) || parsed <= 0.0) {
          return false;
        }
        flush_interval_seconds = parsed * 1e-3;
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_MAX_PENDING_BATCHES", error, [&](const std::string& v) {
        uint64_t parsed = 0;
        *error = "expected a positive integer queue capacity";
        if (!ParseUint(v, &parsed) || parsed == 0) {
          return false;
        }
        max_pending_batches = static_cast<size_t>(parsed);
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_OVERFLOW", error, [&](const std::string& v) {
        *error = "expected block | drop | shed | shed-oldest | degrade";
        return ParseOverflow(v, &overflow);
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_BG_COMPACTION", error, [&](const std::string& v) {
        *error = "expected 0 or 1";
        if (v != "0" && v != "1") {
          return false;
        }
        background_compaction = v == "1";
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_FAST_PATH", error, [&](const std::string& v) {
        *error = "expected 0 or 1";
        if (v != "0" && v != "1") {
          return false;
        }
        fast_path = v == "1";
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_MAINTENANCE_BUDGET", error, [&](const std::string& v) {
        uint64_t parsed = 0;
        *error = "expected a positive integer edge budget";
        if (!ParseUint(v, &parsed) || parsed == 0) {
          return false;
        }
        maintenance_budget_edges = static_cast<size_t>(parsed);
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_ASYNC_MODE", error, [&](const std::string& v) {
        *error = "expected off | degrade-only | auto";
        return ParseAsyncMode(v, &async_mode);
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_CHECKPOINT_DIR", error, [&](const std::string& v) {
        checkpoint_dir = v;
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_CHECKPOINT_EVERY", error, [&](const std::string& v) {
        uint64_t parsed = 0;
        *error = "expected a non-negative integer cadence";
        if (!ParseUint(v, &parsed)) {
          return false;
        }
        checkpoint_every = parsed;
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_SCRUB_INTERVAL_S", error, [&](const std::string& v) {
        double parsed = 0.0;
        *error = "expected a non-negative interval in seconds";
        if (!ParseNonNegativeDouble(v, &parsed)) {
          return false;
        }
        scrub_interval_seconds = parsed;
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_QUARANTINE_DIR", error, [&](const std::string& v) {
        quarantine_dir = v;
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_MAX_BATCH_EDGES", error, [&](const std::string& v) {
        uint64_t parsed = 0;
        *error = "expected a positive integer mutation ceiling";
        if (!ParseUint(v, &parsed) || parsed == 0) {
          return false;
        }
        admission.max_batch_mutations = static_cast<size_t>(parsed);
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_WATCHDOG_MS", error, [&](const std::string& v) {
        double parsed = 0.0;
        *error = "expected a non-negative timeout in milliseconds";
        if (!ParseNonNegativeDouble(v, &parsed)) {
          return false;
        }
        watchdog_stall_seconds = parsed * 1e-3;
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_DEFAULT_QUOTA", error, [&](const std::string& v) {
        std::string quota_error;
        if (!ParseQuota(v, &default_quota, &quota_error)) {
          *error = quota_error;
          return false;
        }
        return true;
      })) {
    return false;
  }
  if (!EnvOverride("GRAPHBOLT_TENANT_QUOTAS", error, [&](const std::string& v) {
        std::string entry;
        for (size_t i = 0; i <= v.size(); ++i) {
          if (i < v.size() && v[i] != ',') {
            entry.push_back(v[i]);
            continue;
          }
          if (!entry.empty()) {
            const size_t eq = entry.find('=');
            std::string quota_error;
            TenantQuota quota;
            if (eq == std::string::npos || eq == 0 ||
                !ParseQuota(entry.substr(eq + 1), &quota, &quota_error)) {
              *error = "entry \"" + entry +
                       "\" is malformed; expected tenant=rate[:burst[:total]]" +
                       (quota_error.empty() ? "" : " (" + quota_error + ")");
              return false;
            }
            tenant_quotas[entry.substr(0, eq)] = quota;
            entry.clear();
          }
        }
        return true;
      })) {
    return false;
  }
  const std::string valid = Validate();
  if (!valid.empty()) {
    *error = valid;
    return false;
  }
  *error = "";
  return true;
}

std::string DriverConfig::Validate() const {
  if (shards < 1 || shards > 1024) {
    return "shards must be in [1, 1024] (got " + std::to_string(shards) +
           "); lanes beyond the core count only add context-switch overhead";
  }
  if (batch_size < 1) {
    return "batch_size must be >= 1";
  }
  if (flush_interval_seconds <= 0.0) {
    return "flush_interval_seconds must be > 0 (a gutter must eventually flush)";
  }
  if (max_pending_batches < 1) {
    return "max_pending_batches must be >= 1 (the queue needs one slot)";
  }
  if (maintenance_budget_edges < 1) {
    return "maintenance_budget_edges must be >= 1";
  }
  if (overflow == OverflowPolicy::kShedToWal && checkpoint_dir.empty()) {
    return "overflow policy \"shed\" parks batches in the durable shed log; "
           "set checkpoint_dir (--checkpoint-dir) or pick block | drop";
  }
  if (scrub_interval_seconds < 0.0) {
    return "scrub_interval_seconds must be >= 0 (0 disables scrubbing)";
  }
  if (scrub_interval_seconds > 0.0 && checkpoint_dir.empty()) {
    return "scrubbing verifies durability artifacts; set checkpoint_dir "
           "(--checkpoint-dir) or leave scrub_interval_seconds at 0";
  }
  if (watchdog_stall_seconds < 0.0) {
    return "watchdog_stall_seconds must be >= 0 (0 disables the watchdog)";
  }
  if (watchdog_stall_seconds > 0.0 && watchdog_poll_seconds <= 0.0) {
    return "watchdog_poll_seconds must be > 0 when the watchdog is armed";
  }
  auto check_quota = [](const std::string& who, const TenantQuota& q) -> std::string {
    if (q.mutations_per_second < 0.0 || q.burst_mutations < 0.0) {
      return who + ": quota rate and burst must be >= 0 (0 = unlimited/default)";
    }
    return "";
  };
  std::string quota_error = check_quota("default_quota", default_quota);
  if (!quota_error.empty()) {
    return quota_error;
  }
  for (const auto& [tenant, quota] : tenant_quotas) {
    quota_error = check_quota("tenant_quotas[" + tenant + "]", quota);
    if (!quota_error.empty()) {
      return quota_error;
    }
  }
  return "";
}

}  // namespace graphbolt
