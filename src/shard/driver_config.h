// DriverConfig: the one validated configuration surface for the streaming
// drivers.
//
// Before the sharded redesign, driver configuration was spread across three
// places: StreamDriver<E>::Options fields, GRAPHBOLT_* environment
// variables, and ad-hoc CLI flags re-declared by every binary
// (--overflow, --quarantine-dir, --watchdog-ms, ...). DriverConfig
// collapses them: one plain struct carrying shard count, batching,
// durability, sentinel knobs, and per-tenant quotas, with
//
//   - RegisterFlags(args) + FromCli(args, &err): the canonical flag
//     surface, registered once and parsed back with actionable errors;
//   - FromEnv(&err): GRAPHBOLT_* overrides (GRAPHBOLT_SHARDS,
//     GRAPHBOLT_BATCH_SIZE, GRAPHBOLT_OVERFLOW, ...), applied on top of
//     the current values;
//   - Validate(): cross-field checks returning an empty string or a
//     message that says what to change;
//   - ToStreamOptions<Engine>(): lowering to StreamDriver<E>::Options for
//     the unsharded driver.
//
// ShardedDriver (src/shard/sharded_driver.h) consumes DriverConfig
// directly; examples and graphbolt_cli build exactly one of these and hand
// it to whichever driver the shard count selects.
#ifndef SRC_SHARD_DRIVER_CONFIG_H_
#define SRC_SHARD_DRIVER_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/driver/stream_driver.h"
#include "src/sentinel/admission.h"
#include "src/util/cli.h"

namespace graphbolt {

// Per-tenant admission quota, enforced by ShardedDriver sessions *before*
// a mutation is routed to a shard lane (on top of the sentinel's content
// screening). All three limits compose; zero means unlimited.
struct TenantQuota {
  // Sustained token-bucket rate, mutations per second.
  double mutations_per_second = 0.0;
  // Bucket capacity (how big a burst the tenant may front-load). 0 picks
  // max(1024, mutations_per_second): one default batch, or a second of
  // sustained rate, whichever is larger.
  double burst_mutations = 0.0;
  // Hard lifetime cap on admitted mutations — deterministic, so tests and
  // metered trials don't depend on wall-clock refill.
  uint64_t max_total_mutations = 0;
};

struct DriverConfig {
  // ----- Sharding ---------------------------------------------------------
  // Ingestion lanes: the vertex space is partitioned shard_of(v) = v % N,
  // and each lane owns its own gutter, queue, worker, WAL lineage, and
  // staging arena. 1 = the unsharded pipeline shape.
  size_t shards = 1;

  // ----- Batching (mirrors StreamDriver::Options) -------------------------
  size_t batch_size = 1024;
  double flush_interval_seconds = 0.05;
  size_t max_pending_batches = 4;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  bool coalesce = true;

  // ----- Graph maintenance ------------------------------------------------
  bool background_compaction = DefaultBackgroundCompaction();
  size_t maintenance_budget_edges = 1u << 16;

  // ----- Single-update fast path ------------------------------------------
  // Enables IngestFast: single mutations the engine classifies safe splice
  // in place, bypassing gutter batching (src/driver/fast_path.h).
  bool fast_path = DefaultFastPath();

  // ----- Async delta-accumulative mode (INTERNALS §14) --------------------
  // When the engine is an AsyncDeltaEngine and overflow is kDegrade,
  // degrade-only/auto let the drivers flip it into the Maiter-style
  // barrier-free async mode under overload, serving eventually-consistent
  // continuously-updating values instead of a frozen snapshot. Inert with
  // any other overflow policy or a non-decomposable engine.
  AsyncModePolicy async_mode = DefaultAsyncModePolicy();
  // Vertex budget per async propagation round (0 = unbounded round).
  size_t async_step_budget = size_t{1} << 14;

  // ----- Durability -------------------------------------------------------
  // Non-empty arms WAL + cadence checkpoints (the caller still constructs
  // the Checkpointer; this carries the knobs to one place).
  std::string checkpoint_dir;
  uint64_t checkpoint_every = 8;
  // Background scrub cadence in seconds of worker idle time: verify every
  // durability artifact (checkpoint chain, journal, shed log, lane
  // lineages) with the predicates recovery uses, quarantining corrupt
  // checkpoints and healing torn WAL tails. 0 disables.
  double scrub_interval_seconds = 0.0;

  // ----- Sentinel ---------------------------------------------------------
  std::string quarantine_dir;
  AdmissionLimits admission;
  GovernorOptions governor;
  double watchdog_stall_seconds = 0.0;
  double watchdog_poll_seconds = 0.05;
  bool watchdog_auto_recover = true;

  // ----- Tenancy ----------------------------------------------------------
  // Quota applied to tenants without an explicit entry (and to the
  // anonymous default session behind ShardedDriver::Ingest).
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;

  // Parses an overflow-policy name (block | drop | shed | shed-oldest |
  // degrade). Returns false on an unknown name, leaving *policy untouched.
  static bool ParseOverflow(const std::string& name, OverflowPolicy* policy);
  static const char* OverflowName(OverflowPolicy policy);

  // Parses an async-mode policy name (off | degrade-only | auto). Returns
  // false on an unknown name, leaving *policy untouched.
  static bool ParseAsyncMode(const std::string& name, AsyncModePolicy* policy);
  static const char* AsyncModeName(AsyncModePolicy policy);

  // Parses a quota spec "rate[:burst[:total]]" (e.g. "5000", "5000:20000",
  // "0:0:1000000"). Returns false with *error set on a malformed spec.
  static bool ParseQuota(const std::string& spec, TenantQuota* quota, std::string* error);

  // Registers the canonical driver flag surface on `args` (shards,
  // batch-size, flush-ms, max-pending-batches, overflow, coalesce,
  // bg-compaction, fast-path, maintenance-budget, checkpoint-dir,
  // checkpoint-every, quarantine-dir, max-batch-edges, watchdog-ms,
  // default-quota, tenant-quotas). Binaries add their own non-driver flags
  // around it.
  static void RegisterFlags(ArgParser& args);

  // Reads the registered flags back into *this. Returns false with *error
  // holding an actionable message (which flag, what it got, what it takes).
  bool FromCli(const ArgParser& args, std::string* error);

  // Applies GRAPHBOLT_* environment overrides onto *this:
  //   GRAPHBOLT_SHARDS, GRAPHBOLT_BATCH_SIZE, GRAPHBOLT_FLUSH_MS,
  //   GRAPHBOLT_MAX_PENDING_BATCHES, GRAPHBOLT_OVERFLOW,
  //   GRAPHBOLT_BG_COMPACTION, GRAPHBOLT_FAST_PATH,
  //   GRAPHBOLT_MAINTENANCE_BUDGET,
  //   GRAPHBOLT_ASYNC_MODE, GRAPHBOLT_CHECKPOINT_DIR,
  //   GRAPHBOLT_CHECKPOINT_EVERY,
  //   GRAPHBOLT_QUARANTINE_DIR, GRAPHBOLT_MAX_BATCH_EDGES,
  //   GRAPHBOLT_WATCHDOG_MS, GRAPHBOLT_DEFAULT_QUOTA,
  //   GRAPHBOLT_TENANT_QUOTAS ("alice=5000,bob=0:0:1000").
  // Returns false with *error set on an unparsable value.
  bool FromEnv(std::string* error);

  // Cross-field validation. Returns the empty string when the config is
  // usable, else one actionable message naming the offending field.
  std::string Validate() const;

  // The quota for `tenant`: its explicit entry, else default_quota.
  TenantQuota QuotaFor(const std::string& tenant) const {
    const auto it = tenant_quotas.find(tenant);
    return it != tenant_quotas.end() ? it->second : default_quota;
  }

  // Lowers to the unsharded driver's options (shards and quotas do not
  // apply there; the checkpointer/injector are runtime objects the caller
  // owns).
  template <typename Engine>
  typename StreamDriver<Engine>::Options ToStreamOptions(
      Checkpointer<Engine>* checkpointer = nullptr,
      FaultInjector* fault_injector = nullptr) const {
    typename StreamDriver<Engine>::Options options;
    options.batch_size = batch_size;
    options.flush_interval_seconds = flush_interval_seconds;
    options.max_pending_batches = max_pending_batches;
    options.overflow = overflow;
    options.coalesce = coalesce;
    options.checkpointer = checkpointer;
    options.fault_injector = fault_injector;
    options.background_compaction = background_compaction;
    options.maintenance_budget_edges = maintenance_budget_edges;
    options.scrub_interval_seconds = scrub_interval_seconds;
    options.fast_path = fast_path;
    options.quarantine_dir = quarantine_dir;
    options.admission = admission;
    options.governor = governor;
    options.watchdog_stall_seconds = watchdog_stall_seconds;
    options.watchdog_poll_seconds = watchdog_poll_seconds;
    options.watchdog_auto_recover = watchdog_auto_recover;
    options.async_mode = async_mode;
    options.async_step_budget = async_step_budget;
    return options;
  }
};

}  // namespace graphbolt

#endif  // SRC_SHARD_DRIVER_CONFIG_H_
