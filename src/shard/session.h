// Per-tenant session state: the quota enforcement point of the sharded
// driver's producer API.
//
// Every producer talks to ShardedDriver through a Session handle opened
// with OpenSession(tenant_id). Sessions of the same tenant share one
// TenantState — a token bucket (sustained rate + burst) plus an optional
// hard lifetime cap — so a tenant cannot multiply its quota by opening
// more sessions. Admission is whole-batch-or-nothing: a batch either fits
// the remaining allowance and debits it, or is rejected intact (no partial
// admits), which keeps the accounting exact and the producer's retry
// simple.
//
// The lifetime cap (TenantQuota::max_total_mutations) is deliberately
// wall-clock-free: tests and metered trials get deterministic outcomes —
// offer a capped tenant more than its allowance and exactly the allowance
// is admitted — where a refilling bucket would depend on scheduling.
#ifndef SRC_SHARD_SESSION_H_
#define SRC_SHARD_SESSION_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

#include "src/shard/driver_config.h"
#include "src/util/timer.h"

namespace graphbolt {

// Cumulative per-tenant counters, readable through Session::stats().
struct TenantStats {
  // Mutations that passed the quota gate and entered the pipeline.
  uint64_t mutations_accepted = 0;
  // Mutations refused by the quota gate (rate, burst, or lifetime cap).
  uint64_t mutations_quota_rejected = 0;
  // Whole-batch rejections behind those mutations.
  uint64_t batches_quota_rejected = 0;
  // Mutations this tenant had parked in the dead-letter quarantine.
  uint64_t mutations_quarantined = 0;
};

// The shared state behind every session of one tenant. Thread-safe; owned
// by the driver (sessions hold a borrowed pointer and must not outlive it).
class TenantState {
 public:
  TenantState(std::string tenant, TenantQuota quota)
      : tenant_(std::move(tenant)),
        quota_(quota),
        burst_(quota.burst_mutations > 0.0
                   ? quota.burst_mutations
                   : std::max(1024.0, quota.mutations_per_second)),
        tokens_(burst_) {}

  const std::string& tenant() const { return tenant_; }

  // Admits `n` mutations as one unit, debiting the bucket and the lifetime
  // allowance, or rejects all of them. A rate of 0 disables the bucket; a
  // cap of 0 disables the lifetime limit.
  bool TryAdmit(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto count = static_cast<uint64_t>(n);
    if (quota_.max_total_mutations > 0 &&
        admitted_total_ + count > quota_.max_total_mutations) {
      RejectLocked(count);
      return false;
    }
    if (quota_.mutations_per_second > 0.0) {
      tokens_ = std::min(
          burst_, tokens_ + quota_.mutations_per_second * refill_.Seconds());
      refill_.Reset();
      if (tokens_ < static_cast<double>(n)) {
        RejectLocked(count);
        return false;
      }
      tokens_ -= static_cast<double>(n);
    }
    admitted_total_ += count;
    stats_.mutations_accepted += count;
    return true;
  }

  // Called by the driver when this tenant's batch was parked in quarantine.
  // The content screen runs before the quota gate, so a quarantined batch
  // never debited the allowance; this only keeps the tenant's accounting.
  void CountQuarantined(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.mutations_quarantined += static_cast<uint64_t>(n);
  }

  TenantStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  TenantQuota quota() const { return quota_; }

 private:
  void RejectLocked(uint64_t count) {
    stats_.mutations_quota_rejected += count;
    ++stats_.batches_quota_rejected;
  }

  mutable std::mutex mu_;
  const std::string tenant_;
  const TenantQuota quota_;
  const double burst_;   // bucket capacity (resolved from the quota)
  double tokens_;        // current allowance; refilled lazily on TryAdmit
  Timer refill_;         // epoch of the last refill
  uint64_t admitted_total_ = 0;
  TenantStats stats_;
};

}  // namespace graphbolt

#endif  // SRC_SHARD_SESSION_H_
