// ShardedDriver: a multi-lane, multi-tenant ingestion front-end over one
// global BSP engine.
//
// StreamDriver (src/driver/stream_driver.h) funnels every producer through
// one gutter, one queue, and one worker. ShardedDriver partitions the
// vertex space into N shards — shard_of(v) = v % N — and gives each shard
// its own ingestion *lane*:
//
//   sessions ──route by src──► lane gutter ──flush──► lane queue ──► lane
//   (tenant quota gate)        (batch by size          (backpressure) worker
//                               or staleness)
//
// Each lane owns a gutter, a bounded queue, a worker thread, a per-shard
// write-ahead log (`<checkpoint_dir>/shard-<i>.wal`), and a *staging
// partition* — a MutableGraph holding exactly the edges whose source this
// shard owns, with its own slack-CSR arenas. A lane worker first *stages* a
// popped batch (journals it to the shard WAL and applies it to the
// partition, concurrently across lanes), then immediately *promotes* it
// into the global engine under the engine mutex. Promotion is serialized —
// the engines are synchronous BSP refiners and cannot apply concurrently —
// so the engine-lock acquisition order IS the global apply order; an
// observer hook records it, which is how the equivalence tests replay the
// admitted stream through an unsharded driver and compare snapshots
// bitwise.
//
// Producers do not call the driver directly: they open a Session
// (OpenSession(tenant_id)) whose tenant quota — token bucket + lifetime
// cap, shared across all sessions of the tenant (src/shard/session.h) —
// gates admission whole-batch-or-nothing *after* the sentinel's content
// screen and *before* any lane lock. The legacy Ingest/IngestBatch surface
// delegates to an implicit default session (tenant "", default_quota).
//
// PrepQuery is a two-phase barrier:
//   Phase 1 flushes every lane's gutter remainder into its queue;
//   Phase 2 waits until every lane's in-flight count reaches zero.
// Because each mutation is routed by its source vertex, all mutations of
// one (src, dst) pair traverse the same lane in ingest order, so the
// admitted stream the engine sees is a legal interleaving of the producers'
// streams — and after the barrier the engine holds exactly one BSP
// snapshot of it, the same guarantee StreamDriver's barrier gives.
//
// Durability: the *global* checkpointer (WAL + cadence snapshots under the
// engine mutex, exactly StreamDriver's protocol) remains the recovery
// source of truth — a cold StreamDriver over the same checkpoint directory
// recovers the state. The per-shard WALs are lineage: a per-lane record of
// what each shard staged this run, reset at construction, for
// observability and shard-local debugging.
//
// Sentinel under shards: the full overload/stall layer of the unsharded
// driver (src/sentinel/) runs across lanes.
//   - Shedding (kShedToWal / kShedOldest): every lane sheds into the ONE
//     globally sequence-tagged shed log (Checkpointer::AppendShed), and
//     PrepQuery's phase 2 gains a global replay barrier — after all lanes
//     drain, the shed log replays in shed-sequence order under the engine
//     mutex, so replayed mutations land in one deterministic global order
//     no matter which lane shed them.
//   - Degrade (kDegrade): one AdmissionGovernor aggregates every lane's
//     apply-latency EWMA and the total queued depth. While it reports
//     overload, a lane whose queue is full leaves the batch coalescing in
//     its gutter and PrepQuery serves the last globally consistent BSP
//     snapshot (whole batches promote under the engine mutex, so the state
//     a degraded read observes is always the exact fixpoint of some prefix
//     of the admitted stream). Self-clears when pressure recedes on every
//     lane — the governor's depth input is the sum over lanes.
//   - Watchdog: per-lane StageScope heartbeats feed a single StallWatchdog
//     verdict (the slot table is lanes x stages). A stalled lane is
//     recovered lane-locally — its worker sheds the in-hand batch durably
//     and resumes, sibling lanes never stop — with one global
//     auto-Recover() escalation path (checkpoint + WAL tail + preserved
//     queue remainders + shed replay) when a checkpointer is attached.
#ifndef SRC_SHARD_SHARDED_DRIVER_H_
#define SRC_SHARD_SHARDED_DRIVER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/streaming_engine.h"
#include "src/driver/fast_path.h"
#include "src/driver/gutter_buffer.h"
#include "src/driver/maintenance_budget.h"
#include "src/engine/stats.h"
#include "src/fault/checkpoint.h"
#include "src/fault/fault_injector.h"
#include "src/fault/wal.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"
#include "src/parallel/bounded_queue.h"
#include "src/parallel/task_arena.h"
#include "src/sentinel/admission.h"
#include "src/sentinel/quarantine.h"
#include "src/sentinel/watchdog.h"
#include "src/shard/driver_config.h"
#include "src/shard/session.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

template <StreamingEngine Engine>
class ShardedDriver {
 public:
  using Value = EngineValueT<Engine>;
  // Called under the journal serialization immediately before each
  // promotion, in global apply order: (owning lane, the batch as applied).
  // Shed replays report the pseudo-lane lanes_.size(); fast-path safe
  // applies report lanes_.size() + 1 (they bypass the lanes entirely).
  using ApplyObserver = std::function<void(size_t lane, const MutationBatch& batch)>;

  // The producer handle: a movable, non-copyable capability to ingest as
  // one tenant. All sessions of a tenant share quota state; the handle
  // borrows it and must not outlive the driver.
  class Session {
   public:
    Session() = default;
    Session(Session&& other) noexcept
        : driver_(other.driver_), state_(other.state_) {
      other.driver_ = nullptr;
      other.state_ = nullptr;
    }
    Session& operator=(Session&& other) noexcept {
      driver_ = other.driver_;
      state_ = other.state_;
      other.driver_ = nullptr;
      other.state_ = nullptr;
      return *this;
    }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    bool valid() const { return driver_ != nullptr; }
    const std::string& tenant() const { return state_->tenant(); }

    // Thread-safe. False when the quota gate, the admission screen, or a
    // stopped driver refused the mutation.
    bool Ingest(const EdgeMutation& mutation) {
      return driver_->IngestFor(state_, mutation);
    }

    // Single-update fast path (config.fast_path; see IngestFast on the
    // driver): safe mutations splice in place past the lane gutters, unsafe
    // ones escalate into the owning lane. Same quota and screening gates as
    // Ingest.
    bool IngestFast(const EdgeMutation& mutation) {
      return driver_->IngestFastFor(state_, mutation);
    }

    // Whole-batch quota admission, then per-lane routing. Returns how many
    // mutations entered the pipeline (0 on a quota or screen rejection).
    size_t IngestBatch(const MutationBatch& batch) {
      return driver_->IngestBatchFor(state_, batch);
    }

    // This tenant's cumulative quota accounting.
    TenantStats stats() const { return state_->stats(); }

   private:
    friend ShardedDriver;
    Session(ShardedDriver* driver, TenantState* state)
        : driver_(driver), state_(state) {}

    ShardedDriver* driver_ = nullptr;
    TenantState* state_ = nullptr;
  };

  // The engine must outlive the driver and already hold the initial
  // snapshot (run InitialCompute first). `config` must pass Validate().
  // The checkpointer, when given, is the global durability authority —
  // attach it exactly as with StreamDriver. The fault injector (test-only,
  // a no-op unless compiled with GRAPHBOLT_FAULT_INJECTION=1) arms the
  // lane queues and the sentinel sites; not owned.
  explicit ShardedDriver(Engine* engine, DriverConfig config,
                         Checkpointer<Engine>* checkpointer = nullptr,
                         FaultInjector* fault_injector = nullptr)
      : engine_(engine),
        config_(std::move(config)),
        governor_(config_.governor),
        checkpointer_(checkpointer),
        injector_(fault_injector) {
    const std::string invalid = config_.Validate();
    GB_CHECK(invalid.empty()) << "DriverConfig: " << invalid;
    GB_CHECK(config_.overflow != OverflowPolicy::kShedToWal || checkpointer_ != nullptr)
        << "OverflowPolicy::kShedToWal requires a Checkpointer";
    if (config_.background_compaction) {
      if constexpr (GraphMaintainableEngine<Engine>) {
        engine_->mutable_graph()->SetCompactionMode(SlackCsr::CompactionMode::kBackground);
      } else {
        GB_LOG(kWarning) << "background_compaction requested but the engine "
                            "does not expose its graph; staying synchronous";
        config_.background_compaction = false;
      }
    }
    if (!config_.quarantine_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(config_.quarantine_dir, ec);
      quarantine_ = std::make_unique<Quarantine>(
          config_.quarantine_dir, injector_,
          checkpointer_ != nullptr ? checkpointer_->env() : nullptr);
    }
    const bool wal_enabled = !config_.checkpoint_dir.empty();
    StorageEnv* lane_env =
        checkpointer_ != nullptr ? checkpointer_->env() : StorageEnv::Default();
    if (wal_enabled) {
      lane_env->CreateDirectories(config_.checkpoint_dir);
    }
    lanes_.reserve(config_.shards);
    for (size_t i = 0; i < config_.shards; ++i) {
      lanes_.push_back(std::make_unique<Lane>(i, config_.max_pending_batches));
      Lane& lane = *lanes_.back();
      lane.queue.ArmFaultInjector(injector_);
      if (wal_enabled) {
        // The lane lineage survives restarts: it is a recovery source
        // (Recover replays the lineages in parallel), so it is NOT reset
        // here. Compaction drops records a retained checkpoint covers.
        lane.wal.Open(config_.checkpoint_dir + "/shard-" + std::to_string(i) + ".wal",
                      lane_env);
        lane.wal_enabled = true;
      }
      if (config_.background_compaction) {
        lane.partition.SetCompactionMode(SlackCsr::CompactionMode::kBackground);
      }
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.shard_lanes = lanes_.size();
    }
    // One heartbeat slot table entry per (lane, stage); sized before the
    // first worker can heartbeat.
    watchdog_.SetLanes(lanes_.size());
    for (auto& lane : lanes_) {
      Lane* raw = lane.get();
      raw->worker = std::thread([this, raw] { LaneLoop(*raw); });
    }
    if (config_.watchdog_stall_seconds > 0.0) {
      watchdog_.Start({config_.watchdog_poll_seconds, config_.watchdog_stall_seconds},
                      [this](const StallCause& cause) { OnStall(cause); });
    }
  }

  ~ShardedDriver() { Stop(); }

  ShardedDriver(const ShardedDriver&) = delete;
  ShardedDriver& operator=(const ShardedDriver&) = delete;

  size_t shards() const { return lanes_.size(); }
  const DriverConfig& config() const { return config_; }

  // Opens (or re-opens) a session for `tenant`. Sessions of one tenant
  // share quota state, so a tenant cannot widen its allowance by opening
  // more of them.
  Session OpenSession(const std::string& tenant) {
    TenantState* state = GetTenantState(tenant);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.sessions_opened;
    }
    return Session(this, state);
  }

  // Legacy surface: the pre-session Ingest/IngestBatch API, delegating to
  // the implicit default session (tenant "", config.default_quota).
  bool Ingest(const EdgeMutation& mutation) {
    return IngestFor(GetTenantState(std::string()), mutation);
  }
  bool IngestFast(const EdgeMutation& mutation) {
    return IngestFastFor(GetTenantState(std::string()), mutation);
  }
  size_t IngestBatch(const MutationBatch& batch) {
    return IngestBatchFor(GetTenantState(std::string()), batch);
  }

  // Hands every lane's gutter remainder to its worker.
  void Flush() {
    for (auto& lane : lanes_) {
      std::unique_lock<std::mutex> lock(lane->mu);
      FlushLaneLocked(*lane, lock);
    }
  }

  // Two-phase query barrier with a global shed-replay phase. Phase 1
  // flushes every lane; phase 2 drains them; then any batches parked in
  // the global shed log replay in shed-sequence order under the engine
  // mutex — one deterministic order no matter which lane shed them — and
  // the flush/drain/replay loop repeats until nothing is shed (a producer
  // racing the barrier may shed behind the drain). On return every
  // mutation ingested before the call has been promoted, so the engine
  // holds an exact BSP snapshot of the admitted stream. Returns false on
  // the fast path (nothing buffered, in flight, or shed anywhere — the
  // previous snapshot is still current). Under kDegrade with the governor
  // reporting overload, serves the last globally consistent snapshot
  // immediately instead of waiting on the barrier.
  bool PrepQuery() {
    bool idle = true;
    for (auto& lane : lanes_) {
      std::lock_guard<std::mutex> lock(lane->mu);
      if (!lane->gutter.empty() || lane->in_flight != 0) {
        idle = false;
        break;
      }
    }
    if constexpr (AsyncDeltaEngine<Engine>) {
      // An async-engaged engine holds eventually-consistent values, not an
      // exact BSP snapshot — the fast path's "still current" claim would
      // be a lie, so force the reconciling barrier instead.
      if (async_engaged_.load(std::memory_order_acquire)) {
        idle = false;
      }
    }
    if (idle) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (shed_batches_ == 0) {
        return false;
      }
      idle = false;
    }
    if (config_.overflow == OverflowPolicy::kDegrade && degraded()) {
      // Degraded serve: whole batches promote under engine_mu_, so in BSP
      // mode the engine state is always the exact BSP fixpoint of *some*
      // prefix of the admitted stream — stale, never inconsistent. With
      // the async tier engaged the served values instead update
      // continuously (eventually consistent; stats().async_residual bounds
      // the distance to the fixed point). Clears on its own once pressure
      // recedes on every lane.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.degraded_queries;
      if (async_engaged_.load(std::memory_order_acquire)) {
        ++stats_.async_fresh_queries;
      }
      return true;
    }
    for (;;) {
      for (auto& lane : lanes_) {
        std::unique_lock<std::mutex> lock(lane->mu);
        FlushLaneLocked(*lane, lock, /*allow_refill=*/false);
      }
      for (auto& lane : lanes_) {
        std::unique_lock<std::mutex> lock(lane->mu);
        lane->drained_cv.wait(lock, [&] { return lane->in_flight == 0; });
      }
      if constexpr (AsyncDeltaEngine<Engine>) {
        if (async_engaged_.load(std::memory_order_acquire)) {
          // The barrier promises an exact BSP snapshot: run the reconciling
          // barrier, then re-run the flush/drain loop (a producer may have
          // raced in while the engine recomputed).
          {
            std::lock_guard<std::mutex> engine_lock(engine_mu_);
            ReconcileAsync();
          }
          continue;
        }
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        if (shed_batches_ == 0) {
          return true;
        }
      }
      ReplayShed();  // the global replay barrier
    }
  }

  // Barrier + reference to the engine's values (see StreamDriver::values
  // for the aliasing caveats — meant for quiescent callers).
  const std::vector<Value>& values() {
    PrepQuery();
    return engine_->values();
  }

  // Barrier + copy, safe under concurrent ingestion from other threads.
  std::vector<Value> QuerySnapshot() {
    PrepQuery();
    std::lock_guard<std::mutex> engine_lock(engine_mu_);
    // Seqlock against in-flight fast-path splices: safe applies leave the
    // value vector bitwise unchanged, but the epoch check makes the
    // prefix-consistency argument local instead of relying on that proof.
    for (;;) {
      const uint64_t epoch = epoch_.ReadStable();
      std::vector<Value> snapshot = engine_->values();
      if (epoch_.Validate(epoch)) {
        return snapshot;
      }
    }
  }

  // Cumulative driver statistics; the shard block (shard_lanes,
  // shard_batches_staged, shard_wal_appends, cross_shard_mutations,
  // sessions_opened, *_quota_rejected) is populated only here.
  EngineStats stats() const {
    EngineStats snapshot;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      snapshot = stats_;
    }
    {
      std::lock_guard<std::mutex> lock(governor_mu_);
      snapshot.apply_ewma_seconds = governor_.apply_ewma_seconds();
      snapshot.degraded_entries = governor_.degraded_entries();
    }
    if (checkpointer_ != nullptr) {
      checkpointer_->MergeStats(&snapshot);
    }
    snapshot.fastpath_safe_applied = fast_counters_.safe_applied.load(std::memory_order_relaxed);
    snapshot.fastpath_unsafe_escalated =
        fast_counters_.unsafe_escalated.load(std::memory_order_relaxed);
    snapshot.fastpath_epoch_flips = epoch_.flips();
    return snapshot;
  }

  // False after the watchdog has declared a lane stalled, until the lane's
  // local recovery (shed the in-hand batch, resume) or a global Recover()
  // completes.
  bool healthy() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return healthy_;
  }

  // True while the governor has the driver in degraded mode (overload):
  // under kDegrade, PrepQuery serves the last globally consistent snapshot
  // instead of blocking on the barrier.
  bool degraded() const {
    std::lock_guard<std::mutex> lock(governor_mu_);
    return governor_.degraded();
  }

  // Mutations buffered across all lane gutters (not yet flushed).
  size_t pending_mutations() const {
    size_t pending = 0;
    for (const auto& lane : lanes_) {
      std::lock_guard<std::mutex> lock(lane->mu);
      pending += lane->gutter.size();
    }
    return pending;
  }

  // Registers the promotion-order observer. Call before ingestion starts;
  // the hook runs under the engine mutex, so keep it cheap.
  void set_apply_observer(ApplyObserver observer) {
    std::lock_guard<std::mutex> engine_lock(engine_mu_);
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    observer_ = std::move(observer);
  }

  // A quiescent snapshot of lane i's staging partition — the edges whose
  // source vertex shard i owns. Call only while no producer can trigger a
  // flush (after PrepQuery with ingestion paused, or after Stop); the
  // barrier's lane handshake makes the worker's writes visible.
  EdgeList ShardPartitionEdges(size_t lane) const {
    GB_CHECK(lane < lanes_.size()) << "lane " << lane << " out of range";
    return lanes_[lane]->partition.ToEdgeList();
  }

  // The dead-letter quarantine; null unless config.quarantine_dir was set.
  Quarantine* quarantine() { return quarantine_.get(); }
  uint64_t quarantined_batches() const {
    return quarantine_ != nullptr ? quarantine_->parked_batches() : 0;
  }

  // Drains the quarantine through fixup(reason, batch&) — see
  // StreamDriver::ReplayQuarantine. Re-admission goes through the default
  // session (an operator action, but still quota-accounted).
  template <typename Fixup>
  size_t ReplayQuarantine(Fixup&& fixup) {
    if (quarantine_ == nullptr) {
      return 0;
    }
    return quarantine_->Drain([&](RejectReason reason, MutationBatch&& batch) {
      if (!fixup(reason, batch)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.quarantine_discarded;
        stats_.mutations_dropped += batch.size();
        return;
      }
      const size_t accepted = IngestBatch(batch);
      if (accepted > 0 || batch.empty()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.quarantine_replayed;
      }
    });
  }
  size_t ReplayQuarantine() {
    return ReplayQuarantine([](RejectReason, MutationBatch&) { return true; });
  }

  // Writes a global checkpoint of the current engine state immediately.
  bool CheckpointNow() {
    if constexpr (CheckpointableEngine<Engine>) {
      if (checkpointer_ == nullptr) {
        return false;
      }
      StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kCheckpoint);
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      std::lock_guard<std::mutex> journal_lock(journal_mu_);
      return checkpointer_->WriteCheckpoint(applied_seq_);
    } else {
      return false;
    }
  }

  // Global crash recovery — the escalation path behind the lane-local
  // story. Stops every lane, joins the workers (a worker parked in an
  // injected stall observes stall_abort_, sheds its in-hand batch, and
  // exits), restores the newest valid checkpoint, replays the WAL tail,
  // promotes the batches still queued in any lane (process memory, not
  // crash casualties — applied in lane order, which is a legal
  // interleaving), drains the shed log in shed-sequence order, and
  // restarts the lanes. Exactly StreamDriver::Recover's protocol against
  // the same on-disk state, so either driver shape restores the other's
  // checkpoints. Returns false (lanes restarted, engine state left as-is)
  // when no valid checkpoint exists.
  bool Recover() {
    if constexpr (!CheckpointableEngine<Engine>) {
      GB_LOG(kError) << "Recover() requires a CheckpointableEngine";
      return false;
    } else {
      std::lock_guard<std::mutex> stop_lock(stop_mu_);
      if (checkpointer_ == nullptr) {
        GB_LOG(kError) << "Recover() without a Checkpointer";
        return false;
      }
      Timer wall;
      for (auto& lane : lanes_) {
        std::lock_guard<std::mutex> lock(lane->mu);
        lane->accepting = false;
      }
      for (auto& lane : lanes_) {
        lane->queue.Close();
      }
      // Cooperative cancellation: a worker parked in an injected stage
      // stall observes this token, sheds its in-hand batch, and exits so
      // the joins below return.
      stall_abort_.store(true);
      for (auto& lane : lanes_) {
        if (lane->worker.joinable()) {
          lane->worker.join();
        }
      }
      // Queue leftovers, preserved per lane in pop order. Lane order is a
      // legal global order: the batches were concurrent at the crash.
      std::vector<std::pair<size_t, TimedBatch>> preserved;
      for (size_t i = 0; i < lanes_.size(); ++i) {
        while (std::optional<TimedBatch> leftover = lanes_[i]->queue.Pop()) {
          preserved.emplace_back(i, std::move(*leftover));
        }
      }
      bool restored = false;
      bool applied_preserved = false;
      uint64_t replayed_lanes = 0;
      uint64_t replayed_wal = 0;
      uint64_t replayed_shed = 0;
      uint64_t recovered_seq = 0;
      {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        if constexpr (AsyncDeltaEngine<Engine>) {
          // WAL replay goes through BSP ApplyMutations: a crash inside an
          // async window reconciles first (force-checkpointing, so the
          // reconciled fixpoint is the newest restore point).
          ReconcileAsync();
        }
        bool can_absorb = false;
        {
          // journal_mu_ fences out concurrent fast-path splices while the
          // engine is rebuilt from disk (ApplyJournaled re-takes it below).
          std::lock_guard<std::mutex> journal_lock(journal_mu_);
          uint64_t ckpt_seq = 0;
          restored = checkpointer_->RestoreLatest(&ckpt_seq);
          if (restored) {
            applied_seq_ = ckpt_seq;
            // Native sharded recovery: scan every lane's WAL lineage in
            // parallel (one thread per lane — the scans are independent
            // files), then apply the merged tail serially in global
            // sequence order, so the promotion order is bit-identical to
            // the pre-crash run. The global journal sweep below starts
            // from wherever the lineages end: when they are complete it
            // is a no-op, and when a lineage is gapped (lost lane file)
            // it covers the remainder.
            replayed_lanes = ReplayLaneLineages(ckpt_seq);
            replayed_wal = checkpointer_->ReplayWal(
                applied_seq_, [&](uint64_t seq, MutationBatch&& batch) {
                  engine_->ApplyMutations(batch);
                  applied_seq_ = seq;
                });
          }
          can_absorb = restored || applied_seq_ > 0;
        }
        if (can_absorb) {
          // Preserved and shed batches are promoting for the FIRST time, so
          // the observer sees them (the WAL tail above is a re-promotion of
          // already-observed batches and stays silent) — an observer-recorded
          // stream stays a complete, exactly-once record of the admitted
          // stream even across recovery.
          for (auto& [lane_index, item] : preserved) {
            // Keep the lane's staging partition in step with its lineage
            // (the global engine is the recovery authority either way).
            lanes_[lane_index]->partition.ApplyBatch(item.batch);
            ApplyJournaled(item.batch, lane_index);
          }
          applied_preserved = true;
          replayed_shed = checkpointer_->DrainShed(
              [&](MutationBatch&& batch) { ApplyJournaled(batch, lanes_.size()); });
        }
        // Snapshot for the log line below: once the lanes respawn they
        // advance applied_seq_ under journal_mu_, which the logging no
        // longer holds.
        std::lock_guard<std::mutex> journal_lock(journal_mu_);
        if (restored) {
          if (checkpointer_->WriteCheckpoint(applied_seq_)) {
            // The fresh checkpoint supersedes every lineage record at or
            // below it; drop them so the lane WALs stay bounded.
            CompactLaneWals();
          }
        }
        recovered_seq = applied_seq_;
      }
      for (auto& lane : lanes_) {
        lane->queue.Reset();
      }
      for (size_t i = 0; i < lanes_.size(); ++i) {
        size_t from_lane = 0;
        for (const auto& [lane_index, item] : preserved) {
          from_lane += lane_index == i ? 1 : 0;
        }
        std::lock_guard<std::mutex> lock(lanes_[i]->mu);
        lanes_[i]->in_flight -= std::min(lanes_[i]->in_flight, from_lane);
        if (lanes_[i]->in_flight == 0) {
          lanes_[i]->drained_cv.notify_all();
        }
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        healthy_ = true;
        // Subtract only what DrainShed actually replayed: a producer racing
        // against recovery may shed after the drain, and that batch must
        // stay counted or the next barrier would never replay it.
        shed_batches_ -= std::min(shed_batches_, static_cast<size_t>(replayed_shed));
        if (applied_preserved) {
          stats_.batches_applied += preserved.size() + replayed_shed;
        } else {
          for (const auto& [lane_index, item] : preserved) {
            stats_.mutations_dropped += item.batch.size();
          }
        }
        if (restored) {
          ++stats_.recoveries;
          stats_.batches_replayed += replayed_lanes + replayed_wal + replayed_shed;
          stats_.lane_batches_replayed += replayed_lanes;
          stats_.shed_batches_replayed += replayed_shed;
        }
      }
      stall_abort_.store(false);
      for (auto& lane : lanes_) {
        lane->stall_abort.store(false);
        std::lock_guard<std::mutex> lock(lane->mu);
        lane->accepting = true;
      }
      for (auto& lane : lanes_) {
        Lane* raw = lane.get();
        raw->worker = std::thread([this, raw] { LaneLoop(*raw); });
      }
      stopped_ = false;
      // Restart the watchdog after a Stop()-then-Recover() revival. No-op
      // when it is already running — including when this very call runs
      // *on* the watchdog thread (auto-recovery).
      if (config_.watchdog_stall_seconds > 0.0 && !watchdog_.running()) {
        watchdog_.Start({config_.watchdog_poll_seconds, config_.watchdog_stall_seconds},
                        [this](const StallCause& cause) { OnStall(cause); });
      }
      if (restored) {
        GB_LOG(kInfo) << "sharded recovery to batch " << recovered_seq << " ("
                      << replayed_lanes << " lane-lineage, " << replayed_wal
                      << " global-WAL, " << preserved.size() << " queued, "
                      << replayed_shed << " shed batches replayed) in "
                      << wall.Millis() << " ms";
      }
      return restored;
    }
  }

  // Sequence number of the newest batch promoted through the global
  // journal — the durable frontier (see StreamDriver::applied_seq).
  uint64_t applied_seq() {
    std::lock_guard<std::mutex> lock(journal_mu_);
    return applied_seq_;
  }

  // One synchronous scrub pass: the checkpointer's artifacts (checkpoint
  // chain, global journal, shed log) plus every lane lineage. Returns
  // corrupt artifacts found; 0 is a healthy disk or no checkpointer.
  uint64_t ScrubNow() {
    if (checkpointer_ == nullptr) {
      return 0;
    }
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    const uint64_t checkpointer_corruptions = checkpointer_->Scrub().corruptions;
    // Lane lineages append under journal_mu_ (AppendLaneWal), so the same
    // lock that serializes the global journal serializes this scan.
    uint64_t lane_corruptions = 0;
    for (auto& lane : lanes_) {
      if (!lane->wal_enabled) {
        continue;
      }
      WalScanInfo info = lane->wal.Verify();
      if (!info.clean()) {
        ++lane_corruptions;
        GB_LOG(kWarning) << "scrub: lane lineage " << lane->wal.path()
                         << " torn/corrupt; healing to last checksummed record";
        lane->wal.Heal();
      }
    }
    if (lane_corruptions > 0) {
      // The checkpointer counts its own finds (surfaced via MergeStats);
      // only the lane lineages are accounted here.
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.scrub_corruptions += lane_corruptions;
    }
    return checkpointer_corruptions + lane_corruptions;
  }

  // Drains and shuts down: lanes stop accepting, gutter remainders flush,
  // every queued batch is promoted, workers join, and anything left shed
  // replays. Idempotent; called by the destructor. After a stall the
  // un-applied queue leftovers are parked in the durable shed log
  // (recoverable by a later cold-start Recover) or counted dropped.
  void Stop() {
    // The watchdog's callback may be inside Recover() — which takes
    // stop_mu_ — so stop it *before* acquiring stop_mu_ or Stop deadlocks
    // behind its own watchdog.
    watchdog_.Stop();
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopped_) {
      return;
    }
    for (auto& lane : lanes_) {
      std::unique_lock<std::mutex> lock(lane->mu);
      lane->accepting = false;
      FlushLaneLocked(*lane, lock, /*allow_refill=*/false);
    }
    stall_abort_.store(true);  // release workers parked in an injected stall
    for (auto& lane : lanes_) {
      lane->queue.Close();
    }
    for (auto& lane : lanes_) {
      if (lane->worker.joinable()) {
        lane->worker.join();
      }
    }
    for (auto& lane : lanes_) {
      while (std::optional<TimedBatch> leftover = lane->queue.Pop()) {
        const bool shed = checkpointer_ != nullptr && checkpointer_->AppendShed(leftover->batch);
        {
          std::lock_guard<std::mutex> lock(lane->mu);
          if (--lane->in_flight == 0) {
            lane->drained_cv.notify_all();
          }
        }
        std::lock_guard<std::mutex> slock(stats_mu_);
        if (shed) {
          stats_.mutations_shed_to_wal += leftover->batch.size();
          ++shed_batches_;
        } else {
          stats_.mutations_dropped += leftover->batch.size();
        }
      }
    }
    if constexpr (AsyncDeltaEngine<Engine>) {
      // Lane workers have joined, so nothing ticks the mode again: leave
      // the engine reconciled to bitwise-deterministic BSP state.
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      ReconcileAsync();
    }
    bool have_shed;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      have_shed = shed_batches_ > 0;
    }
    if (have_shed) {
      ReplayShed();  // engines are idle: every worker has joined
    }
    stopped_ = true;
  }

 private:
  struct TimedBatch {
    MutationBatch batch;
    Timer since_flush;
  };

  // One ingestion lane: everything shard i owns. The mutex guards the
  // gutter, in_flight, and accepting; the queue synchronizes itself; the
  // WAL, wal_seq, and partition are touched only by the lane worker (and
  // by quiescent readers after the barrier handshake).
  struct Lane {
    Lane(size_t index, size_t queue_capacity) : index(index), queue(queue_capacity) {}

    const size_t index;
    mutable std::mutex mu;
    std::condition_variable drained_cv;
    GutterBuffer gutter;
    // Batches taken from the gutter but not yet promoted (queued, mid-push,
    // or being applied). The barrier's phase 2 waits for zero.
    size_t in_flight = 0;
    bool accepting = true;
    BoundedQueue<TimedBatch> queue;
    std::thread worker;
    // Lane-local cooperative cancellation: set by the watchdog verdict so
    // a worker parked in an injected stall sheds its in-hand batch and
    // resumes; consumed (reset) by the worker.
    std::atomic<bool> stall_abort{false};
    bool wal_enabled = false;
    WriteAheadLog wal;
    MutableGraph partition;
  };

  size_t ShardOf(VertexId v) const { return static_cast<size_t>(v) % lanes_.size(); }

  TenantState* GetTenantState(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      it = tenants_
               .emplace(tenant, std::make_unique<TenantState>(tenant, config_.QuotaFor(tenant)))
               .first;
    }
    return it->second.get();
  }

  bool IngestFor(TenantState* state, const EdgeMutation& mutation) {
    if (quarantine_ != nullptr) {
      const AdmissionVerdict verdict = ScreenMutation(mutation, config_.admission);
      if (!verdict.admitted()) {
        QuarantineReject(verdict.reason, MutationBatch{mutation}, state);
        return false;
      }
    }
    if (!state->TryAdmit(1)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.mutations_quota_rejected;
      ++stats_.batches_quota_rejected;
      return false;
    }
    return RouteAdmitted(mutation);
  }

  // The lane-routing tail of IngestFor: the mutation has already passed the
  // sentinel screen and the quota gate. Also the fast path's escalation
  // target, so an unsafe mutation is never screened or quota-charged twice.
  bool RouteAdmitted(const EdgeMutation& mutation) {
    const bool cross = ShardOf(mutation.src) != ShardOf(mutation.dst);
    Lane& lane = *lanes_[ShardOf(mutation.src)];
    {
      std::unique_lock<std::mutex> lock(lane.mu);
      if (!lane.accepting) {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.mutations_dropped;
        return false;
      }
      lane.gutter.Add(mutation);
      if (lane.gutter.size() >= config_.batch_size) {
        FlushLaneLocked(lane, lock);
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.mutations_enqueued;
    stats_.cross_shard_mutations += cross ? 1 : 0;
    return true;
  }

  // Session::IngestFast's implementation (see StreamDriver::IngestFast for
  // the protocol narrative). Screen and quota-admit exactly like IngestFor,
  // then classify under a journal try-lock: safe mutations journal at the
  // next global sequence number and splice in place — bypassing the lane
  // gutters and their staging partitions, which remain lineage of the
  // *batched* stream only — while unsafe (or journal-contended) ones
  // escalate into the owning lane as a refinement micro-batch. Safe applies
  // notify the observer under the journal serialization with pseudo-lane
  // lanes_.size() + 1, so an observer-recorded stream stays a complete,
  // in-order record of the admitted stream.
  bool IngestFastFor(TenantState* state, const EdgeMutation& mutation) {
    if constexpr (!FastPathEngine<Engine>) {
      return IngestFor(state, mutation);
    } else {
      if (!config_.fast_path) {
        return IngestFor(state, mutation);
      }
      if (quarantine_ != nullptr) {
        const AdmissionVerdict verdict = ScreenMutation(mutation, config_.admission);
        if (!verdict.admitted()) {
          QuarantineReject(verdict.reason, MutationBatch{mutation}, state);
          return false;
        }
      }
      if (!state->TryAdmit(1)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.mutations_quota_rejected;
        ++stats_.batches_quota_rejected;
        return false;
      }
      {
        VertexClaims::Guard guard(&claims_, mutation.src, mutation.dst);
        std::unique_lock<std::mutex> journal(journal_mu_, std::try_to_lock);
        // While the async tier is engaged the BSP dependency store is
        // stale, so ClassifyFast cannot reason about it: escalate. Mode
        // flips hold journal_mu_, so a false read stays false here.
        if (journal.owns_lock() && !async_engaged_.load(std::memory_order_acquire) &&
            engine_->ClassifyFast(mutation).safe) {
          {
            // The owning lane's accepting flag stands in for a driver-wide
            // gate: Stop/Recover flip every lane before touching the engine.
            Lane& lane = *lanes_[ShardOf(mutation.src)];
            std::lock_guard<std::mutex> lock(lane.mu);
            if (!lane.accepting) {
              std::lock_guard<std::mutex> slock(stats_mu_);
              ++stats_.mutations_dropped;
              return false;
            }
          }
          const MutationBatch batch{mutation};
          if (observer_) {
            observer_(lanes_.size() + 1, batch);
          }
          ++applied_seq_;
          bool journaled = true;
          if (checkpointer_ != nullptr) {
            journaled = checkpointer_->AppendWal(applied_seq_, batch);
          }
          AppendLaneWal(applied_seq_, batch, ShardOf(mutation.src));
          epoch_.BeginApply();
          const bool applied = engine_->ApplyFastSafe(mutation);
          epoch_.EndApply();
          // journal_mu_ excluded every writer between ClassifyFast and the
          // re-validation inside ApplyFastSafe, so the verdict cannot flip.
          GB_CHECK(applied) << "fast-path re-validation failed under the journal lock";
          if (checkpointer_ != nullptr && !journaled) {
            // The WAL record was lost (injected fault): force a checkpoint
            // so recovery still covers this splice.
            if constexpr (CheckpointableEngine<Engine>) {
              checkpointer_->MaybeCheckpoint(applied_seq_, /*force=*/true);
            }
          }
          fast_counters_.safe_applied.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.mutations_enqueued;
          return true;
        }
      }
      fast_counters_.unsafe_escalated.fetch_add(1, std::memory_order_relaxed);
      return RouteAdmitted(mutation);
    }
  }

  size_t IngestBatchFor(TenantState* state, const MutationBatch& batch) {
    if (batch.empty()) {
      return 0;
    }
    if (quarantine_ != nullptr) {
      const AdmissionVerdict verdict = ScreenBatch(batch, config_.admission);
      if (!verdict.admitted()) {
        QuarantineReject(verdict.reason, batch, state);
        return 0;
      }
    }
    if (!state->TryAdmit(batch.size())) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.mutations_quota_rejected += batch.size();
      ++stats_.batches_quota_rejected;
      return 0;
    }
    // Route by source shard, preserving intra-lane ingest order — all
    // mutations of one (src, dst) pair share a lane, so per-pair order is
    // exactly the producer's.
    std::vector<MutationBatch> per_lane(lanes_.size());
    uint64_t cross = 0;
    for (const EdgeMutation& m : batch) {
      per_lane[ShardOf(m.src)].push_back(m);
      cross += ShardOf(m.src) != ShardOf(m.dst) ? 1 : 0;
    }
    size_t accepted = 0;
    size_t dropped = 0;
    for (size_t i = 0; i < per_lane.size(); ++i) {
      if (per_lane[i].empty()) {
        continue;
      }
      Lane& lane = *lanes_[i];
      std::unique_lock<std::mutex> lock(lane.mu);
      for (size_t j = 0; j < per_lane[i].size(); ++j) {
        if (!lane.accepting) {  // re-checked: FlushLaneLocked drops the lock
          dropped += per_lane[i].size() - j;
          break;
        }
        lane.gutter.Add(per_lane[i][j]);
        ++accepted;
        if (lane.gutter.size() >= config_.batch_size) {
          FlushLaneLocked(lane, lock);
        }
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.mutations_enqueued += accepted;
    stats_.mutations_dropped += dropped;
    stats_.cross_shard_mutations += cross;
    return accepted;
  }

  // Takes the lane's gutter as a batch and moves it toward the worker.
  // Caller holds `lock` on lane.mu; the queue handoff happens unlocked
  // (in_flight covers the window).
  //
  // Overflow on a full lane queue follows the policy: kBlock waits (the
  // backpressure this producer feels), kDropNewest drops, kShedToWal sheds
  // into the *global* sequence-tagged shed log, kShedOldest evicts the
  // lane's oldest queued batch into the shed log (or drops it) to admit
  // the fresh one, and kDegrade puts the batch *back* into the lane's
  // gutter to be re-coalesced and retried — unless `allow_refill` is false
  // (query barrier / shutdown), where kDegrade falls back to a lossless
  // blocking push. A closed queue (shutdown or recovery) sheds durably
  // when a checkpointer is attached and drops otherwise, under every
  // policy. The Refill keeps the gutter's age epoch (see GutterBuffer), so
  // the lane's monotonic stale-flush deadline survives degrade churn.
  void FlushLaneLocked(Lane& lane, std::unique_lock<std::mutex>& lock,
                       bool allow_refill = true) {
    if (lane.gutter.empty()) {
      return;
    }
    if (config_.overflow == OverflowPolicy::kDegrade && allow_refill &&
        !lane.queue.closed() && lane.queue.size() >= lane.queue.capacity()) {
      // Coalesce under pressure: leave the batch in the gutter (duplicates
      // die at the eventual Take) instead of churning Take/Refill on every
      // ingested mutation while the queue stays full.
      UpdateGovernorPressure();
      return;
    }
    TimedBatch item;
    uint64_t coalesced = 0;
    item.batch = lane.gutter.Take(config_.coalesce, &coalesced);
    item.since_flush.Reset();
    const size_t mutations = item.batch.size();
    ++lane.in_flight;
    lock.unlock();
    bool pushed = false;
    double waited = 0.0;
    std::optional<TimedBatch> evicted;
    if (lane.queue.TryPush(std::move(item))) {
      pushed = true;
    } else if (config_.overflow == OverflowPolicy::kBlock ||
               (config_.overflow == OverflowPolicy::kDegrade && !allow_refill)) {
      Timer wait;
      pushed = lane.queue.Push(std::move(item));
      waited = wait.Seconds();
    } else if (config_.overflow == OverflowPolicy::kShedOldest) {
      pushed = lane.queue.PushEvictOldest(std::move(item), &evicted);
    }
    const bool closed = !pushed && lane.queue.closed();
    const bool refill = !pushed && !closed && allow_refill &&
                        config_.overflow == OverflowPolicy::kDegrade;
    bool shed = false;
    if (!pushed && !refill && config_.overflow != OverflowPolicy::kDropNewest &&
        checkpointer_ != nullptr) {
      shed = checkpointer_->AppendShed(item.batch);
    }
    bool evicted_shed = false;
    if (evicted.has_value() && checkpointer_ != nullptr) {
      evicted_shed = checkpointer_->AppendShed(evicted->batch);
    }
    lock.lock();
    if (evicted.has_value() && --lane.in_flight == 0) {
      lane.drained_cv.notify_all();
    }
    if (!pushed) {
      if (refill) {
        lane.gutter.Refill(std::move(item.batch));
      }
      if (--lane.in_flight == 0) {
        lane.drained_cv.notify_all();
      }
    }
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.mutations_coalesced += coalesced;
      stats_.queue_wait_seconds += waited;
      if (evicted.has_value()) {
        // The evicted batch leaves the pipeline un-applied: account it
        // shed (durable) or dropped; its in-flight slot was released above.
        ++stats_.shed_oldest_evictions;
        if (evicted_shed) {
          stats_.mutations_shed_to_wal += evicted->batch.size();
          ++shed_batches_;
        } else {
          stats_.mutations_dropped += evicted->batch.size();
        }
      }
      if (!pushed && !refill) {
        if (shed) {
          stats_.mutations_shed_to_wal += mutations;
          ++shed_batches_;
        } else {
          stats_.mutations_dropped += mutations;
        }
      }
    }
    UpdateGovernorPressure();
  }

  void LaneLoop(Lane& lane) {
    for (;;) {
      Timer poll;
      std::optional<TimedBatch> item =
          lane.queue.PopFor(std::chrono::duration<double>(NextPollSeconds(lane)));
      if (item.has_value()) {
        if (ApplyLane(lane, std::move(*item))) {
          return;  // stall-aborted globally: recovery owns the pipeline now
        }
      } else if (lane.queue.closed()) {
        if (lane.queue.Empty()) {
          break;
        }
        continue;
      } else if (lane.index == 0) {
        // Idle poll: advance a pending global rewrite. One lane suffices —
        // the budget bounds each step, not the number of ticking threads.
        // The empty poll is the idle window the adaptive budget sizes
        // ticks against; feed the observation before spending it.
        budget_.RecordIdle(poll.Seconds());
        GlobalMaintenanceTick();
        AsyncTick();   // refresh overload state; propagate or reconcile
        MaybeScrub();  // cadence-gated artifact verification
      }
      // The stale check runs after *every* iteration — successful pops
      // included, so a busy lane queue cannot starve a stale gutter —
      // against the monotonic deadline NextPollSeconds carries across
      // polls (same contract as StreamDriver::WorkerLoop).
      if (TryFlushStaleLane(lane)) {
        return;  // stall-aborted globally during the direct apply
      }
    }
  }

  // The lane worker's next wait, shortened to expire exactly when the
  // gutter's oldest mutation goes stale (see StreamDriver::NextPollSeconds).
  double NextPollSeconds(const Lane& lane) const {
    std::lock_guard<std::mutex> lock(lane.mu);
    if (lane.gutter.empty()) {
      return config_.flush_interval_seconds;
    }
    const double remaining = config_.flush_interval_seconds - lane.gutter.AgeSeconds();
    if (remaining <= 0.0) {
      return lane.in_flight > 0 ? 1e-3 : 1e-4;
    }
    return remaining;
  }

  // Flushes a stale lane gutter and applies it directly — never through
  // the queue (the worker must not block behind itself), and only when
  // in_flight == 0 so ordering is preserved. Returns true when the worker
  // must exit (globally stall-aborted mid-apply).
  bool TryFlushStaleLane(Lane& lane) {
    TimedBatch stale;
    uint64_t coalesced = 0;
    {
      std::unique_lock<std::mutex> lock(lane.mu);
      if (lane.in_flight != 0 || lane.gutter.empty() ||
          lane.gutter.AgeSeconds() < config_.flush_interval_seconds) {
        return false;
      }
      StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kGutterFlush, lane.index);
      stale.batch = lane.gutter.Take(config_.coalesce, &coalesced);
      stale.since_flush.Reset();
      ++lane.in_flight;
    }
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.mutations_coalesced += coalesced;
    }
    return ApplyLane(lane, std::move(stale));
  }

  // Stage, then promote. Staging (shard WAL append + partition apply) runs
  // concurrently across lanes; promotion serializes on the engine mutex,
  // whose acquisition order defines the global apply order. Returns true
  // when the apply was cancelled by *global* stall recovery — the worker
  // must exit so Recover() can join it; the in-hand batch has been shed
  // durably (or counted dropped) so recovery's shed drain replays it. A
  // *lane-local* cancellation sheds the in-hand batch the same way but
  // returns false: the lane resumes on its own, siblings never noticed.
  bool ApplyLane(Lane& lane, TimedBatch item) {
    if (GB_FAULT_POINT(injector_, FaultSite::kStageStall)) {
      // Injected hung apply: park (cooperatively) with this lane's kApply
      // heartbeat reading busy until a cancellation token releases it.
      // Parks *outside* engine_mu_ — sibling lanes keep promoting the
      // whole time; a stage that wedged while holding the engine could be
      // detected but never joined (see watchdog.h).
      StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kApply, lane.index);
      GB_LOG(kWarning) << "FaultInjector: lane " << lane.index << " apply stage stalled";
      while (!stall_abort_.load() && !lane.stall_abort.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const bool global_abort = stall_abort_.load();
      lane.stall_abort.store(false);  // consume the lane-local token
      const bool shed = checkpointer_ != nullptr && checkpointer_->AppendShed(item.batch);
      {
        std::lock_guard<std::mutex> lock(lane.mu);
        if (--lane.in_flight == 0) {
          lane.drained_cv.notify_all();
        }
      }
      std::lock_guard<std::mutex> slock(stats_mu_);
      if (shed) {
        stats_.mutations_shed_to_wal += item.batch.size();
        ++shed_batches_;
      } else {
        stats_.mutations_dropped += item.batch.size();
      }
      if (!global_abort) {
        // Lane-local recovery is complete: the in-hand batch is parked in
        // the shed log for the next barrier and this lane resumes popping.
        healthy_ = true;
      }
      return global_abort;
    }
    Timer wall;
    EngineStats applied;
    uint64_t rebuilds = 0;
    bool async_applied = false;
    bool async_stepped = false;
    double async_residual = 0.0;
    uint64_t priority_delta = 0;
    {
      StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kApply, lane.index);
      // The lane lineage is journaled at promotion time (AppendLaneWal,
      // under journal_mu_) so its records carry the same global sequence
      // numbers as the checkpointer's journal — that alignment is what
      // lets Recover replay the lineages in parallel and still land on
      // the exact pre-crash promotion order.
      lane.partition.ApplyBatch(item.batch);
      if (config_.background_compaction) {
        // One bounded increment per staged batch keeps the partition's
        // rewrites overlapped with its own stream.
        lane.partition.MaintenanceStep(config_.maintenance_budget_edges);
      }
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      SyncAsyncMode();
      if constexpr (AsyncDeltaEngine<Engine>) {
        if (async_engaged_.load(std::memory_order_relaxed)) {
          AsyncApplyJournaled(item.batch, lane.index);  // reconciles on WAL loss
          async_applied = true;
          if (async_engaged_.load(std::memory_order_relaxed) &&
              engine_->AsyncResidual() > 0.0) {
            // One bounded propagation round rides along with every promote,
            // so served values chase the mutations they absorb even when no
            // lane ever goes idle. Priority-lane forks happen inside the
            // engine; attribute them here where stats_mu_ is available.
            const uint64_t before = TaskArena::Instance().counters().tasks_priority;
            engine_->AsyncStep(config_.async_step_budget);
            priority_delta = TaskArena::Instance().counters().tasks_priority - before;
            async_stepped = true;
          }
          async_residual = engine_->AsyncResidual();
        }
      }
      if (!async_applied) {
        ApplyJournaled(item.batch, lane.index);
      }
      applied = engine_->stats();
      if constexpr (GraphMaintainableEngine<Engine>) {
        rebuilds = engine_->mutable_graph()->adaptive_rebuilds();
      }
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.batches_applied;
      ++stats_.shard_batches_staged;
      // The graph's rebuild counter is cumulative; mirror, don't sum.
      stats_.adaptive_rebuilds = rebuilds;
      stats_.seconds += applied.seconds;
      stats_.mutation_seconds += applied.mutation_seconds;
      stats_.edges_processed += applied.edges_processed;
      stats_.iterations += applied.iterations;
      stats_.tasks_forked += applied.tasks_forked;
      stats_.tasks_stolen += applied.tasks_stolen;
      stats_.inline_runs += applied.inline_runs;
      stats_.tasks_priority += applied.tasks_priority + priority_delta;
      stats_.flush_latency_seconds += item.since_flush.Seconds();
      if (async_applied) {
        ++stats_.async_applies;
        stats_.async_steps += async_stepped ? 1 : 0;
        stats_.async_residual = async_residual;
      }
    }
    {
      // Every lane's promote feeds the one global governor: the EWMA sees
      // all apply latencies, the pressure input sees the total depth.
      std::lock_guard<std::mutex> glock(governor_mu_);
      governor_.RecordApply(wall.Seconds());
      governor_.Update(QueuedDepth());
    }
    std::lock_guard<std::mutex> lock(lane.mu);
    if (--lane.in_flight == 0) {
      lane.drained_cv.notify_all();
    }
    return false;
  }

  // Every engine apply funnels through here: notify the observer, assign
  // the next global sequence number, journal write-ahead, apply, checkpoint
  // on cadence — StreamDriver's exact protocol, so recovery is
  // interchangeable. Caller holds engine_mu_; journal_mu_ is taken here so
  // fast-path splices interleave only at batch boundaries, and the observer
  // runs under it so observer order is exactly WAL/apply order even with
  // fast-path applies in the mix.
  void ApplyJournaled(const MutationBatch& batch, size_t observer_lane) {
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    if (observer_) {
      observer_(observer_lane, batch);
    }
    ++applied_seq_;
    bool journaled = true;
    if (checkpointer_ != nullptr) {
      journaled = checkpointer_->AppendWal(applied_seq_, batch);
    }
    AppendLaneWal(applied_seq_, batch, observer_lane);
    engine_->ApplyMutations(batch);
    if (checkpointer_ != nullptr) {
      if constexpr (CheckpointableEngine<Engine>) {
        checkpointer_->MaybeCheckpoint(applied_seq_, /*force=*/!journaled);
        CompactLaneWals();
      }
    }
  }

  // Appends one promoted batch to its owning lane's WAL lineage, keyed by
  // the GLOBAL sequence number just assigned under journal_mu_ (held by
  // every caller). Batches promoted outside any lane — shed replays and
  // fast-path pseudo-lanes — hash by sequence so the lineages stay a
  // partition of the global journal.
  void AppendLaneWal(uint64_t seq, const MutationBatch& batch, size_t observer_lane) {
    if (lanes_.empty() || !lanes_[0]->wal_enabled) {
      return;
    }
    const size_t target =
        observer_lane < lanes_.size() ? observer_lane : static_cast<size_t>(seq % lanes_.size());
    if (lanes_[target]->wal.Append(seq, batch)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shard_wal_appends;
    }
  }

  // Drops every lane-lineage record already covered by the oldest retained
  // checkpoint (no restore can start below it). Caller holds journal_mu_.
  // Cheap when nothing changed: one directory listing per call, rewrites
  // only on cutoff movement.
  void CompactLaneWals() {
    if (checkpointer_ == nullptr || lanes_.empty() || !lanes_[0]->wal_enabled) {
      return;
    }
    const uint64_t cutoff = checkpointer_->OldestRetainedCheckpointSeq();
    if (cutoff == 0 || cutoff == lane_wal_cutoff_) {
      return;
    }
    lane_wal_cutoff_ = cutoff;
    for (auto& lane : lanes_) {
      lane->wal.DropThrough(cutoff);
    }
  }

  // Lane-parallel native recovery: scan every lane lineage concurrently
  // for records past `after_seq`, merge by global sequence number, apply
  // serially in that order. Stops at the first gap or duplicate (a lost or
  // compacted lineage segment) and leaves the rest to the caller's global
  // journal sweep, which starts from wherever this landed. Caller holds
  // engine_mu_ and journal_mu_; lanes are joined. Returns batches applied.
  uint64_t ReplayLaneLineages(uint64_t after_seq) {
    if (lanes_.empty() || !lanes_[0]->wal_enabled) {
      return 0;
    }
    std::vector<std::vector<std::pair<uint64_t, MutationBatch>>> tails(lanes_.size());
    {
      std::vector<std::thread> scanners;
      scanners.reserve(lanes_.size());
      for (size_t i = 0; i < lanes_.size(); ++i) {
        scanners.emplace_back([this, i, after_seq, &tails] {
          WalScanInfo info;
          lanes_[i]->wal.Replay(
              after_seq,
              [&](uint64_t seq, MutationBatch&& batch) {
                tails[i].emplace_back(seq, std::move(batch));
              },
              static_cast<size_t>(-1), &info);
          if (!info.clean()) {
            // A kill mid-append tore this lineage's tail. Truncate it back
            // to the last checksummed record NOW, so post-recovery appends
            // extend a verifiable lineage instead of landing after garbage.
            lanes_[i]->wal.Heal();
          }
        });
      }
      for (std::thread& t : scanners) {
        t.join();
      }
    }
    std::vector<std::pair<uint64_t, MutationBatch>> merged;
    for (auto& tail : tails) {
      merged.insert(merged.end(), std::make_move_iterator(tail.begin()),
                    std::make_move_iterator(tail.end()));
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    uint64_t replayed = 0;
    uint64_t expect = after_seq + 1;
    for (auto& [seq, batch] : merged) {
      if (seq != expect) {
        GB_LOG(kWarning) << "lane lineage gap at seq " << expect << " (next record " << seq
                         << "); handing off to the global journal sweep";
        break;
      }
      // Lineage records are re-promotions of already-observed batches:
      // apply without re-journaling, observer silent (same contract as
      // the global WAL tail).
      engine_->ApplyMutations(batch);
      applied_seq_ = seq;
      ++expect;
      ++replayed;
    }
    return replayed;
  }

  // Lane-0-only (single ticking thread, so the cadence timer needs no
  // lock): run a scrub pass once the configured interval of wall time has
  // passed since the last one (see StreamDriver::MaybeScrub).
  void MaybeScrub() {
    if (checkpointer_ == nullptr || config_.scrub_interval_seconds <= 0.0 ||
        scrub_timer_.Seconds() < config_.scrub_interval_seconds) {
      return;
    }
    scrub_timer_.Reset();
    ScrubNow();
  }

  // One background-compaction increment on the global graph, in a lane's
  // idle window (see StreamDriver::MaintenanceTick).
  void GlobalMaintenanceTick() {
    if constexpr (GraphMaintainableEngine<Engine>) {
      if (!config_.background_compaction) {
        return;
      }
      // Adaptive budget: sized from lane 0's observed idle windows and the
      // per-edge rewrite cost, falling back to the configured constant
      // until both signals have data (see maintenance_budget.h). Only
      // lane 0 ticks, so last_maintenance_edges_ is single-threaded.
      const size_t budget = budget_.Next();
      SlackCsr::CompactionStats compaction;
      Timer step;
      {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        std::lock_guard<std::mutex> journal_lock(journal_mu_);  // vs fast-path splices
        MutableGraph* graph = engine_->mutable_graph();
        graph->MaintenanceStep(budget);
        compaction = graph->compaction_stats();
      }
      budget_.RecordStep(compaction.background_edges_copied - last_maintenance_edges_,
                         step.Seconds());
      last_maintenance_edges_ = compaction.background_edges_copied;
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.maintenance_steps = compaction.maintenance_steps;
      stats_.background_compactions = compaction.background_compactions;
      stats_.background_compaction_edges = compaction.background_edges_copied;
      stats_.forced_sync_compactions = compaction.forced_sync_compactions;
      stats_.maintenance_budget_edges = budget;
    }
  }

  // ----- Async delta-accumulative mode (INTERNALS §14) ---------------------
  //
  // The sharded variant of StreamDriver's async tier (see stream_driver.h
  // for the full protocol). Same invariants, sharded lock map: mode flips
  // hold BOTH engine_mu_ and journal_mu_ (fast-path splices run under
  // journal_mu_ alone); the governor lives under governor_mu_; stats under
  // stats_mu_. While engaged: IngestFastFor escalates, cadence checkpoints
  // are suppressed, per-lane WAL staging and the global WAL both keep
  // journaling every batch, and the observer stream stays a complete
  // record — AsyncApplyJournaled invokes it under journal_mu_ exactly like
  // the BSP path, so an observer-driven re-run reproduces the apply order.

  // True when policy, overflow policy, and the governor agree the engine
  // should be running async. kAuto and kDegradeOnly share the degrade
  // trigger today (see AsyncModePolicy).
  bool AsyncWanted() const {
    if (config_.async_mode == AsyncModePolicy::kOff ||
        config_.overflow != OverflowPolicy::kDegrade) {
      return false;
    }
    std::lock_guard<std::mutex> glock(governor_mu_);
    return governor_.degraded();
  }

  // Flips the engine to match AsyncWanted(). Caller holds engine_mu_.
  void SyncAsyncMode() {
    if constexpr (AsyncDeltaEngine<Engine>) {
      const bool want = AsyncWanted();
      const bool engaged = async_engaged_.load(std::memory_order_relaxed);
      if (want && !engaged) {
        double residual = 0.0;
        {
          std::lock_guard<std::mutex> journal_lock(journal_mu_);
          engine_->EnterAsyncMode();
          async_engaged_.store(true, std::memory_order_release);
          residual = engine_->AsyncResidual();
        }
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.async_entries;
        stats_.async_residual = residual;
      } else if (!want && engaged) {
        ReconcileAsync();
      }
    }
  }

  // One reconciling barrier: async -> BSP (a from-scratch refinement on the
  // final graph restores bitwise-deterministic state), then a forced
  // checkpoint — cadence checkpoints were suppressed across the async
  // window, so the store must re-cover the frontier now. No-op when the
  // engine is already synchronous. Caller holds engine_mu_ but not
  // stats_mu_.
  void ReconcileAsync() {
    if constexpr (AsyncDeltaEngine<Engine>) {
      if (!async_engaged_.load(std::memory_order_relaxed)) {
        return;
      }
      {
        std::lock_guard<std::mutex> journal_lock(journal_mu_);
        engine_->ExitAsyncReconcile();
        async_engaged_.store(false, std::memory_order_release);
        if (checkpointer_ != nullptr) {
          if constexpr (CheckpointableEngine<Engine>) {
            StallWatchdog::StageScope stage(&watchdog_, PipelineStage::kCheckpoint);
            checkpointer_->WriteCheckpoint(applied_seq_);
          }
        }
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.async_reconciles;
      stats_.async_residual = 0.0;
    }
  }

  // The async counterpart of ApplyJournaled: notify the observer, journal
  // write-ahead, then the barrier-free apply. No cadence checkpoint — the
  // dependency store is stale while async, so a snapshot here would be
  // unrecoverable; a lost WAL record instead forces an immediate
  // reconcile, whose checkpoint supersedes it. Caller holds engine_mu_.
  void AsyncApplyJournaled(const MutationBatch& batch, size_t observer_lane) {
    if constexpr (AsyncDeltaEngine<Engine>) {
      bool journaled = true;
      {
        std::lock_guard<std::mutex> journal_lock(journal_mu_);
        if (observer_) {
          observer_(observer_lane, batch);
        }
        ++applied_seq_;
        if (checkpointer_ != nullptr) {
          journaled = checkpointer_->AppendWal(applied_seq_, batch);
        }
        AppendLaneWal(applied_seq_, batch, observer_lane);
        engine_->AsyncApplyMutations(batch);
      }
      if (checkpointer_ != nullptr && !journaled) {
        GB_LOG(kWarning) << "async apply lost its WAL record; reconciling to a checkpoint";
        ReconcileAsync();
      }
    }
  }

  // An idle-window async round on lane 0: refresh the governor (a quiet
  // queue is what clears degraded mode), flip the engine to match, and —
  // while engaged and unconverged — run one bounded propagation round.
  // Running on every idle poll is what makes the mode self-clearing
  // without waiting for a query barrier, and what drives the residual to
  // zero once ingestion pauses.
  void AsyncTick() {
    if constexpr (AsyncDeltaEngine<Engine>) {
      if (config_.async_mode == AsyncModePolicy::kOff ||
          config_.overflow != OverflowPolicy::kDegrade) {
        return;
      }
      {
        std::lock_guard<std::mutex> glock(governor_mu_);
        governor_.Update(QueuedDepth());
      }
      bool stepped = false;
      double residual = 0.0;
      uint64_t priority_delta = 0;
      {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        SyncAsyncMode();
        if (async_engaged_.load(std::memory_order_relaxed) &&
            engine_->AsyncResidual() > 0.0) {
          const uint64_t before = TaskArena::Instance().counters().tasks_priority;
          residual = engine_->AsyncStep(config_.async_step_budget);
          priority_delta = TaskArena::Instance().counters().tasks_priority - before;
          stepped = true;
        }
      }
      if (stepped) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.async_steps;
        stats_.async_residual = residual;
        stats_.tasks_priority += priority_delta;
      }
    }
  }

  // Applies batches parked in the global shed log through the journaled
  // path, in shed-sequence order — one deterministic global order no
  // matter which lane shed them. shed_replay_mu_ serializes concurrent
  // barriers so a batch is never applied twice; the engine lock orders the
  // replay against every lane worker. The observer sees replayed batches
  // with the pseudo-lane index lanes_.size() ("shed replay"), so an
  // observer-driven re-run still captures the true global apply order.
  void ReplayShed() {
    if (checkpointer_ == nullptr) {
      return;
    }
    std::lock_guard<std::mutex> replay_lock(shed_replay_mu_);
    uint64_t replayed = 0;
    EngineStats summed;
    {
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      if constexpr (AsyncDeltaEngine<Engine>) {
        // Shed batches replay through BSP ApplyMutations; reconcile inside
        // this engine scope so a racing AsyncTick cannot re-enter async
        // between the barrier and the drain.
        ReconcileAsync();
      }
      replayed = checkpointer_->DrainShed([&](MutationBatch&& batch) {
        ApplyJournaled(batch, lanes_.size());
        const EngineStats& applied = engine_->stats();
        summed.seconds += applied.seconds;
        summed.mutation_seconds += applied.mutation_seconds;
        summed.edges_processed += applied.edges_processed;
        summed.iterations += applied.iterations;
        summed.tasks_forked += applied.tasks_forked;
        summed.tasks_stolen += applied.tasks_stolen;
        summed.inline_runs += applied.inline_runs;
        summed.tasks_priority += applied.tasks_priority;
      });
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.shed_batches_replayed += replayed;
    stats_.batches_applied += replayed;
    stats_.seconds += summed.seconds;
    stats_.mutation_seconds += summed.mutation_seconds;
    stats_.edges_processed += summed.edges_processed;
    stats_.iterations += summed.iterations;
    stats_.tasks_forked += summed.tasks_forked;
    stats_.tasks_stolen += summed.tasks_stolen;
    stats_.inline_runs += summed.inline_runs;
    stats_.tasks_priority += summed.tasks_priority;
    shed_batches_ = shed_batches_ >= replayed ? shed_batches_ - replayed : 0;
  }

  // Watchdog verdict: some lane's stage exceeded the stall timeout. Runs
  // on the watchdog thread, outside the watchdog's lock. Marks the driver
  // unhealthy, then releases the stalled lane's worker via its lane-local
  // token — the worker sheds its in-hand batch durably and resumes, and
  // sibling lanes never stop (the park is outside the engine mutex). With
  // auto-recovery configured, escalates to the full global Recover() on
  // top: restore, replay WAL + queued + shed, restart every lane.
  void OnStall(const StallCause& cause) {
    GB_LOG(kWarning) << "watchdog: lane " << cause.lane << " stage "
                     << PipelineStageName(cause.stage) << " stalled for "
                     << cause.stalled_seconds << " s";
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.stalls_detected;
      healthy_ = false;
    }
    if (cause.lane < lanes_.size()) {
      lanes_[cause.lane]->stall_abort.store(true);  // lane-local release
    }
    if (config_.watchdog_auto_recover && checkpointer_ != nullptr) {
      if (Recover()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.watchdog_recoveries;
      }
      watchdog_.ClearStall();
    }
  }

  // Total queued depth across every lane — the governor's pressure input,
  // which is what makes degrade fire on any overloaded lane and clear only
  // when pressure recedes on all of them.
  size_t QueuedDepth() const {
    size_t depth = 0;
    for (const auto& lane : lanes_) {
      depth += lane->queue.size();
    }
    return depth;
  }

  void UpdateGovernorPressure() {
    std::lock_guard<std::mutex> lock(governor_mu_);
    governor_.Update(QueuedDepth());
  }

  void QuarantineReject(RejectReason reason, const MutationBatch& batch, TenantState* state) {
    const bool parked = quarantine_->Append(reason, batch);
    if (parked) {
      state->CountQuarantined(batch.size());
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (parked) {
      ++stats_.batches_quarantined;
      stats_.mutations_quarantined += batch.size();
    } else {
      stats_.mutations_dropped += batch.size();
    }
    GB_LOG(kWarning) << "admission: rejected batch of " << batch.size() << " mutations ("
                     << RejectReasonName(reason)
                     << (parked ? "); quarantined" : "); dead-letter append failed, dropped");
  }

  Engine* engine_;
  DriverConfig config_;
  // The one overload governor, fed by every lane: the EWMA sees all apply
  // latencies, the pressure input the total queued depth. Guarded by
  // governor_mu_ (a leaf lock).
  AdmissionGovernor governor_;
  Checkpointer<Engine>* checkpointer_;
  FaultInjector* injector_;

  std::vector<std::unique_ptr<Lane>> lanes_;

  std::mutex engine_mu_;  // held while the engine is applied or snapshotted
  // Journal mutex, nested strictly *inside* engine_mu_ (never the reverse):
  // serializes applied_seq_, observer_ invocation, the WAL append order,
  // and every write to the engine/graph — batched promotions (via
  // ApplyJournaled), global maintenance, checkpoint writes, recovery
  // restore, and fast-path splices. The fast path takes only this mutex,
  // never engine_mu_, which is what keeps safe single-update applies free
  // of the engine lock. Lane mutexes may be taken under it (leafward).
  std::mutex journal_mu_;
  uint64_t applied_seq_ = 0;
  // Oldest retained checkpoint seq the lane lineages were last compacted
  // through (guarded by journal_mu_; see CompactLaneWals).
  uint64_t lane_wal_cutoff_ = 0;
  // Lane-0-only scrub cadence (see MaybeScrub).
  Timer scrub_timer_;
  ApplyObserver observer_;

  // Fast-path state (config.fast_path; see src/driver/fast_path.h).
  VertexClaims claims_;
  FastPathEpoch epoch_;
  FastPathCounters fast_counters_;

  mutable std::mutex stats_mu_;
  EngineStats stats_;
  // Batches currently parked in the global shed log, guarded by stats_mu_;
  // each drain subtracts only what it actually replayed (a producer racing
  // a barrier may shed behind the drain).
  size_t shed_batches_ = 0;
  // False from a watchdog verdict until the stalled lane's local recovery
  // (shed the in-hand batch, resume) or a global Recover() completes.
  bool healthy_ = true;

  mutable std::mutex governor_mu_;

  // One watchdog over a lanes x stages heartbeat table; each lane's worker
  // heartbeats its own slots, the poller renders per-(lane, stage) verdicts.
  StallWatchdog watchdog_;
  // Global cooperative cancellation: set by Recover()/Stop() so a worker
  // parked in an injected stall sheds its in-hand batch and *exits* (the
  // lane-local token makes it shed and resume instead).
  std::atomic<bool> stall_abort_{false};

  std::mutex shed_replay_mu_;  // serializes concurrent shed-log drains

  // True while the engine runs the async delta-accumulative tier. Mirrors
  // engine_->async_mode(): flips happen under engine_mu_ + journal_mu_
  // together, so a holder of either lock reads it race-free; lock-free
  // reads (acquire) are advisory (fast-path gate, stats labels).
  std::atomic<bool> async_engaged_{false};
  // Adaptive maintenance budget, fed from lane 0's idle polls and the
  // global graph's per-edge rewrite cost (declared after config_: seeded
  // from the already-moved-into config).
  MaintenanceBudget budget_{config_.maintenance_budget_edges};
  // Cumulative background_edges_copied at the last global tick; only
  // lane 0 ticks, so this needs no lock.
  uint64_t last_maintenance_edges_ = 0;

  std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;

  std::unique_ptr<Quarantine> quarantine_;

  std::mutex stop_mu_;  // serializes Stop callers; guards stopped_
  bool stopped_ = false;
};

}  // namespace graphbolt

#endif  // SRC_SHARD_SHARDED_DRIVER_H_
