// ShardedDriver: a multi-lane, multi-tenant ingestion front-end over one
// global BSP engine.
//
// StreamDriver (src/driver/stream_driver.h) funnels every producer through
// one gutter, one queue, and one worker. ShardedDriver partitions the
// vertex space into N shards — shard_of(v) = v % N — and gives each shard
// its own ingestion *lane*:
//
//   sessions ──route by src──► lane gutter ──flush──► lane queue ──► lane
//   (tenant quota gate)        (batch by size          (backpressure) worker
//                               or staleness)
//
// Each lane owns a gutter, a bounded queue, a worker thread, a per-shard
// write-ahead log (`<checkpoint_dir>/shard-<i>.wal`), and a *staging
// partition* — a MutableGraph holding exactly the edges whose source this
// shard owns, with its own slack-CSR arenas. A lane worker first *stages* a
// popped batch (journals it to the shard WAL and applies it to the
// partition, concurrently across lanes), then immediately *promotes* it
// into the global engine under the engine mutex. Promotion is serialized —
// the engines are synchronous BSP refiners and cannot apply concurrently —
// so the engine-lock acquisition order IS the global apply order; an
// observer hook records it, which is how the equivalence tests replay the
// admitted stream through an unsharded driver and compare snapshots
// bitwise.
//
// Producers do not call the driver directly: they open a Session
// (OpenSession(tenant_id)) whose tenant quota — token bucket + lifetime
// cap, shared across all sessions of the tenant (src/shard/session.h) —
// gates admission whole-batch-or-nothing *after* the sentinel's content
// screen and *before* any lane lock. The legacy Ingest/IngestBatch surface
// delegates to an implicit default session (tenant "", default_quota).
//
// PrepQuery is a two-phase barrier:
//   Phase 1 flushes every lane's gutter remainder into its queue;
//   Phase 2 waits until every lane's in-flight count reaches zero.
// Because each mutation is routed by its source vertex, all mutations of
// one (src, dst) pair traverse the same lane in ingest order, so the
// admitted stream the engine sees is a legal interleaving of the producers'
// streams — and after the barrier the engine holds exactly one BSP
// snapshot of it, the same guarantee StreamDriver's barrier gives.
//
// Durability: the *global* checkpointer (WAL + cadence snapshots under the
// engine mutex, exactly StreamDriver's protocol) remains the recovery
// source of truth — a cold StreamDriver over the same checkpoint directory
// recovers the state. The per-shard WALs are lineage: a per-lane record of
// what each shard staged this run, reset at construction, for
// observability and shard-local debugging. Overflow is restricted to
// kBlock / kDropNewest (DriverConfig::Validate rejects the shed/degrade
// policies for shards > 1; the unsharded driver keeps them).
#ifndef SRC_SHARD_SHARDED_DRIVER_H_
#define SRC_SHARD_SHARDED_DRIVER_H_

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/streaming_engine.h"
#include "src/driver/gutter_buffer.h"
#include "src/engine/stats.h"
#include "src/fault/checkpoint.h"
#include "src/fault/wal.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/mutation.h"
#include "src/parallel/bounded_queue.h"
#include "src/sentinel/admission.h"
#include "src/sentinel/quarantine.h"
#include "src/shard/driver_config.h"
#include "src/shard/session.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace graphbolt {

template <StreamingEngine Engine>
class ShardedDriver {
 public:
  using Value = EngineValueT<Engine>;
  // Called under the engine mutex immediately before each promotion, in
  // global apply order: (owning lane, the batch as applied).
  using ApplyObserver = std::function<void(size_t lane, const MutationBatch& batch)>;

  // The producer handle: a movable, non-copyable capability to ingest as
  // one tenant. All sessions of a tenant share quota state; the handle
  // borrows it and must not outlive the driver.
  class Session {
   public:
    Session() = default;
    Session(Session&& other) noexcept
        : driver_(other.driver_), state_(other.state_) {
      other.driver_ = nullptr;
      other.state_ = nullptr;
    }
    Session& operator=(Session&& other) noexcept {
      driver_ = other.driver_;
      state_ = other.state_;
      other.driver_ = nullptr;
      other.state_ = nullptr;
      return *this;
    }
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    bool valid() const { return driver_ != nullptr; }
    const std::string& tenant() const { return state_->tenant(); }

    // Thread-safe. False when the quota gate, the admission screen, or a
    // stopped driver refused the mutation.
    bool Ingest(const EdgeMutation& mutation) {
      return driver_->IngestFor(state_, mutation);
    }

    // Whole-batch quota admission, then per-lane routing. Returns how many
    // mutations entered the pipeline (0 on a quota or screen rejection).
    size_t IngestBatch(const MutationBatch& batch) {
      return driver_->IngestBatchFor(state_, batch);
    }

    // This tenant's cumulative quota accounting.
    TenantStats stats() const { return state_->stats(); }

   private:
    friend ShardedDriver;
    Session(ShardedDriver* driver, TenantState* state)
        : driver_(driver), state_(state) {}

    ShardedDriver* driver_ = nullptr;
    TenantState* state_ = nullptr;
  };

  // The engine must outlive the driver and already hold the initial
  // snapshot (run InitialCompute first). `config` must pass Validate().
  // The checkpointer, when given, is the global durability authority —
  // attach it exactly as with StreamDriver.
  explicit ShardedDriver(Engine* engine, DriverConfig config,
                         Checkpointer<Engine>* checkpointer = nullptr)
      : engine_(engine), config_(std::move(config)), checkpointer_(checkpointer) {
    const std::string invalid = config_.Validate();
    GB_CHECK(invalid.empty()) << "DriverConfig: " << invalid;
    if (config_.background_compaction) {
      if constexpr (GraphMaintainableEngine<Engine>) {
        engine_->mutable_graph()->SetCompactionMode(SlackCsr::CompactionMode::kBackground);
      } else {
        GB_LOG(kWarning) << "background_compaction requested but the engine "
                            "does not expose its graph; staying synchronous";
        config_.background_compaction = false;
      }
    }
    if (!config_.quarantine_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(config_.quarantine_dir, ec);
      quarantine_ = std::make_unique<Quarantine>(config_.quarantine_dir, nullptr);
    }
    const bool wal_enabled = !config_.checkpoint_dir.empty();
    if (wal_enabled) {
      std::error_code ec;
      std::filesystem::create_directories(config_.checkpoint_dir, ec);
    }
    lanes_.reserve(config_.shards);
    for (size_t i = 0; i < config_.shards; ++i) {
      lanes_.push_back(std::make_unique<Lane>(i, config_.max_pending_batches));
      Lane& lane = *lanes_.back();
      if (wal_enabled) {
        lane.wal.Open(config_.checkpoint_dir + "/shard-" + std::to_string(i) + ".wal");
        lane.wal.Reset();  // this run's lineage, not a recovery source
        lane.wal_enabled = true;
      }
      if (config_.background_compaction) {
        lane.partition.SetCompactionMode(SlackCsr::CompactionMode::kBackground);
      }
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.shard_lanes = lanes_.size();
    }
    for (auto& lane : lanes_) {
      Lane* raw = lane.get();
      raw->worker = std::thread([this, raw] { LaneLoop(*raw); });
    }
  }

  ~ShardedDriver() { Stop(); }

  ShardedDriver(const ShardedDriver&) = delete;
  ShardedDriver& operator=(const ShardedDriver&) = delete;

  size_t shards() const { return lanes_.size(); }
  const DriverConfig& config() const { return config_; }

  // Opens (or re-opens) a session for `tenant`. Sessions of one tenant
  // share quota state, so a tenant cannot widen its allowance by opening
  // more of them.
  Session OpenSession(const std::string& tenant) {
    TenantState* state = GetTenantState(tenant);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.sessions_opened;
    }
    return Session(this, state);
  }

  // Legacy surface: the pre-session Ingest/IngestBatch API, delegating to
  // the implicit default session (tenant "", config.default_quota).
  bool Ingest(const EdgeMutation& mutation) {
    return IngestFor(GetTenantState(std::string()), mutation);
  }
  size_t IngestBatch(const MutationBatch& batch) {
    return IngestBatchFor(GetTenantState(std::string()), batch);
  }

  // Hands every lane's gutter remainder to its worker.
  void Flush() {
    for (auto& lane : lanes_) {
      std::unique_lock<std::mutex> lock(lane->mu);
      FlushLaneLocked(*lane, lock);
    }
  }

  // Two-phase query barrier. Phase 1 flushes every lane; phase 2 drains
  // them. On return every mutation ingested before the call has been
  // promoted, so the engine holds an exact BSP snapshot of the admitted
  // stream. Returns false on the fast path (nothing buffered or in flight
  // anywhere — the previous snapshot is still current).
  bool PrepQuery() {
    bool idle = true;
    for (auto& lane : lanes_) {
      std::lock_guard<std::mutex> lock(lane->mu);
      if (!lane->gutter.empty() || lane->in_flight != 0) {
        idle = false;
        break;
      }
    }
    if (idle) {
      return false;
    }
    for (auto& lane : lanes_) {
      std::unique_lock<std::mutex> lock(lane->mu);
      FlushLaneLocked(*lane, lock);
    }
    for (auto& lane : lanes_) {
      std::unique_lock<std::mutex> lock(lane->mu);
      lane->drained_cv.wait(lock, [&] { return lane->in_flight == 0; });
    }
    return true;
  }

  // Barrier + reference to the engine's values (see StreamDriver::values
  // for the aliasing caveats — meant for quiescent callers).
  const std::vector<Value>& values() {
    PrepQuery();
    return engine_->values();
  }

  // Barrier + copy, safe under concurrent ingestion from other threads.
  std::vector<Value> QuerySnapshot() {
    PrepQuery();
    std::lock_guard<std::mutex> engine_lock(engine_mu_);
    return engine_->values();
  }

  // Cumulative driver statistics; the shard block (shard_lanes,
  // shard_batches_staged, shard_wal_appends, cross_shard_mutations,
  // sessions_opened, *_quota_rejected) is populated only here.
  EngineStats stats() const {
    EngineStats snapshot;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      snapshot = stats_;
    }
    if (checkpointer_ != nullptr) {
      checkpointer_->MergeStats(&snapshot);
    }
    return snapshot;
  }

  // Mutations buffered across all lane gutters (not yet flushed).
  size_t pending_mutations() const {
    size_t pending = 0;
    for (const auto& lane : lanes_) {
      std::lock_guard<std::mutex> lock(lane->mu);
      pending += lane->gutter.size();
    }
    return pending;
  }

  // Registers the promotion-order observer. Call before ingestion starts;
  // the hook runs under the engine mutex, so keep it cheap.
  void set_apply_observer(ApplyObserver observer) {
    std::lock_guard<std::mutex> engine_lock(engine_mu_);
    observer_ = std::move(observer);
  }

  // A quiescent snapshot of lane i's staging partition — the edges whose
  // source vertex shard i owns. Call only while no producer can trigger a
  // flush (after PrepQuery with ingestion paused, or after Stop); the
  // barrier's lane handshake makes the worker's writes visible.
  EdgeList ShardPartitionEdges(size_t lane) const {
    GB_CHECK(lane < lanes_.size()) << "lane " << lane << " out of range";
    return lanes_[lane]->partition.ToEdgeList();
  }

  // The dead-letter quarantine; null unless config.quarantine_dir was set.
  Quarantine* quarantine() { return quarantine_.get(); }
  uint64_t quarantined_batches() const {
    return quarantine_ != nullptr ? quarantine_->parked_batches() : 0;
  }

  // Drains the quarantine through fixup(reason, batch&) — see
  // StreamDriver::ReplayQuarantine. Re-admission goes through the default
  // session (an operator action, but still quota-accounted).
  template <typename Fixup>
  size_t ReplayQuarantine(Fixup&& fixup) {
    if (quarantine_ == nullptr) {
      return 0;
    }
    return quarantine_->Drain([&](RejectReason reason, MutationBatch&& batch) {
      if (!fixup(reason, batch)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.quarantine_discarded;
        stats_.mutations_dropped += batch.size();
        return;
      }
      const size_t accepted = IngestBatch(batch);
      if (accepted > 0 || batch.empty()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.quarantine_replayed;
      }
    });
  }
  size_t ReplayQuarantine() {
    return ReplayQuarantine([](RejectReason, MutationBatch&) { return true; });
  }

  // Writes a global checkpoint of the current engine state immediately.
  bool CheckpointNow() {
    if constexpr (CheckpointableEngine<Engine>) {
      if (checkpointer_ == nullptr) {
        return false;
      }
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      return checkpointer_->WriteCheckpoint(applied_seq_);
    } else {
      return false;
    }
  }

  // Drains and shuts down: lanes stop accepting, gutter remainders flush,
  // every queued batch is promoted, workers join. Idempotent; called by
  // the destructor.
  void Stop() {
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopped_) {
      return;
    }
    for (auto& lane : lanes_) {
      std::unique_lock<std::mutex> lock(lane->mu);
      lane->accepting = false;
      FlushLaneLocked(*lane, lock);
    }
    for (auto& lane : lanes_) {
      lane->queue.Close();
    }
    for (auto& lane : lanes_) {
      if (lane->worker.joinable()) {
        lane->worker.join();
      }
    }
    stopped_ = true;
  }

 private:
  struct TimedBatch {
    MutationBatch batch;
    Timer since_flush;
  };

  // One ingestion lane: everything shard i owns. The mutex guards the
  // gutter, in_flight, and accepting; the queue synchronizes itself; the
  // WAL, wal_seq, and partition are touched only by the lane worker (and
  // by quiescent readers after the barrier handshake).
  struct Lane {
    Lane(size_t index, size_t queue_capacity) : index(index), queue(queue_capacity) {}

    const size_t index;
    mutable std::mutex mu;
    std::condition_variable drained_cv;
    GutterBuffer gutter;
    // Batches taken from the gutter but not yet promoted (queued, mid-push,
    // or being applied). The barrier's phase 2 waits for zero.
    size_t in_flight = 0;
    bool accepting = true;
    BoundedQueue<TimedBatch> queue;
    std::thread worker;
    bool wal_enabled = false;
    WriteAheadLog wal;
    uint64_t wal_seq = 0;
    MutableGraph partition;
  };

  size_t ShardOf(VertexId v) const { return static_cast<size_t>(v) % lanes_.size(); }

  TenantState* GetTenantState(const std::string& tenant) {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      it = tenants_
               .emplace(tenant, std::make_unique<TenantState>(tenant, config_.QuotaFor(tenant)))
               .first;
    }
    return it->second.get();
  }

  bool IngestFor(TenantState* state, const EdgeMutation& mutation) {
    if (quarantine_ != nullptr) {
      const AdmissionVerdict verdict = ScreenMutation(mutation, config_.admission);
      if (!verdict.admitted()) {
        QuarantineReject(verdict.reason, MutationBatch{mutation}, state);
        return false;
      }
    }
    if (!state->TryAdmit(1)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.mutations_quota_rejected;
      ++stats_.batches_quota_rejected;
      return false;
    }
    const bool cross = ShardOf(mutation.src) != ShardOf(mutation.dst);
    Lane& lane = *lanes_[ShardOf(mutation.src)];
    {
      std::unique_lock<std::mutex> lock(lane.mu);
      if (!lane.accepting) {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.mutations_dropped;
        return false;
      }
      lane.gutter.Add(mutation);
      if (lane.gutter.size() >= config_.batch_size) {
        FlushLaneLocked(lane, lock);
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.mutations_enqueued;
    stats_.cross_shard_mutations += cross ? 1 : 0;
    return true;
  }

  size_t IngestBatchFor(TenantState* state, const MutationBatch& batch) {
    if (batch.empty()) {
      return 0;
    }
    if (quarantine_ != nullptr) {
      const AdmissionVerdict verdict = ScreenBatch(batch, config_.admission);
      if (!verdict.admitted()) {
        QuarantineReject(verdict.reason, batch, state);
        return 0;
      }
    }
    if (!state->TryAdmit(batch.size())) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.mutations_quota_rejected += batch.size();
      ++stats_.batches_quota_rejected;
      return 0;
    }
    // Route by source shard, preserving intra-lane ingest order — all
    // mutations of one (src, dst) pair share a lane, so per-pair order is
    // exactly the producer's.
    std::vector<MutationBatch> per_lane(lanes_.size());
    uint64_t cross = 0;
    for (const EdgeMutation& m : batch) {
      per_lane[ShardOf(m.src)].push_back(m);
      cross += ShardOf(m.src) != ShardOf(m.dst) ? 1 : 0;
    }
    size_t accepted = 0;
    size_t dropped = 0;
    for (size_t i = 0; i < per_lane.size(); ++i) {
      if (per_lane[i].empty()) {
        continue;
      }
      Lane& lane = *lanes_[i];
      std::unique_lock<std::mutex> lock(lane.mu);
      for (size_t j = 0; j < per_lane[i].size(); ++j) {
        if (!lane.accepting) {  // re-checked: FlushLaneLocked drops the lock
          dropped += per_lane[i].size() - j;
          break;
        }
        lane.gutter.Add(per_lane[i][j]);
        ++accepted;
        if (lane.gutter.size() >= config_.batch_size) {
          FlushLaneLocked(lane, lock);
        }
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.mutations_enqueued += accepted;
    stats_.mutations_dropped += dropped;
    stats_.cross_shard_mutations += cross;
    return accepted;
  }

  // Takes the lane's gutter as a batch and moves it toward the worker.
  // Caller holds `lock` on lane.mu; the queue handoff happens unlocked
  // (in_flight covers the window). kBlock waits on a full queue — the
  // backpressure this producer feels; kDropNewest and a closed queue
  // (shutdown) count the batch dropped.
  void FlushLaneLocked(Lane& lane, std::unique_lock<std::mutex>& lock) {
    if (lane.gutter.empty()) {
      return;
    }
    TimedBatch item;
    uint64_t coalesced = 0;
    item.batch = lane.gutter.Take(config_.coalesce, &coalesced);
    item.since_flush.Reset();
    const size_t mutations = item.batch.size();
    ++lane.in_flight;
    lock.unlock();
    bool pushed = false;
    double waited = 0.0;
    if (lane.queue.TryPush(std::move(item))) {
      pushed = true;
    } else if (config_.overflow == OverflowPolicy::kBlock) {
      Timer wait;
      pushed = lane.queue.Push(std::move(item));
      waited = wait.Seconds();
    }
    lock.lock();
    if (!pushed && --lane.in_flight == 0) {
      lane.drained_cv.notify_all();
    }
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.mutations_coalesced += coalesced;
    stats_.queue_wait_seconds += waited;
    if (!pushed) {
      stats_.mutations_dropped += mutations;
    }
  }

  void LaneLoop(Lane& lane) {
    for (;;) {
      std::optional<TimedBatch> item =
          lane.queue.PopFor(std::chrono::duration<double>(NextPollSeconds(lane)));
      if (item.has_value()) {
        ApplyLane(lane, std::move(*item));
      } else if (lane.queue.closed()) {
        if (lane.queue.Empty()) {
          break;
        }
        continue;
      } else if (lane.index == 0) {
        // Idle poll: advance a pending global rewrite. One lane suffices —
        // the budget bounds each step, not the number of ticking threads.
        GlobalMaintenanceTick();
      }
      if (TryFlushStaleLane(lane)) {
        continue;
      }
    }
  }

  // The lane worker's next wait, shortened to expire exactly when the
  // gutter's oldest mutation goes stale (see StreamDriver::NextPollSeconds).
  double NextPollSeconds(const Lane& lane) const {
    std::lock_guard<std::mutex> lock(lane.mu);
    if (lane.gutter.empty()) {
      return config_.flush_interval_seconds;
    }
    const double remaining = config_.flush_interval_seconds - lane.gutter.AgeSeconds();
    if (remaining <= 0.0) {
      return lane.in_flight > 0 ? 1e-3 : 1e-4;
    }
    return remaining;
  }

  // Flushes a stale lane gutter and applies it directly — never through
  // the queue (the worker must not block behind itself), and only when
  // in_flight == 0 so ordering is preserved. Returns true when a batch
  // was applied.
  bool TryFlushStaleLane(Lane& lane) {
    TimedBatch stale;
    uint64_t coalesced = 0;
    {
      std::unique_lock<std::mutex> lock(lane.mu);
      if (lane.in_flight != 0 || lane.gutter.empty() ||
          lane.gutter.AgeSeconds() < config_.flush_interval_seconds) {
        return false;
      }
      stale.batch = lane.gutter.Take(config_.coalesce, &coalesced);
      stale.since_flush.Reset();
      ++lane.in_flight;
    }
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.mutations_coalesced += coalesced;
    }
    ApplyLane(lane, std::move(stale));
    return true;
  }

  // Stage, then promote. Staging (shard WAL append + partition apply) runs
  // concurrently across lanes; promotion serializes on the engine mutex,
  // whose acquisition order defines the global apply order.
  void ApplyLane(Lane& lane, TimedBatch item) {
    bool journaled = false;
    if (lane.wal_enabled) {
      journaled = lane.wal.Append(++lane.wal_seq, item.batch);
    }
    lane.partition.ApplyBatch(item.batch);
    if (config_.background_compaction) {
      // One bounded increment per staged batch keeps the partition's
      // rewrites overlapped with its own stream.
      lane.partition.MaintenanceStep(config_.maintenance_budget_edges);
    }
    EngineStats applied;
    uint64_t rebuilds = 0;
    {
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      if (observer_) {
        observer_(lane.index, item.batch);
      }
      ApplyJournaled(item.batch);
      applied = engine_->stats();
      if constexpr (GraphMaintainableEngine<Engine>) {
        rebuilds = engine_->mutable_graph()->adaptive_rebuilds();
      }
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.batches_applied;
      ++stats_.shard_batches_staged;
      stats_.shard_wal_appends += journaled ? 1 : 0;
      // The graph's rebuild counter is cumulative; mirror, don't sum.
      stats_.adaptive_rebuilds = rebuilds;
      stats_.seconds += applied.seconds;
      stats_.mutation_seconds += applied.mutation_seconds;
      stats_.edges_processed += applied.edges_processed;
      stats_.iterations += applied.iterations;
      stats_.tasks_forked += applied.tasks_forked;
      stats_.tasks_stolen += applied.tasks_stolen;
      stats_.inline_runs += applied.inline_runs;
      stats_.flush_latency_seconds += item.since_flush.Seconds();
    }
    std::lock_guard<std::mutex> lock(lane.mu);
    if (--lane.in_flight == 0) {
      lane.drained_cv.notify_all();
    }
  }

  // Every engine apply funnels through here: assign the next global
  // sequence number, journal write-ahead, apply, checkpoint on cadence —
  // StreamDriver's exact protocol, so recovery is interchangeable. Caller
  // holds engine_mu_.
  void ApplyJournaled(const MutationBatch& batch) {
    ++applied_seq_;
    bool journaled = true;
    if (checkpointer_ != nullptr) {
      journaled = checkpointer_->AppendWal(applied_seq_, batch);
    }
    engine_->ApplyMutations(batch);
    if (checkpointer_ != nullptr) {
      if constexpr (CheckpointableEngine<Engine>) {
        checkpointer_->MaybeCheckpoint(applied_seq_, /*force=*/!journaled);
      }
    }
  }

  // One background-compaction increment on the global graph, in a lane's
  // idle window (see StreamDriver::MaintenanceTick).
  void GlobalMaintenanceTick() {
    if constexpr (GraphMaintainableEngine<Engine>) {
      if (!config_.background_compaction) {
        return;
      }
      SlackCsr::CompactionStats compaction;
      {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        MutableGraph* graph = engine_->mutable_graph();
        graph->MaintenanceStep(config_.maintenance_budget_edges);
        compaction = graph->compaction_stats();
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.maintenance_steps = compaction.maintenance_steps;
      stats_.background_compactions = compaction.background_compactions;
      stats_.background_compaction_edges = compaction.background_edges_copied;
      stats_.forced_sync_compactions = compaction.forced_sync_compactions;
    }
  }

  void QuarantineReject(RejectReason reason, const MutationBatch& batch, TenantState* state) {
    const bool parked = quarantine_->Append(reason, batch);
    if (parked) {
      state->CountQuarantined(batch.size());
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (parked) {
      ++stats_.batches_quarantined;
      stats_.mutations_quarantined += batch.size();
    } else {
      stats_.mutations_dropped += batch.size();
    }
    GB_LOG(kWarning) << "admission: rejected batch of " << batch.size() << " mutations ("
                     << RejectReasonName(reason)
                     << (parked ? "); quarantined" : "); dead-letter append failed, dropped");
  }

  Engine* engine_;
  DriverConfig config_;
  Checkpointer<Engine>* checkpointer_;

  std::vector<std::unique_ptr<Lane>> lanes_;

  std::mutex engine_mu_;  // held while the engine is applied or snapshotted;
                          // also guards applied_seq_ and observer_
  uint64_t applied_seq_ = 0;
  ApplyObserver observer_;

  mutable std::mutex stats_mu_;
  EngineStats stats_;

  std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;

  std::unique_ptr<Quarantine> quarantine_;

  std::mutex stop_mu_;  // serializes Stop callers; guards stopped_
  bool stopped_ = false;
};

}  // namespace graphbolt

#endif  // SRC_SHARD_SHARDED_DRIVER_H_
