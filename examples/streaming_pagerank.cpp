// Streaming page-importance tracking, the paper's introductory motivation:
// a web/social graph evolves continuously and the analytics engine must
// keep ranks fresh for every snapshot.
//
// This example compares the three processing policies side by side on the
// same update stream and reports latency plus the live top-5 ranked
// vertices after every batch. It also demonstrates reading a graph from a
// file (--graph edge-list) instead of the synthetic default.
//
// Run:  ./example_streaming_pagerank [--graph path] [--batches N] [--batch B]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/graphbolt.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace graphbolt;

  ArgParser args("Streaming PageRank: GraphBolt vs GB-Reset vs Ligra restart");
  args.AddString("graph", "", "optional edge-list file (default: synthetic R-MAT)");
  args.AddInt("batches", 8, "number of mutation batches to stream");
  args.AddInt("batch", 200, "mutations per batch");
  if (!args.Parse(argc, argv)) {
    return 1;
  }

  EdgeList full;
  if (!args.GetString("graph").empty()) {
    bool ok = false;
    full = LoadEdgeListText(args.GetString("graph"), &ok);
    if (!ok) {
      return 1;
    }
  } else {
    full = GenerateRmat(20000, 250000, {.seed = 7});
  }
  StreamSplit split = SplitForStreaming(full, 0.5, 8);

  MutableGraph g_bolt(split.initial);
  MutableGraph g_reset(split.initial);
  MutableGraph g_ligra(split.initial);
  // Selective-scheduling tolerance: changes below 1e-4 are not propagated
  // (the regime the paper's timing tables use); results then agree with an
  // exact restart to within that tolerance.
  const PageRank algo(0.85, 1e-4);
  GraphBoltEngine<PageRank> bolt(&g_bolt, algo);
  ResetEngine<PageRank> reset(&g_reset, algo);
  LigraEngine<PageRank> ligra(&g_ligra, algo);
  bolt.InitialCompute();
  reset.InitialCompute();
  ligra.InitialCompute();

  UpdateStream stream(split.held_back, 9);
  const size_t batch_size = static_cast<size_t>(args.GetInt("batch"));
  std::printf("%-7s %12s %12s %12s   top-5 vertices (GraphBolt)\n", "batch", "GraphBolt",
              "GB-Reset", "Ligra");
  for (int round = 0; round < args.GetInt("batches"); ++round) {
    const MutationBatch batch = stream.NextBatch(g_bolt, {.size = batch_size, .add_fraction = 0.7});
    bolt.ApplyMutations(batch);
    reset.ApplyMutations(batch);
    ligra.ApplyMutations(batch);

    // Live top-5 by rank.
    std::vector<VertexId> order(g_bolt.num_vertices());
    for (VertexId v = 0; v < g_bolt.num_vertices(); ++v) {
      order[v] = v;
    }
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](VertexId a, VertexId b) { return bolt.values()[a] > bolt.values()[b]; });
    std::printf("%-7d %9.2f ms %9.2f ms %9.2f ms   [%u %u %u %u %u]\n", round + 1,
                bolt.stats().seconds * 1e3, reset.stats().seconds * 1e3,
                ligra.stats().seconds * 1e3, order[0], order[1], order[2], order[3], order[4]);
  }

  // All three policies must agree on the final snapshot.
  double gap = 0.0;
  for (VertexId v = 0; v < g_bolt.num_vertices(); ++v) {
    gap = std::max(gap, std::fabs(bolt.values()[v] - ligra.values()[v]));
  }
  std::printf("final max gap GraphBolt vs exact Ligra: %.2e (tolerance 1e-4)\n", gap);
  return gap < 5e-2 ? 0 : 1;
}
