// A live graph service: producer threads feed edge arrivals into a
// StreamDriver while a query thread reads fresh PageRank snapshots — the
// deployment shape the paper motivates (§1: "perform real-time analytics
// on... continuously evolving graphs"), with the driver supplying the
// ingestion pipeline the batch engines themselves leave to the caller.
//
// Producers call driver.Ingest() concurrently; the driver gutters the
// arrivals into batches, a background worker refines the engine, and every
// QuerySnapshot() is an exact BSP snapshot (identical to recomputing from
// scratch on the graph at that instant). The example verifies exactly
// that at the end: drained driver values vs. a from-scratch engine on the
// final graph.
//
// With --checkpoint-dir the driver also journals every applied batch to a
// WAL and snapshots on a cadence; after the stream drains, the example
// cold-recovers a second engine purely from disk and checks it agrees with
// the live one — the restart story a real service needs.
//
// The sentinel layer runs too: a stall watchdog is armed by default
// (--watchdog-ms, 0 disables) and --quarantine-dir screens admissions into a
// dead-letter WAL — the example offers one poison batch (NaN weights) to
// show it being parked instead of corrupting the engine. The sentinel
// counters an operator would dashboard are printed after the drain.
//
// Run:  ./example_streaming_service [--producers P] [--batch B] [--queries Q]
//                                   [--checkpoint-dir D] [--checkpoint-every N]
//                                   [--quarantine-dir Q] [--watchdog-ms W]
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "src/graphbolt.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace graphbolt;

  ArgParser args("Streaming service: concurrent ingestion through StreamDriver");
  args.AddInt("producers", 3, "concurrent ingest threads");
  args.AddInt("batch", 256, "driver gutter flush threshold");
  args.AddInt("queries", 4, "mid-stream snapshot queries");
  args.AddString("checkpoint-dir", "", "journal + checkpoint here; verify recovery at exit");
  args.AddInt("checkpoint-every", 16, "checkpoint cadence in applied batches");
  args.AddString("quarantine-dir", "", "screen admissions; park rejects in a dead-letter WAL here");
  args.AddInt("watchdog-ms", 5000, "stall watchdog timeout (0 disables)");
  if (!args.Parse(argc, argv)) {
    return 1;
  }
  if (args.GetInt("producers") < 1 || args.GetInt("batch") < 1) {
    std::printf("--producers and --batch must be >= 1\n");
    return 1;
  }
  const size_t num_producers = static_cast<size_t>(args.GetInt("producers"));

  EdgeList full = GenerateRmat(15000, 180000, {.seed = 7});
  StreamSplit split = SplitForStreaming(full, 0.5, 8);
  std::printf("initial graph: %u vertices, %llu edges; %zu arrivals to stream\n",
              split.initial.num_vertices(),
              static_cast<unsigned long long>(MutableGraph(split.initial).num_edges()),
              split.held_back.size());

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  std::printf("initial compute: %.2f ms\n", engine.stats().seconds * 1e3);

  const std::string checkpoint_dir = args.GetString("checkpoint-dir");
  std::unique_ptr<Checkpointer<GraphBoltEngine<PageRank>>> checkpointer;
  if (!checkpoint_dir.empty()) {
    checkpointer = std::make_unique<Checkpointer<GraphBoltEngine<PageRank>>>(
        &engine, &graph,
        Checkpointer<GraphBoltEngine<PageRank>>::Options{
            .directory = checkpoint_dir,
            .cadence_batches = static_cast<uint64_t>(args.GetInt("checkpoint-every"))});
  }

  Timer wall;
  {
    const std::string quarantine_dir = args.GetString("quarantine-dir");
    StreamDriver<GraphBoltEngine<PageRank>> driver(
        &engine, {.batch_size = static_cast<size_t>(args.GetInt("batch")),
                  .flush_interval_seconds = 0.01,
                  .checkpointer = checkpointer.get(),
                  .quarantine_dir = quarantine_dir,
                  .watchdog_stall_seconds = args.GetInt("watchdog-ms") * 1e-3});
    if (checkpointer) {
      driver.CheckpointNow();  // recoverable from the initial snapshot onward
    }

    // Producers: each thread streams a slice of the arrivals.
    std::vector<std::vector<Edge>> slices(num_producers);
    for (size_t i = 0; i < split.held_back.size(); ++i) {
      slices[i % num_producers].push_back(split.held_back[i]);
    }
    std::atomic<size_t> ingested{0};
    std::vector<std::thread> producers;
    for (size_t p = 0; p < num_producers; ++p) {
      producers.emplace_back([&, p] {
        for (const Edge& e : slices[p]) {
          driver.Ingest(EdgeMutation::Add(e.src, e.dst, e.weight));
          ingested.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    // Query thread: live snapshots while ingestion runs. Each is a
    // consistent BSP state of some prefix of the stream.
    for (int q = 0; q < args.GetInt("queries"); ++q) {
      Timer latency;
      const std::vector<double> ranks = driver.QuerySnapshot();
      double top = 0.0;
      VertexId argtop = 0;
      for (VertexId v = 0; v < ranks.size(); ++v) {
        if (ranks[v] > top) {
          top = ranks[v];
          argtop = v;
        }
      }
      std::printf("query %d: %6zu/%zu arrivals ingested, top vertex %5u (rank %.3f), "
                  "barrier %.2f ms\n",
                  q + 1, ingested.load(), split.held_back.size(), argtop, top,
                  latency.Seconds() * 1e3);
    }

    for (std::thread& t : producers) {
      t.join();
    }

    // Poison-batch demo: NaN weights never reach the engine — admission
    // screens the batch and parks it bitwise in the dead-letter WAL, where
    // ReplayQuarantine() could repair it later. The exactness checks below
    // still passing is the point.
    if (!quarantine_dir.empty()) {
      MutationBatch poison;
      for (VertexId v = 0; v < 8; ++v) {
        poison.push_back(EdgeMutation::Add(v, v + 1, std::numeric_limits<float>::quiet_NaN()));
      }
      const size_t accepted = driver.IngestBatch(poison);
      std::printf("poison batch (8 NaN weights): %zu accepted, parked in %s\n", accepted,
                  quarantine_dir.c_str());
    }
    driver.PrepQuery();

    const EngineStats stats = driver.stats();
    std::printf("\ndrained after %.2f ms wall: %llu batches applied, "
                "%llu mutations ingested (%llu coalesced, %llu dropped)\n",
                wall.Seconds() * 1e3, static_cast<unsigned long long>(stats.batches_applied),
                static_cast<unsigned long long>(stats.mutations_enqueued),
                static_cast<unsigned long long>(stats.mutations_coalesced),
                static_cast<unsigned long long>(stats.mutations_dropped));
    // The operator's dashboard line: admission, overload, and watchdog
    // health in one place (all mirrored into EngineStats by the driver).
    std::printf("sentinel: healthy=%s, %llu batches/%llu mutations quarantined, "
                "%llu shed-oldest evictions, %llu degraded entries, %llu degraded queries, "
                "%llu stalls detected, %llu auto-recoveries, apply EWMA %.3f ms\n",
                driver.healthy() ? "yes" : "NO",
                static_cast<unsigned long long>(stats.batches_quarantined),
                static_cast<unsigned long long>(stats.mutations_quarantined),
                static_cast<unsigned long long>(stats.shed_oldest_evictions),
                static_cast<unsigned long long>(stats.degraded_entries),
                static_cast<unsigned long long>(stats.degraded_queries),
                static_cast<unsigned long long>(stats.stalls_detected),
                static_cast<unsigned long long>(stats.watchdog_recoveries),
                stats.apply_ewma_seconds * 1e3);
    if (stats.mutations_enqueued != split.held_back.size() || stats.mutations_dropped != 0) {
      std::printf("FAIL: lost mutations\n");
      return 1;
    }
    if (!quarantine_dir.empty() && stats.batches_quarantined != 1) {
      std::printf("FAIL: poison batch was not quarantined\n");
      return 1;
    }
  }  // driver destructor: Stop() — idempotent after the explicit drain

  // The BSP exactness check: the incrementally maintained result must match
  // a from-scratch run on the final graph (small fp headroom — the two
  // paths sum rank contributions in different orders).
  MutableGraph final_graph(full);
  LigraEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  if (graph.num_edges() != final_graph.num_edges()) {
    std::printf("FAIL: final graph has %llu edges, expected %llu\n",
                static_cast<unsigned long long>(graph.num_edges()),
                static_cast<unsigned long long>(final_graph.num_edges()));
    return 1;
  }
  double gap = 0.0;
  for (VertexId v = 0; v < final_graph.num_vertices(); ++v) {
    gap = std::max(gap, std::fabs(engine.values()[v] - fresh.values()[v]));
  }
  std::printf("final max gap vs from-scratch recompute: %.2e\n", gap);
  if (gap >= 1e-7) {
    return 1;
  }

  // Restart story: a brand-new process (fresh graph + engine) recovers the
  // service state purely from the checkpoint directory. The WAL tail is
  // replayed with the multi-threaded engine, so agreement is to fp headroom
  // rather than bitwise (parallel reduction order differs across runs).
  if (checkpointer) {
    MutableGraph cold_graph;
    GraphBoltEngine<PageRank> cold(&cold_graph, PageRank{});
    Checkpointer<GraphBoltEngine<PageRank>> restorer(
        &cold, &cold_graph,
        {.directory = checkpoint_dir,
         .cadence_batches = static_cast<uint64_t>(args.GetInt("checkpoint-every"))});
    StreamDriver<GraphBoltEngine<PageRank>> cold_driver(&cold, {.checkpointer = &restorer});
    Timer recovery;
    if (!cold_driver.Recover()) {
      std::printf("FAIL: recovery found no usable checkpoint in %s\n", checkpoint_dir.c_str());
      return 1;
    }
    cold_driver.Stop();
    if (cold_graph.num_edges() != graph.num_edges()) {
      std::printf("FAIL: recovered graph has %llu edges, live has %llu\n",
                  static_cast<unsigned long long>(cold_graph.num_edges()),
                  static_cast<unsigned long long>(graph.num_edges()));
      return 1;
    }
    double recovery_gap = 0.0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      recovery_gap = std::max(recovery_gap, std::fabs(cold.values()[v] - engine.values()[v]));
    }
    std::printf("cold recovery: %llu batches replayed in %.2f ms, max gap vs live %.2e\n",
                static_cast<unsigned long long>(cold_driver.stats().batches_replayed),
                recovery.Seconds() * 1e3, recovery_gap);
    if (recovery_gap >= 1e-7) {
      return 1;
    }
  }
  return 0;
}
