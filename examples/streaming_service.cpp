// A live graph service: producer threads feed edge arrivals into a
// ShardedDriver while a query thread reads fresh PageRank snapshots — the
// deployment shape the paper motivates (§1: "perform real-time analytics
// on... continuously evolving graphs"), with the driver supplying the
// multi-lane ingestion pipeline the batch engines themselves leave to the
// caller.
//
// Each producer opens its own Session (driver.OpenSession("producer-P")) —
// the tenant handle the redesigned API routes all ingestion through — and
// streams a slice of the arrivals. The driver routes each mutation to the
// lane owning its source shard (shard_of(v) = v % N), lane workers stage
// and promote concurrently, and every QuerySnapshot() is an exact BSP
// snapshot (identical to recomputing from scratch on the graph at that
// instant). The example verifies exactly that at the end: drained driver
// values vs. a from-scratch engine on the final graph.
//
// Configuration is one DriverConfig: DriverConfig::RegisterFlags puts the
// canonical driver surface (--shards, --batch-size, --overflow,
// --checkpoint-dir, --quarantine-dir, --default-quota, ...) on the parser,
// FromCli reads it back with actionable errors, FromEnv applies GRAPHBOLT_*
// overrides on top.
//
// With --checkpoint-dir the driver journals every promoted batch through
// the global checkpointer (WAL + cadence snapshots); after the stream
// drains, the example cold-recovers a second engine purely from disk and
// checks it agrees with the live one — the restart story a real service
// needs, deliberately run through an unsharded StreamDriver to show the
// recovery protocol is shared.
//
// --quarantine-dir arms admission screening: the example offers one poison
// batch (NaN weights) through a session to show it being parked in the
// dead-letter WAL instead of corrupting the engine, without debiting the
// tenant's quota.
//
// Run:  ./example_streaming_service [--producers P] [--queries Q]
//                                   [--shards N] [--batch-size B]
//                                   [--checkpoint-dir D] [--quarantine-dir Q]
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "src/graphbolt.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace graphbolt;

  ArgParser args("Streaming service: concurrent sessions through ShardedDriver");
  args.AddInt("producers", 3, "concurrent ingest threads (one session each)");
  args.AddInt("queries", 4, "mid-stream snapshot queries");
  DriverConfig::RegisterFlags(args);
  if (!args.Parse(argc, argv)) {
    return 1;
  }
  if (args.GetInt("producers") < 1) {
    std::printf("--producers must be >= 1\n");
    return 1;
  }
  DriverConfig config;
  std::string config_error;
  if (!config.FromCli(args, &config_error) || !config.FromEnv(&config_error)) {
    std::printf("driver config: %s\n", config_error.c_str());
    return 1;
  }
  const size_t num_producers = static_cast<size_t>(args.GetInt("producers"));

  EdgeList full = GenerateRmat(15000, 180000, {.seed = 7});
  StreamSplit split = SplitForStreaming(full, 0.5, 8);
  std::printf("initial graph: %u vertices, %llu edges; %zu arrivals to stream "
              "across %zu shard lanes\n",
              split.initial.num_vertices(),
              static_cast<unsigned long long>(MutableGraph(split.initial).num_edges()),
              split.held_back.size(), config.shards);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  std::printf("initial compute: %.2f ms\n", engine.stats().seconds * 1e3);

  std::unique_ptr<Checkpointer<GraphBoltEngine<PageRank>>> checkpointer;
  if (!config.checkpoint_dir.empty()) {
    checkpointer = std::make_unique<Checkpointer<GraphBoltEngine<PageRank>>>(
        &engine, &graph,
        Checkpointer<GraphBoltEngine<PageRank>>::Options{
            .directory = config.checkpoint_dir, .cadence_batches = config.checkpoint_every});
  }

  Timer wall;
  {
    ShardedDriver<GraphBoltEngine<PageRank>> driver(&engine, config, checkpointer.get());
    if (checkpointer) {
      driver.CheckpointNow();  // recoverable from the initial snapshot onward
    }

    // Producers: each thread opens its own session and streams a slice of
    // the arrivals. Sessions of distinct tenants are independent quota
    // domains; here every tenant runs under config.default_quota
    // (unlimited unless --default-quota was given).
    std::vector<std::vector<Edge>> slices(num_producers);
    for (size_t i = 0; i < split.held_back.size(); ++i) {
      slices[i % num_producers].push_back(split.held_back[i]);
    }
    std::atomic<size_t> ingested{0};
    std::vector<std::thread> producers;
    for (size_t p = 0; p < num_producers; ++p) {
      producers.emplace_back([&, p] {
        auto session = driver.OpenSession("producer-" + std::to_string(p));
        for (const Edge& e : slices[p]) {
          // IngestFast == Ingest unless --fast-path (or GRAPHBOLT_FAST_PATH=1)
          // armed the single-update path; then arrivals the engine proves
          // safe splice in place without waiting for a barrier.
          session.IngestFast(EdgeMutation::Add(e.src, e.dst, e.weight));
          ingested.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    // Query thread: live snapshots while ingestion runs. Each is a
    // consistent BSP state of some prefix of the admitted stream (the
    // two-phase barrier flushes and drains every lane).
    for (int q = 0; q < args.GetInt("queries"); ++q) {
      Timer latency;
      const std::vector<double> ranks = driver.QuerySnapshot();
      double top = 0.0;
      VertexId argtop = 0;
      for (VertexId v = 0; v < ranks.size(); ++v) {
        if (ranks[v] > top) {
          top = ranks[v];
          argtop = v;
        }
      }
      std::printf("query %d: %6zu/%zu arrivals ingested, top vertex %5u (rank %.3f), "
                  "barrier %.2f ms\n",
                  q + 1, ingested.load(), split.held_back.size(), argtop, top,
                  latency.Seconds() * 1e3);
    }

    for (std::thread& t : producers) {
      t.join();
    }

    // Poison-batch demo: NaN weights never reach the engine — admission
    // screens the batch before the quota gate and parks it bitwise in the
    // dead-letter WAL, where ReplayQuarantine() could repair it later. The
    // exactness checks below still passing is the point.
    if (!config.quarantine_dir.empty()) {
      auto poisoner = driver.OpenSession("poisoner");
      MutationBatch poison;
      for (VertexId v = 0; v < 8; ++v) {
        poison.push_back(EdgeMutation::Add(v, v + 1, std::numeric_limits<float>::quiet_NaN()));
      }
      const size_t accepted = poisoner.IngestBatch(poison);
      std::printf("poison batch (8 NaN weights): %zu accepted, parked in %s; "
                  "tenant 'poisoner' quarantined count %llu\n",
                  accepted, config.quarantine_dir.c_str(),
                  static_cast<unsigned long long>(poisoner.stats().mutations_quarantined));
    }
    driver.PrepQuery();

    const EngineStats stats = driver.stats();
    std::printf("\ndrained after %.2f ms wall: %llu batches applied, "
                "%llu mutations ingested (%llu coalesced, %llu dropped)\n",
                wall.Seconds() * 1e3, static_cast<unsigned long long>(stats.batches_applied),
                static_cast<unsigned long long>(stats.mutations_enqueued),
                static_cast<unsigned long long>(stats.mutations_coalesced),
                static_cast<unsigned long long>(stats.mutations_dropped));
    // The operator's dashboard line: lanes, staging, tenancy, and admission
    // health in one place (all mirrored into EngineStats by the driver).
    std::printf("shards: %llu lanes, %llu batches staged, %llu shard-WAL appends, "
                "%llu cross-shard mutations, %llu sessions, "
                "%llu mutations quota-rejected, %llu batches/%llu mutations quarantined\n",
                static_cast<unsigned long long>(stats.shard_lanes),
                static_cast<unsigned long long>(stats.shard_batches_staged),
                static_cast<unsigned long long>(stats.shard_wal_appends),
                static_cast<unsigned long long>(stats.cross_shard_mutations),
                static_cast<unsigned long long>(stats.sessions_opened),
                static_cast<unsigned long long>(stats.mutations_quota_rejected),
                static_cast<unsigned long long>(stats.batches_quarantined),
                static_cast<unsigned long long>(stats.mutations_quarantined));
    // Serving-latency half of the dashboard: single-update fast-path
    // counters (nonzero only when --fast-path / GRAPHBOLT_FAST_PATH=1 is
    // set — PageRank proves only graph no-ops safe, so real arrivals show
    // up as escalations here, not safe applies).
    std::printf("fast path: %llu safe applied in place, %llu escalated to refinement, "
                "%llu epoch flips\n",
                static_cast<unsigned long long>(stats.fastpath_safe_applied),
                static_cast<unsigned long long>(stats.fastpath_unsafe_escalated),
                static_cast<unsigned long long>(stats.fastpath_epoch_flips));
    // The overload/stall half of the dashboard: the full sentinel layer
    // (shed policies, degrade governor, stall watchdog) runs per-lane under
    // any --shards count, so a service watches one line either way.
    std::printf("sentinel: %llu mutations shed-to-wal (%llu batches replayed), "
                "%llu shed-oldest evictions, %llu degraded entries / %llu degraded "
                "queries, %llu stalls / %llu auto-recoveries\n",
                static_cast<unsigned long long>(stats.mutations_shed_to_wal),
                static_cast<unsigned long long>(stats.shed_batches_replayed),
                static_cast<unsigned long long>(stats.shed_oldest_evictions),
                static_cast<unsigned long long>(stats.degraded_entries),
                static_cast<unsigned long long>(stats.degraded_queries),
                static_cast<unsigned long long>(stats.stalls_detected),
                static_cast<unsigned long long>(stats.watchdog_recoveries));
    // Async-fresh serving (--async-mode degrade-only|auto with --overflow
    // degrade): how often the engine flipped into the delta-accumulative
    // tier, how many queries were served eventually-consistent values, and
    // the convergence residual — the freshness bound — they were served at.
    if (config.async_mode != AsyncModePolicy::kOff) {
      std::printf("async: %llu entries / %llu reconciles, %llu async applies, %llu steps, "
                  "%llu async-fresh queries, residual %.3e\n",
                  static_cast<unsigned long long>(stats.async_entries),
                  static_cast<unsigned long long>(stats.async_reconciles),
                  static_cast<unsigned long long>(stats.async_applies),
                  static_cast<unsigned long long>(stats.async_steps),
                  static_cast<unsigned long long>(stats.async_fresh_queries),
                  stats.async_residual);
    }
    if (stats.mutations_enqueued != split.held_back.size() || stats.mutations_dropped != 0) {
      std::printf("FAIL: lost mutations\n");
      return 1;
    }
    if (!config.quarantine_dir.empty() && stats.batches_quarantined != 1) {
      std::printf("FAIL: poison batch was not quarantined\n");
      return 1;
    }
  }  // driver destructor: Stop() — idempotent after the explicit drain

  // The BSP exactness check: the incrementally maintained result must match
  // a from-scratch run on the final graph (small fp headroom — the two
  // paths sum rank contributions in different orders).
  MutableGraph final_graph(full);
  LigraEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  if (graph.num_edges() != final_graph.num_edges()) {
    std::printf("FAIL: final graph has %llu edges, expected %llu\n",
                static_cast<unsigned long long>(graph.num_edges()),
                static_cast<unsigned long long>(final_graph.num_edges()));
    return 1;
  }
  double gap = 0.0;
  for (VertexId v = 0; v < final_graph.num_vertices(); ++v) {
    gap = std::max(gap, std::fabs(engine.values()[v] - fresh.values()[v]));
  }
  std::printf("final max gap vs from-scratch recompute: %.2e\n", gap);
  if (gap >= 1e-7) {
    return 1;
  }

  // Restart story: a brand-new process (fresh graph + engine) recovers the
  // service state purely from the checkpoint directory. Recovery goes
  // through an unsharded StreamDriver on purpose — the sharded driver
  // journals through the same global checkpointer protocol, so either
  // driver shape restores the other's checkpoints. The WAL tail is
  // replayed with the multi-threaded engine, so agreement is to fp
  // headroom rather than bitwise (parallel reduction order differs).
  if (checkpointer) {
    MutableGraph cold_graph;
    GraphBoltEngine<PageRank> cold(&cold_graph, PageRank{});
    Checkpointer<GraphBoltEngine<PageRank>> restorer(
        &cold, &cold_graph,
        {.directory = config.checkpoint_dir, .cadence_batches = config.checkpoint_every});
    StreamDriver<GraphBoltEngine<PageRank>> cold_driver(&cold, {.checkpointer = &restorer});
    Timer recovery;
    if (!cold_driver.Recover()) {
      std::printf("FAIL: recovery found no usable checkpoint in %s\n",
                  config.checkpoint_dir.c_str());
      return 1;
    }
    cold_driver.Stop();
    if (cold_graph.num_edges() != graph.num_edges()) {
      std::printf("FAIL: recovered graph has %llu edges, live has %llu\n",
                  static_cast<unsigned long long>(cold_graph.num_edges()),
                  static_cast<unsigned long long>(graph.num_edges()));
      return 1;
    }
    double recovery_gap = 0.0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      recovery_gap = std::max(recovery_gap, std::fabs(cold.values()[v] - engine.values()[v]));
    }
    std::printf("cold recovery: %llu batches replayed in %.2f ms, max gap vs live %.2e\n",
                static_cast<unsigned long long>(cold_driver.stats().batches_replayed),
                recovery.Seconds() * 1e3, recovery_gap);
    if (recovery_gap >= 1e-7) {
      return 1;
    }
  }
  return 0;
}
