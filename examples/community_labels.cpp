// Live community labeling over an evolving social graph using Label
// Propagation — the semi-supervised MLDM workload of the paper's
// evaluation (and its motivating incorrect-results example, Figure 2).
//
// A small set of users carries known community labels; the engine keeps
// every other user's label distribution fresh as friendships form and
// dissolve, with BSP-exact semantics. After each batch the example prints
// community sizes and the number of users whose dominant label flipped.
//
// Run:  ./example_community_labels [--batches N] [--batch B] [--seeds F]
#include <array>
#include <cstdio>
#include <vector>

#include "src/graphbolt.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace graphbolt;
  constexpr int kCommunities = 3;
  using Lp = LabelPropagation<kCommunities>;

  ArgParser args("Streaming community labels via Label Propagation");
  args.AddInt("batches", 6, "mutation batches to stream");
  args.AddInt("batch", 300, "mutations per batch");
  args.AddDouble("seeds", 0.05, "fraction of users with known labels");
  if (!args.Parse(argc, argv)) {
    return 1;
  }

  EdgeList full = GenerateRmat(15000, 180000, {.seed = 11, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 12);
  MutableGraph graph(split.initial);

  Lp algo(graph.num_vertices(), args.GetDouble("seeds"), 13);
  GraphBoltEngine<Lp> engine(&graph, algo);
  engine.InitialCompute();

  auto dominant = [](const std::array<double, kCommunities>& dist) {
    int best = 0;
    for (int c = 1; c < kCommunities; ++c) {
      if (dist[c] > dist[best]) {
        best = c;
      }
    }
    return best;
  };

  std::vector<int> previous(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    previous[v] = dominant(engine.values()[v]);
  }

  UpdateStream stream(split.held_back, 14);
  std::printf("%-7s %10s %9s  community sizes\n", "batch", "refine", "flipped");
  for (int round = 0; round < args.GetInt("batches"); ++round) {
    const MutationBatch batch = stream.NextBatch(
        graph, {.size = static_cast<size_t>(args.GetInt("batch")), .add_fraction = 0.6});
    engine.ApplyMutations(batch);

    std::array<size_t, kCommunities> sizes{};
    size_t flipped = 0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const int label = dominant(engine.values()[v]);
      ++sizes[label];
      flipped += label != previous[v];
      previous[v] = label;
    }
    std::printf("%-7d %7.2f ms %9zu  [", round + 1, engine.stats().seconds * 1e3, flipped);
    for (int c = 0; c < kCommunities; ++c) {
      std::printf("%zu%s", sizes[c], c + 1 < kCommunities ? ", " : "]\n");
    }
  }

  // Sanity: refined labels equal a restart's labels.
  MutableGraph verify(graph.ToEdgeList());
  LigraEngine<Lp> restart(&verify, algo);
  restart.InitialCompute();
  size_t disagreements = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    disagreements += dominant(engine.values()[v]) != dominant(restart.values()[v]);
  }
  std::printf("label disagreements vs restart: %zu\n", disagreements);
  return disagreements == 0 ? 0 : 1;
}
