// Quickstart: the smallest end-to-end GraphBolt program.
//
// Builds a streaming graph, computes PageRank once, then applies edge
// mutations and lets dependency-driven refinement produce the new ranks —
// verified against a from-scratch restart.
//
// Run:  ./example_quickstart [--vertices N] [--edges M] [--batch B]
#include <cstdio>

#include "src/graphbolt.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  using namespace graphbolt;

  ArgParser args("GraphBolt quickstart: streaming PageRank on an R-MAT graph");
  args.AddInt("vertices", 10000, "number of vertices");
  args.AddInt("edges", 100000, "number of edges");
  args.AddInt("batch", 100, "mutations per batch");
  if (!args.Parse(argc, argv)) {
    return 1;
  }

  // 1. Build the initial snapshot: load 50% of a synthetic graph, keep the
  //    rest as the stream of future edge insertions (the paper's setup).
  EdgeList full = GenerateRmat(static_cast<VertexId>(args.GetInt("vertices")),
                               static_cast<EdgeIndex>(args.GetInt("edges")));
  StreamSplit split = SplitForStreaming(full, 0.5, /*seed=*/1);
  MutableGraph graph(split.initial);
  std::printf("initial graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Initial computation with dependency tracking.
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  std::printf("initial PageRank: %.1f ms (%llu edge computations)\n",
              engine.stats().seconds * 1e3,
              static_cast<unsigned long long>(engine.stats().edges_processed));

  // 3. Stream mutation batches; each ApplyMutations refines incrementally.
  UpdateStream stream(split.held_back, /*seed=*/2);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(
        graph, {.size = static_cast<size_t>(args.GetInt("batch")), .add_fraction = 0.7});
    engine.ApplyMutations(batch);
    std::printf("batch %d (%zu mutations): refine %.2f ms, structure %.2f ms, %llu edge comps\n",
                round + 1, batch.size(), engine.stats().seconds * 1e3,
                engine.stats().mutation_seconds * 1e3,
                static_cast<unsigned long long>(engine.stats().edges_processed));
  }

  // 4. Verify against a from-scratch run on the final snapshot.
  MutableGraph verify_graph(graph.ToEdgeList());
  LigraEngine<PageRank> restart(&verify_graph, PageRank{});
  restart.InitialCompute();
  double max_gap = 0.0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    max_gap = std::max(max_gap, std::fabs(engine.values()[v] - restart.values()[v]));
  }
  std::printf("max |refined - restart| = %.2e  (BSP semantics %s)\n", max_gap,
              max_gap < 1e-7 ? "PRESERVED" : "VIOLATED");
  return max_gap < 1e-7 ? 0 : 1;
}
