// Streaming recommendations via Collaborative Filtering (ALS) on a
// user-item bipartite rating graph — the paper's flagship complex
// aggregation (§3.3). New ratings arrive continuously; GraphBolt refines
// the latent factors incrementally and the example surfaces the current
// top recommendations for a probe user after every batch.
//
// Run:  ./example_recommender [--users N] [--items M] [--batches B]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/graphbolt.h"
#include "src/util/cli.h"
#include "src/util/random.h"

namespace {

constexpr int kRank = 4;
using Cf = graphbolt::CollaborativeFiltering<kRank>;

double Dot(const Cf::Value& a, const Cf::Value& b) {
  double sum = 0.0;
  for (int k = 0; k < kRank; ++k) {
    sum += a[k] * b[k];
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graphbolt;

  ArgParser args("Streaming ALS recommender on a user-item rating graph");
  args.AddInt("users", 4000, "number of users");
  args.AddInt("items", 1000, "number of items");
  args.AddInt("batches", 5, "rating batches to stream");
  if (!args.Parse(argc, argv)) {
    return 1;
  }
  const auto num_users = static_cast<VertexId>(args.GetInt("users"));
  const auto num_items = static_cast<VertexId>(args.GetInt("items"));

  // Bipartite ratings: users [0, U) -> items [U, U+I), and mirror edges so
  // ALS alternates user/item factor updates through the same BSP iteration.
  Rng rng(31);
  EdgeList ratings;
  ratings.set_num_vertices(num_users + num_items);
  const size_t initial_ratings = static_cast<size_t>(num_users) * 12;
  for (size_t i = 0; i < initial_ratings; ++i) {
    const auto user = static_cast<VertexId>(rng.NextBounded(num_users));
    const auto item = static_cast<VertexId>(num_users + rng.NextBounded(num_items));
    const auto stars = static_cast<Weight>(1.0 + rng.NextBounded(5));
    ratings.Add(user, item, stars);
    ratings.Add(item, user, stars);
  }
  StreamSplit split = SplitForStreaming(ratings, 0.6, 32);
  MutableGraph graph(split.initial);

  GraphBoltEngine<Cf> engine(&graph, Cf{});
  engine.InitialCompute();
  std::printf("initial factorization: %.1f ms over %llu ratings\n", engine.stats().seconds * 1e3,
              static_cast<unsigned long long>(graph.num_edges() / 2));

  const VertexId probe_user = 42 % num_users;
  UpdateStream stream(split.held_back, 33);
  for (int round = 0; round < args.GetInt("batches"); ++round) {
    const MutationBatch batch = stream.NextBatch(graph, {.size = 400, .add_fraction = 1.0});
    engine.ApplyMutations(batch);

    // Score unrated items for the probe user.
    std::vector<std::pair<double, VertexId>> scored;
    for (VertexId item = num_users; item < num_users + num_items; ++item) {
      if (!graph.HasEdge(probe_user, item)) {
        scored.emplace_back(Dot(engine.values()[probe_user], engine.values()[item]), item);
      }
    }
    std::partial_sort(scored.begin(), scored.begin() + std::min<size_t>(3, scored.size()),
                      scored.end(), [](const auto& a, const auto& b) { return a.first > b.first; });
    std::printf("batch %d: refine %.2f ms; top items for user %u:", round + 1,
                engine.stats().seconds * 1e3, probe_user);
    for (size_t i = 0; i < std::min<size_t>(3, scored.size()); ++i) {
      std::printf("  #%u (%.2f)", scored[i].second - num_users, scored[i].first);
    }
    std::printf("\n");
  }

  // Verify the refined factors against a from-scratch run.
  MutableGraph verify(graph.ToEdgeList());
  LigraEngine<Cf> restart(&verify, Cf{});
  restart.InitialCompute();
  double gap = 0.0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (int k = 0; k < kRank; ++k) {
      gap = std::max(gap, std::fabs(engine.values()[v][k] - restart.values()[v][k]));
    }
  }
  std::printf("max factor gap vs restart: %.2e\n", gap);
  return gap < 1e-5 ? 0 : 1;
}
