// Live route distances on a road network with changing conditions:
// closures delete edges, reopenings add them back. Compares the two
// incremental policies for path problems the paper discusses in §5.4B —
// GraphBolt's BSP-exact min re-evaluation versus the KickStarter
// dependence-tree baseline — on a weighted grid (Manhattan-style roads)
// with R-MAT "shortcut" expressways.
//
// Run:  ./example_road_navigation [--rows R] [--cols C] [--batches N]
#include <cmath>
#include <cstdio>
#include <string>

#include "src/graphbolt.h"
#include "src/util/cli.h"
#include "src/util/random.h"

int main(int argc, char** argv) {
  using namespace graphbolt;

  ArgParser args("Streaming shortest paths on an evolving road network");
  args.AddInt("rows", 60, "grid rows");
  args.AddInt("cols", 60, "grid columns");
  args.AddInt("batches", 6, "closure/reopen batches");
  if (!args.Parse(argc, argv)) {
    return 1;
  }
  const auto rows = static_cast<VertexId>(args.GetInt("rows"));
  const auto cols = static_cast<VertexId>(args.GetInt("cols"));

  // Roads: bidirectional grid with travel-time weights + a few expressways.
  EdgeList roads = GenerateGrid(rows, cols);
  Rng rng(21);
  {
    EdgeList reverse;
    reverse.set_num_vertices(roads.num_vertices());
    for (Edge& e : roads.edges()) {
      e.weight = static_cast<Weight>(1.0 + rng.NextDouble() * 4.0);
      reverse.Add(e.dst, e.src, static_cast<Weight>(1.0 + rng.NextDouble() * 4.0));
    }
    for (const Edge& e : reverse.edges()) {
      roads.edges().push_back(e);
    }
  }
  for (int i = 0; i < 40; ++i) {
    const auto a = static_cast<VertexId>(rng.NextBounded(roads.num_vertices()));
    const auto b = static_cast<VertexId>(rng.NextBounded(roads.num_vertices()));
    if (a != b) {
      roads.Add(a, b, static_cast<Weight>(1.0 + rng.NextDouble() * 2.0));
    }
  }

  const VertexId depot = 0;
  const VertexId destination = rows * cols - 1;
  MutableGraph g_bolt(roads);
  MutableGraph g_ks(roads);

  GraphBoltEngine<Sssp> bolt(&g_bolt, Sssp(depot),
                             {.max_iterations = 4096, .run_to_convergence = true});
  bolt.InitialCompute();
  KickStarterSssp kick(&g_ks, depot);
  kick.InitialCompute();
  std::printf("initial distance depot->corner: %.2f\n", bolt.values()[destination]);

  std::printf("%-7s %-9s %12s %14s %16s\n", "batch", "kind", "GraphBolt", "KickStarter",
              "dist(corner)");
  for (int round = 0; round < args.GetInt("batches"); ++round) {
    // Alternate: close a random sample of roads, then reopen some.
    MutationBatch batch;
    const bool closing = round % 2 == 0;
    const EdgeList current = g_bolt.ToEdgeList();
    for (int i = 0; i < 30; ++i) {
      const Edge& e = current.edges()[rng.NextBounded(current.num_edges())];
      if (closing) {
        batch.push_back(EdgeMutation::Delete(e.src, e.dst));
      } else {
        const auto a = static_cast<VertexId>(rng.NextBounded(g_bolt.num_vertices()));
        const auto b = static_cast<VertexId>(rng.NextBounded(g_bolt.num_vertices()));
        batch.push_back(EdgeMutation::Add(a, b, static_cast<Weight>(1.0 + rng.NextDouble() * 3.0)));
      }
    }
    bolt.ApplyMutations(batch);
    kick.ApplyMutations(batch);
    const double d = bolt.values()[destination];
    std::printf("%-7d %-9s %9.2f ms %11.2f ms %16s\n", round + 1, closing ? "closures" : "reopens",
                bolt.stats().seconds * 1e3, kick.stats().seconds * 1e3,
                d >= kUnreachable ? "unreachable" : std::to_string(d).c_str());

    // The two engines must agree on every distance.
    for (VertexId v = 0; v < g_bolt.num_vertices(); ++v) {
      const double a = bolt.values()[v];
      const double b = kick.distances()[v];
      if (std::fabs(a - b) > 1e-6 && !(a >= kUnreachable && b >= kUnreachable)) {
        std::printf("MISMATCH at vertex %u: %.4f vs %.4f\n", v, a, b);
        return 1;
      }
    }
  }
  std::printf("GraphBolt and KickStarter agreed on all distances after every batch.\n");
  return 0;
}
