// Tests for horizontal pruning and computation-aware hybrid execution: a
// truncated dependency history must still give exact BSP results via the
// changed-bit-guided continuation (§4.2).
#include <gtest/gtest.h>

#include "src/algorithms/coem.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/graph/generators.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// Streams batches through a GraphBolt engine with the given history size and
// checks every snapshot against a restarting Ligra engine.
template <typename Algo>
void StreamWithHistory(Algo algo, uint32_t history, const EdgeList& full, int rounds,
                       size_t batch_size, double tolerance) {
  StreamSplit split = SplitForStreaming(full, 0.5, 100);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<Algo> bolt(&g1, algo, {.max_iterations = 10, .history_size = history});
  LigraEngine<Algo> ligra(&g2, algo, {.max_iterations = 10});
  bolt.InitialCompute();
  ligra.InitialCompute();
  EXPECT_EQ(bolt.store().tracked_levels(), std::min<uint32_t>(history, 10));
  EXPECT_EQ(bolt.store().total_levels(), 10u);

  UpdateStream stream(split.held_back, 101);
  for (int round = 0; round < rounds; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = batch_size, .add_fraction = 0.6});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), tolerance)
        << "history " << history << " round " << round;
  }
}

TEST(HybridExecution, HistoryFiveOfTenPageRank) {
  StreamWithHistory(PageRank{}, 5, GenerateRmat(800, 7000, {.seed = 102}), 6, 40, 1e-7);
}

TEST(HybridExecution, HistoryOnePageRank) {
  // The most aggressive horizontal pruning: only iteration 1 is refinable;
  // everything else replays through changed bits.
  StreamWithHistory(PageRank{}, 1, GenerateRmat(800, 7000, {.seed = 103}), 6, 40, 1e-7);
}

TEST(HybridExecution, HistoryNineOfTenPageRank) {
  StreamWithHistory(PageRank{}, 9, GenerateRmat(800, 7000, {.seed = 104}), 4, 40, 1e-7);
}

TEST(HybridExecution, HistoryThreeLabelPropagation) {
  EdgeList full = GenerateRmat(600, 5000, {.seed = 105, .assign_random_weights = true});
  StreamWithHistory(LabelPropagation<2>(full.num_vertices(), 0.1, 106), 3, full, 5, 30, 1e-7);
}

TEST(HybridExecution, HistoryFourCoEM) {
  EdgeList full = GenerateRmat(600, 5000, {.seed = 107, .assign_random_weights = true});
  StreamWithHistory(CoEM(full.num_vertices(), 0.08, 108), 4, full, 5, 30, 1e-7);
}

TEST(HybridExecution, ContinuationDoesLessWorkThanRestartForSmallBatches) {
  EdgeList full = GenerateRmat(3000, 30000, {.seed = 109});
  StreamSplit split = SplitForStreaming(full, 0.5, 110);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> pruned(&g1, PageRank{}, {.max_iterations = 10, .history_size = 5});
  LigraEngine<PageRank> ligra(&g2, PageRank{}, {.max_iterations = 10});
  pruned.InitialCompute();
  ligra.InitialCompute();
  const MutationBatch batch{EdgeMutation::Add(1, 2), EdgeMutation::Add(3, 4)};
  pruned.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  EXPECT_LT(MaxGap(pruned.values(), ligra.values()), 1e-7);
  EXPECT_LT(pruned.stats().edges_processed, ligra.stats().edges_processed);
}

TEST(HybridExecution, SsspConvergenceWithTruncatedHistory) {
  // Convergence-mode non-decomposable algorithm with pruned history: the
  // continuation must extend past the tracked levels until the new fixpoint.
  EdgeList full = GenerateRmat(500, 4000, {.seed = 111, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 112);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<Sssp> bolt(
      &g1, Sssp(0), {.max_iterations = 128, .run_to_convergence = true, .history_size = 4});
  LigraEngine<Sssp> ligra(&g2, Sssp(0), {.max_iterations = 128, .run_to_convergence = true});
  bolt.InitialCompute();
  ligra.InitialCompute();
  EXPECT_LE(bolt.store().tracked_levels(), 4u);

  UpdateStream stream(split.held_back, 113);
  for (int round = 0; round < 4; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.5});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-9) << "round " << round;
  }
}

TEST(HybridExecution, ConvergenceModeExtendsLevelsWhenNeeded) {
  // A deletion forcing longer shortest paths requires more iterations than
  // the original run recorded; the continuation must append levels.
  EdgeList list;
  list.set_num_vertices(6);
  list.Add(0, 5);           // shortcut
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(2, 3);
  list.Add(3, 4);
  list.Add(4, 5);           // long path
  MutableGraph graph(std::move(list));
  GraphBoltEngine<Sssp> bolt(&graph, Sssp(0),
                             {.max_iterations = 64, .run_to_convergence = true});
  bolt.InitialCompute();
  EXPECT_DOUBLE_EQ(bolt.values()[5], 1.0);
  const uint32_t levels_before = bolt.store().total_levels();
  bolt.ApplyMutations({EdgeMutation::Delete(0, 5)});
  EXPECT_DOUBLE_EQ(bolt.values()[5], 5.0);
  EXPECT_GT(bolt.store().total_levels(), levels_before);
}

TEST(HybridExecution, RepeatedBatchesWithPrunedHistoryStayExact) {
  // The continuation rewrites changed bits; 15 successive batches must not
  // let drift creep in through stale bit vectors.
  EdgeList full = GenerateRmat(500, 4500, {.seed = 114});
  StreamSplit split = SplitForStreaming(full, 0.5, 115);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{}, {.max_iterations = 10, .history_size = 3});
  LigraEngine<PageRank> ligra(&g2, PageRank{}, {.max_iterations = 10});
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 116);
  for (int round = 0; round < 15; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 15, .add_fraction = 0.55});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-7) << "round " << round;
  }
}

TEST(MonotonicFastPath, AdditionOnlyBatchesMatchRestart) {
  // Sssp::kMonotonic lets addition-only batches push improved contributions
  // instead of re-evaluating full in-neighborhoods; results must be
  // identical to a restart.
  EdgeList full = GenerateRmat(600, 5000, {.seed = 120, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 121);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<Sssp> bolt(&g1, Sssp(0), {.max_iterations = 256, .run_to_convergence = true});
  LigraEngine<Sssp> ligra(&g2, Sssp(0), {.max_iterations = 256, .run_to_convergence = true});
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 122);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 30, .add_fraction = 1.0});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-9) << "round " << round;
  }
}

TEST(MonotonicFastPath, AdditionOnlyDoesLessWorkThanReevaluation) {
  EdgeList full = GenerateRmat(3000, 25000, {.seed = 123, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 124);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<Sssp> bolt(&g1, Sssp(0), {.max_iterations = 256, .run_to_convergence = true});
  GraphBoltEngine<Sssp> bolt2(&g2, Sssp(0), {.max_iterations = 256, .run_to_convergence = true});
  bolt.InitialCompute();
  bolt2.InitialCompute();

  MutationBatch adds_only;
  MutationBatch mixed;
  for (size_t i = 0; i < 20; ++i) {
    const Edge& e = split.held_back[i];
    adds_only.push_back(EdgeMutation::Add(e.src, e.dst, e.weight));
    mixed.push_back(EdgeMutation::Add(e.src, e.dst, e.weight));
  }
  // One deletion forces the mixed batch onto the full re-evaluation path.
  const EdgeList snapshot = g2.ToEdgeList();
  mixed.push_back(EdgeMutation::Delete(snapshot.edges()[0].src, snapshot.edges()[0].dst));

  bolt.ApplyMutations(adds_only);
  bolt2.ApplyMutations(mixed);
  EXPECT_LT(bolt.stats().edges_processed, bolt2.stats().edges_processed);
}

TEST(ResetFallback, LargeBatchTriggersRecomputeAndStaysCorrect) {
  EdgeList full = GenerateRmat(500, 4000, {.seed = 125});
  StreamSplit split = SplitForStreaming(full, 0.5, 126);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{}, {.reset_fallback_fraction = 0.01});
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  bolt.InitialCompute();
  ligra.InitialCompute();

  UpdateStream stream(split.held_back, 127);
  // Large batch (> 1% of edges): recompute path.
  const MutationBatch large = stream.NextBatch(g1, {.size = 500, .add_fraction = 0.6});
  bolt.ApplyMutations(large);
  ligra.ApplyMutations(large);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), 1e-8);
  // The recompute must leave a consistent store: a small batch afterwards
  // refines correctly.
  const MutationBatch small = stream.NextBatch(g1, {.size = 5, .add_fraction = 0.6});
  bolt.ApplyMutations(small);
  ligra.ApplyMutations(small);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), 1e-7);
}

}  // namespace
}  // namespace graphbolt
