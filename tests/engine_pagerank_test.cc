// PageRank across all three engines: analytic sanity checks, cross-engine
// equivalence, and streaming correctness.
#include <gtest/gtest.h>

#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/engine/reset_engine.h"
#include "src/graph/generators.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

constexpr double kTol = 1e-9;

TEST(PageRankLigra, UniformOnCycle) {
  // On a directed cycle every vertex has one in/out edge, so rank stays 1.
  MutableGraph graph(GenerateCycle(10));
  LigraEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  for (const double rank : engine.values()) {
    EXPECT_NEAR(rank, 1.0, 1e-12);
  }
}

TEST(PageRankLigra, UniformOnCompleteGraph) {
  MutableGraph graph(GenerateComplete(6));
  LigraEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  for (const double rank : engine.values()) {
    EXPECT_NEAR(rank, 1.0, 1e-12);
  }
}

TEST(PageRankLigra, SinkAccumulatesRank) {
  // 0 -> 2, 1 -> 2: vertex 2 collects rank from both.
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 2);
  list.Add(1, 2);
  MutableGraph graph(std::move(list));
  LigraEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  EXPECT_NEAR(engine.values()[0], 0.15, 1e-12);
  EXPECT_NEAR(engine.values()[1], 0.15, 1e-12);
  EXPECT_GT(engine.values()[2], engine.values()[0]);
  // After convergence to the 10-iteration fixed point: 0.15 + 0.85 * 2*0.15.
  EXPECT_NEAR(engine.values()[2], 0.15 + 0.85 * 0.3, 1e-12);
}

TEST(PageRankEngines, AgreeOnRmat) {
  EdgeList list = GenerateRmat(1000, 8000, {.seed = 21});
  MutableGraph g1(list);
  MutableGraph g2(list);
  MutableGraph g3(list);
  LigraEngine<PageRank> ligra(&g1, PageRank{});
  ResetEngine<PageRank> reset(&g2, PageRank{});
  GraphBoltEngine<PageRank> bolt(&g3, PageRank{});
  ligra.InitialCompute();
  reset.InitialCompute();
  bolt.InitialCompute();
  EXPECT_LT(MaxGap(ligra.values(), reset.values()), 1e-8);
  EXPECT_LT(MaxGap(ligra.values(), bolt.values()), 1e-8);
}

TEST(PageRankEngines, IterationCountsMatch) {
  EdgeList list = GenerateRmat(300, 2000, {.seed = 22});
  MutableGraph g1(list);
  MutableGraph g2(list);
  LigraEngine<PageRank> ligra(&g1, PageRank{}, {.max_iterations = 7});
  GraphBoltEngine<PageRank> bolt(&g2, PageRank{}, {.max_iterations = 7});
  ligra.InitialCompute();
  bolt.InitialCompute();
  EXPECT_EQ(ligra.stats().iterations, 7u);
  EXPECT_EQ(bolt.stats().iterations, 7u);
  EXPECT_LT(MaxGap(ligra.values(), bolt.values()), 1e-9);
}

TEST(PageRankGraphBolt, SingleEdgeAdditionMatchesRestart) {
  EdgeList list = PaperFigure2aGraph();
  MutableGraph g1(list);
  MutableGraph g2(list);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  const MutationBatch batch{EdgeMutation::Add(0, 3)};
  bolt.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), kTol);
}

TEST(PageRankGraphBolt, SingleEdgeDeletionMatchesRestart) {
  EdgeList list = PaperFigure2aGraph();
  MutableGraph g1(list);
  MutableGraph g2(list);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  const MutationBatch batch{EdgeMutation::Delete(2, 1)};
  bolt.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), kTol);
}

TEST(PageRankGraphBolt, MixedBatchesOnRmatMatchRestart) {
  EdgeList full = GenerateRmat(1500, 12000, {.seed = 23});
  StreamSplit split = SplitForStreaming(full, 0.5, 24);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  UpdateStream stream(split.held_back, 25);
  for (int round = 0; round < 8; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 40, .add_fraction = 0.6});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-7) << "round " << round;
  }
}

TEST(PageRankGraphBolt, ErrorDoesNotAccumulateOverManyBatches) {
  EdgeList full = GenerateRmat(600, 5000, {.seed = 26});
  StreamSplit split = SplitForStreaming(full, 0.5, 27);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  UpdateStream stream(split.held_back, 28);
  double last_gap = 0.0;
  for (int round = 0; round < 25; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 20, .add_fraction = 0.55});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    last_gap = MaxGap(bolt.values(), ligra.values());
    ASSERT_LT(last_gap, 1e-7) << "round " << round;
  }
  // After 25 batches the refined result is still exact, unlike naive reuse
  // (Table 1's escalating error).
  EXPECT_LT(last_gap, 1e-7);
}

TEST(PageRankGraphBolt, ProcessesFewerEdgesThanRestart) {
  EdgeList full = GenerateRmat(4000, 40000, {.seed = 29});
  StreamSplit split = SplitForStreaming(full, 0.5, 30);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  ResetEngine<PageRank> reset(&g2, PageRank{});
  reset.InitialCompute();

  UpdateStream stream(split.held_back, 31);
  const MutationBatch batch = stream.NextBatch(g1, {.size = 10, .add_fraction = 0.5});
  bolt.ApplyMutations(batch);
  reset.ApplyMutations(batch);
  EXPECT_LT(bolt.stats().edges_processed, reset.stats().edges_processed);
}

TEST(PageRankGraphBolt, EmptyBatchIsFast) {
  EdgeList list = GenerateRmat(500, 3000, {.seed = 32});
  MutableGraph graph(list);
  GraphBoltEngine<PageRank> bolt(&graph, PageRank{});
  bolt.InitialCompute();
  const std::vector<double> before = bolt.values();
  bolt.ApplyMutations({});
  EXPECT_EQ(bolt.stats().edges_processed, 0u);
  EXPECT_LT(MaxGap(before, bolt.values()), 1e-15);
}

TEST(PageRankGraphBolt, NoOpBatchLeavesValues) {
  EdgeList list = PaperFigure2aGraph();
  MutableGraph graph(list);
  GraphBoltEngine<PageRank> bolt(&graph, PageRank{});
  bolt.InitialCompute();
  const std::vector<double> before = bolt.values();
  // Adding an existing edge and deleting an absent one are both no-ops.
  bolt.ApplyMutations({EdgeMutation::Add(0, 1), EdgeMutation::Delete(4, 1)});
  EXPECT_LT(MaxGap(before, bolt.values()), 1e-15);
}

TEST(PageRankGraphBolt, MutationAddingNewVertices) {
  EdgeList list = PaperFigure2aGraph();
  MutableGraph g1(list);
  MutableGraph g2(list);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  const MutationBatch batch{EdgeMutation::Add(4, 7), EdgeMutation::Add(7, 0)};
  bolt.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  ASSERT_EQ(bolt.values().size(), 8u);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), kTol);
}

TEST(PageRankGraphBolt, DanglingVertexCreatedByDeletion) {
  // Deleting vertex 3's only out-edges makes it dangling; the Fanout guard
  // must keep contributions finite and match the restart result.
  EdgeList list = PaperFigure2aGraph();
  MutableGraph g1(list);
  MutableGraph g2(list);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  const MutationBatch batch{EdgeMutation::Delete(3, 2), EdgeMutation::Delete(3, 4)};
  bolt.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), kTol);
}

TEST(PageRankGraphBolt, RetractPropagateModeMatchesDeltaMode) {
  // GraphBolt-RP (§5.4A) must compute identical results, just with two
  // aggregation operations per edge instead of one.
  EdgeList full = GenerateRmat(800, 6000, {.seed = 33});
  StreamSplit split = SplitForStreaming(full, 0.5, 34);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> delta(&g1, PageRank{});
  GraphBoltEngine<PageRank> rp(&g2, PageRank{}, {.use_retract_propagate = true});
  delta.InitialCompute();
  rp.InitialCompute();

  UpdateStream stream(split.held_back, 35);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 30, .add_fraction = 0.6});
    delta.ApplyMutations(batch);
    rp.ApplyMutations(batch);
    ASSERT_LT(MaxGap(delta.values(), rp.values()), 1e-8) << "round " << round;
  }
}

TEST(PageRankReset, MatchesLigraUnderStreaming) {
  EdgeList full = GenerateRmat(700, 6000, {.seed = 36});
  StreamSplit split = SplitForStreaming(full, 0.5, 37);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  ResetEngine<PageRank> reset(&g1, PageRank{});
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  reset.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 38);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 50, .add_fraction = 0.6});
    reset.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(reset.values(), ligra.values()), 1e-8) << "round " << round;
  }
}

}  // namespace
}  // namespace graphbolt
