// Differential property/fuzz tests for SlackCsr: under seeded random
// mutation streams, the slack representation must stay *bitwise* equivalent
// to the reference rebuild-on-apply Csr — same edge list export, degrees,
// HasEdge, EdgeWeight — including forced-compaction, vertex-growth, and
// background-compaction (multi-batch shadow epochs with mid-epoch edits)
// cases. Seeds are env-sharded via FuzzSeeds() (tests/test_util.h), same as
// fuzz_stream_test.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/graph/slack_csr.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// The reference: a dual rebuild-CSR graph driven exactly the way the old
// MutableGraph drove Csr::ApplyEdits — full-size per-vertex edit arrays and
// an O(V+E) rebuild per batch.
class ReferenceGraph {
 public:
  explicit ReferenceGraph(const EdgeList& edges)
      : out_(Csr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/false)),
        in_(Csr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/true)) {}

  void Apply(const AppliedMutations& result, VertexId new_vertex_count) {
    out_.GrowVertices(new_vertex_count);
    in_.GrowVertices(new_vertex_count);
    const VertexId n = out_.num_vertices();
    std::vector<std::vector<VertexId>> out_deletes(n);
    std::vector<std::vector<std::pair<VertexId, Weight>>> out_adds(n);
    std::vector<std::vector<VertexId>> in_deletes(n);
    std::vector<std::vector<std::pair<VertexId, Weight>>> in_adds(n);
    for (const Edge& e : result.added) {
      out_adds[e.src].push_back({e.dst, e.weight});
      in_adds[e.dst].push_back({e.src, e.weight});
    }
    for (const Edge& e : result.deleted) {
      out_deletes[e.src].push_back(e.dst);
      in_deletes[e.dst].push_back(e.src);
    }
    for (auto& v : in_deletes) {
      std::sort(v.begin(), v.end());
    }
    for (auto& v : in_adds) {
      std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    out_.ApplyEdits(out_deletes, out_adds);
    in_.ApplyEdits(in_deletes, in_adds);
  }

  const Csr& out() const { return out_; }
  const Csr& in() const { return in_; }

 private:
  Csr out_;
  Csr in_;
};

// Bitwise equivalence: every observable of the slack view must match the
// reference view exactly (weights compared bit-for-bit via Edge::operator==).
void ExpectEquivalent(const MutableGraph& graph, const ReferenceGraph& ref) {
  const VertexId n = graph.num_vertices();
  ASSERT_EQ(n, ref.out().num_vertices());
  ASSERT_EQ(graph.num_edges(), ref.out().num_edges());
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(graph.OutDegree(v), ref.out().Degree(v)) << "out-degree of " << v;
    ASSERT_EQ(graph.InDegree(v), ref.in().Degree(v)) << "in-degree of " << v;
    const auto nbrs = graph.OutNeighbors(v);
    const auto wts = graph.OutWeights(v);
    const auto ref_nbrs = ref.out().Neighbors(v);
    const auto ref_wts = ref.out().Weights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      ASSERT_EQ(nbrs[i], ref_nbrs[i]) << "neighbor " << i << " of " << v;
      ASSERT_EQ(wts[i], ref_wts[i]) << "weight " << i << " of " << v;
      ASSERT_TRUE(graph.HasEdge(v, nbrs[i]));
      ASSERT_EQ(graph.EdgeWeight(v, nbrs[i]), ref.out().EdgeWeight(v, nbrs[i]));
    }
    // DegreePrefix must agree with the reference CSR's offsets (both are
    // cumulative out-degrees).
    ASSERT_EQ(graph.out().DegreePrefix()[v], ref.out().offsets()[v]) << "prefix at " << v;
  }
  ASSERT_TRUE(graph.CheckInvariants());
  ASSERT_TRUE(ref.out().CheckInvariants());
}

MutationBatch RandomBatch(const MutableGraph& graph, Rng& rng, size_t size,
                          double delete_fraction, VertexId growth_span) {
  MutationBatch batch;
  const VertexId n = graph.num_vertices();
  for (size_t i = 0; i < size; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(n));
    const double roll = rng.NextDouble();
    if (roll < delete_fraction) {
      const auto nbrs = graph.OutNeighbors(src);
      if (!nbrs.empty()) {
        batch.push_back(EdgeMutation::Delete(src, nbrs[rng.NextBounded(nbrs.size())]));
      } else {
        batch.push_back(EdgeMutation::Delete(src, static_cast<VertexId>(rng.NextBounded(n))));
      }
    } else if (roll < delete_fraction + 0.1) {
      batch.push_back(EdgeMutation::UpdateWeight(src, static_cast<VertexId>(rng.NextBounded(n)),
                                                 static_cast<Weight>(0.25 + rng.NextDouble())));
    } else {
      // Occasionally target a vertex beyond the current range to force
      // vertex growth through both representations.
      const VertexId dst = growth_span > 0 && rng.NextDouble() < 0.05
                               ? n + static_cast<VertexId>(rng.NextBounded(growth_span))
                               : static_cast<VertexId>(rng.NextBounded(n));
      batch.push_back(EdgeMutation::Add(src, dst, static_cast<Weight>(0.1 + rng.NextDouble())));
    }
  }
  return batch;
}

class SlackCsrFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(SlackCsrFuzz, MatchesRebuildCsrUnderMixedStream) {
  const uint64_t seed = GetParam();
  EdgeList initial = GenerateRmat(250, 1800, {.seed = seed, .assign_random_weights = true});
  initial.SortAndDeduplicate();
  MutableGraph graph(initial);
  ReferenceGraph ref(initial);
  Rng rng(seed * 101 + 13);
  for (int round = 0; round < 25; ++round) {
    const MutationBatch batch =
        RandomBatch(graph, rng, 1 + rng.NextBounded(50), /*delete_fraction=*/0.35,
                    /*growth_span=*/3);
    const AppliedMutations applied = graph.ApplyBatch(batch);
    ref.Apply(applied, graph.num_vertices());
    ExpectEquivalent(graph, ref);
  }
}

TEST_P(SlackCsrFuzz, DeleteHeavyStreamForcesCompaction) {
  const uint64_t seed = GetParam();
  EdgeList initial = GenerateRmat(200, 4000, {.seed = seed + 500, .assign_random_weights = true});
  initial.SortAndDeduplicate();
  MutableGraph graph(initial);
  ReferenceGraph ref(initial);
  Rng rng(seed * 7 + 3);
  size_t compactions = 0;
  for (int round = 0; round < 30; ++round) {
    const MutationBatch batch =
        RandomBatch(graph, rng, 60 + rng.NextBounded(60), /*delete_fraction=*/0.85,
                    /*growth_span=*/0);
    const AppliedMutations applied = graph.ApplyBatch(batch);
    ref.Apply(applied, graph.num_vertices());
    compactions += graph.out().last_apply_stats().compactions;
    compactions += graph.in().last_apply_stats().compactions;
    ExpectEquivalent(graph, ref);
    // Post-apply invariant: slack never rests above the threshold on an
    // arena large enough to be worth compacting.
    ASSERT_TRUE(graph.out().arena_used() < SlackCsr::kMinCompactionArena ||
                graph.out().SlackFraction() <= SlackCsr::kCompactionThreshold + 1e-9)
        << "slack above threshold survived a batch";
  }
  // An 85%-delete stream over 30 rounds must shed enough edges to trip the
  // threshold at least once; equivalence held across every compaction above.
  EXPECT_GT(compactions, 0u) << "compaction never triggered; test lost its teeth";
}

TEST_P(SlackCsrFuzz, BackgroundCompactionStaysBitwiseEquivalent) {
  const uint64_t seed = GetParam();
  EdgeList initial = GenerateRmat(250, 1500, {.seed = seed + 1300, .assign_random_weights = true});
  initial.SortAndDeduplicate();
  MutableGraph graph(initial);
  graph.SetCompactionMode(SlackCsr::CompactionMode::kBackground);
  ReferenceGraph ref(initial);
  Rng rng(seed * 57 + 29);
  for (int round = 0; round < 45; ++round) {
    const MutationBatch batch =
        RandomBatch(graph, rng, 30 + rng.NextBounded(40), /*delete_fraction=*/0.6,
                    /*growth_span=*/3);
    const AppliedMutations applied = graph.ApplyBatch(batch);
    ref.Apply(applied, graph.num_vertices());
    ExpectEquivalent(graph, ref);
    // A deliberately small budget: one step per round means a shadow
    // rewrite spans several batches, so edits keep landing mid-epoch and
    // the flip's correctness rides entirely on the dirty-vertex tracking.
    // Equivalence is re-checked right after the step to cover flip rounds.
    graph.MaintenanceStep(200);
    ExpectEquivalent(graph, ref);
  }
  EXPECT_GT(graph.compaction_stats().background_compactions, 0u)
      << "no shadow rewrite ever completed; raise rounds or budget";
}

TEST_P(SlackCsrFuzz, GrowthHeavyStreamRelocatesSegments) {
  const uint64_t seed = GetParam();
  // Start near-empty so almost every addition overflows a tight segment.
  EdgeList initial = GenerateErdosRenyi(150, 160, seed + 900, /*assign_random_weights=*/true);
  initial.SortAndDeduplicate();
  MutableGraph graph(initial);
  ReferenceGraph ref(initial);
  Rng rng(seed * 31 + 17);
  size_t relocations = 0;
  for (int round = 0; round < 25; ++round) {
    const MutationBatch batch =
        RandomBatch(graph, rng, 30 + rng.NextBounded(30), /*delete_fraction=*/0.05,
                    /*growth_span=*/4);
    const AppliedMutations applied = graph.ApplyBatch(batch);
    ref.Apply(applied, graph.num_vertices());
    relocations += graph.out().last_apply_stats().relocations;
    ExpectEquivalent(graph, ref);
  }
  EXPECT_GT(relocations, 0u) << "growth stream never overflowed a segment";
}

TEST(SlackCsrUnit, ExplicitCompactTightensArena) {
  EdgeList list = GenerateRmat(100, 1500, {.seed = 11, .assign_random_weights = true});
  list.SortAndDeduplicate();
  MutableGraph graph(list);
  // Delete a third of the edges to open slack, then compact explicitly.
  MutationBatch batch;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto nbrs = graph.OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size(); i += 3) {
      batch.push_back(EdgeMutation::Delete(v, nbrs[i]));
    }
  }
  graph.ApplyBatch(batch);
  SlackCsr copy = graph.out();  // compact a copy; MutableGraph's view is const
  copy.Compact();
  EXPECT_EQ(copy.arena_used(), copy.num_edges());
  EXPECT_DOUBLE_EQ(copy.SlackFraction(), 0.0);
  EXPECT_TRUE(copy.CheckInvariants());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto a = graph.OutNeighbors(v);
    const auto b = copy.Neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]);
    }
  }
}

TEST(SlackCsrUnit, ApplyStatsScaleWithBatchNotGraph) {
  // The O(batch-impact) claim, asserted on deterministic counters: splicing
  // a small batch touches only the affected vertices, and the edges moved
  // are bounded by those vertices' own adjacency lists — never |E| (the old
  // rebuild path rewrote all of it, every batch).
  auto run = [](VertexId v, EdgeIndex e, uint64_t seed) {
    EdgeList list = GenerateRmat(v, e, {.seed = seed});
    list.SortAndDeduplicate();
    MutableGraph graph(list);
    MutationBatch batch;
    for (VertexId i = 0; i < 8; ++i) {
      batch.push_back(EdgeMutation::Add(i, v - 1 - i));
    }
    graph.ApplyBatch(batch);
    const auto stats = graph.out().last_apply_stats();
    EXPECT_LE(stats.touched_vertices, 8u);
    // Exact bound: spliced work <= the touched sources' post-apply degrees.
    uint64_t touched_degree_sum = 0;
    for (VertexId i = 0; i < 8; ++i) {
      touched_degree_sum += graph.OutDegree(i);
    }
    EXPECT_LE(stats.edges_spliced, touched_degree_sum);
    // And that bound is a small fraction of the graph: the apply never
    // degenerates into a rebuild.
    EXPECT_LT(stats.edges_spliced, graph.num_edges() / 4);
    return stats;
  };
  const auto small = run(2000, 30000, 5);
  const auto large = run(2000, 120000, 5);
  // Hub degrees grow with |E| in RMAT, so spliced work may grow too — but
  // strictly slower than the graph itself (4x edges, <4x splice).
  EXPECT_LT(large.edges_spliced, 4 * small.edges_spliced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlackCsrFuzz, testing::ValuesIn(FuzzSeeds()));

}  // namespace
}  // namespace graphbolt
