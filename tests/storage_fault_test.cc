// Storage-fault tier: drive the injectable StorageEnv through the whole
// durability stack and prove every fault is *detected* — never silently
// replayed, never silently restored — and that the runtime degrades the
// way the design doc promises: ENOSPC is fatal-fast (no retry burn, last
// good checkpoint stays restorable, serving continues), torn WAL tails
// truncate at the last intact record boundary, read-side bit flips fail
// the checksum, v1 artifacts still load, and Scrub quarantines exactly
// what recovery would reject.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/stream_driver.h"
#include "src/fault/checkpoint.h"
#include "src/fault/storage_env.h"
#include "src/fault/wal.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/parallel/thread_pool.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

using Engine = GraphBoltEngine<PageRank>;

MutationBatch OneAdd(VertexId src, VertexId dst) {
  MutationBatch batch;
  batch.push_back(EdgeMutation::Add(src, dst));
  return batch;
}

// An edge the graph does not have yet (adding a duplicate is a no-op, which
// would make "the engine moved on" assertions vacuous).
MutationBatch OneFreshAdd(const MutableGraph& graph) {
  for (VertexId src = graph.num_vertices(); src-- > 0;) {
    for (VertexId dst = graph.num_vertices(); dst-- > 0;) {
      if (src != dst && !graph.HasEdge(src, dst)) {
        return OneAdd(src, dst);
      }
    }
  }
  ADD_FAILURE() << "graph is complete; no fresh edge to add";
  return OneAdd(0, 1);
}

// --------------------------------------------------------------------------
// FaultyEnv contract
// --------------------------------------------------------------------------

TEST(FaultyEnvTest, FailWriteAtIsOneShotAndCounted) {
  ScopedTempDir tmp("gb_storage_fault");
  FaultyEnv env;
  env.FailWriteAt(1, StorageStatus::Code::kEio);
  WriteAheadLog wal;
  wal.Open(tmp.File("one.wal"), &env);
  EXPECT_FALSE(wal.Append(1, OneAdd(0, 1)));
  EXPECT_EQ(wal.last_status().code, StorageStatus::Code::kEio);
  EXPECT_EQ(env.faults_fired(), 1u);
  // One-shot: the retry goes through and the log is whole again.
  EXPECT_TRUE(wal.Append(1, OneAdd(0, 1)));
  WalScanInfo info = wal.Verify();
  EXPECT_TRUE(info.clean());
  EXPECT_EQ(info.records_total, 1u);
}

TEST(FaultyEnvTest, ShortWritePersistsExactlyTheFraction) {
  ScopedTempDir tmp("gb_storage_fault");
  FaultyEnv env;
  WriteAheadLog wal;
  wal.Open(tmp.File("short.wal"), &env);
  ASSERT_TRUE(wal.Append(1, OneAdd(0, 1)));
  const int64_t whole = env.FileSize(tmp.File("short.wal"));
  ASSERT_GT(whole, 0);
  // Half of record 2 reaches the platter; the append still reports failure.
  env.FailWriteAt(2, StorageStatus::Code::kEio, /*persist_fraction=*/0.5);
  EXPECT_FALSE(wal.Append(2, OneAdd(1, 2)));
  const int64_t torn = env.FileSize(tmp.File("short.wal"));
  EXPECT_GT(torn, whole);       // some bytes of the doomed record landed
  EXPECT_LT(torn, 2 * whole);   // but not all of them
  // Replay tolerates the torn tail: record 1 intact, nothing invented.
  WalScanInfo info = wal.Verify();
  EXPECT_EQ(info.records_total, 1u);
  EXPECT_TRUE(info.torn_tail);
  EXPECT_FALSE(info.corrupt);
}

TEST(FaultyEnvTest, ReadCorruptionFliesExactlyOneBit) {
  ScopedTempDir tmp("gb_storage_fault");
  FaultyEnv env;
  WriteAheadLog wal;
  wal.Open(tmp.File("flip.wal"), &env);
  ASSERT_TRUE(wal.Append(1, OneAdd(3, 4)));
  env.CorruptReadAt("flip.wal", /*offset=*/30, /*xor_mask=*/0x01);
  WalScanInfo info = wal.Verify();
  EXPECT_TRUE(info.corrupt);
  EXPECT_EQ(info.records_total, 0u);
  EXPECT_GE(env.faults_fired(), 1u);
  env.ClearFaults();
  EXPECT_TRUE(wal.Verify().clean());  // the disk itself was never touched
}

// --------------------------------------------------------------------------
// WAL: torn tails, bit flips, v1 read-compat
// --------------------------------------------------------------------------

TEST(WalFaultTest, TornTailTruncatesAtRecordBoundaryAndHeals) {
  ScopedTempDir tmp("gb_storage_fault");
  FaultyEnv env;
  const std::string path = tmp.File("torn.wal");
  WriteAheadLog wal;
  wal.Open(path, &env);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(wal.Append(seq, OneAdd(seq, seq + 1)));
  }
  // Record 6 dies mid-write (40% of its bytes persist).
  env.FailWriteAt(6, StorageStatus::Code::kEio, /*persist_fraction=*/0.4);
  EXPECT_FALSE(wal.Append(6, OneAdd(6, 7)));
  env.ClearFaults();

  std::vector<uint64_t> seqs;
  WalScanInfo info;
  wal.Replay(0, [&](uint64_t seq, MutationBatch&&) { seqs.push_back(seq); },
             static_cast<size_t>(-1), &info);
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(info.torn_tail);
  EXPECT_LT(info.valid_bytes, info.file_bytes);

  // Heal truncates exactly to the boundary; appends continue cleanly.
  EXPECT_TRUE(wal.Heal());
  EXPECT_EQ(static_cast<uint64_t>(env.FileSize(path)), info.valid_bytes);
  EXPECT_TRUE(wal.Verify().clean());
  ASSERT_TRUE(wal.Append(6, OneAdd(6, 7)));
  WalScanInfo after = wal.Verify();
  EXPECT_TRUE(after.clean());
  EXPECT_EQ(after.records_total, 6u);
  EXPECT_FALSE(wal.Heal());  // nothing left to cut
}

TEST(WalFaultTest, BitFlipOnDiskNeverDeliversTheBadRecord) {
  ScopedTempDir tmp("gb_storage_fault");
  const std::string path = tmp.File("flip2.wal");
  WriteAheadLog wal;
  wal.Open(path, nullptr);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(wal.Append(seq, OneAdd(seq, seq + 1)));
  }
  const int64_t file_bytes = StorageEnv::Default()->FileSize(path);
  ASSERT_GT(file_bytes, 0);
  const uint64_t record_bytes = static_cast<uint64_t>(file_bytes) / 5;
  // Flip one payload bit inside record 3.
  ASSERT_TRUE(FaultyEnv::FlipByteOnDisk(path, 2 * record_bytes + record_bytes / 2, 0x40));

  std::vector<uint64_t> seqs;
  WalScanInfo info;
  wal.Replay(0, [&](uint64_t seq, MutationBatch&&) { seqs.push_back(seq); },
             static_cast<size_t>(-1), &info);
  // The checksum stops replay at the last verified boundary: records 1-2
  // arrive, the flipped record and everything after it never do.
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(info.corrupt);
  EXPECT_EQ(info.valid_bytes, 2 * record_bytes);

  // Heal cuts the file back to the intact prefix so the lineage lives on.
  EXPECT_TRUE(wal.Heal());
  EXPECT_EQ(static_cast<uint64_t>(StorageEnv::Default()->FileSize(path)),
            2 * record_bytes);
  ASSERT_TRUE(wal.Append(3, OneAdd(30, 31)));
  EXPECT_TRUE(wal.Verify().clean());
}

TEST(WalFaultTest, V1RecordsStillReplayAndUpgradeOnCompaction) {
  ScopedTempDir tmp("gb_storage_fault");
  const std::string path = tmp.File("v1.wal");
  // Hand-craft two v1 records: u32 "GBWA" | u64 seq | u64 count | payload.
  {
    auto file = StorageEnv::Default()->NewWritableFile(path, /*truncate=*/true);
    ASSERT_NE(file, nullptr);
    auto put = [&](const void* p, size_t n) {
      ASSERT_TRUE(file->Write(p, n).ok());
    };
    for (uint64_t seq = 1; seq <= 2; ++seq) {
      const uint32_t magic = WriteAheadLog::kRecordMagic;
      const uint64_t count = 1;
      const EdgeMutation m = EdgeMutation::Add(seq * 10, seq * 10 + 1);
      put(&magic, sizeof(magic));
      put(&seq, sizeof(seq));
      put(&count, sizeof(count));
      put(&m, sizeof(m));
    }
    file->Close();
  }
  WriteAheadLog wal;
  wal.Open(path, nullptr);
  WalScanInfo info = wal.Verify();
  EXPECT_TRUE(info.clean());
  EXPECT_EQ(info.records_total, 2u);
  // Mixed lineage: a v2 append lands after the v1 prefix.
  ASSERT_TRUE(wal.Append(3, OneAdd(30, 31)));
  std::vector<uint64_t> seqs;
  wal.Replay(0, [&](uint64_t seq, MutationBatch&& batch) {
    seqs.push_back(seq);
    ASSERT_EQ(batch.size(), 1u);
  });
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, 2, 3}));
  // Compaction rewrites survivors as v2 — one DropThrough upgrades the log.
  ASSERT_TRUE(wal.DropThrough(1));
  std::string bytes;
  ASSERT_TRUE(StorageEnv::Default()->ReadFile(path, &bytes).ok());
  uint32_t first_magic = 0;
  std::memcpy(&first_magic, bytes.data(), sizeof(first_magic));
  EXPECT_EQ(first_magic, WriteAheadLog::kRecordMagicV2);
  EXPECT_EQ(wal.Verify().records_total, 2u);  // seqs 2 and 3 survive
}

// --------------------------------------------------------------------------
// Checkpointer: ENOSPC fatal-fast, scrub, read-side corruption
// --------------------------------------------------------------------------

// A small live pipeline: engine + graph + checkpointer over a FaultyEnv.
struct Rig {
  explicit Rig(const std::string& dir, StorageEnv* env,
               uint64_t cadence = 0) {
    ThreadPool::SetNumThreads(1);
    EdgeList initial = GenerateRmat(64, 200, {.seed = 11});
    graph = std::make_unique<MutableGraph>(initial);
    engine = std::make_unique<Engine>(graph.get(), PageRank{});
    engine->InitialCompute();
    ckpt = std::make_unique<Checkpointer<Engine>>(
        engine.get(), graph.get(),
        typename Checkpointer<Engine>::Options{
            .directory = dir, .cadence_batches = cadence, .keep = 2, .env = env});
  }
  std::unique_ptr<MutableGraph> graph;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<Checkpointer<Engine>> ckpt;
};

TEST(CheckpointFaultTest, EnospcOnWalIsFatalFastNotRetried) {
  ScopedTempDir tmp("gb_storage_fault");
  FaultyEnv env;
  Rig rig(tmp.path(), &env);
  ASSERT_TRUE(rig.ckpt->AppendWal(1, OneAdd(0, 1)));
  const uint64_t writes_before = env.writes_seen();
  // A full disk: every write from here on is ENOSPC.
  env.FailWritesFrom(writes_before + 1, StorageStatus::Code::kEnospc);
  EXPECT_FALSE(rig.ckpt->AppendWal(2, OneAdd(1, 2)));
  // Fatal-fast: exactly one write attempt, no backoff burn against a
  // condition that cannot clear itself.
  EXPECT_EQ(env.writes_seen(), writes_before + 1);
  EngineStats stats;
  rig.ckpt->MergeStats(&stats);
  EXPECT_GE(stats.enospc_aborts, 1u);
  // The disk recovers; so does the lineage.
  env.ClearFaults();
  EXPECT_TRUE(rig.ckpt->AppendWal(2, OneAdd(1, 2)));
}

TEST(CheckpointFaultTest, EnospcDuringCheckpointKeepsLastGoodRestorable) {
  ScopedTempDir tmp("gb_storage_fault");
  FaultyEnv env;
  std::vector<double> frozen;
  {
    Rig rig(tmp.path(), &env);
    ASSERT_TRUE(rig.ckpt->WriteCheckpoint(1));
    frozen = rig.engine->values();
    // The graph moves on, then the disk fills mid-checkpoint.
    rig.engine->ApplyMutations(OneFreshAdd(*rig.graph));
    env.FailWritesFrom(env.writes_seen() + 1, StorageStatus::Code::kEnospc);
    EXPECT_FALSE(rig.ckpt->WriteCheckpoint(2));
    EngineStats stats;
    rig.ckpt->MergeStats(&stats);
    EXPECT_GE(stats.enospc_aborts, 1u);
    // Degraded serving: the engine still answers from live state.
    EXPECT_NE(rig.engine->values(), frozen);
    env.ClearFaults();
  }
  // Cold restart: the aborted checkpoint must not have clobbered seq 1.
  Rig fresh(tmp.path(), &env);
  uint64_t seq = 0;
  ASSERT_TRUE(fresh.ckpt->RestoreLatest(&seq));
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(fresh.engine->values(), frozen);
}

TEST(CheckpointFaultTest, ScrubQuarantinesExactlyWhatRestoreWouldReject) {
  ScopedTempDir tmp("gb_storage_fault");
  FaultyEnv env;
  Rig rig(tmp.path(), &env);
  std::vector<double> first = rig.engine->values();
  ASSERT_TRUE(rig.ckpt->WriteCheckpoint(1));
  rig.engine->ApplyMutations(OneFreshAdd(*rig.graph));
  ASSERT_TRUE(rig.ckpt->WriteCheckpoint(2));

  // Flip one byte in the newest checkpoint's payload, on disk.
  const std::string newest =
      tmp.path() + "/checkpoint-00000000000000000002.ckpt";
  ASSERT_GT(StorageEnv::Default()->FileSize(newest), 0);
  ASSERT_TRUE(FaultyEnv::FlipByteOnDisk(newest, /*offset=*/64, 0x10));

  ScrubResult result = rig.ckpt->Scrub();
  EXPECT_EQ(result.corruptions, 1u);
  EXPECT_EQ(result.quarantined, 1u);
  // The corpse is demoted, not deleted — it's forensic evidence.
  EXPECT_LT(StorageEnv::Default()->FileSize(newest), 0);
  EXPECT_GT(StorageEnv::Default()->FileSize(newest + ".quarantined"), 0);
  // A second pass finds a clean chain.
  ScrubResult again = rig.ckpt->Scrub();
  EXPECT_EQ(again.corruptions, 0u);

  // And restore lands on the surviving older checkpoint.
  Rig fresh(tmp.path(), &env);
  uint64_t seq = 0;
  ASSERT_TRUE(fresh.ckpt->RestoreLatest(&seq));
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(fresh.engine->values(), first);
}

TEST(CheckpointFaultTest, ReadSideCorruptionFallsDownTheKeepChain) {
  ScopedTempDir tmp("gb_storage_fault");
  FaultyEnv env;
  std::vector<double> first;
  {
    Rig rig(tmp.path(), &env);
    first = rig.engine->values();
    ASSERT_TRUE(rig.ckpt->WriteCheckpoint(1));
    rig.engine->ApplyMutations(OneFreshAdd(*rig.graph));
    ASSERT_TRUE(rig.ckpt->WriteCheckpoint(2));
  }
  // The newest checkpoint reads back with a flipped byte every time (bad
  // sector). Restore must detect it on the raw bytes and fall back.
  env.CorruptReadAt("checkpoint-00000000000000000002", /*offset=*/100, 0x08);
  Rig fresh(tmp.path(), &env);
  uint64_t seq = 0;
  ASSERT_TRUE(fresh.ckpt->RestoreLatest(&seq));
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(fresh.engine->values(), first);
  EXPECT_GE(env.faults_fired(), 1u);
}

// --------------------------------------------------------------------------
// Driver-level: a full disk degrades durability, never liveness
// --------------------------------------------------------------------------

TEST(DriverFaultTest, FullDiskKeepsServingAndRecoversWhenSpaceReturns) {
  ScopedTempDir tmp("gb_storage_fault");
  FaultyEnv env;
  Rig rig(tmp.path(), &env, /*cadence=*/2);
  StreamDriver<Engine> driver(rig.engine.get(),
                              {.batch_size = 4,
                               .flush_interval_seconds = 3600.0,
                               .overflow = OverflowPolicy::kBlock,
                               .coalesce = false,
                               .checkpointer = rig.ckpt.get(),
                               .background_compaction = false,
                               .fast_path = false,
                               .async_mode = AsyncModePolicy::kOff});
  ASSERT_TRUE(driver.CheckpointNow());
  const std::vector<double> at_baseline = rig.engine->values();

  // Disk full: journaling and checkpoints fail from here.
  env.FailWritesFrom(env.writes_seen() + 1, StorageStatus::Code::kEnospc);
  // 3 batches of 4 distinct fresh edges (fresh against the live graph AND
  // each other, so every one of them moves the engine).
  std::set<std::pair<VertexId, VertexId>> staged;
  const auto next_fresh = [&]() {
    for (VertexId src = rig.graph->num_vertices(); src-- > 0;) {
      for (VertexId dst = rig.graph->num_vertices(); dst-- > 0;) {
        if (src != dst && !rig.graph->HasEdge(src, dst) &&
            staged.insert({src, dst}).second) {
          return EdgeMutation::Add(src, dst);
        }
      }
    }
    ADD_FAILURE() << "graph is complete";
    return EdgeMutation::Add(0, 1);
  };
  for (int i = 0; i < 3; ++i) {
    MutationBatch batch;
    for (int m = 0; m < 4; ++m) {
      batch.push_back(next_fresh());
    }
    driver.IngestBatch(batch);
  }
  driver.PrepQuery();  // barrier: everything ingested above is applied
  // Liveness: the engine kept applying even though durability was refused.
  EXPECT_NE(rig.engine->values(), at_baseline);
  EngineStats stats = driver.stats();
  EXPECT_GE(stats.enospc_aborts, 1u);

  // Space returns; an explicit checkpoint re-establishes durability.
  env.ClearFaults();
  EXPECT_TRUE(driver.CheckpointNow());
  driver.Stop();

  Rig fresh(tmp.path(), &env);
  uint64_t seq = 0;
  ASSERT_TRUE(fresh.ckpt->RestoreLatest(&seq));
  EXPECT_EQ(fresh.engine->values(), rig.engine->values());
}

}  // namespace
}  // namespace graphbolt
