// Unit tests for graph file IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/graph/generators.h"
#include "src/graph/io.h"

namespace graphbolt {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(TextIo, RoundTrip) {
  EdgeList original = GenerateErdosRenyi(40, 150, 8, /*assign_random_weights=*/true);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveEdgeListText(original, path));
  bool ok = false;
  EdgeList loaded = LoadEdgeListText(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (size_t i = 0; i < loaded.num_edges(); ++i) {
    EXPECT_EQ(loaded.edges()[i].src, original.edges()[i].src);
    EXPECT_EQ(loaded.edges()[i].dst, original.edges()[i].dst);
    EXPECT_NEAR(loaded.edges()[i].weight, original.edges()[i].weight, 1e-4);
  }
  std::remove(path.c_str());
}

TEST(TextIo, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.txt");
  {
    std::ofstream out(path);
    out << "# a comment\n\n% another\n0 1\n1 2 0.5\n";
  }
  bool ok = false;
  EdgeList loaded = LoadEdgeListText(path, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(loaded.num_edges(), 2u);
  EXPECT_FLOAT_EQ(loaded.edges()[1].weight, 0.5f);
  EXPECT_FLOAT_EQ(loaded.edges()[0].weight, kDefaultWeight);
  std::remove(path.c_str());
}

TEST(TextIo, MissingFileReportsFailure) {
  bool ok = true;
  EdgeList loaded = LoadEdgeListText(TempPath("does_not_exist.txt"), &ok);
  EXPECT_FALSE(ok);
  EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST(BinaryIo, RoundTripExact) {
  EdgeList original = GenerateRmat(100, 700, {.seed = 4, .assign_random_weights = true});
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(SaveEdgeListBinary(original, path));
  bool ok = false;
  EdgeList loaded = LoadEdgeListBinary(path, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (size_t i = 0; i < loaded.num_edges(); ++i) {
    EXPECT_EQ(loaded.edges()[i], original.edges()[i]);  // bitwise weights
  }
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsBadMagic) {
  const std::string path = TempPath("bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph";
  }
  bool ok = true;
  EdgeList loaded = LoadEdgeListBinary(path, &ok);
  EXPECT_FALSE(ok);
  EXPECT_EQ(loaded.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryIo, RejectsTruncatedFile) {
  EdgeList original = GenerateErdosRenyi(20, 50, 1);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveEdgeListBinary(original, path));
  // Truncate the file to half its size.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size() / 2));
  }
  bool ok = true;
  EdgeList loaded = LoadEdgeListBinary(path, &ok);
  EXPECT_FALSE(ok);
  EXPECT_EQ(loaded.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryIo, EmptyGraphRoundTrips) {
  EdgeList empty;
  empty.set_num_vertices(5);
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SaveEdgeListBinary(empty, path));
  bool ok = false;
  EdgeList loaded = LoadEdgeListBinary(path, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(loaded.num_vertices(), 5u);
  EXPECT_EQ(loaded.num_edges(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphbolt
