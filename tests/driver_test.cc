// StreamDriver tests: equivalence with the bare-engine batch loop,
// multi-producer ingestion under load with mid-stream query barriers, and
// shutdown/drain semantics. The concurrency cases (MultiProducer*,
// Backpressure*, Shutdown*) are what `ctest -L concurrency` runs under
// GRAPHBOLT_SANITIZE=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/core/streaming_engine.h"
#include "src/driver/gutter_buffer.h"
#include "src/driver/stream_driver.h"
#include "src/engine/ligra_engine.h"
#include "src/engine/reset_engine.h"
#include "src/graph/generators.h"
#include "src/kickstarter/kickstarter_engine.h"
#include "src/parallel/bounded_queue.h"
#include "src/parallel/thread_pool.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// The concept is the contract; drift must fail to compile.
static_assert(StreamingEngine<LigraEngine<PageRank>>);
static_assert(StreamingEngine<ResetEngine<PageRank>>);
static_assert(StreamingEngine<GraphBoltEngine<PageRank>>);
static_assert(StreamingEngine<KickStarterEngine<KsSsspTraits>>);
static_assert(!StreamingEngine<int>);
static_assert(!StreamingEngine<MutableGraph>);

// Pre-generates `count` batches against an evolving shadow graph so the
// driver run and the sequential reference see the identical stream.
std::vector<MutationBatch> MakeBatches(const StreamSplit& split, size_t count, size_t batch_size,
                                       uint64_t seed) {
  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, seed);
  std::vector<MutationBatch> batches;
  for (size_t i = 0; i < count; ++i) {
    MutationBatch batch = stream.NextBatch(shadow, {.size = batch_size, .add_fraction = 0.6});
    shadow.ApplyBatch(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

// Streams every batch through a driver wrapped around `engine`, forcing
// the driver's flush boundaries to coincide with the pre-made batches
// (batch_size larger than any batch + explicit Flush), and compares
// values() against sequentially applying the same batches to `reference`.
// With one pool thread both paths are deterministic, so the comparison is
// bitwise. Constrained on the concept: one helper covers every engine.
template <StreamingEngine Engine>
void ExpectDriverMatchesSequential(Engine& engine, Engine& reference,
                                   const std::vector<MutationBatch>& batches) {
  engine.InitialCompute();
  reference.InitialCompute();

  // coalesce=false so the engine receives the byte-identical batch (the
  // normalized effect is equal either way, but the direct-impact pass sums
  // contributions in batch order, and bitwise comparison needs that order
  // preserved).
  StreamDriver<Engine> driver(&engine, {.batch_size = 1u << 20,
                                        .flush_interval_seconds = 3600.0,
                                        .coalesce = false});
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_EQ(driver.IngestBatch(batches[i]), batches[i].size());
    driver.Flush();
    reference.ApplyMutations(batches[i]);
    if (i == batches.size() / 2) {
      // Mid-stream query barrier: the snapshot must already agree.
      const auto& mid = driver.values();
      ASSERT_EQ(mid.size(), reference.values().size());
      for (size_t v = 0; v < mid.size(); ++v) {
        ASSERT_EQ(mid[v], reference.values()[v]) << "mid-stream vertex " << v;
      }
    }
  }
  const auto& values = driver.values();
  ASSERT_EQ(values.size(), reference.values().size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], reference.values()[v]) << "vertex " << v;
  }

  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.batches_applied, batches.size());
  EXPECT_EQ(stats.mutations_dropped, 0u);
  EXPECT_EQ(stats.mutations_coalesced, 0u);
}

TEST(DriverEquivalence, PageRankBitwiseIdenticalToSequentialLoop) {
  ThreadPool::SetNumThreads(1);  // deterministic summation order
  EdgeList full = GenerateRmat(1500, 12000, {.seed = 11});
  StreamSplit split = SplitForStreaming(full, 0.5, 12);
  std::vector<MutationBatch> batches = MakeBatches(split, 24, 80, 13);

  MutableGraph g_driver(split.initial);
  MutableGraph g_ref(split.initial);
  GraphBoltEngine<PageRank> engine(&g_driver, PageRank{});
  GraphBoltEngine<PageRank> reference(&g_ref, PageRank{});
  ExpectDriverMatchesSequential(engine, reference, batches);
}

TEST(DriverEquivalence, SsspBitwiseIdenticalToSequentialLoop) {
  ThreadPool::SetNumThreads(1);
  EdgeList full = GenerateRmat(1200, 9000, {.seed = 21, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 22);
  std::vector<MutationBatch> batches = MakeBatches(split, 22, 60, 23);

  MutableGraph g_driver(split.initial);
  MutableGraph g_ref(split.initial);
  const GraphBoltEngine<Sssp>::Options options{.max_iterations = 128, .run_to_convergence = true};
  GraphBoltEngine<Sssp> engine(&g_driver, Sssp(0), options);
  GraphBoltEngine<Sssp> reference(&g_ref, Sssp(0), options);
  ExpectDriverMatchesSequential(engine, reference, batches);
}

TEST(DriverEquivalence, KickStarterThroughDriverMatchesSequential) {
  ThreadPool::SetNumThreads(1);
  EdgeList full = GenerateRmat(1000, 8000, {.seed = 31, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 32);
  std::vector<MutationBatch> batches = MakeBatches(split, 20, 50, 33);

  MutableGraph g_driver(split.initial);
  MutableGraph g_ref(split.initial);
  KickStarterEngine<KsSsspTraits> engine(&g_driver, KsSsspTraits(0));
  KickStarterEngine<KsSsspTraits> reference(&g_ref, KsSsspTraits(0));
  ExpectDriverMatchesSequential(engine, reference, batches);
}

TEST(DriverEquivalence, BackgroundCompactionBitwiseIdenticalAndNeverSynchronous) {
  ThreadPool::SetNumThreads(1);  // deterministic summation order
  EdgeList full = GenerateRmat(1200, 9000, {.seed = 41});
  StreamSplit split = SplitForStreaming(full, 0.5, 42);

  // Pure-delete batches so slack accrues fast enough that compaction must
  // actually happen somewhere — the point is *where*: the maintenance
  // windows, never inside an apply. Deletes only because an add that
  // relocates a hub segment strands its old capacity in one jump, which
  // can legitimately outrun maintenance into the forced-sync backstop;
  // deletion slack grows by at most the batch size, so here "never
  // synchronous" is exact.
  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, 43);
  std::vector<MutationBatch> batches;
  for (size_t i = 0; i < 12; ++i) {
    MutationBatch batch = stream.NextBatch(shadow, {.size = 250, .add_fraction = 0.0});
    shadow.ApplyBatch(batch);
    batches.push_back(std::move(batch));
  }

  MutableGraph g_driver(split.initial);
  MutableGraph g_ref(split.initial);
  GraphBoltEngine<PageRank> engine(&g_driver, PageRank{});
  GraphBoltEngine<PageRank> reference(&g_ref, PageRank{});
  engine.InitialCompute();
  reference.InitialCompute();
  {
    StreamDriver<GraphBoltEngine<PageRank>> driver(
        &engine, {.batch_size = 1u << 20,
                  .flush_interval_seconds = 3600.0,
                  .coalesce = false,
                  .background_compaction = true,
                  .maintenance_budget_edges = 4096});
    for (const MutationBatch& batch : batches) {
      ASSERT_EQ(driver.IngestBatch(batch), batch.size());
      driver.Flush();
      reference.ApplyMutations(batch);
    }
    // The reference applies the same stream with default (synchronous)
    // compaction: per-vertex adjacency order is identical either way, so
    // the values must match bitwise.
    const auto& values = driver.values();
    ASSERT_EQ(values.size(), reference.values().size());
    for (size_t v = 0; v < values.size(); ++v) {
      ASSERT_EQ(values[v], reference.values()[v]) << "vertex " << v;
    }
    const EngineStats stats = driver.stats();
    EXPECT_GT(stats.maintenance_steps, 0u);
    EXPECT_GT(stats.background_compactions, 0u);
  }
  const SlackCsr::CompactionStats graph_stats = g_driver.compaction_stats();
  EXPECT_EQ(graph_stats.sync_compactions, 0u) << "an apply compacted synchronously";
  EXPECT_EQ(graph_stats.forced_sync_compactions, 0u) << "maintenance fell behind the stream";
}

TEST(StreamDriverTest, MultiProducerIngestUnderLoadWithMidStreamQuery) {
  ThreadPool::SetNumThreads(2);
  // Addition-only stream: the final graph is order-independent across the
  // racing producers, so the drained result is checkable against a
  // from-scratch run on the final snapshot (the BSP guarantee).
  EdgeList full = GenerateRmat(1200, 14000, {.seed = 41});
  StreamSplit split = SplitForStreaming(full, 0.5, 42);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();

  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.batch_size = 64, .flush_interval_seconds = 0.002, .max_pending_batches = 2});

  constexpr size_t kProducers = 4;
  std::vector<std::vector<Edge>> slices(kProducers);
  for (size_t i = 0; i < split.held_back.size(); ++i) {
    slices[i % kProducers].push_back(split.held_back[i]);
  }
  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (const Edge& e : slices[p]) {
        if (driver.Ingest(EdgeMutation::Add(e.src, e.dst, e.weight))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Mid-stream query barriers from a fifth thread: every snapshot must be
  // a consistent BSP state (finite, full-sized) while producers hammer.
  for (int q = 0; q < 3; ++q) {
    std::vector<double> snapshot = driver.QuerySnapshot();
    ASSERT_EQ(snapshot.size(), graph.num_vertices());
    for (const double rank : snapshot) {
      ASSERT_TRUE(std::isfinite(rank));
      ASSERT_GT(rank, 0.0);
    }
  }

  for (std::thread& t : producers) {
    t.join();
  }
  driver.PrepQuery();

  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.mutations_enqueued, accepted.load());
  EXPECT_EQ(stats.mutations_enqueued, split.held_back.size());
  EXPECT_EQ(stats.mutations_dropped, 0u);
  EXPECT_GE(stats.batches_applied, 1u);

  // BSP exactness after drain: the incremental path must land on what a
  // from-scratch run over the final graph produces (small fp headroom —
  // the two paths sum contributions in different orders).
  MutableGraph final_graph(full);
  LigraEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  EXPECT_EQ(graph.num_edges(), final_graph.num_edges());
  EXPECT_LT(MaxGap(driver.values(), fresh.values()), 1e-7);
}

TEST(StreamDriverTest, ShutdownDrainsPendingMutations) {
  ThreadPool::SetNumThreads(1);
  EdgeList full = GenerateRmat(600, 5000, {.seed = 51});
  StreamSplit split = SplitForStreaming(full, 0.5, 52);
  std::vector<MutationBatch> batches = MakeBatches(split, 1, 40, 53);

  MutableGraph g_driver(split.initial);
  MutableGraph g_ref(split.initial);
  GraphBoltEngine<PageRank> engine(&g_driver, PageRank{});
  GraphBoltEngine<PageRank> reference(&g_ref, PageRank{});
  engine.InitialCompute();
  reference.InitialCompute();

  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine,
      {.batch_size = 1u << 20, .flush_interval_seconds = 3600.0, .coalesce = false});
  // Everything stays in the gutter: nothing reaches batch_size and the
  // staleness deadline is an hour out. Stop() must still drain it.
  ASSERT_EQ(driver.IngestBatch(batches[0]), batches[0].size());
  EXPECT_EQ(driver.pending_mutations(), batches[0].size());
  EXPECT_EQ(driver.stats().batches_applied, 0u);
  driver.Stop();

  EXPECT_EQ(driver.pending_mutations(), 0u);
  EXPECT_EQ(driver.stats().batches_applied, 1u);
  EXPECT_EQ(driver.stats().mutations_dropped, 0u);

  // Ingestion after Stop is refused and counted, never silently lost.
  EXPECT_FALSE(driver.Ingest(EdgeMutation::Add(0, 1)));
  EXPECT_EQ(driver.stats().mutations_dropped, 1u);

  reference.ApplyMutations(batches[0]);
  ASSERT_EQ(engine.values().size(), reference.values().size());
  for (size_t v = 0; v < engine.values().size(); ++v) {
    ASSERT_EQ(engine.values()[v], reference.values()[v]) << "vertex " << v;
  }
}

TEST(StreamDriverTest, PrepQueryFastPathAfterDrain) {
  MutableGraph graph(GenerateRmat(300, 2000, {.seed = 61}));
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  StreamDriver<GraphBoltEngine<PageRank>> driver(&engine, {.batch_size = 4});

  EXPECT_FALSE(driver.PrepQuery());  // nothing ever ingested: cached
  for (int i = 0; i < 10; ++i) {
    driver.Ingest(EdgeMutation::Add(static_cast<VertexId>(i), static_cast<VertexId>(i + 1)));
  }
  EXPECT_TRUE(driver.PrepQuery());   // had to flush + drain
  EXPECT_FALSE(driver.PrepQuery());  // quiescent again: cached
}

TEST(StreamDriverTest, StalenessDeadlineFlushesPartialGutter) {
  MutableGraph graph(GenerateRmat(300, 2000, {.seed = 71}));
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.batch_size = 1u << 20, .flush_interval_seconds = 0.005});

  driver.Ingest(EdgeMutation::Add(1, 2));
  driver.Ingest(EdgeMutation::Add(2, 3));
  // No Flush/PrepQuery: the worker's staleness deadline must fire on its own.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (driver.stats().batches_applied == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(driver.stats().batches_applied, 1u);
  EXPECT_TRUE(graph.HasEdge(1, 2));
  EXPECT_TRUE(graph.HasEdge(2, 3));
}

TEST(StreamDriverTest, BackpressureBlocksProducersWithoutLossOrDeadlock) {
  ThreadPool::SetNumThreads(2);
  EdgeList full = GenerateRmat(800, 8000, {.seed = 81});
  StreamSplit split = SplitForStreaming(full, 0.5, 82);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();

  // Tiny batches and a single-slot queue force the full-queue path.
  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.batch_size = 8, .flush_interval_seconds = 0.001, .max_pending_batches = 1});
  std::vector<std::thread> producers;
  for (size_t p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = p; i < split.held_back.size(); i += 3) {
        const Edge& e = split.held_back[i];
        ASSERT_TRUE(driver.Ingest(EdgeMutation::Add(e.src, e.dst, e.weight)));
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  driver.PrepQuery();
  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.mutations_enqueued, split.held_back.size());
  EXPECT_EQ(stats.mutations_dropped, 0u);
}

TEST(GutterBufferTest, CoalescingKeepsLastMutationPerPair) {
  GutterBuffer gutter;
  gutter.Add(EdgeMutation::Add(1, 2, 1.0f));
  gutter.Add(EdgeMutation::Add(3, 4, 2.0f));
  gutter.Add(EdgeMutation::Delete(1, 2));
  gutter.Add(EdgeMutation::Add(3, 4, 5.0f));
  uint64_t coalesced = 0;
  MutationBatch batch = gutter.Take(/*coalesce=*/true, &coalesced);
  EXPECT_TRUE(gutter.empty());
  EXPECT_EQ(coalesced, 2u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].kind, MutationKind::kDeleteEdge);
  EXPECT_EQ(batch[0].src, 1u);
  EXPECT_EQ(batch[1].kind, MutationKind::kAddEdge);
  EXPECT_EQ(batch[1].weight, 5.0f);
}

TEST(GutterBufferTest, CoalescedBatchIsEquivalentToRawBatch) {
  // NormalizeBatch is last-wins per (src, dst); coalescing must therefore
  // leave the applied effect untouched.
  EdgeList base = PaperFigure2aGraph();
  MutableGraph raw_graph(base);
  MutableGraph coalesced_graph(base);

  GutterBuffer gutter;
  MutationBatch raw;
  const EdgeMutation sequence[] = {
      EdgeMutation::Add(0, 3), EdgeMutation::Delete(0, 3),   // cancels to delete-absent
      EdgeMutation::Delete(2, 1), EdgeMutation::Add(2, 1, 7.0f),  // re-add with new weight
      EdgeMutation::Add(4, 0), EdgeMutation::Add(4, 0),      // duplicate add
  };
  for (const EdgeMutation& m : sequence) {
    gutter.Add(m);
    raw.push_back(m);
  }
  uint64_t coalesced = 0;
  MutationBatch compact = gutter.Take(/*coalesce=*/true, &coalesced);
  EXPECT_EQ(coalesced, 3u);

  raw_graph.ApplyBatch(raw);
  coalesced_graph.ApplyBatch(compact);
  EXPECT_EQ(raw_graph.ToEdgeList().edges(), coalesced_graph.ToEdgeList().edges());
}

TEST(BoundedQueueTest, CloseDrainsThenReportsEmpty) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_FALSE(queue.TryPush(3));  // full
  queue.Close();
  EXPECT_FALSE(queue.Push(4));  // closed
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_EQ(queue.Pop(), std::nullopt);  // drained
}

TEST(BoundedQueueTest, BlockedPopWakesOnPush) {
  BoundedQueue<int> queue(1);
  std::thread consumer([&] {
    std::optional<int> item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(queue.Push(42));
  consumer.join();
}

}  // namespace
}  // namespace graphbolt
