// Direct (de)serialization tests for both dependency-store backends, plus
// cross-checks of their accounting, plus format lock-in for the on-disk
// checkpoint envelope (magic/version/footer offsets and clean rejection of
// corrupt files — never UB, never a half-clobbered engine).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/algorithms/pagerank.h"
#include "src/core/compact_dependency_store.h"
#include "src/core/dependency_store.h"
#include "src/engine/reset_engine.h"
#include "src/fault/checkpoint.h"
#include "src/fault/wal.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

template <typename Store>
Store MakePopulatedStore() {
  Store store;
  store.Reset(5, 8);
  AtomicBitset bits1(5);
  bits1.Set(0);
  bits1.Set(3);
  store.SnapshotLevel(1, {1, 2, 3, 4, 5}, std::move(bits1));
  AtomicBitset bits2(5);
  bits2.Set(2);
  store.SnapshotLevel(2, {1, 2, 9, 4, 5}, std::move(bits2));
  store.SnapshotLevel(3, {1, 2, 9, 4, 7}, AtomicBitset(5));
  return store;
}

template <typename Store>
void ExpectStoresEqual(const Store& a, const Store& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.tracked_levels(), b.tracked_levels());
  ASSERT_EQ(a.total_levels(), b.total_levels());
  for (uint32_t level = 1; level <= a.tracked_levels(); ++level) {
    for (VertexId v = 0; v < a.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(a.At(level, v), b.At(level, v)) << "level " << level << " v " << v;
    }
  }
  for (uint32_t level = 1; level <= a.total_levels(); ++level) {
    for (VertexId v = 0; v < a.num_vertices(); ++v) {
      EXPECT_EQ(a.ChangedAt(level).Test(v), b.ChangedAt(level).Test(v))
          << "level " << level << " v " << v;
    }
  }
}

TEST(DenseStoreSerialization, RoundTrip) {
  auto store = MakePopulatedStore<DependencyStore<double>>();
  std::stringstream buffer;
  store.SerializeTo(buffer);
  DependencyStore<double> loaded;
  ASSERT_TRUE(loaded.DeserializeFrom(buffer));
  ExpectStoresEqual(store, loaded);
}

TEST(DenseStoreSerialization, RejectsTruncated) {
  auto store = MakePopulatedStore<DependencyStore<double>>();
  std::stringstream buffer;
  store.SerializeTo(buffer);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  DependencyStore<double> loaded;
  EXPECT_FALSE(loaded.DeserializeFrom(truncated));
}

TEST(CompactStoreSerialization, RoundTripPreservesPruning) {
  auto store = MakePopulatedStore<CompactDependencyStore<double>>();
  const uint64_t entries_before = store.logical_entries();
  std::stringstream buffer;
  store.SerializeTo(buffer);
  CompactDependencyStore<double> loaded;
  ASSERT_TRUE(loaded.DeserializeFrom(buffer));
  ExpectStoresEqual(store, loaded);
  EXPECT_EQ(loaded.logical_entries(), entries_before);
}

TEST(CompactStoreSerialization, RejectsGarbage) {
  std::stringstream garbage("certainly not a store");
  CompactDependencyStore<double> loaded;
  EXPECT_FALSE(loaded.DeserializeFrom(garbage));
}

TEST(StoreAccounting, CompactStoresFewerEntriesThanDenseAllocates) {
  auto dense = MakePopulatedStore<DependencyStore<double>>();
  auto compact = MakePopulatedStore<CompactDependencyStore<double>>();
  // Dense allocates V*t entries; compact stores only changing prefixes.
  const uint64_t dense_alloc = 5ull * dense.tracked_levels();
  EXPECT_LT(compact.logical_entries(), dense_alloc);
  // Compact may exceed the dense store's *accounting* slightly: §4.1's
  // hole-elimination re-materializes stable values below a late change,
  // which the accounting-only view does not count.
  EXPECT_GE(compact.logical_entries(), dense.logical_entries());
}

TEST(StoreAccounting, TruncateLevelsDropsState) {
  auto dense = MakePopulatedStore<DependencyStore<double>>();
  dense.TruncateLevels(1);
  EXPECT_EQ(dense.tracked_levels(), 1u);
  EXPECT_EQ(dense.total_levels(), 1u);
  auto compact = MakePopulatedStore<CompactDependencyStore<double>>();
  compact.TruncateLevels(1);
  EXPECT_EQ(compact.tracked_levels(), 1u);
  EXPECT_DOUBLE_EQ(compact.At(1, 2), 3.0);
}

// ----- Checkpoint envelope format lock-in ------------------------------------

using CkptEngine = ResetEngine<PageRank>;
using Ckpt = Checkpointer<CkptEngine>;

// Writes one real checkpoint and returns its path.
std::string WriteOneCheckpoint(const ScopedTempDir& tmp, MutableGraph* graph,
                               CkptEngine* engine, uint64_t seq = 7) {
  engine->InitialCompute();
  Ckpt checkpointer(engine, graph, {.directory = tmp.path()});
  EXPECT_TRUE(checkpointer.WriteCheckpoint(seq));
  for (const auto& entry : std::filesystem::directory_iterator(tmp.path())) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.substr(name.size() - 5) == ".ckpt") {
      return entry.path().string();
    }
  }
  ADD_FAILURE() << "no .ckpt file written";
  return {};
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// The golden layout: u64 magic @0, u32 version @8, u64 seq @12, then the
// graph snapshot, engine payload, and a u64 footer at the tail. Any change
// to these offsets is a format break and must bump kCheckpointVersion.
TEST(CheckpointFormat, GoldenHeaderAndFooterOffsets) {
  ScopedTempDir tmp;
  MutableGraph graph(GenerateRmat(60, 300, {.seed = 5}));
  CkptEngine engine(&graph, PageRank{});
  const std::string path = WriteOneCheckpoint(tmp, &graph, &engine, /*seq=*/7);
  const std::string bytes = Slurp(path);
  ASSERT_GE(bytes.size(), 28u);

  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t seq = 0;
  uint64_t footer = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  std::memcpy(&seq, bytes.data() + 12, sizeof(seq));
  std::memcpy(&footer, bytes.data() + bytes.size() - sizeof(footer), sizeof(footer));
  EXPECT_EQ(magic, kCheckpointMagic);    // "GBCKPT01"
  EXPECT_EQ(version, kCheckpointVersion);
  EXPECT_EQ(seq, 7u);
  EXPECT_EQ(footer, kCheckpointFooter);  // "GBCKEND1"
}

TEST(CheckpointFormat, RoundTripRestoresSeqGraphAndValues) {
  ScopedTempDir tmp;
  MutableGraph graph(GenerateRmat(60, 300, {.seed = 5}));
  CkptEngine engine(&graph, PageRank{});
  WriteOneCheckpoint(tmp, &graph, &engine, /*seq=*/42);
  const auto want_edges = graph.ToEdgeList().edges();
  const auto want_values = engine.values();

  MutableGraph cold_graph;
  CkptEngine cold_engine(&cold_graph, PageRank{});
  Ckpt restorer(&cold_engine, &cold_graph, {.directory = tmp.path()});
  uint64_t seq = 0;
  ASSERT_TRUE(restorer.RestoreLatest(&seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_EQ(cold_graph.ToEdgeList().edges(), want_edges);
  EXPECT_EQ(cold_engine.values(), want_values);
}

// Corrupt-file matrix: each corruption must be rejected cleanly (false +
// warning), leaving the restoring engine's state untouched.
TEST(CheckpointFormat, RejectsWrongMagicWrongVersionAndTruncation) {
  ScopedTempDir tmp;
  MutableGraph graph(GenerateRmat(60, 300, {.seed = 5}));
  CkptEngine engine(&graph, PageRank{});
  const std::string path = WriteOneCheckpoint(tmp, &graph, &engine);
  const std::string good = Slurp(path);

  MutableGraph cold_graph;
  CkptEngine cold_engine(&cold_graph, PageRank{});
  Ckpt restorer(&cold_engine, &cold_graph, {.directory = tmp.path()});
  uint64_t seq = 0;

  std::string bad_magic = good;
  bad_magic[0] ^= 0x5a;
  Dump(path, bad_magic);
  EXPECT_FALSE(restorer.RestoreLatest(&seq));

  std::string bad_version = good;
  bad_version[8] = static_cast<char>(kCheckpointVersion + 1);  // future format
  Dump(path, bad_version);
  EXPECT_FALSE(restorer.RestoreLatest(&seq));

  // Truncation sweep: every prefix must be rejected, including cuts inside
  // the header, the edge payload, the engine payload, and the footer.
  for (const size_t keep : {size_t{0}, size_t{11}, size_t{27}, good.size() / 3,
                            good.size() / 2, good.size() - 3}) {
    Dump(path, good.substr(0, keep));
    EXPECT_FALSE(restorer.RestoreLatest(&seq)) << "accepted " << keep << " bytes";
  }
  EXPECT_TRUE(cold_graph.num_vertices() == 0) << "rejected restore touched the graph";

  // The uncorrupted bytes still restore (the reject paths had no side
  // effects on the file handling either).
  Dump(path, good);
  EXPECT_TRUE(restorer.RestoreLatest(&seq));
}

// A torn newest checkpoint must fall back to the previous intact one.
TEST(CheckpointFormat, TornNewestFallsBackToOlder) {
  ScopedTempDir tmp;
  MutableGraph graph(GenerateRmat(60, 300, {.seed = 5}));
  CkptEngine engine(&graph, PageRank{});
  engine.InitialCompute();
  Ckpt checkpointer(&engine, &graph, {.directory = tmp.path(), .keep = 2});
  ASSERT_TRUE(checkpointer.WriteCheckpoint(3));
  ASSERT_TRUE(checkpointer.WriteCheckpoint(6));
  // Tear the newest (seq 6) file.
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator(tmp.path())) {
    const std::string p = entry.path().string();
    if (p.size() > 5 && p.substr(p.size() - 5) == ".ckpt" && (newest.empty() || p > newest)) {
      newest = p;
    }
  }
  const std::string bytes = Slurp(newest);
  Dump(newest, bytes.substr(0, bytes.size() / 3));

  MutableGraph cold_graph;
  CkptEngine cold_engine(&cold_graph, PageRank{});
  Ckpt restorer(&cold_engine, &cold_graph, {.directory = tmp.path(), .keep = 2});
  uint64_t seq = 0;
  ASSERT_TRUE(restorer.RestoreLatest(&seq));
  EXPECT_EQ(seq, 3u);  // fell back past the torn seq-6 file
}

// The dual-format load test the version bump mandates: a version-1 file
// carries no section checksums, and every pre-v2 artifact on disk is one.
// This test assembles a version-1 file byte-by-byte from the documented
// layout (the bytes a v1 writer — including the pre-SlackCsr one —
// produced) and proves the v2 reader restores it identically. If the
// graph section ever changes shape, kCheckpointVersion must bump again
// and this test must grow a load path for the new version too.
TEST(CheckpointFormat, PreSlackCsrV1BytesStillLoad) {
  ASSERT_EQ(kCheckpointVersion, 2u) << "version bumped: extend the dual-format load test";
  ScopedTempDir tmp;
  MutableGraph graph(GenerateRmat(60, 300, {.seed = 5}));
  CkptEngine engine(&graph, PageRank{});
  engine.InitialCompute();

  // The engine payload is representation-independent; capture it directly.
  std::ostringstream engine_bytes;
  ASSERT_TRUE(engine.SaveStateTo(engine_bytes));
  const EdgeList snapshot = graph.ToEdgeList();

  // Assemble the v1 envelope by hand: u64 magic, u32 version, u64 seq,
  // u64 V, u64 E, packed Edge structs, engine payload, u64 footer.
  std::ostringstream file;
  auto put = [&file](const auto& v) {
    file.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(kCheckpointMagic);
  put(kCheckpointVersionV1);
  put(uint64_t{13});
  put(static_cast<uint64_t>(snapshot.num_vertices()));
  put(static_cast<uint64_t>(snapshot.num_edges()));
  file.write(reinterpret_cast<const char*>(snapshot.edges().data()),
             static_cast<std::streamsize>(snapshot.edges().size() * sizeof(Edge)));
  const std::string payload = engine_bytes.str();
  file.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  put(kCheckpointFooter);
  Dump(tmp.File("checkpoint-00000000000000000013.ckpt"), file.str());

  MutableGraph cold_graph;
  CkptEngine cold_engine(&cold_graph, PageRank{});
  Ckpt restorer(&cold_engine, &cold_graph, {.directory = tmp.path()});
  uint64_t seq = 0;
  ASSERT_TRUE(restorer.RestoreLatest(&seq));
  EXPECT_EQ(seq, 13u);
  EXPECT_EQ(cold_graph.ToEdgeList().edges(), snapshot.edges());
  EXPECT_EQ(cold_engine.values(), engine.values());
  EXPECT_TRUE(cold_graph.CheckInvariants());
}

// ----- WAL record format -----------------------------------------------------

TEST(WalFormat, TornTailIsToleratedAndReplayStopsCleanly) {
  ScopedTempDir tmp;
  const std::string path = tmp.File("journal.wal");
  WriteAheadLog wal(path);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    MutationBatch batch;
    batch.push_back(EdgeMutation::Add(static_cast<VertexId>(seq), 9));
    ASSERT_TRUE(wal.Append(seq, batch));
  }
  // Tear mid-way through the last record.
  const std::string bytes = Slurp(path);
  Dump(path, bytes.substr(0, bytes.size() - sizeof(EdgeMutation) / 2));

  WriteAheadLog torn(path);
  uint64_t last_seq = 0;
  size_t delivered = torn.Replay(0, [&](uint64_t seq, MutationBatch&& batch) {
    last_seq = seq;
    EXPECT_EQ(batch.size(), 1u);
  });
  EXPECT_EQ(delivered, 2u);  // the intact prefix
  EXPECT_EQ(last_seq, 2u);
}

TEST(WalFormat, DropThroughCompactsPrefixKeepsTail) {
  ScopedTempDir tmp;
  const std::string path = tmp.File("journal.wal");
  WriteAheadLog wal(path);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    MutationBatch batch;
    batch.push_back(EdgeMutation::Add(static_cast<VertexId>(seq), 9));
    ASSERT_TRUE(wal.Append(seq, batch));
  }
  ASSERT_TRUE(wal.DropThrough(3));
  std::vector<uint64_t> seqs;
  wal.Replay(0, [&](uint64_t seq, MutationBatch&&) { seqs.push_back(seq); });
  EXPECT_EQ(seqs, (std::vector<uint64_t>{4, 5}));
  // The compacted log still appends.
  MutationBatch batch;
  batch.push_back(EdgeMutation::Add(6, 9));
  ASSERT_TRUE(wal.Append(6, batch));
  seqs.clear();
  wal.Replay(0, [&](uint64_t seq, MutationBatch&&) { seqs.push_back(seq); });
  EXPECT_EQ(seqs, (std::vector<uint64_t>{4, 5, 6}));
}

}  // namespace
}  // namespace graphbolt
