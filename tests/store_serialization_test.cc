// Direct (de)serialization tests for both dependency-store backends, plus
// cross-checks of their accounting.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/compact_dependency_store.h"
#include "src/core/dependency_store.h"

namespace graphbolt {
namespace {

template <typename Store>
Store MakePopulatedStore() {
  Store store;
  store.Reset(5, 8);
  AtomicBitset bits1(5);
  bits1.Set(0);
  bits1.Set(3);
  store.SnapshotLevel(1, {1, 2, 3, 4, 5}, std::move(bits1));
  AtomicBitset bits2(5);
  bits2.Set(2);
  store.SnapshotLevel(2, {1, 2, 9, 4, 5}, std::move(bits2));
  store.SnapshotLevel(3, {1, 2, 9, 4, 7}, AtomicBitset(5));
  return store;
}

template <typename Store>
void ExpectStoresEqual(const Store& a, const Store& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.tracked_levels(), b.tracked_levels());
  ASSERT_EQ(a.total_levels(), b.total_levels());
  for (uint32_t level = 1; level <= a.tracked_levels(); ++level) {
    for (VertexId v = 0; v < a.num_vertices(); ++v) {
      EXPECT_DOUBLE_EQ(a.At(level, v), b.At(level, v)) << "level " << level << " v " << v;
    }
  }
  for (uint32_t level = 1; level <= a.total_levels(); ++level) {
    for (VertexId v = 0; v < a.num_vertices(); ++v) {
      EXPECT_EQ(a.ChangedAt(level).Test(v), b.ChangedAt(level).Test(v))
          << "level " << level << " v " << v;
    }
  }
}

TEST(DenseStoreSerialization, RoundTrip) {
  auto store = MakePopulatedStore<DependencyStore<double>>();
  std::stringstream buffer;
  store.SerializeTo(buffer);
  DependencyStore<double> loaded;
  ASSERT_TRUE(loaded.DeserializeFrom(buffer));
  ExpectStoresEqual(store, loaded);
}

TEST(DenseStoreSerialization, RejectsTruncated) {
  auto store = MakePopulatedStore<DependencyStore<double>>();
  std::stringstream buffer;
  store.SerializeTo(buffer);
  const std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  DependencyStore<double> loaded;
  EXPECT_FALSE(loaded.DeserializeFrom(truncated));
}

TEST(CompactStoreSerialization, RoundTripPreservesPruning) {
  auto store = MakePopulatedStore<CompactDependencyStore<double>>();
  const uint64_t entries_before = store.logical_entries();
  std::stringstream buffer;
  store.SerializeTo(buffer);
  CompactDependencyStore<double> loaded;
  ASSERT_TRUE(loaded.DeserializeFrom(buffer));
  ExpectStoresEqual(store, loaded);
  EXPECT_EQ(loaded.logical_entries(), entries_before);
}

TEST(CompactStoreSerialization, RejectsGarbage) {
  std::stringstream garbage("certainly not a store");
  CompactDependencyStore<double> loaded;
  EXPECT_FALSE(loaded.DeserializeFrom(garbage));
}

TEST(StoreAccounting, CompactStoresFewerEntriesThanDenseAllocates) {
  auto dense = MakePopulatedStore<DependencyStore<double>>();
  auto compact = MakePopulatedStore<CompactDependencyStore<double>>();
  // Dense allocates V*t entries; compact stores only changing prefixes.
  const uint64_t dense_alloc = 5ull * dense.tracked_levels();
  EXPECT_LT(compact.logical_entries(), dense_alloc);
  // Compact may exceed the dense store's *accounting* slightly: §4.1's
  // hole-elimination re-materializes stable values below a late change,
  // which the accounting-only view does not count.
  EXPECT_GE(compact.logical_entries(), dense.logical_entries());
}

TEST(StoreAccounting, TruncateLevelsDropsState) {
  auto dense = MakePopulatedStore<DependencyStore<double>>();
  dense.TruncateLevels(1);
  EXPECT_EQ(dense.tracked_levels(), 1u);
  EXPECT_EQ(dense.total_levels(), 1u);
  auto compact = MakePopulatedStore<CompactDependencyStore<double>>();
  compact.TruncateLevels(1);
  EXPECT_EQ(compact.tracked_levels(), 1u);
  EXPECT_DOUBLE_EQ(compact.At(1, 2), 3.0);
}

}  // namespace
}  // namespace graphbolt
