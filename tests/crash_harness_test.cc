// Out-of-process crash chaos harness: SIGKILL the durability pipeline at
// seeded, byte-granular points and prove recovery is bitwise exact.
//
// Each kill point forks a child that streams a deterministic mutation
// stream through a checkpointing driver whose storage runs through a
// FaultyEnv armed to raise SIGKILL from *inside* the nth durable write
// (half the payload persisted — a genuinely torn record, the way a power
// cut makes one) or the nth commit rename (before it when odd, after when
// even). The parent reaps the corpse, then points a brand-new
// graph/engine/driver at the directory, calls Recover(), and requires the
// recovered state to equal — by operator==, on doubles and edge lists —
// the state a fault-free run reaches after exactly applied_seq() batches.
// The recovered frontier is whatever it is (that is the kill's business);
// what must hold is that the state IS that frontier, bitwise, with no
// torn artifact ever silently replayed.
//
// Both driver shapes run the same matrix: the unsharded StreamDriver and
// the 4-lane ShardedDriver, whose recovery replays the per-lane WAL
// lineages in parallel (native sharded recovery) before the global
// journal sweep. Batches are lane-aligned (batch i's sources all live on
// shard i % 4) and the sharded child barriers per batch, so the global
// promotion order equals the ingest order and "first n batches" is
// well-defined on both shapes.
//
// The fork is bare (no exec): the child rebuilds all state from scratch
// post-fork and the parent holds no extra live threads at fork time
// (ThreadPool is pinned to 1 thread; each recovery driver is stopped
// before the next fork).
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/stream_driver.h"
#include "src/fault/checkpoint.h"
#include "src/fault/storage_env.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/parallel/thread_pool.h"
#include "src/shard/driver_config.h"
#include "src/shard/sharded_driver.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

using CrashEngine = GraphBoltEngine<PageRank>;

constexpr size_t kVertices = 160;       // multiple of kShards (lane alignment)
constexpr size_t kInitialEdges = 600;
constexpr size_t kBatches = 28;
constexpr size_t kBatchSize = 16;
constexpr size_t kShards = 4;
constexpr uint64_t kCadence = 4;        // checkpoint every 4 batches
constexpr int kSurvivedExit = 42;       // child outlived its kill point

// A kill point: die inside the nth durable write, or at the nth rename.
struct KillSpec {
  bool at_rename = false;
  uint64_t n = 0;
};

// Deterministic lane-aligned batch stream (LCG, no wall clock, no global
// state): batch i's sources are all congruent to i mod kShards, so on the
// sharded driver every batch lands whole on one lane and promotes as one
// global sequence number — the property that makes "the first n batches"
// mean the same thing on both driver shapes.
std::vector<MutationBatch> MakeAlignedBatches(uint64_t seed) {
  uint64_t state = seed;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<MutationBatch> batches;
  for (size_t i = 0; i < kBatches; ++i) {
    MutationBatch batch;
    for (size_t m = 0; m < kBatchSize; ++m) {
      const auto src = static_cast<VertexId>(
          (next() % (kVertices / kShards)) * kShards + i % kShards);
      const auto dst = static_cast<VertexId>(next() % kVertices);
      batch.push_back(EdgeMutation::Add(src, dst));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

typename Checkpointer<CrashEngine>::Options CkptOptions(const std::string& dir,
                                                        StorageEnv* env) {
  return {.directory = dir, .cadence_batches = kCadence, .keep = 2, .env = env};
}

// The child's whole life. Never returns: dies by injected SIGKILL, or
// exits kSurvivedExit if the kill point lay beyond the run's IO.
[[noreturn]] void RunChildWorkload(const std::string& dir, const KillSpec& kill,
                                   size_t shards) {
  ThreadPool::SetNumThreads(1);  // deterministic summation order
  EdgeList initial = GenerateRmat(kVertices, kInitialEdges, {.seed = 7});
  MutableGraph graph(initial);
  CrashEngine engine(&graph, PageRank{});
  engine.InitialCompute();
  FaultyEnv faulty(nullptr, /*seed=*/kill.n);
  if (kill.at_rename) {
    faulty.KillAtRename(kill.n);
  } else {
    faulty.KillAtWrite(kill.n);
  }
  Checkpointer<CrashEngine> ckpt(&engine, &graph, CkptOptions(dir, &faulty));
  const std::vector<MutationBatch> batches = MakeAlignedBatches(/*seed=*/99);
  if (shards == 0) {
    StreamDriver<CrashEngine> driver(&engine, {.batch_size = kBatchSize,
                                               .flush_interval_seconds = 3600.0,
                                               .overflow = OverflowPolicy::kBlock,
                                               .coalesce = false,
                                               .checkpointer = &ckpt,
                                               .background_compaction = false,
                                               .fast_path = false,
                                               .async_mode = AsyncModePolicy::kOff});
    driver.CheckpointNow();  // baseline: write 1 / rename 1
    for (const MutationBatch& batch : batches) {
      driver.IngestBatch(batch);  // exactly one gutter flush per call
    }
    driver.Stop();
  } else {
    DriverConfig config;
    config.shards = shards;
    config.batch_size = kBatchSize;
    config.flush_interval_seconds = 3600.0;
    config.overflow = OverflowPolicy::kBlock;
    config.coalesce = false;
    config.background_compaction = false;
    config.fast_path = false;
    config.async_mode = AsyncModePolicy::kOff;
    config.checkpoint_dir = dir;
    config.checkpoint_every = kCadence;
    ShardedDriver<CrashEngine> driver(&engine, config, &ckpt);
    driver.CheckpointNow();
    for (const MutationBatch& batch : batches) {
      driver.IngestBatch(batch);
      driver.PrepQuery();  // barrier: promotion order == ingest order
    }
    driver.Stop();
  }
  _exit(kSurvivedExit);
}

// Fault-free reference: engine value vector and edge list after every
// batch prefix (index n = first n batches applied).
struct Prefixes {
  std::vector<std::vector<double>> values;
  std::vector<std::vector<Edge>> edges;
};

Prefixes ComputePrefixes() {
  Prefixes ref;
  EdgeList initial = GenerateRmat(kVertices, kInitialEdges, {.seed = 7});
  MutableGraph graph(initial);
  CrashEngine engine(&graph, PageRank{});
  engine.InitialCompute();
  ref.values.push_back(engine.values());
  ref.edges.push_back(graph.ToEdgeList().edges());
  for (const MutationBatch& batch : MakeAlignedBatches(/*seed=*/99)) {
    engine.ApplyMutations(batch);
    ref.values.push_back(engine.values());
    ref.edges.push_back(graph.ToEdgeList().edges());
  }
  return ref;
}

// Forks the child workload and reaps it. The child must die by SIGKILL —
// a kSurvivedExit exit means the kill point was miscalibrated and the
// matrix entry is vacuous.
void SpawnChildExpectKilled(const std::string& dir, const KillSpec& kill,
                            size_t shards) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    RunChildWorkload(dir, kill, shards);  // never returns
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child survived its kill point (" << (kill.at_rename ? "rename" : "write")
      << " #" << kill.n << ", exit "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1) << ")";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

// Cold-start recovery in the parent against the child's corpse directory,
// plus the bitwise prefix assertion. Returns the recovered frontier and
// the lane-lineage replay count (0 on the unsharded shape).
struct RecoveryOutcome {
  uint64_t applied = 0;
  uint64_t lane_replayed = 0;
};

RecoveryOutcome RecoverAndCheck(const std::string& dir, size_t shards,
                                const Prefixes& ref, const std::string& what) {
  MutableGraph graph;
  CrashEngine engine(&graph, PageRank{});
  Checkpointer<CrashEngine> ckpt(&engine, &graph, CkptOptions(dir, nullptr));
  RecoveryOutcome outcome;
  if (shards == 0) {
    StreamDriver<CrashEngine> driver(&engine, {.batch_size = kBatchSize,
                                               .flush_interval_seconds = 3600.0,
                                               .overflow = OverflowPolicy::kBlock,
                                               .coalesce = false,
                                               .checkpointer = &ckpt,
                                               .background_compaction = false,
                                               .fast_path = false,
                                               .async_mode = AsyncModePolicy::kOff});
    EXPECT_TRUE(driver.Recover()) << what;
    outcome.applied = driver.applied_seq();
    driver.Stop();
  } else {
    DriverConfig config;
    config.shards = shards;
    config.batch_size = kBatchSize;
    config.flush_interval_seconds = 3600.0;
    config.overflow = OverflowPolicy::kBlock;
    config.coalesce = false;
    config.background_compaction = false;
    config.fast_path = false;
    config.async_mode = AsyncModePolicy::kOff;
    config.checkpoint_dir = dir;
    config.checkpoint_every = kCadence;
    ShardedDriver<CrashEngine> driver(&engine, config, &ckpt);
    EXPECT_TRUE(driver.Recover()) << what;
    outcome.applied = driver.applied_seq();
    outcome.lane_replayed = driver.stats().lane_batches_replayed;
    driver.Stop();
  }
  // Recovery's own post-restore checkpoint re-journals nothing, so the
  // frontier is exactly a batch count into the reference stream.
  EXPECT_LE(outcome.applied, kBatches) << what;
  const size_t n = static_cast<size_t>(std::min<uint64_t>(outcome.applied, kBatches));
  EXPECT_EQ(engine.values(), ref.values[n]) << what << " (values diverge at prefix " << n << ")";
  EXPECT_EQ(graph.ToEdgeList().edges(), ref.edges[n])
      << what << " (graph diverges at prefix " << n << ")";
  return outcome;
}

// The seeded kill matrix for one driver shape: 10 write kills drawn
// without replacement from the run's durable-write range, plus 3 rename
// kills covering both pre-commit (odd) and post-commit (even) deaths.
// Write/rename #1 is the baseline checkpoint and is excluded so every
// entry has a restorable artifact (the no-baseline case is
// fault_recovery_test's cold-start-without-checkpoint territory).
std::vector<KillSpec> MakeKillMatrix(uint64_t seed) {
  std::vector<uint64_t> candidates;
  for (uint64_t n = 2; n <= 30; ++n) {
    candidates.push_back(n);
  }
  std::mt19937_64 rng(seed);
  std::shuffle(candidates.begin(), candidates.end(), rng);
  std::vector<KillSpec> matrix;
  for (size_t i = 0; i < 10; ++i) {
    matrix.push_back({/*at_rename=*/false, candidates[i]});
  }
  for (uint64_t n : {2u, 3u, 4u}) {
    matrix.push_back({/*at_rename=*/true, n});
  }
  return matrix;
}

void RunKillMatrix(size_t shards, uint64_t seed) {
  ThreadPool::SetNumThreads(1);
  const Prefixes ref = ComputePrefixes();
  uint64_t lane_replayed_total = 0;
  for (const KillSpec& kill : MakeKillMatrix(seed)) {
    ScopedTempDir tmp("graphbolt_crash");
    const std::string what =
        std::string(shards == 0 ? "unsharded" : "sharded") + " kill at " +
        (kill.at_rename ? "rename" : "write") + " #" + std::to_string(kill.n);
    SCOPED_TRACE(what);
    SpawnChildExpectKilled(tmp.path(), kill, shards);
    if (testing::Test::HasFatalFailure()) {
      return;
    }
    lane_replayed_total += RecoverAndCheck(tmp.path(), shards, ref, what).lane_replayed;
  }
  if (shards != 0) {
    // The native lane-parallel path must have carried real weight across
    // the matrix (individual points may legally land on a checkpoint
    // boundary with an empty tail).
    EXPECT_GT(lane_replayed_total, 0u)
        << "no kill point ever exercised lane-lineage replay";
  }
}

TEST(CrashHarness, StreamDriverSurvivesSigkillMatrix) {
  RunKillMatrix(/*shards=*/0, /*seed=*/0xC0FFEE);
}

TEST(CrashHarness, ShardedDriverSurvivesSigkillMatrix) {
  RunKillMatrix(/*shards=*/kShards, /*seed=*/0xBADD1E);
}

}  // namespace
}  // namespace graphbolt
