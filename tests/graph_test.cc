// Unit tests for EdgeList and the CSR adjacency structure.
#include <gtest/gtest.h>

#include <vector>

#include "src/graph/csr.h"
#include "src/graph/edge_list.h"

namespace graphbolt {
namespace {

EdgeList SmallGraph() {
  // The 5-vertex graph of Figure 2a (paper): 0->1, 1->2, 2->0, 2->1, 3->2,
  // 3->4, 4->3.
  EdgeList list;
  list.set_num_vertices(5);
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(2, 0);
  list.Add(2, 1);
  list.Add(3, 2);
  list.Add(3, 4);
  list.Add(4, 3);
  return list;
}

TEST(EdgeList, AddTracksVertexCount) {
  EdgeList list;
  list.Add(3, 7);
  EXPECT_EQ(list.num_vertices(), 8u);
  EXPECT_EQ(list.num_edges(), 1u);
}

TEST(EdgeList, SortAndDeduplicateRemovesDupsAndSelfLoops) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(0, 1);
  list.Add(1, 1);  // self loop
  list.Add(1, 0);
  const size_t removed = list.SortAndDeduplicate();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(list.num_edges(), 2u);
  EXPECT_TRUE(list.HasEdgeSorted(0, 1));
  EXPECT_TRUE(list.HasEdgeSorted(1, 0));
  EXPECT_FALSE(list.HasEdgeSorted(1, 1));
}

TEST(EdgeList, DeduplicateKeepsFirstWeight) {
  EdgeList list;
  list.Add(0, 1, 2.5f);
  list.Add(0, 1, 9.0f);
  list.SortAndDeduplicate();
  ASSERT_EQ(list.num_edges(), 1u);
  EXPECT_FLOAT_EQ(list.edges()[0].weight, 2.5f);
}

TEST(Csr, BuildsCorrectDegrees) {
  EdgeList list = SmallGraph();
  Csr csr = Csr::FromEdges(list.num_vertices(), list.edges());
  EXPECT_EQ(csr.num_vertices(), 5u);
  EXPECT_EQ(csr.num_edges(), 7u);
  EXPECT_EQ(csr.Degree(0), 1u);
  EXPECT_EQ(csr.Degree(2), 2u);
  EXPECT_EQ(csr.Degree(3), 2u);
  EXPECT_EQ(csr.Degree(4), 1u);
}

TEST(Csr, ReverseBuildsInEdges) {
  EdgeList list = SmallGraph();
  Csr csc = Csr::FromEdges(list.num_vertices(), list.edges(), /*reverse=*/true);
  EXPECT_EQ(csc.Degree(2), 2u);  // in-edges of 2: from 1 and 3
  const auto nbrs = csc.Neighbors(2);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 3u);
}

TEST(Csr, NeighborsSorted) {
  EdgeList list;
  list.set_num_vertices(4);
  list.Add(0, 3);
  list.Add(0, 1);
  list.Add(0, 2);
  Csr csr = Csr::FromEdges(4, list.edges());
  const auto nbrs = csr.Neighbors(0);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(Csr, HasEdgeAndWeight) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1, 0.5f);
  list.Add(0, 2, 1.5f);
  Csr csr = Csr::FromEdges(3, list.edges());
  EXPECT_TRUE(csr.HasEdge(0, 1));
  EXPECT_FALSE(csr.HasEdge(1, 0));
  EXPECT_FLOAT_EQ(csr.EdgeWeight(0, 2), 1.5f);
  EXPECT_FLOAT_EQ(csr.EdgeWeight(2, 0), kDefaultWeight);  // absent
}

TEST(Csr, ApplyEditsAddsAndDeletes) {
  EdgeList list = SmallGraph();
  Csr csr = Csr::FromEdges(5, list.edges());
  std::vector<std::vector<VertexId>> deletes(5);
  std::vector<std::vector<std::pair<VertexId, Weight>>> adds(5);
  deletes[2] = {1};            // delete 2->1
  adds[1] = {{3, 2.0f}};       // add 1->3
  adds[4] = {{0, 1.0f}};       // add 4->0
  csr.ApplyEdits(deletes, adds);
  EXPECT_TRUE(csr.CheckInvariants());
  EXPECT_EQ(csr.num_edges(), 8u);
  EXPECT_FALSE(csr.HasEdge(2, 1));
  EXPECT_TRUE(csr.HasEdge(1, 3));
  EXPECT_FLOAT_EQ(csr.EdgeWeight(1, 3), 2.0f);
  EXPECT_TRUE(csr.HasEdge(4, 0));
  EXPECT_TRUE(csr.HasEdge(0, 1));  // untouched edges survive
}

TEST(Csr, ApplyEditsReAddUpdatesWeight) {
  EdgeList list;
  list.set_num_vertices(2);
  list.Add(0, 1, 1.0f);
  Csr csr = Csr::FromEdges(2, list.edges());
  std::vector<std::vector<VertexId>> deletes(2);
  std::vector<std::vector<std::pair<VertexId, Weight>>> adds(2);
  adds[0] = {{1, 3.0f}};
  csr.ApplyEdits(deletes, adds);
  EXPECT_EQ(csr.num_edges(), 1u);
  EXPECT_FLOAT_EQ(csr.EdgeWeight(0, 1), 3.0f);
}

TEST(Csr, ApplyEditsEmptyIsNoop) {
  EdgeList list = SmallGraph();
  Csr csr = Csr::FromEdges(5, list.edges());
  std::vector<std::vector<VertexId>> deletes(5);
  std::vector<std::vector<std::pair<VertexId, Weight>>> adds(5);
  csr.ApplyEdits(deletes, adds);
  EXPECT_EQ(csr.num_edges(), 7u);
  EXPECT_TRUE(csr.CheckInvariants());
}

TEST(Csr, GrowVerticesAddsIsolated) {
  EdgeList list = SmallGraph();
  Csr csr = Csr::FromEdges(5, list.edges());
  csr.GrowVertices(8);
  EXPECT_EQ(csr.num_vertices(), 8u);
  EXPECT_EQ(csr.Degree(7), 0u);
  EXPECT_EQ(csr.num_edges(), 7u);
  EXPECT_TRUE(csr.CheckInvariants());
}

TEST(Csr, EmptyGraph) {
  Csr csr = Csr::FromEdges(3, {});
  EXPECT_EQ(csr.num_vertices(), 3u);
  EXPECT_EQ(csr.num_edges(), 0u);
  EXPECT_EQ(csr.Degree(0), 0u);
  EXPECT_TRUE(csr.CheckInvariants());
}

TEST(Csr, CheckInvariantsDetectsCorruption) {
  EdgeList list = SmallGraph();
  Csr csr = Csr::FromEdges(5, list.edges());
  EXPECT_TRUE(csr.CheckInvariants());
}

}  // namespace
}  // namespace graphbolt
