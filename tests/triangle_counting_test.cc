// Tests for static and incremental Triangle Counting.
#include <gtest/gtest.h>

#include "src/algorithms/triangle_counting.h"
#include "src/graph/generators.h"
#include "src/stream/update_stream.h"

namespace graphbolt {
namespace {

TEST(CountTriangles, EmptyGraphHasNone) {
  MutableGraph graph(GenerateChain(5));
  EXPECT_EQ(CountTriangles(graph), 0u);
}

TEST(CountTriangles, DirectedTriangle) {
  // 0->1->2->0: term (u,v) counts w with w->u and v->w.
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(2, 0);
  MutableGraph graph(std::move(list));
  // For edge (0,1): in(0)={2}, out(1)={2} -> 1. Same for each edge: total 3.
  EXPECT_EQ(CountTriangles(graph), 3u);
}

TEST(CountTriangles, CompleteGraphFormula) {
  // In a complete digraph each ordered vertex triple (u,v,w) distinct forms
  // a triangle through every edge: term(u,v) = n - 2 common neighbors, over
  // n(n-1) edges.
  const VertexId n = 6;
  MutableGraph graph(GenerateComplete(n));
  EXPECT_EQ(CountTriangles(graph), static_cast<uint64_t>(n) * (n - 1) * (n - 2));
}

TEST(CountTriangles, StatsCountScans) {
  MutableGraph graph(GenerateComplete(5));
  EngineStats stats;
  CountTriangles(graph, &stats);
  EXPECT_GT(stats.edges_processed, 0u);
}

TEST(TriangleEngine, InitialMatchesStandalone) {
  MutableGraph graph(GenerateRmat(300, 3000, {.seed = 120}));
  TriangleCountingEngine engine(&graph);
  engine.InitialCompute();
  EXPECT_EQ(engine.count(), CountTriangles(graph));
}

TEST(TriangleEngine, AdditionCreatesTriangles) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1);
  list.Add(1, 2);
  MutableGraph graph(std::move(list));
  TriangleCountingEngine engine(&graph);
  engine.InitialCompute();
  EXPECT_EQ(engine.count(), 0u);
  engine.ApplyMutations({EdgeMutation::Add(2, 0)});
  EXPECT_EQ(engine.count(), 3u);
}

TEST(TriangleEngine, DeletionRemovesTriangles) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(2, 0);
  MutableGraph graph(std::move(list));
  TriangleCountingEngine engine(&graph);
  engine.InitialCompute();
  EXPECT_EQ(engine.count(), 3u);
  engine.ApplyMutations({EdgeMutation::Delete(1, 2)});
  EXPECT_EQ(engine.count(), 0u);
}

TEST(TriangleEngine, MixedBatchMatchesRecount) {
  EdgeList full = GenerateRmat(400, 4000, {.seed = 121});
  StreamSplit split = SplitForStreaming(full, 0.5, 122);
  MutableGraph graph(split.initial);
  TriangleCountingEngine engine(&graph);
  engine.InitialCompute();

  UpdateStream stream(split.held_back, 123);
  for (int round = 0; round < 10; ++round) {
    const MutationBatch batch = stream.NextBatch(graph, {.size = 50, .add_fraction = 0.6});
    engine.ApplyMutations(batch);
    ASSERT_EQ(engine.count(), CountTriangles(graph)) << "round " << round;
  }
}

TEST(TriangleEngine, DenseNeighborhoodBatch) {
  // Mutations inside a clique where every edge participates in many terms.
  MutableGraph graph(GenerateComplete(8));
  TriangleCountingEngine engine(&graph);
  engine.InitialCompute();
  const MutationBatch batch{
      EdgeMutation::Delete(0, 1), EdgeMutation::Delete(1, 0), EdgeMutation::Delete(2, 3),
      EdgeMutation::Add(0, 1),  // re-add within the same batch: net only 1->0, 2->3 gone
  };
  engine.ApplyMutations(batch);
  EXPECT_EQ(engine.count(), CountTriangles(graph));
}

TEST(TriangleEngine, NewVertexEdges) {
  MutableGraph graph(GenerateComplete(4));
  TriangleCountingEngine engine(&graph);
  engine.InitialCompute();
  engine.ApplyMutations({EdgeMutation::Add(0, 9), EdgeMutation::Add(9, 1)});
  EXPECT_EQ(engine.count(), CountTriangles(graph));
}

TEST(TriangleEngine, ProcessesFarFewerEntriesThanRecount) {
  EdgeList full = GenerateRmat(2000, 20000, {.seed = 124});
  StreamSplit split = SplitForStreaming(full, 0.8, 125);
  MutableGraph graph(split.initial);
  TriangleCountingEngine engine(&graph);
  engine.InitialCompute();
  const uint64_t full_scan = engine.stats().edges_processed;

  UpdateStream stream(split.held_back, 126);
  // A small batch touches only terms local to the mutated endpoints. On a
  // heavily skewed 20K-vertex graph a hub endpoint still drags in many
  // terms, so the expected saving at this scale is a constant factor; at the
  // paper's billion-edge scale it is orders of magnitude (Table 7).
  const MutationBatch batch = stream.NextBatch(
      graph, {.size = 10, .add_fraction = 0.5, .targeting = MutationTargeting::kLowDegree});
  engine.ApplyMutations(batch);
  EXPECT_LT(engine.stats().edges_processed, full_scan / 2);
}

TEST(TriangleResetEngine, MatchesIncrementalEngine) {
  EdgeList full = GenerateRmat(300, 3000, {.seed = 127});
  StreamSplit split = SplitForStreaming(full, 0.5, 128);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  TriangleCountingEngine incremental(&g1);
  TriangleCountingResetEngine reset(&g2);
  incremental.InitialCompute();
  reset.InitialCompute();
  EXPECT_EQ(incremental.count(), reset.count());

  UpdateStream stream(split.held_back, 129);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 30, .add_fraction = 0.6});
    incremental.ApplyMutations(batch);
    reset.ApplyMutations(batch);
    ASSERT_EQ(incremental.count(), reset.count()) << "round " << round;
  }
}

}  // namespace
}  // namespace graphbolt
