// Unit tests for the parallel runtime: atomics, thread pool, parallel loops,
// and reductions.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/parallel/atomics.h"
#include "src/parallel/parallel_for.h"
#include "src/parallel/reducer.h"
#include "src/parallel/thread_pool.h"

namespace graphbolt {
namespace {

TEST(Atomics, AddInteger) {
  int64_t value = 10;
  AtomicAdd(&value, int64_t{32});
  EXPECT_EQ(value, 42);
}

TEST(Atomics, AddDouble) {
  double value = 1.5;
  AtomicAdd(&value, 2.25);
  EXPECT_DOUBLE_EQ(value, 3.75);
}

TEST(Atomics, MultiplyAndDivideRoundTrip) {
  double value = 3.0;
  AtomicMultiply(&value, 4.0);
  EXPECT_DOUBLE_EQ(value, 12.0);
  AtomicDivide(&value, 4.0);
  EXPECT_DOUBLE_EQ(value, 3.0);
}

TEST(Atomics, MinUpdatesOnlyDownward) {
  double value = 10.0;
  EXPECT_TRUE(AtomicMin(&value, 5.0));
  EXPECT_DOUBLE_EQ(value, 5.0);
  EXPECT_FALSE(AtomicMin(&value, 7.0));
  EXPECT_DOUBLE_EQ(value, 5.0);
}

TEST(Atomics, MaxUpdatesOnlyUpward) {
  int value = 3;
  EXPECT_TRUE(AtomicMax(&value, 9));
  EXPECT_EQ(value, 9);
  EXPECT_FALSE(AtomicMax(&value, 4));
  EXPECT_EQ(value, 9);
}

TEST(Atomics, CasSucceedsAndFails) {
  int value = 5;
  EXPECT_TRUE(AtomicCas(&value, 5, 6));
  EXPECT_EQ(value, 6);
  EXPECT_FALSE(AtomicCas(&value, 5, 7));
  EXPECT_EQ(value, 6);
}

TEST(Atomics, ConcurrentDoubleAddIsExactUnderReordering) {
  // Adding 1.0 a million times from several threads: CAS-loop adds must not
  // lose updates (1.0 increments are exactly representable).
  double value = 0.0;
  ParallelFor(0, 100000, [&value](size_t) { AtomicAdd(&value, 1.0); }, /*grain=*/64);
  EXPECT_DOUBLE_EQ(value, 100000.0);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); }, /*grain=*/16);
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool ran = false;
  ParallelFor(5, 5, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkedCoversRange) {
  std::atomic<uint64_t> sum{0};
  ParallelForChunks(0, 1000, [&sum](size_t lo, size_t hi) {
    uint64_t local = 0;
    for (size_t i = lo; i < hi; ++i) {
      local += i;
    }
    sum.fetch_add(local);
  }, /*grain=*/7);
  EXPECT_EQ(sum.load(), 999ull * 1000 / 2);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  std::atomic<int> total{0};
  ParallelFor(0, 8, [&total](size_t) {
    ParallelFor(0, 8, [&total](size_t) { total.fetch_add(1); }, /*grain=*/1);
  }, /*grain=*/1);
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SetNumThreadsRebuilds) {
  ThreadPool::SetNumThreads(2);
  EXPECT_EQ(ThreadPool::Instance().num_threads(), 2u);
  std::atomic<int> count{0};
  ParallelFor(0, 100, [&count](size_t) { count.fetch_add(1); }, /*grain=*/4);
  EXPECT_EQ(count.load(), 100);
  ThreadPool::SetNumThreads(1);
  EXPECT_EQ(ThreadPool::Instance().num_threads(), 1u);
  count = 0;
  ParallelFor(0, 100, [&count](size_t) { count.fetch_add(1); }, /*grain=*/4);
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ManySmallLoopsDoNotDeadlock) {
  ThreadPool::SetNumThreads(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    ParallelFor(0, 64, [&count](size_t) { count.fetch_add(1); }, /*grain=*/1);
    ASSERT_EQ(count.load(), 64);
  }
  ThreadPool::SetNumThreads(1);
}

TEST(Reducer, SumMatchesSerial) {
  const uint64_t total = ParallelReduceSum<uint64_t>(0, 100000, [](size_t i) { return i; });
  EXPECT_EQ(total, 99999ull * 100000 / 2);
}

TEST(Reducer, SumWithInit) {
  const int total = ParallelReduceSum<int>(0, 10, [](size_t) { return 1; }, 100);
  EXPECT_EQ(total, 110);
}

TEST(Reducer, MaxFindsMaximum) {
  std::vector<int> data(5000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>((i * 2654435761u) % 100000);
  }
  const int expected = *std::max_element(data.begin(), data.end());
  const int found =
      ParallelReduceMax<int>(0, data.size(), [&data](size_t i) { return data[i]; }, -1);
  EXPECT_EQ(found, expected);
}

TEST(Reducer, MaxOfEmptyRangeReturnsInit) {
  EXPECT_EQ(ParallelReduceMax<int>(3, 3, [](size_t) { return 7; }, -5), -5);
}

TEST(Reducer, ExclusivePrefixSum) {
  std::vector<uint64_t> values{3, 1, 4, 1, 5};
  const uint64_t total = ExclusivePrefixSum(values);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(values, (std::vector<uint64_t>{0, 3, 4, 8, 9}));
}

TEST(Reducer, ExclusivePrefixSumEmpty) {
  std::vector<int> values;
  EXPECT_EQ(ExclusivePrefixSum(values), 0);
}

}  // namespace
}  // namespace graphbolt
