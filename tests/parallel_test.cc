// Unit tests for the parallel runtime: atomics, the TaskArena-backed loop
// primitives, and reductions. Scheduler-level tests (deque protocol, fork-
// join, stealing) live in task_arena_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "src/parallel/atomics.h"
#include "src/parallel/parallel_for.h"
#include "src/parallel/reducer.h"
#include "src/parallel/task_arena.h"
#include "src/parallel/thread_pool.h"

namespace graphbolt {
namespace {

TEST(Atomics, AddInteger) {
  int64_t value = 10;
  AtomicAdd(&value, int64_t{32});
  EXPECT_EQ(value, 42);
}

TEST(Atomics, AddDouble) {
  double value = 1.5;
  AtomicAdd(&value, 2.25);
  EXPECT_DOUBLE_EQ(value, 3.75);
}

TEST(Atomics, MultiplyAndDivideRoundTrip) {
  double value = 3.0;
  AtomicMultiply(&value, 4.0);
  EXPECT_DOUBLE_EQ(value, 12.0);
  AtomicDivide(&value, 4.0);
  EXPECT_DOUBLE_EQ(value, 3.0);
}

TEST(Atomics, MinUpdatesOnlyDownward) {
  double value = 10.0;
  EXPECT_TRUE(AtomicMin(&value, 5.0));
  EXPECT_DOUBLE_EQ(value, 5.0);
  EXPECT_FALSE(AtomicMin(&value, 7.0));
  EXPECT_DOUBLE_EQ(value, 5.0);
}

TEST(Atomics, MaxUpdatesOnlyUpward) {
  int value = 3;
  EXPECT_TRUE(AtomicMax(&value, 9));
  EXPECT_EQ(value, 9);
  EXPECT_FALSE(AtomicMax(&value, 4));
  EXPECT_EQ(value, 9);
}

TEST(Atomics, CasSucceedsAndFails) {
  int value = 5;
  EXPECT_TRUE(AtomicCas(&value, 5, 6));
  EXPECT_EQ(value, 6);
  EXPECT_FALSE(AtomicCas(&value, 5, 7));
  EXPECT_EQ(value, 6);
}

TEST(Atomics, ConcurrentDoubleAddIsExactUnderReordering) {
  // Adding 1.0 a million times from several threads: CAS-loop adds must not
  // lose updates (1.0 increments are exactly representable).
  double value = 0.0;
  ParallelFor(0, 100000, [&value](size_t) { AtomicAdd(&value, 1.0); }, /*grain=*/64);
  EXPECT_DOUBLE_EQ(value, 100000.0);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); }, /*grain=*/16);
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool ran = false;
  ParallelFor(5, 5, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunkedCoversRange) {
  std::atomic<uint64_t> sum{0};
  ParallelForChunks(0, 1000, [&sum](size_t lo, size_t hi) {
    uint64_t local = 0;
    for (size_t i = lo; i < hi; ++i) {
      local += i;
    }
    sum.fetch_add(local);
  }, /*grain=*/7);
  EXPECT_EQ(sum.load(), 999ull * 1000 / 2);
}

TEST(ThreadPool, NestedParallelForCoversRange) {
  std::atomic<int> total{0};
  ParallelFor(0, 8, [&total](size_t) {
    ParallelFor(0, 8, [&total](size_t) { total.fetch_add(1); }, /*grain=*/1);
  }, /*grain=*/1);
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, NestedParallelForActuallyRunsOnMultipleWorkers) {
  // The old runtime executed nested loops inline on the calling worker;
  // the arena forks them into the worker's deque where thieves pick them
  // up. Assert real nested parallelism with a rendezvous: a single outer
  // task runs an inner loop whose bodies wait (bounded) until two of them
  // are inside *the same inner loop* concurrently — impossible if the
  // inner loop is serialized onto one worker.
  ThreadPool::SetNumThreads(4);
  std::atomic<int> inside{0};
  std::atomic<bool> met{false};
  std::mutex ids_mu;
  std::set<std::thread::id> ids;
  ParallelFor(0, 1, [&](size_t) {
    ParallelFor(0, 4, [&](size_t) {
      {
        std::lock_guard<std::mutex> lock(ids_mu);
        ids.insert(std::this_thread::get_id());
      }
      inside.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (!met.load() && std::chrono::steady_clock::now() < deadline) {
        if (inside.load() >= 2) {
          met.store(true);
          break;
        }
        std::this_thread::yield();
      }
      inside.fetch_sub(1);
    }, /*grain=*/1);
  }, /*grain=*/1);
  EXPECT_TRUE(met.load()) << "no two workers were ever inside the nested loop";
  EXPECT_GE(ids.size(), 2u);
  ThreadPool::SetNumThreads(1);
}

TEST(ThreadPool, SkewedWorkIsBalancedByStealing) {
  // Power-law chunk costs (the hub-vertex profile): item cost ~ 1/(i+1),
  // so chunk 0 dominates. Lazy binary splitting must leave the cheap tail
  // available for thieves while the owner grinds the head — observable as
  // arena steal traffic (and, of course, a correct sum). The head chunk
  // yields until a steal lands so the test also holds on one hardware
  // core, where thieves only run when the grinding thread gives up its
  // quantum: while nothing has been stolen yet, the splitter's own deque
  // still holds the forked upper half, so a thief always has a target.
  ThreadPool::SetNumThreads(4);
  const ArenaCounters before = TaskArena::Instance().counters();
  std::atomic<uint64_t> sum{0};
  ParallelFor(0, 256, [&sum, &before](size_t i) {
    if (i == 0) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (TaskArena::Instance().counters().tasks_stolen == before.tasks_stolen &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    }
    const size_t reps = 200000 / (i + 1);
    uint64_t local = 0;
    for (size_t r = 0; r < reps; ++r) {
      local += r ^ i;
    }
    sum.fetch_add(local);
  }, /*grain=*/1);
  EXPECT_GT(sum.load(), 0u);
  const ArenaCounters after = TaskArena::Instance().counters();
  EXPECT_GT(after.tasks_stolen, before.tasks_stolen)
      << "skewed loop never produced a cross-worker steal";
  ThreadPool::SetNumThreads(1);
}

TEST(ThreadPool, SetNumThreadsRebuilds) {
  ThreadPool::SetNumThreads(2);
  EXPECT_EQ(ThreadPool::Instance().num_threads(), 2u);
  std::atomic<int> count{0};
  ParallelFor(0, 100, [&count](size_t) { count.fetch_add(1); }, /*grain=*/4);
  EXPECT_EQ(count.load(), 100);
  ThreadPool::SetNumThreads(1);
  EXPECT_EQ(ThreadPool::Instance().num_threads(), 1u);
  count = 0;
  ParallelFor(0, 100, [&count](size_t) { count.fetch_add(1); }, /*grain=*/4);
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ManySmallLoopsDoNotDeadlock) {
  ThreadPool::SetNumThreads(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    ParallelFor(0, 64, [&count](size_t) { count.fetch_add(1); }, /*grain=*/1);
    ASSERT_EQ(count.load(), 64);
  }
  ThreadPool::SetNumThreads(1);
}

TEST(Reducer, SumMatchesSerial) {
  const uint64_t total = ParallelReduceSum<uint64_t>(0, 100000, [](size_t i) { return i; });
  EXPECT_EQ(total, 99999ull * 100000 / 2);
}

TEST(Reducer, SumWithInit) {
  const int total = ParallelReduceSum<int>(0, 10, [](size_t) { return 1; }, 100);
  EXPECT_EQ(total, 110);
}

TEST(Reducer, MaxFindsMaximum) {
  std::vector<int> data(5000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>((i * 2654435761u) % 100000);
  }
  const int expected = *std::max_element(data.begin(), data.end());
  const int found =
      ParallelReduceMax<int>(0, data.size(), [&data](size_t i) { return data[i]; }, -1);
  EXPECT_EQ(found, expected);
}

TEST(Reducer, MaxOfEmptyRangeReturnsInit) {
  EXPECT_EQ(ParallelReduceMax<int>(3, 3, [](size_t) { return 7; }, -5), -5);
}

TEST(Reducer, ExclusivePrefixSum) {
  std::vector<uint64_t> values{3, 1, 4, 1, 5};
  const uint64_t total = ExclusivePrefixSum(values);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(values, (std::vector<uint64_t>{0, 3, 4, 8, 9}));
}

TEST(Reducer, ExclusivePrefixSumEmpty) {
  std::vector<int> values;
  EXPECT_EQ(ExclusivePrefixSum(values), 0);
}

TEST(Reducer, ParallelPrefixSumMatchesSerial) {
  ThreadPool::SetNumThreads(4);
  std::vector<uint64_t> values(50000);
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (auto& v : values) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    v = seed % 1000;
  }
  std::vector<uint64_t> expected = values;
  const uint64_t expected_total = ExclusivePrefixSum(expected);
  const uint64_t total = ParallelPrefixSum(values, /*grain=*/512);
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(values, expected);
  ThreadPool::SetNumThreads(1);
}

TEST(Reducer, FloatingPointSumIsDeterministicUnderStealing) {
  // The reduction tree is fixed by (begin, end, grain), not by which
  // worker computed which leaf, so repeated runs — each with different
  // steal interleavings — must agree bitwise even in floating point.
  ThreadPool::SetNumThreads(4);
  std::vector<double> data(100000);
  uint64_t seed = 1;
  for (auto& v : data) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<double>(seed >> 11) * 1e-17;
  }
  const auto sum = [&data] {
    return ParallelReduceSum<double>(0, data.size(),
                                     [&data](size_t i) { return data[i]; });
  };
  const double first = sum();
  for (int round = 0; round < 10; ++round) {
    const double again = sum();
    EXPECT_EQ(first, again) << "round " << round << " diverged";
  }
  ThreadPool::SetNumThreads(1);
}

TEST(Reducer, IntegerSumDeterministicAcrossGrainsAndThreads)
{
  // Exactness property: for any grain and worker count the reduction is
  // the closed-form total (integer sums are schedule-independent anyway;
  // this pins the partition logic — every index exactly once).
  const size_t n = 12345;
  const uint64_t expected = static_cast<uint64_t>(n - 1) * n / 2;
  for (const size_t threads : {1u, 2u, 4u}) {
    ThreadPool::SetNumThreads(threads);
    for (const size_t grain : {1u, 7u, 64u, 100000u}) {
      const uint64_t total = ParallelReduce<uint64_t>(
          0, n,
          [](size_t lo, size_t hi) {
            uint64_t local = 0;
            for (size_t i = lo; i < hi; ++i) {
              local += i;
            }
            return local;
          },
          [](uint64_t a, uint64_t b) { return a + b; }, grain);
      EXPECT_EQ(total, expected) << "threads=" << threads << " grain=" << grain;
    }
  }
  ThreadPool::SetNumThreads(1);
}

}  // namespace
}  // namespace graphbolt
