// Property-based sweeps (parameterized gtest): for random graphs × batch
// shapes × engine configurations, the invariant under test is always the
// same — the incrementally maintained result equals a from-scratch run on
// the final snapshot.
#include <gtest/gtest.h>

#include <tuple>

#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/triangle_counting.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/stream_driver.h"
#include "src/engine/ligra_engine.h"
#include "src/engine/reset_engine.h"
#include "src/fault/checkpoint.h"
#include "src/graph/generators.h"
#include "src/parallel/thread_pool.h"
#include "src/stream/update_stream.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// ----- PageRank sweep: seed × batch size × add fraction -------------------------

using PagerankParam = std::tuple<uint64_t /*seed*/, size_t /*batch*/, double /*add_fraction*/>;

class PagerankSweep : public testing::TestWithParam<PagerankParam> {};

TEST_P(PagerankSweep, RefinementEqualsRestart) {
  const auto [seed, batch_size, add_fraction] = GetParam();
  EdgeList full = GenerateRmat(500, 4000, {.seed = seed});
  StreamSplit split = SplitForStreaming(full, 0.5, seed + 1);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, seed + 2);
  for (int round = 0; round < 3; ++round) {
    const MutationBatch batch =
        stream.NextBatch(g1, {.size = batch_size, .add_fraction = add_fraction});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-7)
        << "seed=" << seed << " batch=" << batch_size << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PagerankSweep,
                         testing::Combine(testing::Values(201, 202, 203, 204),
                                          testing::Values(1, 10, 100),
                                          testing::Values(0.0, 0.5, 1.0)));

// ----- History sweep: horizontal pruning depth ----------------------------------

class HistorySweep : public testing::TestWithParam<uint32_t> {};

TEST_P(HistorySweep, HybridExecutionStaysExact) {
  const uint32_t history = GetParam();
  EdgeList full = GenerateRmat(500, 4000, {.seed = 210});
  StreamSplit split = SplitForStreaming(full, 0.5, 211);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{}, {.max_iterations = 10, .history_size = history});
  LigraEngine<PageRank> ligra(&g2, PageRank{}, {.max_iterations = 10});
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 212);
  for (int round = 0; round < 3; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.6});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-7)
        << "history=" << history << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, HistorySweep, testing::Values(1u, 2u, 4u, 7u, 10u));

// ----- Topology sweep: refinement across structural extremes ---------------------

enum class Topology { kCycle, kChain, kStar, kGrid, kComplete };

class TopologySweep : public testing::TestWithParam<Topology> {
 protected:
  static EdgeList Make(Topology t) {
    switch (t) {
      case Topology::kCycle:
        return GenerateCycle(64);
      case Topology::kChain:
        return GenerateChain(64);
      case Topology::kStar:
        return GenerateStar(64);
      case Topology::kGrid:
        return GenerateGrid(8, 8);
      case Topology::kComplete:
        return GenerateComplete(16);
    }
    return {};
  }
};

TEST_P(TopologySweep, PagerankRefinementEqualsRestart) {
  EdgeList list = Make(GetParam());
  MutableGraph g1(list);
  MutableGraph g2(list);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  bolt.InitialCompute();
  ligra.InitialCompute();
  Rng rng(300);
  for (int round = 0; round < 4; ++round) {
    MutationBatch batch;
    const VertexId n = g1.num_vertices();
    for (int i = 0; i < 6; ++i) {
      const auto src = static_cast<VertexId>(rng.NextBounded(n));
      const auto dst = static_cast<VertexId>(rng.NextBounded(n));
      batch.push_back(rng.NextDouble() < 0.5 ? EdgeMutation::Add(src, dst)
                                             : EdgeMutation::Delete(src, dst));
    }
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-8) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, TopologySweep,
                         testing::Values(Topology::kCycle, Topology::kChain, Topology::kStar,
                                         Topology::kGrid, Topology::kComplete));

// ----- Triangle counting sweep ----------------------------------------------------

using TriangleParam = std::tuple<uint64_t /*seed*/, size_t /*batch*/>;

class TriangleSweep : public testing::TestWithParam<TriangleParam> {};

TEST_P(TriangleSweep, IncrementalCountEqualsRecount) {
  const auto [seed, batch_size] = GetParam();
  EdgeList full = GenerateRmat(300, 3000, {.seed = seed});
  StreamSplit split = SplitForStreaming(full, 0.5, seed + 1);
  MutableGraph graph(split.initial);
  TriangleCountingEngine engine(&graph);
  engine.InitialCompute();
  UpdateStream stream(split.held_back, seed + 2);
  for (int round = 0; round < 4; ++round) {
    const MutationBatch batch = stream.NextBatch(graph, {.size = batch_size, .add_fraction = 0.55});
    engine.ApplyMutations(batch);
    ASSERT_EQ(engine.count(), CountTriangles(graph))
        << "seed=" << seed << " batch=" << batch_size << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriangleSweep,
                         testing::Combine(testing::Values(220, 221, 222),
                                          testing::Values(1, 20, 200)));

// ----- SSSP sweep: sources × targeting ---------------------------------------------

using SsspParam = std::tuple<VertexId /*source*/, MutationTargeting>;

class SsspSweep : public testing::TestWithParam<SsspParam> {};

TEST_P(SsspSweep, RefinementEqualsRestart) {
  const auto [source, targeting] = GetParam();
  EdgeList full = GenerateRmat(400, 3500, {.seed = 230, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 231);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<Sssp> bolt(&g1, Sssp(source),
                             {.max_iterations = 256, .run_to_convergence = true});
  LigraEngine<Sssp> ligra(&g2, Sssp(source),
                          {.max_iterations = 256, .run_to_convergence = true});
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 232);
  for (int round = 0; round < 3; ++round) {
    const MutationBatch batch =
        stream.NextBatch(g1, {.size = 20, .add_fraction = 0.5, .targeting = targeting});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-9) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SsspSweep,
                         testing::Combine(testing::Values(0u, 7u, 42u),
                                          testing::Values(MutationTargeting::kUniform,
                                                          MutationTargeting::kHighDegree,
                                                          MutationTargeting::kLowDegree)));

// ----- Label propagation sweep ------------------------------------------------------

class LabelSweep : public testing::TestWithParam<double /*seed_fraction*/> {};

TEST_P(LabelSweep, RefinementEqualsRestart) {
  const double seed_fraction = GetParam();
  EdgeList full = GenerateRmat(400, 3500, {.seed = 240, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 241);
  LabelPropagation<2> algo(full.num_vertices(), seed_fraction, 242);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<LabelPropagation<2>> bolt(&g1, algo);
  LigraEngine<LabelPropagation<2>> ligra(&g2, algo);
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 243);
  for (int round = 0; round < 3; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 30, .add_fraction = 0.6});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-7)
        << "fraction=" << seed_fraction << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, LabelSweep, testing::Values(0.0, 0.05, 0.25, 0.9));

// ----- Recovery replay sweep ----------------------------------------------------
//
// Two properties of the checkpoint+WAL pair, across random streams:
//  1. What the WAL records is what was applied — with gutter coalescing on,
//     the journal holds the coalesced batches, so restore+replay lands
//     bitwise on the live engine's state.
//  2. Replaying a checkpoint tail twice equals replaying it once: batch
//     application is last-wins per (src, dst), so a repeated full tail
//     converges to the same graph, and a from-scratch engine to the same
//     values.

class RecoveryReplaySweep : public testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryReplaySweep, CoalescedJournalRecoversBitwise) {
  ThreadPool::SetNumThreads(1);  // bitwise comparison needs one summation order
  const uint64_t seed = GetParam();
  ScopedTempDir tmp;
  EdgeList full = GenerateRmat(400, 3200, {.seed = seed});
  StreamSplit split = SplitForStreaming(full, 0.5, seed + 1);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  Checkpointer<GraphBoltEngine<PageRank>> checkpointer(
      &engine, &graph, {.directory = tmp.path(), .cadence_batches = 4});
  {
    StreamDriver<GraphBoltEngine<PageRank>> driver(
        &engine, {.batch_size = 48,
                  .flush_interval_seconds = 3600.0,
                  .coalesce = true,
                  .checkpointer = &checkpointer});
    ASSERT_TRUE(driver.CheckpointNow());
    UpdateStream stream(split.held_back, seed + 2);
    for (int round = 0; round < 10; ++round) {
      const MutationBatch batch = stream.NextBatch(graph, {.size = 30, .add_fraction = 0.6});
      for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(driver.Ingest(batch[i]));
        if (i % 7 == 0) {
          ASSERT_TRUE(driver.Ingest(batch[i]));  // duplicate: gutter coalesces it
        }
      }
    }
    driver.Stop();
    EXPECT_GT(driver.stats().mutations_coalesced, 0u);
  }
  const auto want_edges = graph.ToEdgeList().edges();
  const auto want_values = engine.values();

  MutableGraph cold_graph;
  GraphBoltEngine<PageRank> cold(&cold_graph, PageRank{});
  Checkpointer<GraphBoltEngine<PageRank>> restorer(&cold, &cold_graph,
                                                   {.directory = tmp.path()});
  uint64_t seq = 0;
  ASSERT_TRUE(restorer.RestoreLatest(&seq));
  restorer.ReplayWal(seq, [&](uint64_t, MutationBatch&& batch) { cold.ApplyMutations(batch); });
  EXPECT_EQ(cold_graph.ToEdgeList().edges(), want_edges);
  EXPECT_EQ(cold.values(), want_values);  // bitwise: identical history from seq
}

TEST_P(RecoveryReplaySweep, WalTailReplayedTwiceEqualsOnce) {
  ThreadPool::SetNumThreads(1);
  const uint64_t seed = GetParam();
  ScopedTempDir tmp;
  EdgeList full = GenerateRmat(400, 3200, {.seed = seed + 100});
  StreamSplit split = SplitForStreaming(full, 0.5, seed + 101);

  // ResetEngine: values are a pure function of the final graph, so the
  // idempotence claim can be checked bitwise.
  MutableGraph graph(split.initial);
  ResetEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  Checkpointer<ResetEngine<PageRank>> checkpointer(
      &engine, &graph, {.directory = tmp.path(), .cadence_batches = 5});
  {
    StreamDriver<ResetEngine<PageRank>> driver(
        &engine, {.batch_size = 1u << 20,
                  .flush_interval_seconds = 3600.0,
                  .coalesce = false,
                  .checkpointer = &checkpointer});
    ASSERT_TRUE(driver.CheckpointNow());
    UpdateStream stream(split.held_back, seed + 102);
    for (int round = 0; round < 12; ++round) {
      const MutationBatch batch = stream.NextBatch(graph, {.size = 30, .add_fraction = 0.6});
      ASSERT_EQ(driver.IngestBatch(batch), batch.size());
      driver.Flush();
    }
    driver.Stop();
  }
  const auto want_edges = graph.ToEdgeList().edges();
  const auto want_values = engine.values();

  MutableGraph cold_graph;
  ResetEngine<PageRank> cold(&cold_graph, PageRank{});
  Checkpointer<ResetEngine<PageRank>> restorer(&cold, &cold_graph, {.directory = tmp.path()});
  uint64_t seq = 0;
  ASSERT_TRUE(restorer.RestoreLatest(&seq));
  const auto apply = [&](uint64_t, MutationBatch&& batch) { cold.ApplyMutations(batch); };
  const size_t once = restorer.ReplayWal(seq, apply);
  ASSERT_GE(once, 1u);
  EXPECT_EQ(cold_graph.ToEdgeList().edges(), want_edges);
  EXPECT_EQ(cold.values(), want_values);

  // The whole tail again, without restoring in between: last-wins batch
  // semantics make the second pass land on the identical state.
  const size_t twice = restorer.ReplayWal(seq, apply);
  EXPECT_EQ(twice, once);
  EXPECT_EQ(cold_graph.ToEdgeList().edges(), want_edges);
  EXPECT_EQ(cold.values(), want_values);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryReplaySweep, testing::Values(301u, 302u, 303u));

}  // namespace
}  // namespace graphbolt
