// ChaosStream differential tier: every fault-injection site fired against a
// checkpointing StreamDriver, and the recovered result compared bitwise
// with a fault-free sequential ApplyMutations loop over the same
// pre-generated batch stream. One pool thread keeps both paths
// deterministic, so equality is exact (==), not approximate.
//
// This target is compiled with GRAPHBOLT_FAULT_INJECTION=1 (the library,
// benches, and examples are not), which is what turns GB_FAULT_POINT from
// the literal `false` into a live hook. `ctest -L fault` runs it; the
// sanitizer sweep (tools/run_sanitized_tests.sh) runs it under ASan and
// TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/core/streaming_engine.h"
#include "src/driver/stream_driver.h"
#include "src/engine/reset_engine.h"
#include "src/fault/checkpoint.h"
#include "src/fault/fault_injector.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/kickstarter/kickstarter_engine.h"
#include "src/parallel/thread_pool.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// Pre-generates `count` batches against an evolving shadow graph so the
// faulty driver run and the fault-free reference see the identical stream.
std::vector<MutationBatch> MakeBatches(const StreamSplit& split, size_t count, size_t batch_size,
                                       uint64_t seed) {
  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, seed);
  std::vector<MutationBatch> batches;
  for (size_t i = 0; i < count; ++i) {
    MutationBatch batch = stream.NextBatch(shadow, {.size = batch_size, .add_fraction = 0.6});
    shadow.ApplyBatch(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

// Drives the barrier on a possibly-crashed driver: recover, then drain.
// A kill can land during the barrier itself, so loop until a barrier
// completes on a healthy worker.
template <StreamingEngine Engine>
void DrainWithRecovery(StreamDriver<Engine>& driver) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (!driver.healthy()) {
      ASSERT_TRUE(driver.Recover());
    }
    driver.PrepQuery();
    if (driver.healthy()) {
      return;
    }
  }
  FAIL() << "worker kept dying across 8 recovery attempts";
}

// The full matrix: arm every site (seeded, one-shot) against one driver
// run, recovering whenever the worker dies, and require the final state to
// be bitwise identical to the fault-free sequential loop. The arm points
// are chosen so the injected faults compose: the WAL record for batch 6 is
// lost past its retries (forcing a checkpoint), the cadence checkpoint at
// batch 6 needs a retry, the committed checkpoint at batch 9 is torn (so
// recovery must fall back to batch 6 and replay the WAL tail), a spurious
// queue-full bounces one flush to the blocking path, and the worker is
// killed after the 10th applied batch.
template <StreamingEngine Engine>
void ExpectFaultyDriverMatchesSequential(Engine& engine, MutableGraph& graph, Engine& reference,
                                         const std::vector<MutationBatch>& batches,
                                         const std::string& dir) {
  engine.InitialCompute();
  reference.InitialCompute();

  FaultInjector injector(/*seed=*/0x5eed);
  Checkpointer<Engine> checkpointer(
      &engine, &graph, {.directory = dir, .cadence_batches = 3, .keep = 2}, &injector);
  StreamDriver<Engine> driver(&engine, {.batch_size = 1u << 20,
                                        .flush_interval_seconds = 3600.0,
                                        .coalesce = false,
                                        .checkpointer = &checkpointer,
                                        .fault_injector = &injector});
  ASSERT_TRUE(driver.CheckpointNow());  // baseline: recoverable before batch 1

  injector.ArmOnce(FaultSite::kWalAppend, 6, /*burst=*/3);  // batch 6 loses all 3 attempts
  injector.ArmOnce(FaultSite::kCheckpointWrite, 3);         // 3rd write attempt fails once
  injector.ArmOnce(FaultSite::kTornCheckpoint, 4);          // 4th committed file torn
  injector.ArmOnce(FaultSite::kQueueFull, 5);               // 5th flush bounces to Push
  injector.ArmOnce(FaultSite::kWorkerKill, 10);             // dies after 10 applies

  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_EQ(driver.IngestBatch(batches[i]), batches[i].size());
    driver.Flush();
    reference.ApplyMutations(batches[i]);
    if (!driver.healthy()) {
      ASSERT_TRUE(driver.Recover());
    }
  }
  DrainWithRecovery(driver);

  // Every armed site must actually have fired — otherwise the matrix is
  // vacuous. (The sentinel sites kQuarantineAppend/kStageStall have their
  // own tests in sentinel_test.cc and are not armed here.)
  for (FaultSite s : {FaultSite::kWalAppend, FaultSite::kCheckpointWrite,
                      FaultSite::kTornCheckpoint, FaultSite::kQueueFull,
                      FaultSite::kWorkerKill}) {
    EXPECT_GE(injector.fired(s), 1u) << "site never fired: " << FaultSiteName(s);
  }

  const auto& values = engine.values();
  ASSERT_EQ(values.size(), reference.values().size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], reference.values()[v]) << "vertex " << v;
  }

  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.batches_applied, batches.size());
  EXPECT_EQ(stats.mutations_dropped, 0u);
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_GE(stats.batches_replayed, 1u);
  EXPECT_GE(stats.wal_retries, 2u);        // the lost append burned its retries
  EXPECT_GE(stats.checkpoint_retries, 1u);
  EXPECT_GE(stats.checkpoints_written, 3u);
}

TEST(FaultMatrix, PageRankRecoversBitwise) {
  ThreadPool::SetNumThreads(1);  // deterministic summation order
  ScopedTempDir tmp;
  EdgeList full = GenerateRmat(1500, 12000, {.seed = 11});
  StreamSplit split = SplitForStreaming(full, 0.5, 12);
  std::vector<MutationBatch> batches = MakeBatches(split, 20, 80, 13);

  MutableGraph g_driver(split.initial);
  MutableGraph g_ref(split.initial);
  GraphBoltEngine<PageRank> engine(&g_driver, PageRank{});
  GraphBoltEngine<PageRank> reference(&g_ref, PageRank{});
  ExpectFaultyDriverMatchesSequential(engine, g_driver, reference, batches, tmp.path());
  EXPECT_EQ(g_driver.ToEdgeList().edges(), g_ref.ToEdgeList().edges());
}

TEST(FaultMatrix, SsspRecoversBitwise) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir tmp;
  EdgeList full = GenerateRmat(1200, 9000, {.seed = 21, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 22);
  std::vector<MutationBatch> batches = MakeBatches(split, 20, 60, 23);

  MutableGraph g_driver(split.initial);
  MutableGraph g_ref(split.initial);
  const GraphBoltEngine<Sssp>::Options options{.max_iterations = 128, .run_to_convergence = true};
  GraphBoltEngine<Sssp> engine(&g_driver, Sssp(0), options);
  GraphBoltEngine<Sssp> reference(&g_ref, Sssp(0), options);
  ExpectFaultyDriverMatchesSequential(engine, g_driver, reference, batches, tmp.path());
}

TEST(FaultMatrix, KickStarterRecoversBitwise) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir tmp;
  EdgeList full = GenerateRmat(1000, 8000, {.seed = 31, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 32);
  std::vector<MutationBatch> batches = MakeBatches(split, 20, 50, 33);

  MutableGraph g_driver(split.initial);
  MutableGraph g_ref(split.initial);
  KickStarterEngine<KsSsspTraits> engine(&g_driver, KsSsspTraits(0));
  KickStarterEngine<KsSsspTraits> reference(&g_ref, KsSsspTraits(0));
  ExpectFaultyDriverMatchesSequential(engine, g_driver, reference, batches, tmp.path());
}

// Cold-start recovery: a brand-new process (fresh graph, engine, driver)
// pointed at the checkpoint directory of a finished run reconstructs the
// exact state — including KickStarter's dependence tree, which the
// post-recovery deletion batches then exercise.
TEST(ColdRecovery, KickStarterStateSurvivesProcessRestart) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir tmp;
  EdgeList full = GenerateRmat(900, 7000, {.seed = 41, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 42);
  std::vector<MutationBatch> batches = MakeBatches(split, 16, 50, 43);
  const size_t kHandoff = 10;  // "crash" after this many batches

  // Fault-free reference over the whole stream.
  MutableGraph g_ref(split.initial);
  KickStarterEngine<KsSsspTraits> reference(&g_ref, KsSsspTraits(0));
  reference.InitialCompute();
  for (const MutationBatch& batch : batches) {
    reference.ApplyMutations(batch);
  }

  // First "process": streams the prefix, then is dropped without Stop-side
  // cleanup mattering — durability must come from checkpoint + WAL alone.
  {
    MutableGraph graph(split.initial);
    KickStarterEngine<KsSsspTraits> engine(&graph, KsSsspTraits(0));
    engine.InitialCompute();
    Checkpointer<KickStarterEngine<KsSsspTraits>> checkpointer(
        &engine, &graph, {.directory = tmp.path(), .cadence_batches = 4});
    StreamDriver<KickStarterEngine<KsSsspTraits>> driver(
        &engine, {.batch_size = 1u << 20,
                  .flush_interval_seconds = 3600.0,
                  .coalesce = false,
                  .checkpointer = &checkpointer});
    ASSERT_TRUE(driver.CheckpointNow());
    for (size_t i = 0; i < kHandoff; ++i) {
      ASSERT_EQ(driver.IngestBatch(batches[i]), batches[i].size());
      driver.Flush();
    }
    driver.PrepQuery();
  }

  // Second "process": nothing in memory, everything from disk.
  MutableGraph graph;  // empty — Recover() replaces it wholesale
  KickStarterEngine<KsSsspTraits> engine(&graph, KsSsspTraits(0));
  Checkpointer<KickStarterEngine<KsSsspTraits>> checkpointer(
      &engine, &graph, {.directory = tmp.path(), .cadence_batches = 4});
  StreamDriver<KickStarterEngine<KsSsspTraits>> driver(
      &engine, {.batch_size = 1u << 20,
                .flush_interval_seconds = 3600.0,
                .coalesce = false,
                .checkpointer = &checkpointer});
  ASSERT_TRUE(driver.Recover());
  EXPECT_GE(driver.stats().recoveries, 1u);

  // The tail (with deletions) must correct off the restored dependence
  // tree exactly as the uninterrupted reference did.
  for (size_t i = kHandoff; i < batches.size(); ++i) {
    ASSERT_EQ(driver.IngestBatch(batches[i]), batches[i].size());
    driver.Flush();
  }
  driver.PrepQuery();
  ASSERT_EQ(engine.values().size(), reference.values().size());
  for (size_t v = 0; v < engine.values().size(); ++v) {
    ASSERT_EQ(engine.values()[v], reference.values()[v]) << "vertex " << v;
    ASSERT_EQ(engine.parents()[v], reference.parents()[v]) << "parent of " << v;
  }
}

// Cold-start Recover with an empty directory must fail cleanly and leave
// the (uninitialized) engine untouched — no checkpoint, no recovery.
TEST(ColdRecovery, EmptyDirectoryFailsCleanly) {
  ScopedTempDir tmp;
  MutableGraph graph;
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  Checkpointer<GraphBoltEngine<PageRank>> checkpointer(&engine, &graph,
                                                       {.directory = tmp.path()});
  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.checkpointer = &checkpointer});
  EXPECT_FALSE(driver.Recover());
  EXPECT_EQ(driver.stats().recoveries, 0u);
  EXPECT_TRUE(driver.healthy());  // pipeline restarted even without state
}

// kShedToWal: spuriously-full pushes park batches in the durable shed log
// instead of dropping them, and the next query barrier replays them. The
// stream is addition-only, so the re-entry order shed batches get is
// equivalent — ResetEngine recomputes from scratch per batch, making the
// final values bitwise equal to a fresh run on the final graph.
TEST(ShedToWal, SpuriousQueueFullLosesNothing) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir tmp;
  EdgeList full = GenerateRmat(800, 8000, {.seed = 51});
  StreamSplit split = SplitForStreaming(full, 0.5, 52);

  MutableGraph graph(split.initial);
  ResetEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  FaultInjector injector(/*seed=*/0xc0ffee);
  Checkpointer<ResetEngine<PageRank>> checkpointer(
      &engine, &graph, {.directory = tmp.path(), .cadence_batches = 0}, &injector);
  StreamDriver<ResetEngine<PageRank>> driver(
      &engine, {.batch_size = 1u << 20,
                .flush_interval_seconds = 3600.0,
                .overflow = StreamDriver<ResetEngine<PageRank>>::OverflowPolicy::kShedToWal,
                .coalesce = false,
                .checkpointer = &checkpointer,
                .fault_injector = &injector});
  injector.ArmOnce(FaultSite::kQueueFull, 2, /*burst=*/3);  // flushes 2..4 shed

  constexpr size_t kBatch = 64;
  MutationBatch batch;
  for (const Edge& e : split.held_back) {
    batch.push_back(EdgeMutation::Add(e.src, e.dst, e.weight));
    if (batch.size() == kBatch) {
      ASSERT_EQ(driver.IngestBatch(batch), batch.size());
      driver.Flush();
      batch.clear();
    }
  }
  if (!batch.empty()) {
    ASSERT_EQ(driver.IngestBatch(batch), batch.size());
    driver.Flush();
  }
  driver.PrepQuery();

  EXPECT_GE(injector.fired(FaultSite::kQueueFull), 3u);
  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.mutations_dropped, 0u);
  EXPECT_GE(stats.mutations_shed_to_wal, 1u);
  EXPECT_GE(stats.shed_batches_replayed, 3u);
  EXPECT_EQ(stats.mutations_enqueued, split.held_back.size());

  MutableGraph final_graph(full);
  ResetEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  EXPECT_EQ(graph.num_edges(), final_graph.num_edges());
  ASSERT_EQ(engine.values().size(), fresh.values().size());
  for (size_t v = 0; v < engine.values().size(); ++v) {
    ASSERT_EQ(engine.values()[v], fresh.values()[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace graphbolt
