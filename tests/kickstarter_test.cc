// Tests for the KickStarter baseline: dependence-tree incremental SSSP/BFS.
#include <gtest/gtest.h>

#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/graph/generators.h"
#include "src/kickstarter/kickstarter.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// Reference distances via a GraphBolt convergence run.
std::vector<double> ReferenceDistances(const EdgeList& list, VertexId source) {
  MutableGraph graph(list);
  GraphBoltEngine<Sssp> engine(&graph, Sssp(source),
                               {.max_iterations = 512, .run_to_convergence = true});
  engine.InitialCompute();
  return engine.values();
}

TEST(KickStarter, InitialDistancesOnChain) {
  MutableGraph graph(GenerateChain(6));
  KickStarterSssp ks(&graph, 0);
  ks.InitialCompute();
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(ks.distances()[v], static_cast<double>(v));
  }
}

TEST(KickStarter, ParentsFormTree) {
  MutableGraph graph(GenerateRmat(300, 2500, {.seed = 130}));
  KickStarterSssp ks(&graph, 0);
  ks.InitialCompute();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (v == 0 || ks.distances()[v] >= kUnreachable) {
      EXPECT_EQ(ks.parents()[v], kInvalidVertex);
    } else {
      const VertexId p = ks.parents()[v];
      ASSERT_NE(p, kInvalidVertex);
      EXPECT_TRUE(graph.HasEdge(p, v));
      EXPECT_LT(ks.distances()[p], ks.distances()[v]);
    }
  }
}

TEST(KickStarter, AdditionRelaxes) {
  EdgeList list = GenerateChain(6);
  MutableGraph graph(list);
  KickStarterSssp ks(&graph, 0);
  ks.InitialCompute();
  ks.ApplyMutations({EdgeMutation::Add(0, 5)});
  EXPECT_DOUBLE_EQ(ks.distances()[5], 1.0);
}

TEST(KickStarter, DeletionTrimsSubtree) {
  // 0->1->2->3 plus alternate route 0->4->3. Deleting 1->2 invalidates
  // {2, 3}; 3 recovers through 4.
  EdgeList list;
  list.set_num_vertices(5);
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(2, 3);
  list.Add(0, 4);
  list.Add(4, 3);
  MutableGraph graph(std::move(list));
  KickStarterSssp ks(&graph, 0);
  ks.InitialCompute();
  EXPECT_DOUBLE_EQ(ks.distances()[3], 2.0);  // via 4
  ks.ApplyMutations({EdgeMutation::Delete(1, 2)});
  EXPECT_GE(ks.distances()[2], kUnreachable);
  EXPECT_DOUBLE_EQ(ks.distances()[3], 2.0);
}

TEST(KickStarter, DeletionMakesUnreachable) {
  MutableGraph graph(GenerateChain(4));
  KickStarterSssp ks(&graph, 0);
  ks.InitialCompute();
  ks.ApplyMutations({EdgeMutation::Delete(0, 1)});
  EXPECT_GE(ks.distances()[1], kUnreachable);
  EXPECT_GE(ks.distances()[3], kUnreachable);
}

TEST(KickStarter, StreamingMatchesReference) {
  EdgeList full = GenerateRmat(800, 7000, {.seed = 131, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 132);
  MutableGraph graph(split.initial);
  KickStarterSssp ks(&graph, 0);
  ks.InitialCompute();

  UpdateStream stream(split.held_back, 133);
  for (int round = 0; round < 8; ++round) {
    const MutationBatch batch = stream.NextBatch(graph, {.size = 40, .add_fraction = 0.5});
    ks.ApplyMutations(batch);
    const std::vector<double> expected = ReferenceDistances(graph.ToEdgeList(), 0);
    ASSERT_EQ(expected.size(), ks.distances().size());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      ASSERT_NEAR(ks.distances()[v], expected[v], 1e-9) << "round " << round << " vertex " << v;
    }
  }
}

TEST(KickStarter, BfsModeCountsHops) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1, 5.0f);
  list.Add(1, 2, 5.0f);
  MutableGraph graph(std::move(list));
  KickStarterSssp ks(&graph, 0, /*use_weights=*/false);
  ks.InitialCompute();
  EXPECT_DOUBLE_EQ(ks.distances()[2], 2.0);
}

TEST(KickStarter, AdditionsOnlyDoLittleWork) {
  EdgeList full = GenerateRmat(3000, 25000, {.seed = 134, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 135);
  MutableGraph graph(split.initial);
  KickStarterSssp ks(&graph, 0);
  ks.InitialCompute();
  const uint64_t initial_work = ks.stats().edges_processed;

  MutationBatch batch;
  for (size_t i = 0; i < 10; ++i) {
    batch.push_back(
        EdgeMutation::Add(split.held_back[i].src, split.held_back[i].dst, split.held_back[i].weight));
  }
  ks.ApplyMutations(batch);
  EXPECT_LT(ks.stats().edges_processed, initial_work / 5);
}

}  // namespace
}  // namespace graphbolt
