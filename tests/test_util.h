// Shared helpers for engine tests: value comparison across scalar and
// array-valued algorithms, differential checks between engines, and a
// self-cleaning temp directory for checkpoint/serialization tests.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/graph/types.h"

namespace graphbolt {

// A unique directory under the system temp root, removed (recursively) on
// destruction. Checkpoint and WAL tests write real files through it.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& prefix = "graphbolt_test") {
    std::string pattern =
        (std::filesystem::temp_directory_path() / (prefix + ".XXXXXX")).string();
    if (::mkdtemp(pattern.data()) == nullptr) {
      std::filesystem::create_directories(pattern);  // loud fallback path
    }
    path_ = pattern;
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

inline double ValueGap(double a, double b) { return std::fabs(a - b); }

template <size_t N>
double ValueGap(const std::array<double, N>& a, const std::array<double, N>& b) {
  double gap = 0.0;
  for (size_t i = 0; i < N; ++i) {
    gap = std::max(gap, std::fabs(a[i] - b[i]));
  }
  return gap;
}

// Maximum elementwise gap between two value arrays.
template <typename Value>
double MaxGap(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) {
    return 1e300;
  }
  double gap = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    gap = std::max(gap, ValueGap(a[i], b[i]));
  }
  return gap;
}

// Seed selection for the randomized (`fuzz`-labeled) test tier, shared by
// every fuzz target so CI shards them uniformly. Three forms, in
// precedence order:
//   GRAPHBOLT_FUZZ_SEEDS="101,102,103"          explicit list
//   GRAPHBOLT_FUZZ_SEED_BASE=N [.._COUNT=K]     the range [N, N+K)
//   (neither set)                               the default seeds 1..8
// A sharded CI job gives each shard its own BASE; a reproduction run pins
// the single failing seed with SEEDS. COUNT defaults to 8.
inline std::vector<uint64_t> FuzzSeeds() {
  std::vector<uint64_t> seeds;
  if (const char* list = std::getenv("GRAPHBOLT_FUZZ_SEEDS")) {
    std::string token;
    for (const char* p = list;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!token.empty()) {
          seeds.push_back(std::strtoull(token.c_str(), nullptr, 10));
          token.clear();
        }
        if (*p == '\0') {
          break;
        }
      } else {
        token.push_back(*p);
      }
    }
    if (!seeds.empty()) {
      return seeds;
    }
  }
  uint64_t base = 1;
  uint64_t count = 8;
  if (const char* b = std::getenv("GRAPHBOLT_FUZZ_SEED_BASE")) {
    base = std::strtoull(b, nullptr, 10);
  }
  if (const char* c = std::getenv("GRAPHBOLT_FUZZ_SEED_COUNT")) {
    count = std::strtoull(c, nullptr, 10);
  }
  for (uint64_t s = 0; s < count; ++s) {
    seeds.push_back(base + s);
  }
  return seeds;
}

// The 5-vertex graph of Figure 2a in the paper.
inline EdgeList PaperFigure2aGraph() {
  EdgeList list;
  list.set_num_vertices(5);
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(2, 0);
  list.Add(2, 1);
  list.Add(3, 2);
  list.Add(3, 4);
  list.Add(4, 3);
  return list;
}

}  // namespace graphbolt

#endif  // TESTS_TEST_UTIL_H_
