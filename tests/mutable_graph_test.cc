// Unit tests for MutableGraph: dual CSR/CSC consistency and batched
// two-pass mutation (§4.1).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/util/random.h"

namespace graphbolt {
namespace {

MutableGraph Paper2a() {
  // Figure 2a: 0->1, 1->2, 2->0, 2->1, 3->2, 3->4, 4->3.
  EdgeList list;
  list.set_num_vertices(5);
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(2, 0);
  list.Add(2, 1);
  list.Add(3, 2);
  list.Add(3, 4);
  list.Add(4, 3);
  return MutableGraph(std::move(list));
}

TEST(MutableGraph, BuildConsistency) {
  MutableGraph graph = Paper2a();
  EXPECT_EQ(graph.num_vertices(), 5u);
  EXPECT_EQ(graph.num_edges(), 7u);
  EXPECT_TRUE(graph.CheckInvariants());
  EXPECT_EQ(graph.OutDegree(2), 2u);
  EXPECT_EQ(graph.InDegree(2), 2u);
  EXPECT_EQ(graph.InDegree(1), 2u);
}

TEST(MutableGraph, ApplyBatchAddsEdge) {
  MutableGraph graph = Paper2a();
  // The paper's running mutation: add edge (1, 2)... already present; use
  // (0, 2) instead plus the figure's GT addition (1->2 exists, add 0->3).
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::Add(0, 3)});
  ASSERT_EQ(applied.added.size(), 1u);
  EXPECT_TRUE(applied.deleted.empty());
  EXPECT_TRUE(graph.HasEdge(0, 3));
  EXPECT_EQ(graph.InDegree(3), 2u);
  EXPECT_TRUE(graph.CheckInvariants());
}

TEST(MutableGraph, ApplyBatchDeletesEdge) {
  MutableGraph graph = Paper2a();
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::Delete(2, 1)});
  ASSERT_EQ(applied.deleted.size(), 1u);
  EXPECT_FALSE(graph.HasEdge(2, 1));
  EXPECT_EQ(graph.num_edges(), 6u);
  EXPECT_EQ(graph.InDegree(1), 1u);
  EXPECT_TRUE(graph.CheckInvariants());
}

TEST(MutableGraph, AddExistingEdgeIsNoop) {
  MutableGraph graph = Paper2a();
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::Add(0, 1)});
  EXPECT_TRUE(applied.Empty());
  EXPECT_EQ(graph.num_edges(), 7u);
}

TEST(MutableGraph, DeleteAbsentEdgeIsNoop) {
  MutableGraph graph = Paper2a();
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::Delete(0, 4)});
  EXPECT_TRUE(applied.Empty());
  EXPECT_EQ(graph.num_edges(), 7u);
}

TEST(MutableGraph, SelfLoopMutationIgnored) {
  MutableGraph graph = Paper2a();
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::Add(2, 2)});
  EXPECT_TRUE(applied.Empty());
}

TEST(MutableGraph, LastMutationWinsWithinBatch) {
  MutableGraph graph = Paper2a();
  // Add then delete the same absent edge: net no-op.
  AppliedMutations applied =
      graph.ApplyBatch({EdgeMutation::Add(0, 4), EdgeMutation::Delete(0, 4)});
  EXPECT_TRUE(applied.Empty());
  EXPECT_FALSE(graph.HasEdge(0, 4));
  // Delete then add an existing edge: net no-op (edge stays).
  applied = graph.ApplyBatch({EdgeMutation::Delete(0, 1), EdgeMutation::Add(0, 1)});
  EXPECT_TRUE(applied.Empty());
  EXPECT_TRUE(graph.HasEdge(0, 1));
}

TEST(MutableGraph, MutationGrowsVertexSet) {
  MutableGraph graph = Paper2a();
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::Add(4, 9)});
  EXPECT_EQ(graph.num_vertices(), 10u);
  EXPECT_EQ(applied.added.size(), 1u);
  EXPECT_TRUE(graph.HasEdge(4, 9));
  EXPECT_EQ(graph.OutDegree(7), 0u);
  EXPECT_TRUE(graph.CheckInvariants());
}

TEST(MutableGraph, AddVerticesExplicitly) {
  MutableGraph graph = Paper2a();
  const VertexId first = graph.AddVertices(3);
  EXPECT_EQ(first, 5u);
  EXPECT_EQ(graph.num_vertices(), 8u);
  EXPECT_TRUE(graph.CheckInvariants());
}

TEST(MutableGraph, NormalizeBatchDoesNotMutate) {
  MutableGraph graph = Paper2a();
  const AppliedMutations normalized =
      graph.NormalizeBatch({EdgeMutation::Add(0, 4), EdgeMutation::Delete(2, 1)});
  EXPECT_EQ(normalized.added.size(), 1u);
  EXPECT_EQ(normalized.deleted.size(), 1u);
  EXPECT_EQ(graph.num_edges(), 7u);  // untouched
  EXPECT_FALSE(graph.HasEdge(0, 4));
}

TEST(MutableGraph, DeletedEdgeReportsItsWeight) {
  EdgeList list;
  list.set_num_vertices(2);
  list.Add(0, 1, 4.5f);
  MutableGraph graph(std::move(list));
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::Delete(0, 1)});
  ASSERT_EQ(applied.deleted.size(), 1u);
  EXPECT_FLOAT_EQ(applied.deleted[0].weight, 4.5f);
}

TEST(MutableGraph, ToEdgeListRoundTrips) {
  MutableGraph graph = Paper2a();
  EdgeList exported = graph.ToEdgeList();
  EXPECT_EQ(exported.num_edges(), 7u);
  MutableGraph rebuilt(std::move(exported));
  EXPECT_EQ(rebuilt.num_edges(), graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(rebuilt.OutDegree(v), graph.OutDegree(v));
    EXPECT_EQ(rebuilt.InDegree(v), graph.InDegree(v));
  }
}

TEST(MutableGraph, RandomizedMutationSequenceMatchesRebuild) {
  // Apply 20 random batches; after each, the mutated graph must equal a
  // graph rebuilt from scratch from its own edge list export.
  EdgeList initial = GenerateErdosRenyi(60, 300, 5);
  MutableGraph graph(initial);
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    MutationBatch batch;
    for (int i = 0; i < 15; ++i) {
      const auto src = static_cast<VertexId>(rng.NextBounded(60));
      const auto dst = static_cast<VertexId>(rng.NextBounded(60));
      if (rng.NextDouble() < 0.5) {
        batch.push_back(EdgeMutation::Add(src, dst));
      } else {
        batch.push_back(EdgeMutation::Delete(src, dst));
      }
    }
    graph.ApplyBatch(batch);
    ASSERT_TRUE(graph.CheckInvariants());
    MutableGraph rebuilt(graph.ToEdgeList());
    ASSERT_EQ(rebuilt.num_edges(), graph.num_edges());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      ASSERT_EQ(rebuilt.InDegree(v), graph.InDegree(v)) << "vertex " << v;
    }
  }
}

TEST(MutableGraph, InOutEdgeCountsAlwaysAgree) {
  EdgeList initial = GenerateRmat(200, 1000, {.seed = 3});
  MutableGraph graph(initial);
  uint64_t out_total = 0;
  uint64_t in_total = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    out_total += graph.OutDegree(v);
    in_total += graph.InDegree(v);
  }
  EXPECT_EQ(out_total, graph.num_edges());
  EXPECT_EQ(in_total, graph.num_edges());
}

TEST(MutableGraph, UpdateWeightChangesWeightInPlace) {
  EdgeList list;
  list.set_num_vertices(2);
  list.Add(0, 1, 2.0f);
  MutableGraph graph(std::move(list));
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::UpdateWeight(0, 1, 5.0f)});
  ASSERT_EQ(applied.deleted.size(), 1u);
  ASSERT_EQ(applied.added.size(), 1u);
  EXPECT_FLOAT_EQ(applied.deleted[0].weight, 2.0f);
  EXPECT_FLOAT_EQ(applied.added[0].weight, 5.0f);
  EXPECT_EQ(graph.num_edges(), 1u);
  EXPECT_FLOAT_EQ(graph.EdgeWeight(0, 1), 5.0f);
  EXPECT_TRUE(graph.CheckInvariants());
}

TEST(MutableGraph, UpdateWeightOfAbsentEdgeIsNoop) {
  MutableGraph graph = Paper2a();
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::UpdateWeight(0, 4, 3.0f)});
  EXPECT_TRUE(applied.Empty());
  EXPECT_FALSE(graph.HasEdge(0, 4));
}

TEST(MutableGraph, UpdateWeightToSameValueIsNoop) {
  EdgeList list;
  list.set_num_vertices(2);
  list.Add(0, 1, 2.0f);
  MutableGraph graph(std::move(list));
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::UpdateWeight(0, 1, 2.0f)});
  EXPECT_TRUE(applied.Empty());
}

TEST(MutableGraph, ApplySingleMatchesApplyBatchDifferentially) {
  // The single-mutation fast path (NormalizeSingle/ApplySingle, reused
  // scratch) must stay semantically identical to ApplyBatch({m}) for every
  // mutation kind, including self-loops, duplicates, absent-edge deletes,
  // weight updates, and vertex growth.
  EdgeList initial = GenerateErdosRenyi(40, 200, 9);
  MutableGraph single(initial);
  MutableGraph batched(initial);
  Rng rng(123);
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(45));  // growth included
    const auto dst = static_cast<VertexId>(rng.NextBounded(45));
    EdgeMutation m = EdgeMutation::Add(src, dst, static_cast<Weight>(rng.NextDouble()));
    const double roll = rng.NextDouble();
    if (roll < 0.35) {
      m = EdgeMutation::Delete(src, dst);
    } else if (roll < 0.5) {
      m = EdgeMutation::UpdateWeight(src, dst, static_cast<Weight>(rng.NextDouble()));
    }
    const MutableGraph::SingleEffect eff = single.NormalizeSingle(m);
    const AppliedMutations ref = batched.NormalizeBatch({m});
    ASSERT_EQ(eff.has_add, ref.added.size() == 1) << "mutation " << i;
    ASSERT_EQ(eff.has_delete, ref.deleted.size() == 1) << "mutation " << i;
    single.ApplySingle(m);
    batched.ApplyBatch({m});
    ASSERT_TRUE(single.CheckInvariants());
    ASSERT_EQ(single.num_vertices(), batched.num_vertices());
    ASSERT_EQ(single.num_edges(), batched.num_edges());
  }
  // Full structural equality after the sweep, both views.
  for (VertexId v = 0; v < single.num_vertices(); ++v) {
    const auto a = single.OutNeighbors(v);
    const auto b = batched.OutNeighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << "vertex " << v;
    const auto wa = single.OutWeights(v);
    const auto wb = batched.OutWeights(v);
    ASSERT_TRUE(std::equal(wa.begin(), wa.end(), wb.begin(), wb.end())) << "vertex " << v;
    ASSERT_EQ(single.InDegree(v), batched.InDegree(v)) << "vertex " << v;
  }
}

TEST(MutableGraph, EmptyBatch) {
  MutableGraph graph = Paper2a();
  const AppliedMutations applied = graph.ApplyBatch({});
  EXPECT_TRUE(applied.Empty());
  EXPECT_EQ(graph.num_edges(), 7u);
}

}  // namespace
}  // namespace graphbolt
